/**
 * @file
 * Tests for the disassembler/printer and the JSON report export.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "program/printer.hh"
#include "sim/report.hh"

using namespace critics;
using namespace critics::test;

TEST(Printer, FormatsOperands)
{
    auto alu = inst(1, OpClass::IntAlu, 3, 2, 1);
    EXPECT_EQ(program::formatOperands(alu), "IntAlu r3, r2, r1");
    alu.arch.predicated = true;
    EXPECT_NE(program::formatOperands(alu).find(".pred"),
              std::string::npos);
    alu.arch.imm = 7;
    EXPECT_NE(program::formatOperands(alu).find("#7"),
              std::string::npos);
}

TEST(Printer, FormatsCdpAndControl)
{
    auto cdp = inst(2, OpClass::Cdp, isa::NoReg);
    cdp.cdpRun = 5;
    cdp.format = isa::Format::Thumb16;
    EXPECT_EQ(program::formatOperands(cdp), "CDP #5");

    auto br = inst(3, OpClass::Branch, isa::NoReg, 8);
    br.flow = program::FlowKind::CondBranch;
    br.targetBlock = 4;
    EXPECT_NE(program::formatOperands(br).find("->b4"),
              std::string::npos);
}

TEST(Printer, EncodingMatchesWidth)
{
    auto arm = inst(4, OpClass::IntAlu, 1, 2);
    EXPECT_EQ(program::formatEncoding(arm).size(), 10u); // 0x + 8 hex
    auto thumb = inst(5, OpClass::IntAlu, 1, 2);
    thumb.format = isa::Format::Thumb16;
    EXPECT_EQ(program::formatEncoding(thumb).size(), 6u); // 0x + 4 hex
}

TEST(Printer, BlockAndSummary)
{
    BasicBlock bb;
    bb.insts = {inst(0, OpClass::IntAlu, 0),
                inst(1, OpClass::Load, 1)};
    Program prog = makeProgram({bb});
    const auto text = program::formatBlock(prog.funcs[0].blocks[0]);
    EXPECT_NE(text.find("uid 0"), std::string::npos);
    EXPECT_NE(text.find("Load"), std::string::npos);
    EXPECT_NE(text.find("8 bytes"), std::string::npos);

    const auto summary = program::summarizeProgram(prog);
    EXPECT_NE(summary.find("1 functions"), std::string::npos);
    EXPECT_NE(summary.find("2 instructions"), std::string::npos);
    EXPECT_NE(summary.find("1 memory ops"), std::string::npos);
}

TEST(Report, JsonHasStableKeys)
{
    sim::RunResult result;
    result.cpu.cycles = 1000;
    result.cpu.committed = 900;
    result.cpu.all.insts = 900;
    result.dynThumbFraction = 0.25;
    const auto json = sim::toJson(result, "critic");
    for (const char *key :
         {"\"label\":\"critic\"", "\"cycles\":1000", "\"ipc\":",
          "\"dynThumbFraction\":0.25", "\"energy\":{",
          "\"stallForRd\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    // Crude structural validity: balanced braces.
    int depth = 0;
    for (const char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Report, ComparisonComputesSpeedup)
{
    sim::RunResult base, variant;
    base.cpu.cycles = 1200;
    variant.cpu.cycles = 1000;
    base.cpu.all.insts = variant.cpu.all.insts = 1000;
    const auto json = sim::comparisonJson(base, variant, "critic");
    EXPECT_NE(json.find("\"speedup\":1.2"), std::string::npos);
    EXPECT_NE(json.find("\"baseline\":{"), std::string::npos);
}
