/**
 * @file
 * Dynamic-trace conformance (src/verify/trace_check.*): a faithfully
 * emitted trace replays clean; seeded mutations prove every
 * verify.trace.* diagnostic fires with its exact location (unknown
 * uid, diverged block body, synthetic bad-target branch, bias-skewed
 * trace, out-of-vocabulary bias); transformed variants of a real app
 * stay conformant end to end.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "program/emit.hh"
#include "program/walker.hh"
#include "sim/experiment.hh"
#include "sim/variants.hh"
#include "verify/trace_check.hh"
#include "verify/verify.hh"
#include "workload/profile.hh"
#include "workload/synth.hh"

using namespace critics;
using critics::test::inst;
using critics::test::makeProgram;
using program::BasicBlock;
using program::FlowKind;
using program::Program;
using program::StaticInst;
using program::Trace;
using isa::OpClass;

namespace
{

/** b0 ends in a 50/50 branch over b1; b2 returns (the walker's empty
 *  stack sends control back to f0/b0, so the trace loops). */
Program
loopProgram(float bias = 0.5f)
{
    BasicBlock b0;
    b0.insts.push_back(inst(0, OpClass::IntAlu, 8));
    StaticInst br = inst(1, OpClass::Branch, isa::NoReg, 8);
    br.flow = FlowKind::CondBranch;
    br.targetBlock = 2;
    br.takenBias = bias;
    b0.insts.push_back(br);
    BasicBlock b1;
    b1.insts.push_back(inst(2, OpClass::IntAlu, 9, 8));
    BasicBlock b2;
    b2.insts.push_back(inst(3, OpClass::IntAlu, 10, 8));
    StaticInst ret = inst(4, OpClass::Return, isa::NoReg);
    ret.flow = FlowKind::Ret;
    b2.insts.push_back(ret);
    return makeProgram({b0, b1, b2});
}

Trace
emitFrom(const Program &prog, std::uint64_t targetInsts = 8000)
{
    Rng rng(42);
    program::WalkLimits limits;
    limits.targetInsts = targetInsts;
    const program::ControlPath path =
        program::walkProgram(prog, rng, limits);
    return program::emitTrace(prog, path);
}

verify::TraceCheckOptions
vocabOptions(std::initializer_list<float> vocab = {0.04f, 0.5f, 0.96f,
                                                   0.93f})
{
    verify::TraceCheckOptions options;
    options.biasVocabulary = vocab;
    return options;
}

} // namespace

TEST(TraceCheck, CleanTraceConforms)
{
    const Program prog = loopProgram();
    const Trace trace = emitFrom(prog);
    verify::Report report;
    const auto stats = verify::checkTraceConformance(
        prog, trace, report, vocabOptions());
    EXPECT_TRUE(report.clean()) << report.render();
    EXPECT_TRUE(stats.conformant);
    EXPECT_GT(stats.blocksReplayed, 100u);
    EXPECT_EQ(stats.transitionsChecked, stats.blocksReplayed - 1);
    EXPECT_EQ(stats.branchSitesTested, 1u);
}

TEST(TraceCheck, UnknownUidFires)
{
    const Program prog = loopProgram();
    Trace trace = emitFrom(prog);
    trace.insts[40].staticUid = 9999;
    verify::Report report;
    const auto stats =
        verify::checkTraceConformance(prog, trace, report);
    EXPECT_FALSE(stats.conformant);
    ASSERT_EQ(report.countOf("verify.trace.unknown-uid"), 1u);
    EXPECT_NE(report.diags().front().message.find("9999"),
              std::string::npos);
}

TEST(TraceCheck, BlockDivergedFires)
{
    const Program prog = loopProgram();
    Trace trace = emitFrom(prog);
    // Find a dynamic instance of uid 1 (b0's terminator, static index
    // 1) and replace it with a uid the program *does* contain: the
    // body no longer matches the block.
    std::size_t idx = 0;
    while (trace.insts[idx].staticUid != 1)
        ++idx;
    trace.insts[idx].staticUid = 3;
    verify::Report report;
    const auto stats =
        verify::checkTraceConformance(prog, trace, report);
    EXPECT_FALSE(stats.conformant);
    ASSERT_EQ(report.countOf("verify.trace.block-diverged"), 1u);
    const auto &diag = report.diags().front();
    EXPECT_TRUE(diag.located);
    EXPECT_EQ(diag.func, 0u);
    EXPECT_EQ(diag.block, 0u);
    EXPECT_EQ(diag.index, 1u);
}

TEST(TraceCheck, BadTargetFires)
{
    Program prog = loopProgram();
    const Trace trace = emitFrom(prog);
    // Synthetic bad target: retarget the branch after emitting, so
    // every taken transition in the trace lands on a non-successor.
    prog.funcs[0].blocks[0].insts[1].targetBlock = 1;
    verify::Report report;
    const auto stats =
        verify::checkTraceConformance(prog, trace, report);
    EXPECT_FALSE(stats.conformant);
    ASSERT_EQ(report.countOf("verify.trace.bad-target"), 1u);
    const auto &diag = report.diags().front();
    EXPECT_TRUE(diag.located);
    EXPECT_EQ(diag.func, 0u);
    EXPECT_EQ(diag.block, 0u);
    EXPECT_EQ(diag.index, 1u); // the terminator
}

TEST(TraceCheck, BiasSkewFires)
{
    Program prog = loopProgram(0.5f);
    const Trace trace = emitFrom(prog); // ~50% taken, thousands of n
    // The program now claims heavy skew the trace does not show.
    prog.funcs[0].blocks[0].insts[1].takenBias = 0.96f;
    verify::Report report;
    const auto stats = verify::checkTraceConformance(
        prog, trace, report, vocabOptions());
    EXPECT_TRUE(stats.conformant); // control flow itself is fine
    EXPECT_EQ(stats.branchSitesTested, 1u);
    ASSERT_EQ(report.countOf("verify.trace.bias-skew"), 1u);
    const auto &diag = report.diags().front();
    EXPECT_TRUE(diag.located);
    EXPECT_EQ(diag.block, 0u);
    EXPECT_EQ(diag.index, 1u);
}

TEST(TraceCheck, BiasWithinBoundIsClean)
{
    const Program prog = loopProgram(0.96f);
    const Trace trace = emitFrom(prog);
    verify::Report report;
    verify::checkTraceConformance(prog, trace, report, vocabOptions());
    EXPECT_EQ(report.countOf("verify.trace.bias-skew"), 0u);
}

TEST(TraceCheck, BiasUnknownFires)
{
    const Program prog = loopProgram(0.7f); // not in the vocabulary
    const Trace trace = emitFrom(prog);
    verify::Report report;
    verify::checkTraceConformance(prog, trace, report, vocabOptions());
    ASSERT_EQ(report.countOf("verify.trace.bias-unknown"), 1u);
    EXPECT_EQ(report.countOf("verify.trace.bias-skew"), 0u);
    const auto &diag = report.diags().front();
    EXPECT_EQ(diag.block, 0u);
    EXPECT_EQ(diag.index, 1u);
}

TEST(TraceCheck, SmallSamplesSkipBiasTest)
{
    Program prog = loopProgram(0.5f);
    // A walk too short to accumulate minBranchSamples observations.
    const Trace trace = emitFrom(prog, 40);
    prog.funcs[0].blocks[0].insts[1].takenBias = 0.96f;
    verify::Report report;
    const auto stats = verify::checkTraceConformance(
        prog, trace, report, vocabOptions());
    EXPECT_TRUE(stats.conformant);
    EXPECT_EQ(stats.branchSitesTested, 0u);
    EXPECT_EQ(report.countOf("verify.trace.bias-skew"), 0u);
}

TEST(TraceCheck, SynthesizedBaselineConforms)
{
    auto profile = workload::findApp("Acrobat");
    profile.numFunctions = 80;
    profile.dispatchTargets = 16;
    sim::ExperimentOptions options;
    options.traceInsts = 30000;
    sim::AppExperiment exp(profile, options);
    verify::TraceCheckOptions check;
    check.biasVocabulary = workload::branchBiasVocabulary(profile);
    verify::Report report;
    const auto stats = verify::checkTraceConformance(
        exp.baseProgram(), exp.baseTrace(), report, check);
    EXPECT_TRUE(report.clean()) << report.render();
    EXPECT_TRUE(stats.conformant);
    EXPECT_GT(stats.branchSitesTested, 0u);
}

TEST(TraceCheck, TransformedVariantsConform)
{
    auto profile = workload::findApp("Acrobat");
    profile.numFunctions = 80;
    profile.dispatchTargets = 16;
    sim::ExperimentOptions options;
    options.traceInsts = 30000;
    sim::AppExperiment exp(profile, options);
    verify::TraceCheckOptions check;
    check.biasVocabulary = workload::branchBiasVocabulary(profile);
    for (const char *name :
         {"hoist", "critic", "critic-branchpair", "opp16", "compress",
          "opp16+critic"}) {
        verify::PassAudit audit;
        const sim::MaterializedTransform m = exp.materializeTransform(
            sim::parseVariant(name), &audit);
        EXPECT_TRUE(audit.report.clean())
            << name << ": " << audit.report.render();
        verify::Report report;
        const auto stats = verify::checkTraceConformance(
            m.prog, m.trace, report, check);
        EXPECT_TRUE(report.clean())
            << name << ": " << report.render();
        EXPECT_TRUE(stats.conformant) << name;
    }
}
