/**
 * @file
 * Workload-synthesis tests: every registered profile must produce a
 * structurally valid program whose statistics follow the profile.
 */

#include <gtest/gtest.h>

#include "program/emit.hh"
#include "program/walker.hh"
#include "workload/profile.hh"
#include "workload/synth.hh"

using namespace critics;
using namespace critics::workload;
using program::FlowKind;

TEST(Profiles, RegistrySizes)
{
    EXPECT_EQ(mobileApps().size(), 10u);  // Table II
    EXPECT_EQ(specIntApps().size(), 8u);
    EXPECT_EQ(specFloatApps().size(), 8u);
    EXPECT_EQ(allApps().size(), 26u);
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(findApp("Acrobat").suite, Suite::Mobile);
    EXPECT_EQ(findApp("mcf").suite, Suite::SpecInt);
    EXPECT_EQ(findApp("lbm").suite, Suite::SpecFloat);
    EXPECT_THROW(findApp("NotAnApp"), std::runtime_error);
}

TEST(Profiles, TableIIMetadata)
{
    for (const auto &app : mobileApps()) {
        EXPECT_FALSE(app.activity.empty()) << app.name;
        EXPECT_FALSE(app.domain.empty()) << app.name;
    }
}

class SynthesizedProgram
    : public ::testing::TestWithParam<const char *>
{
  protected:
    AppProfile profile_ = findApp(GetParam());
};

TEST_P(SynthesizedProgram, StructurallyValid)
{
    // Shrink for test speed while keeping structure.
    profile_.numFunctions = std::min(profile_.numFunctions, 120u);
    profile_.dispatchTargets =
        std::min(profile_.dispatchTargets, 24u);
    const auto prog = synthesize(profile_);

    ASSERT_EQ(prog.funcs.size(), profile_.numFunctions);
    ASSERT_EQ(prog.memRegions.size(), 3u);
    ASSERT_FALSE(prog.indirectTables.empty());

    for (std::size_t f = 0; f < prog.funcs.size(); ++f) {
        const auto &fn = prog.funcs[f];
        ASSERT_FALSE(fn.blocks.empty()) << fn.name;
        for (const auto &block : fn.blocks) {
            ASSERT_FALSE(block.insts.empty());
            for (std::size_t i = 0; i < block.insts.size(); ++i) {
                const auto &si = block.insts[i];
                // Control transfers only terminate blocks.
                if (i + 1 < block.insts.size())
                    EXPECT_FALSE(si.isControl());
                if (si.flow == FlowKind::CondBranch ||
                    si.flow == FlowKind::Jump) {
                    EXPECT_LT(si.targetBlock, fn.blocks.size());
                }
                if (si.flow == FlowKind::CallFn &&
                    si.indirectTable == program::NoTable) {
                    EXPECT_LT(si.targetFunc, prog.funcs.size());
                    EXPECT_NE(si.targetFunc, f); // layered, no recursion
                }
                if (si.isLoad() || si.isStore()) {
                    EXPECT_NE(si.memPattern, program::MemPattern::None);
                    EXPECT_LT(si.memRegionId, prog.memRegions.size());
                }
            }
        }
    }
}

TEST_P(SynthesizedProgram, DataflowTemporariesNotLiveAcrossBlocks)
{
    // The workload ABI the renaming pass relies on: temporaries r0..r6
    // are always written before read within a block.
    profile_.numFunctions = std::min(profile_.numFunctions, 120u);
    profile_.dispatchTargets =
        std::min(profile_.dispatchTargets, 24u);
    const auto prog = synthesize(profile_);
    for (const auto &fn : prog.funcs) {
        for (const auto &block : fn.blocks) {
            std::uint16_t written = 0;
            for (const auto &si : block.insts) {
                for (const auto src : {si.arch.src1, si.arch.src2}) {
                    if (src != isa::NoReg && src <= 6) {
                        EXPECT_TRUE(written & (1u << src))
                            << fn.name << " reads r" << int(src)
                            << " before any def (uid " << si.uid << ")";
                    }
                }
                if (si.arch.dst != isa::NoReg && si.arch.dst <= 6)
                    written |= static_cast<std::uint16_t>(
                        1u << si.arch.dst);
            }
        }
    }
}

TEST_P(SynthesizedProgram, Deterministic)
{
    profile_.numFunctions = std::min(profile_.numFunctions, 80u);
    profile_.dispatchTargets =
        std::min(profile_.dispatchTargets, 16u);
    const auto p1 = synthesize(profile_);
    const auto p2 = synthesize(profile_);
    ASSERT_EQ(p1.instCount(), p2.instCount());
    ASSERT_EQ(p1.textBytes(), p2.textBytes());
}

INSTANTIATE_TEST_SUITE_P(Apps, SynthesizedProgram,
                         ::testing::Values("Acrobat", "Browser", "Music",
                                           "Youtube", "mcf", "gcc",
                                           "lbm", "namd"));

TEST(SuiteCharacter, MobileCodeBaseLargerThanSpec)
{
    // Mobile apps carry a larger code base; the i-cache pressure gap
    // is even larger dynamically because the mobile walk is flat while
    // SPEC loops (covered by the Fig. 3 bench).
    const auto mobile = synthesize(findApp("Facebook"));
    const auto spec = synthesize(findApp("hmmer"));
    EXPECT_GT(mobile.textBytes(), spec.textBytes());
}

TEST(SuiteCharacter, FloatSuiteHasFpMix)
{
    const auto prog = synthesize(findApp("namd"));
    std::size_t fp = 0, total = 0;
    for (const auto &fn : prog.funcs) {
        for (const auto &block : fn.blocks) {
            for (const auto &si : block.insts) {
                ++total;
                const auto op = si.arch.op;
                if (op == isa::OpClass::FloatAdd ||
                    op == isa::OpClass::FloatMul ||
                    op == isa::OpClass::FloatDiv) {
                    ++fp;
                }
            }
        }
    }
    EXPECT_GT(static_cast<double>(fp) / static_cast<double>(total),
              0.08);
}
