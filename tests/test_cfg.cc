/**
 * @file
 * Whole-program CFG analysis (src/verify/cfg.*): construction edge
 * cases (single-block functions, fallthrough into function end,
 * branch-pair switch tails, unreachable blocks), liveness and
 * reaching-definitions fixed points, and seeded mutations proving
 * every verify.cfg.* differential diagnostic fires with its exact
 * location.
 */

#include <gtest/gtest.h>

#include "compiler/passes.hh"
#include "helpers.hh"
#include "verify/cfg.hh"
#include "verify/verify.hh"
#include "workload/profile.hh"
#include "workload/synth.hh"

using namespace critics;
using critics::test::inst;
using critics::test::makeProgram;
using program::BasicBlock;
using program::FlowKind;
using program::Program;
using program::StaticInst;
using isa::OpClass;

namespace
{

StaticInst
terminator(program::InstUid uid, OpClass op, FlowKind flow,
           std::uint32_t target = 0, float bias = 0.5f)
{
    StaticInst si = inst(uid, op, isa::NoReg, 8);
    si.flow = flow;
    si.targetBlock = target;
    si.takenBias = bias;
    return si;
}

/** b0 defines r8, branches over b1 half the time; b1 and b2 consume
 *  r8 across the block boundary; b2 returns. */
Program
diamondProgram()
{
    BasicBlock b0;
    b0.insts.push_back(inst(0, OpClass::IntAlu, 8));
    b0.insts.push_back(inst(1, OpClass::IntAlu, 0, 8));
    b0.insts.push_back(
        terminator(3, OpClass::Branch, FlowKind::CondBranch, 2));
    BasicBlock b1;
    b1.insts.push_back(inst(4, OpClass::IntAlu, 9, 8));
    BasicBlock b2;
    b2.insts.push_back(inst(5, OpClass::IntAlu, 10, 8));
    b2.insts.push_back(
        terminator(6, OpClass::Return, FlowKind::Ret));
    return makeProgram({b0, b1, b2});
}

constexpr verify::RegMask
mask(std::initializer_list<unsigned> regs)
{
    verify::RegMask m = 0;
    for (const unsigned r : regs)
        m |= static_cast<verify::RegMask>(1u << r);
    return m;
}

/** Differential findings after mutating `post` against its own
 *  pre-mutation snapshot. */
verify::Report
diffReport(const Program &pre, const Program &post)
{
    verify::GlobalSnapshot snap;
    snap.capture(pre);
    verify::Report report;
    verify::verifyGlobal(snap, post, report);
    return report;
}

} // namespace

// ---------------------------------------------------------------------------
// Construction edge cases.

TEST(CfgBuild, SingleBlockFunction)
{
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 0));
    const Program prog = makeProgram({bb});
    const verify::Cfg cfg(prog);
    const verify::CfgBlock &node = cfg.fn(0).blocks[0];
    EXPECT_TRUE(node.succs.empty());
    EXPECT_TRUE(node.preds.empty());
    EXPECT_TRUE(node.exits);
    EXPECT_TRUE(node.reachable);
}

TEST(CfgBuild, FallthroughIntoFunctionEnd)
{
    BasicBlock b0;
    b0.insts.push_back(inst(0, OpClass::IntAlu, 0));
    BasicBlock b1;
    b1.insts.push_back(inst(1, OpClass::IntAlu, 1));
    const Program prog = makeProgram({b0, b1});
    const verify::Cfg cfg(prog);
    EXPECT_EQ(cfg.fn(0).blocks[0].succs,
              (std::vector<std::uint32_t>{1}));
    EXPECT_FALSE(cfg.fn(0).blocks[0].exits);
    // The last block has no terminator: the implicit return leaves
    // the function, so no in-function successor.
    EXPECT_TRUE(cfg.fn(0).blocks[1].succs.empty());
    EXPECT_TRUE(cfg.fn(0).blocks[1].exits);
    EXPECT_EQ(cfg.fn(0).blocks[1].preds,
              (std::vector<std::uint32_t>{0}));
}

TEST(CfgBuild, SwitchBranchTailIsFallthrough)
{
    // A branch-pair format switch at the block tail: Branch op but
    // FallThrough flow (it transfers no control).
    BasicBlock b0;
    b0.insts.push_back(inst(0, OpClass::IntAlu, 0));
    StaticInst sw = inst(1, OpClass::Branch, isa::NoReg);
    sw.flow = FlowKind::FallThrough;
    b0.insts.push_back(sw);
    BasicBlock b1;
    b1.insts.push_back(inst(2, OpClass::IntAlu, 1));
    const Program prog = makeProgram({b0, b1});
    const verify::Cfg cfg(prog);
    EXPECT_EQ(cfg.fn(0).blocks[0].succs,
              (std::vector<std::uint32_t>{1}));
    EXPECT_TRUE(cfg.fn(0).blocks[1].reachable);
}

TEST(CfgBuild, CallSuccessorIsNextBlockNotCallee)
{
    BasicBlock b0;
    StaticInst call = inst(0, OpClass::Call, isa::NoReg);
    call.flow = FlowKind::CallFn;
    call.targetFunc = 0; // self-call; irrelevant to in-function edges
    b0.insts.push_back(call);
    BasicBlock b1;
    b1.insts.push_back(inst(1, OpClass::IntAlu, 0));
    const Program prog = makeProgram({b0, b1});
    const verify::Cfg cfg(prog);
    EXPECT_EQ(cfg.fn(0).blocks[0].succs,
              (std::vector<std::uint32_t>{1}));
}

TEST(CfgBuild, UnreachableBlockWarnsWithLocation)
{
    BasicBlock b0;
    b0.insts.push_back(
        terminator(0, OpClass::Branch, FlowKind::Jump, 2));
    BasicBlock b1;
    b1.insts.push_back(inst(1, OpClass::IntAlu, 0));
    BasicBlock b2;
    b2.insts.push_back(
        terminator(2, OpClass::Return, FlowKind::Ret));
    const Program prog = makeProgram({b0, b1, b2});

    const verify::Cfg cfg(prog);
    EXPECT_FALSE(cfg.fn(0).blocks[1].reachable);
    EXPECT_TRUE(cfg.fn(0).blocks[2].reachable);

    verify::Report report;
    verify::verifyCfg(prog, report);
    ASSERT_EQ(report.countOf("verify.cfg.unreachable-block"), 1u);
    const auto &diag = report.diags().front();
    EXPECT_EQ(diag.severity, verify::Severity::Warning);
    EXPECT_TRUE(diag.located);
    EXPECT_EQ(diag.func, 0u);
    EXPECT_EQ(diag.block, 1u);
}

TEST(CfgBuild, SynthesizedProgramsHaveNoUnreachableBlocks)
{
    auto profile = workload::findApp("Acrobat");
    profile.numFunctions = 60;
    profile.dispatchTargets = 16;
    const Program prog = workload::synthesize(profile);
    verify::Report report;
    verify::verifyCfg(prog, report);
    EXPECT_EQ(report.countOf("verify.cfg.unreachable-block"), 0u);
}

// ---------------------------------------------------------------------------
// Fixed-point analyses.

TEST(CfgAnalysis, LivenessAcrossBlocks)
{
    const Program prog = diamondProgram();
    const verify::Cfg cfg(prog);
    const auto &blocks = cfg.fn(0).blocks;
    // r8 is defined before any use in b0 and consumed by b1 and b2.
    EXPECT_EQ(blocks[0].liveIn, mask({}));
    EXPECT_EQ(blocks[0].liveOut, mask({8}));
    EXPECT_EQ(blocks[1].liveIn, mask({8}));
    EXPECT_EQ(blocks[1].liveOut, mask({8}));
    EXPECT_EQ(blocks[2].liveIn, mask({8}));
    // b2 exits the function: nothing is live out.
    EXPECT_EQ(blocks[2].liveOut, mask({}));
}

TEST(CfgAnalysis, ReachingDefsAcrossBlocks)
{
    const Program prog = diamondProgram();
    const verify::Cfg cfg(prog);
    const auto &blocks = cfg.fn(0).blocks;
    // The entry sees the caller's pseudo-def for every register.
    EXPECT_EQ(blocks[0].reachIn[8],
              (std::vector<program::InstUid>{program::NoUid}));
    // b0's def of r8 (uid 0) reaches both successors; b1 defines r9
    // (uid 4), so b2 sees it only along the fallthrough path.
    EXPECT_EQ(blocks[1].reachIn[8],
              (std::vector<program::InstUid>{0}));
    EXPECT_EQ(blocks[2].reachIn[8],
              (std::vector<program::InstUid>{0}));
    EXPECT_EQ(blocks[2].reachIn[9],
              (std::vector<program::InstUid>{4, program::NoUid}));
}

// ---------------------------------------------------------------------------
// Seeded mutations: each differential diagnostic fires, located.

TEST(CfgDiff, CleanCopyHasNoFindings)
{
    const Program prog = diamondProgram();
    const auto report = diffReport(prog, prog);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.errors(), 0u);
}

TEST(CfgDiff, EdgeChangedFires)
{
    const Program pre = diamondProgram();
    Program post = pre;
    post.funcs[0].blocks[0].insts.back().targetBlock = 1;
    const auto report = diffReport(pre, post);
    ASSERT_EQ(report.countOf("verify.cfg.edge-changed"), 1u);
    const auto &diag = report.diags().front();
    EXPECT_TRUE(diag.located);
    EXPECT_EQ(diag.func, 0u);
    EXPECT_EQ(diag.block, 0u);
    EXPECT_EQ(diag.index, 2u); // the terminator
}

TEST(CfgDiff, LivenessChangedFires)
{
    const Program pre = diamondProgram();
    Program post = pre;
    // b1's consumer now reads r9 instead of r8: b1's live-in and its
    // predecessor's live-out both change.
    post.funcs[0].blocks[1].insts[0].arch.src1 = 9;
    const auto report = diffReport(pre, post);
    EXPECT_GE(report.countOf("verify.cfg.livein-changed"), 1u);
    EXPECT_GE(report.countOf("verify.cfg.liveout-changed"), 1u);
    bool atB1 = false;
    for (const auto &diag : report.diags()) {
        if (diag.code == "verify.cfg.livein-changed" &&
            diag.func == 0 && diag.block == 1 && diag.index == 0) {
            atB1 = true;
        }
    }
    EXPECT_TRUE(atB1);
}

TEST(CfgDiff, RawBrokenFires)
{
    const Program pre = diamondProgram();
    Program post = pre;
    // A new trailing def of r8 in b0 shadows uid 0 at the block exit:
    // every mask stays identical (r8 was already in b0's def set), but
    // the cross-block RAW edges feeding b1/b2 now come from uid 99.
    auto &b0 = post.funcs[0].blocks[0].insts;
    b0.insert(b0.end() - 1, inst(99, OpClass::IntAlu, 8));
    post.layout();
    const auto report = diffReport(pre, post);
    // Three external r8 consumers: uid 4 (b1) plus uid 5 and the Ret's
    // source (b2).
    ASSERT_EQ(report.countOf("verify.cfg.raw-broken"), 3u);
    EXPECT_EQ(report.countOf("verify.cfg.livein-changed"), 0u);
    EXPECT_EQ(report.countOf("verify.cfg.liveout-changed"), 0u);
    EXPECT_EQ(report.countOf("verify.cfg.edge-changed"), 0u);
    for (const auto &diag : report.diags()) {
        EXPECT_TRUE(diag.located);
        EXPECT_TRUE((diag.block == 1 && diag.index == 0) ||
                    (diag.block == 2 && diag.index <= 1))
            << diag.render();
    }
}

TEST(CfgDiff, ChainLinkBrokenFires)
{
    const Program pre = diamondProgram();
    Program post = pre;
    auto &b0 = post.funcs[0].blocks[0].insts;
    b0.insert(b0.end() - 1, inst(99, OpClass::IntAlu, 8));
    post.layout();

    verify::GlobalSnapshot snap;
    snap.capture(pre);
    verify::Report report;
    // A transformed chain whose member uid 4 reads r8 across blocks.
    verify::verifyChainLinks(snap, post, {{4}}, report);
    ASSERT_EQ(report.countOf("verify.cfg.chain-link-broken"), 1u);
    const auto &diag = report.diags().front();
    EXPECT_TRUE(diag.located);
    EXPECT_EQ(diag.func, 0u);
    EXPECT_EQ(diag.block, 1u);
    EXPECT_EQ(diag.index, 0u);
}

TEST(CfgDiff, PassVerifierGlobalBracketCatchesMutation)
{
    Program prog = diamondProgram();
    verify::PassAudit audit; // defaults to Level::Global
    verify::PassVerifier bracket("test-mutation", prog, &audit);
    auto &b0 = prog.funcs[0].blocks[0].insts;
    b0.insert(b0.end() - 1, inst(99, OpClass::IntAlu, 8));
    prog.layout();
    bracket.finish(prog);
    EXPECT_TRUE(audit.report.has("verify.cfg.raw-broken"));
}

TEST(CfgDiff, RealPassesPreserveGlobalInvariants)
{
    auto profile = workload::findApp("Acrobat");
    profile.numFunctions = 60;
    profile.dispatchTargets = 16;
    Program prog = workload::synthesize(profile);
    verify::GlobalSnapshot snap;
    snap.capture(prog);
    compiler::applyOpp16Pass(prog);
    verify::Report report;
    verify::verifyGlobal(snap, prog, report);
    EXPECT_TRUE(report.clean()) << report.render();
}
