/**
 * @file
 * The serve subsystem without a terminal in the loop: wire-format
 * round-trips and rejection of malformed input, LineReader framing
 * under adversarial byte arrival, the worker supervisor's bounded
 * restart state machine (driven by /bin/sh stand-in workers, no
 * simulator needed), and an end-to-end daemon exercise over a real
 * TCP socket — cold submit streamed to completion, warm resubmit
 * answered entirely from the store, event-log replay after a client
 * disconnect, and a protocol-initiated shutdown drain.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "runner/json.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/supervisor.hh"
#include "support/logging.hh"

using namespace critics;
using namespace critics::serve;

namespace
{

class TempPath
{
  public:
    explicit TempPath(const std::string &stem)
    {
        static std::atomic<int> counter{0};
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "-" + std::to_string(::getpid()) + "-" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
    }

    ~TempPath()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/** Field accessors for one-line JSON replies. */
std::optional<json::JsonValue>
parsedReply(const std::optional<std::string> &line)
{
    if (!line)
        return std::nullopt;
    auto doc = json::parseJson(*line);
    if (!doc || !doc->isObject())
        return std::nullopt;
    return doc;
}

bool
boolField(const json::JsonValue &doc, const char *key)
{
    const auto *f = doc.find(key);
    return f && f->asBool().value_or(false);
}

std::uint64_t
uintField(const json::JsonValue &doc, const char *key)
{
    const auto *f = doc.find(key);
    return f ? f->asUint().value_or(0) : 0;
}

std::string
stringField(const json::JsonValue &doc, const char *key)
{
    const auto *f = doc.find(key);
    return f ? f->asString().value_or("") : "";
}

} // namespace

// ---------------------------------------------------------------------------
// Wire format

TEST(ServeProtocol, RequestRoundTripsEveryOp)
{
    Request submit;
    submit.op = Request::Op::Submit;
    submit.submit.batch = "nightly";
    submit.submit.apps = "Acrobat,Office";
    submit.submit.variants = "baseline,critic";
    submit.submit.insts = 123456;
    submit.submit.refresh = true;
    submit.submit.sleepMs = 250;

    std::string error;
    const auto back = parseRequest(renderRequest(submit), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->op, Request::Op::Submit);
    EXPECT_EQ(back->submit.batch, "nightly");
    EXPECT_EQ(back->submit.apps, "Acrobat,Office");
    EXPECT_EQ(back->submit.variants, "baseline,critic");
    EXPECT_EQ(back->submit.insts, 123456u);
    EXPECT_TRUE(back->submit.refresh);
    EXPECT_EQ(back->submit.sleepMs, 250u);

    for (const auto op : {Request::Op::Status, Request::Op::Wait}) {
        Request request;
        request.op = op;
        request.job = "serve-7";
        const auto parsed = parseRequest(renderRequest(request));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->op, op);
        EXPECT_EQ(parsed->job, "serve-7");
    }
    for (const auto op : {Request::Op::Ping, Request::Op::Stats,
                          Request::Op::Shutdown}) {
        Request request;
        request.op = op;
        const auto parsed = parseRequest(renderRequest(request));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->op, op);
    }
}

TEST(ServeProtocol, SubmitDefaultsSurviveMinimalRequest)
{
    const auto parsed = parseRequest("{\"op\":\"submit\"}");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->submit.batch, "serve");
    EXPECT_EQ(parsed->submit.apps, "mobile");
    EXPECT_EQ(parsed->submit.variants, "all");
    EXPECT_EQ(parsed->submit.insts, 400000u);
    EXPECT_FALSE(parsed->submit.refresh);
    EXPECT_EQ(parsed->submit.sleepMs, 0u);
}

TEST(ServeProtocol, MalformedRequestsAreRejectedWithAReason)
{
    const char *bad[] = {
        "not json at all",
        "[1,2,3]",                          // not an object
        "{}",                               // no op
        "{\"op\":\"frobnicate\"}",          // unknown op
        "{\"op\":\"status\"}",              // status without a job
        "{\"op\":\"wait\",\"job\":\"\"}",   // empty job id
        "{\"op\":\"submit\",\"insts\":0}",  // zero budget
        "{\"op\":\"submit\",\"batch\":\"\"}",
        "{\"op\":\"submit\",\"refresh\":\"yes\"}", // wrong type
    };
    for (const char *line : bad) {
        std::string error;
        EXPECT_FALSE(parseRequest(line, &error).has_value()) << line;
        EXPECT_FALSE(error.empty()) << line;
    }
}

TEST(ServeProtocol, JobEventRoundTripsWithAndWithoutError)
{
    JobEvent ok;
    ok.hash = "abcd1234";
    ok.app = "Acrobat";
    ok.variant = "critic";
    ok.ok = true;
    ok.fromCache = true;
    auto back = parseJobEvent(renderJobEvent(ok));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->hash, "abcd1234");
    EXPECT_EQ(back->app, "Acrobat");
    EXPECT_EQ(back->variant, "critic");
    EXPECT_TRUE(back->ok);
    EXPECT_TRUE(back->fromCache);
    EXPECT_TRUE(back->error.empty());

    JobEvent failed = ok;
    failed.ok = false;
    failed.fromCache = false;
    failed.error = "simulator said \"no\"";
    back = parseJobEvent(renderJobEvent(failed));
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->ok);
    EXPECT_EQ(back->error, "simulator said \"no\"");
}

TEST(ServeProtocol, ShardDoneRoundTripsAndKindsDoNotCross)
{
    ShardDone done;
    done.failed = 3;
    done.total = 17;
    const std::string doneLine = renderShardDone(done);
    const auto back = parseShardDone(doneLine);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->failed, 3u);
    EXPECT_EQ(back->total, 17u);

    JobEvent event;
    event.hash = "beef";
    const std::string eventLine = renderJobEvent(event);
    // A parser only accepts its own event kind.
    EXPECT_FALSE(parseJobEvent(doneLine).has_value());
    EXPECT_FALSE(parseShardDone(eventLine).has_value());
    // And a job event without its identity is useless.
    EXPECT_FALSE(parseJobEvent("{\"event\":\"job\"}").has_value());
    EXPECT_FALSE(parseJobEvent("{\"event\":\"job\",\"hash\":\"\"}")
                     .has_value());
}

// ---------------------------------------------------------------------------
// Line framing

TEST(ServeLineReader, ReassemblesLinesFedByteByByte)
{
    LineReader reader;
    const std::string stream = "first\nsecond\r\ntail";
    std::vector<std::string> lines;
    for (const char c : stream) {
        reader.feed(&c, 1);
        while (const auto line = reader.nextLine())
            lines.push_back(*line);
    }
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "first");
    EXPECT_EQ(lines[1], "second"); // \r stripped
    // The unterminated tail stays buffered until its newline arrives.
    EXPECT_FALSE(reader.nextLine().has_value());
    reader.feed("\n", 1);
    const auto tail = reader.nextLine();
    ASSERT_TRUE(tail.has_value());
    EXPECT_EQ(*tail, "tail");
}

TEST(ServeLineReader, DrainsMultipleLinesFromOneFeed)
{
    LineReader reader;
    const std::string chunk = "a\n\nbb\nccc";
    reader.feed(chunk.data(), chunk.size());
    EXPECT_EQ(reader.nextLine().value_or("?"), "a");
    EXPECT_EQ(reader.nextLine().value_or("?"), ""); // empty line kept
    EXPECT_EQ(reader.nextLine().value_or("?"), "bb");
    EXPECT_FALSE(reader.nextLine().has_value());
}

// ---------------------------------------------------------------------------
// Worker supervision

namespace
{

/** Collects supervisor callbacks under a lock (they arrive from the
 *  supervisor's poll loop while the test thread owns run()). */
struct SupervisorLog
{
    std::mutex lock;
    std::vector<std::string> lines;
    std::vector<pid_t> spawns;
    unsigned crashes = 0;

    SupervisorOptions
    options(unsigned maxRestarts)
    {
        SupervisorOptions o;
        o.maxRestarts = maxRestarts;
        o.onLine = [this](std::size_t, const std::string &line) {
            std::lock_guard<std::mutex> guard(lock);
            lines.push_back(line);
        };
        o.onSpawn = [this](std::size_t, pid_t pid) {
            std::lock_guard<std::mutex> guard(lock);
            spawns.push_back(pid);
        };
        o.onCrash = [this](std::size_t, int, bool) {
            std::lock_guard<std::mutex> guard(lock);
            ++crashes;
        };
        return o;
    }
};

std::vector<std::string>
shellWorker(const std::string &script)
{
    return {"/bin/sh", "-c", script};
}

} // namespace

TEST(ServeSupervisor, CrashingWorkerIsRestartedOnceAndFinishes)
{
    TempPath dir("critics-serve-sup");
    std::filesystem::create_directories(dir.str());
    const std::string marker = dir.str() + "/attempted";
    // First life: print a truncated line (no newline) and die by
    // "crash".  Second life: see the marker and finish cleanly.
    const std::string script =
        "if [ -e " + marker + " ]; then echo done-line; exit 0; "
        "else touch " + marker + "; printf half-a-line; exit 7; fi";

    SupervisorLog log;
    WorkerSupervisor supervisor(log.options(/*maxRestarts=*/2));
    const auto result = supervisor.run({shellWorker(script)});

    EXPECT_TRUE(result.allOk);
    EXPECT_EQ(result.restarts, 1u);
    ASSERT_EQ(result.workerOk.size(), 1u);
    EXPECT_TRUE(result.workerOk[0]);
    EXPECT_EQ(log.crashes, 1u);
    EXPECT_EQ(log.spawns.size(), 2u);
    // The pre-crash truncated tail was dropped, not glued onto the
    // respawned worker's output.
    ASSERT_EQ(log.lines.size(), 1u);
    EXPECT_EQ(log.lines[0], "done-line");
}

TEST(ServeSupervisor, ExhaustedRestartBudgetDegradesNotWedges)
{
    SupervisorLog log;
    WorkerSupervisor supervisor(log.options(/*maxRestarts=*/1));
    // Slot 0 can never succeed; slot 1 exits clean immediately.  The
    // pool must still drain and report per-slot verdicts.
    const auto result = supervisor.run({
        shellWorker("exit 3"),
        shellWorker("echo healthy; exit 0"),
    });

    EXPECT_FALSE(result.allOk);
    EXPECT_EQ(result.restarts, 1u); // the whole budget, no more
    ASSERT_EQ(result.workerOk.size(), 2u);
    EXPECT_FALSE(result.workerOk[0]);
    EXPECT_TRUE(result.workerOk[1]);
    EXPECT_EQ(log.crashes, 2u); // first life + the one respawn
    ASSERT_EQ(log.lines.size(), 1u);
    EXPECT_EQ(log.lines[0], "healthy");
}

TEST(ServeSupervisor, SignalDeathCountsAsACrash)
{
    SupervisorLog log;
    WorkerSupervisor supervisor(log.options(/*maxRestarts=*/0));
    const auto result =
        supervisor.run({shellWorker("kill -9 $$")});
    EXPECT_FALSE(result.allOk);
    EXPECT_EQ(result.restarts, 0u);
    EXPECT_EQ(log.crashes, 1u);
}

// ---------------------------------------------------------------------------
// Daemon end to end (in-process execution, real TCP)

TEST(ServeServer, ColdSubmitWarmResubmitReplayAndShutdown)
{
    setQuiet(true);
    TempPath dir("critics-serve-e2e");
    std::filesystem::create_directories(dir.str());

    ServerOptions options;
    options.workers = 0; // execute in-process: no child binary needed
    options.cachePath = dir.str() + "/results.jsonl";
    options.portFile = dir.str() + "/port";
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_GT(server.port(), 0);
    {
        std::ifstream in(options.portFile);
        unsigned published = 0;
        in >> published;
        EXPECT_EQ(published, server.port());
    }

    ServeClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;

    // Liveness.
    ASSERT_TRUE(client.sendLine("{\"op\":\"ping\"}"));
    auto reply = parsedReply(client.readLine(5000));
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(boolField(*reply, "ok"));

    // Cold submit: a 1-app × 2-variant grid, nothing in the store yet.
    Request submit;
    submit.op = Request::Op::Submit;
    submit.submit.batch = "e2e";
    submit.submit.apps = "Acrobat";
    submit.submit.variants = "baseline,critic";
    submit.submit.insts = 20000;
    ASSERT_TRUE(client.sendLine(renderRequest(submit)));
    reply = parsedReply(client.readLine(30000));
    ASSERT_TRUE(reply.has_value());
    ASSERT_TRUE(boolField(*reply, "ok")) << stringField(*reply, "error");
    const std::string coldJob = stringField(*reply, "job");
    EXPECT_FALSE(coldJob.empty());
    EXPECT_EQ(uintField(*reply, "total"), 2u);
    EXPECT_EQ(uintField(*reply, "warm"), 0u);
    EXPECT_EQ(uintField(*reply, "cold"), 2u);

    // Stream it to completion: two live job events, then the done
    // marker with the final tallies.
    auto streamToDone = [&](ServeClient &c, const std::string &jobId,
                            unsigned *jobEvents,
                            unsigned *cacheEvents) -> json::JsonValue {
        Request wait;
        wait.op = Request::Op::Wait;
        wait.job = jobId;
        EXPECT_TRUE(c.sendLine(renderRequest(wait)));
        *jobEvents = 0;
        *cacheEvents = 0;
        for (;;) {
            const auto line = c.readLine(120000);
            if (!line) {
                ADD_FAILURE() << "stream ended before done marker";
                return json::JsonValue();
            }
            if (const auto event = parseJobEvent(*line)) {
                EXPECT_TRUE(event->ok) << event->error;
                ++*jobEvents;
                *cacheEvents += event->fromCache ? 1 : 0;
                continue;
            }
            const auto doc = parsedReply(line);
            if (doc && stringField(*doc, "event") == "done")
                return *doc;
        }
    };

    unsigned jobEvents = 0, cacheEvents = 0;
    auto done = streamToDone(client, coldJob, &jobEvents, &cacheEvents);
    EXPECT_EQ(jobEvents, 2u);
    EXPECT_EQ(cacheEvents, 0u);
    EXPECT_EQ(stringField(done, "state"), "done");
    EXPECT_EQ(uintField(done, "simulated"), 2u);
    EXPECT_EQ(uintField(done, "failed"), 0u);
    EXPECT_EQ(server.simulated(), 2u);
    EXPECT_EQ(server.warmHits(), 0u);

    // Warm resubmit of the identical grid: answered straight from the
    // store at submit time — zero cold jobs, zero new simulations.
    ASSERT_TRUE(client.sendLine(renderRequest(submit)));
    reply = parsedReply(client.readLine(30000));
    ASSERT_TRUE(reply.has_value());
    ASSERT_TRUE(boolField(*reply, "ok"));
    const std::string warmJob = stringField(*reply, "job");
    EXPECT_NE(warmJob, coldJob);
    EXPECT_EQ(uintField(*reply, "warm"), 2u);
    EXPECT_EQ(uintField(*reply, "cold"), 0u);
    done = streamToDone(client, warmJob, &jobEvents, &cacheEvents);
    EXPECT_EQ(jobEvents, 2u);
    EXPECT_EQ(cacheEvents, 2u); // every event marked from-cache
    EXPECT_EQ(uintField(done, "simulated"), 0u);
    EXPECT_EQ(server.warmHits(), 2u);
    EXPECT_EQ(server.simulated(), 2u); // unchanged
    EXPECT_EQ(server.failedJobs(), 0u);

    // Unknown job ids are an error reply, not a hang.
    ASSERT_TRUE(
        client.sendLine("{\"op\":\"status\",\"job\":\"serve-999\"}"));
    reply = parsedReply(client.readLine(5000));
    ASSERT_TRUE(reply.has_value());
    EXPECT_FALSE(boolField(*reply, "ok"));

    // A disconnect loses nothing: a brand-new connection replays the
    // cold batch's full event log from its status record.
    client.close();
    ServeClient late;
    ASSERT_TRUE(late.connect("127.0.0.1", server.port(), &error))
        << error;
    Request status;
    status.op = Request::Op::Status;
    status.job = coldJob;
    ASSERT_TRUE(late.sendLine(renderRequest(status)));
    reply = parsedReply(late.readLine(5000));
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(boolField(*reply, "ok"));
    EXPECT_EQ(stringField(*reply, "state"), "done");
    EXPECT_EQ(uintField(*reply, "events"), 2u);
    EXPECT_EQ(uintField(*reply, "total"), 2u);

    // Protocol-initiated shutdown: the daemon acknowledges, drains and
    // wait() returns.
    ASSERT_TRUE(late.sendLine("{\"op\":\"shutdown\"}"));
    reply = parsedReply(late.readLine(5000));
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(boolField(*reply, "ok"));
    server.wait();
}

TEST(ServeServer, SubmitWithUnknownVocabularyFailsFast)
{
    setQuiet(true);
    TempPath dir("critics-serve-vocab");
    std::filesystem::create_directories(dir.str());
    ServerOptions options;
    options.workers = 0;
    options.cachePath = dir.str() + "/results.jsonl";
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServeClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;
    for (const char *line :
         {"{\"op\":\"submit\",\"apps\":\"NoSuchApp\"}",
          "{\"op\":\"submit\",\"variants\":\"warp-drive\"}"}) {
        ASSERT_TRUE(client.sendLine(line));
        const auto reply = parsedReply(client.readLine(5000));
        ASSERT_TRUE(reply.has_value()) << line;
        EXPECT_FALSE(boolField(*reply, "ok")) << line;
        EXPECT_FALSE(stringField(*reply, "error").empty()) << line;
    }
    // Rejection is stateless: the daemon still answers.
    ASSERT_TRUE(client.sendLine("{\"op\":\"ping\"}"));
    const auto reply = parsedReply(client.readLine(5000));
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(boolField(*reply, "ok"));

    server.requestShutdown();
    server.wait();
}
