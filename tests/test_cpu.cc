/**
 * @file
 * Pipeline-model tests: throughput bounds, dependence serialization,
 * functional-unit structural hazards, stall attribution, warmup
 * accounting, branch redirects, format handling and the hardware
 * mechanism hooks.
 */

#include <gtest/gtest.h>

#include "cpu/cpu.hh"
#include "helpers.hh"
#include "support/rng.hh"

using namespace critics;
using namespace critics::test;
using cpu::CpuConfig;
using cpu::CpuStats;

namespace
{

CpuStats
run(const program::Trace &trace, CpuConfig cfg = CpuConfig{},
    mem::MemConfig memCfg = mem::MemConfig{})
{
    bpu::PerfectPredictor bp;
    return cpu::runTrace(trace, cfg, memCfg, bp);
}

} // namespace

TEST(Pipeline, CommitsEverything)
{
    const auto trace = independentAluTrace(5000);
    const auto stats = run(trace);
    EXPECT_EQ(stats.committed, trace.size());
    EXPECT_GT(stats.cycles, 0u);
}

TEST(Pipeline, IpcNeverExceedsCommitWidth)
{
    const auto stats = run(independentAluTrace(20000));
    EXPECT_LE(stats.ipc(), 4.0 + 1e-9);
}

TEST(Pipeline, ArmCodeIsFetchBandwidthLimited)
{
    // 8-byte front end: 32-bit code cannot exceed 2 IPC.
    const auto stats = run(independentAluTrace(20000));
    EXPECT_LE(stats.ipc(), 2.0 + 1e-9);
    EXPECT_GT(stats.ipc(), 1.6);
}

TEST(Pipeline, ThumbCodeDoublesFrontendRate)
{
    program::Trace thumb;
    for (int i = 0; i < 20000; ++i) {
        thumb.insts.push_back(dyn(i % 256, 0x10000 + 2 * (i % 256),
                                  OpClass::IntAlu, program::NoDep,
                                  program::NoDep, 2));
    }
    // Give the back end headroom so only the front end limits.
    CpuConfig cfg;
    cfg.intAluUnits = 6;
    const auto armIpc = run(independentAluTrace(20000), cfg).ipc();
    const auto thumbIpc = run(thumb, cfg).ipc();
    EXPECT_GT(thumbIpc, armIpc * 1.5);
}

TEST(Pipeline, SerialChainRunsAtOneIpc)
{
    const auto stats = run(serialChainTrace(10000));
    EXPECT_NEAR(stats.ipc(), 1.0, 0.1);
}

TEST(Pipeline, DivStallsStructurally)
{
    // Unpipelined divides on the single mul/div unit bound throughput
    // at 1/latency.
    program::Trace divs;
    for (int i = 0; i < 2000; ++i)
        divs.insts.push_back(dyn(i % 64, 0x10000 + 4 * (i % 64),
                                 OpClass::IntDiv));
    const auto stats = run(divs);
    EXPECT_LT(stats.ipc(), 1.0 / (isa::execLatency(OpClass::IntDiv) - 2));
}

TEST(Pipeline, MulsArePipelined)
{
    program::Trace muls;
    for (int i = 0; i < 4000; ++i)
        muls.insts.push_back(dyn(i % 64, 0x10000 + 4 * (i % 64),
                                 OpClass::IntMult));
    // One mul/div unit, pipelined: ~1 per cycle.
    EXPECT_NEAR(run(muls).ipc(), 1.0, 0.1);
}

TEST(Pipeline, LoadsLimitedByMemPorts)
{
    program::Trace loads;
    for (int i = 0; i < 4000; ++i) {
        auto d = dyn(i % 64, 0x10000 + 4 * (i % 64), OpClass::Load);
        d.memAddr = 0x40000000 + 64 * (i % 16); // hot, always L1
        loads.insts.push_back(d);
    }
    // 2 ports but the front end supplies only 2/cycle anyway.
    EXPECT_LE(run(loads).ipc(), 2.0 + 1e-9);
}

TEST(Pipeline, ColdLoadsStallBackend)
{
    program::Trace loads;
    for (int i = 0; i < 3000; ++i) {
        auto d = dyn(static_cast<std::uint32_t>(i),
                     0x10000 + 4 * (i % 64), OpClass::Load);
        d.memAddr = 0x50000000u + 4096u * static_cast<std::uint32_t>(i);
        if (i > 0)
            d.dep0 = i - 1; // dependent chain of misses
        loads.insts.push_back(d);
    }
    const auto stats = run(loads);
    EXPECT_LT(stats.ipc(), 0.1);
}

TEST(Pipeline, MispredictsBlockFetch)
{
    // Unpredictable conditional branches with a real predictor.
    program::Trace trace;
    Rng rng(5);
    for (int i = 0; i < 8000; ++i) {
        auto d = dyn(i % 128, 0x10000 + 4 * (i % 128), OpClass::IntAlu);
        if (i % 8 == 7) {
            d.op = OpClass::Branch;
            d.setCond(true);
            d.setTaken(rng.chance(0.5));
            d.branchTarget = 0x10000 + 4 * ((i + 1) % 128);
        }
        trace.insts.push_back(d);
    }
    CpuConfig cfg;
    mem::MemConfig memCfg;
    bpu::TwoLevelPredictor real;
    const auto realStats = cpu::runTrace(trace, cfg, memCfg, real);
    bpu::PerfectPredictor perfect;
    const auto perfectStats = cpu::runTrace(trace, cfg, memCfg, perfect);
    EXPECT_GT(realStats.mispredicts, 100u);
    EXPECT_GT(realStats.stallForIRedirect, 1000u);
    EXPECT_LT(perfectStats.cycles, realStats.cycles);
    EXPECT_EQ(perfectStats.mispredicts, 0u);
}

TEST(Pipeline, TakenBranchesBreakFetchGroups)
{
    // Tight loop of taken branches: every instruction ends its group.
    program::Trace trace;
    for (int i = 0; i < 4000; ++i) {
        auto d = dyn(0, 0x10000, OpClass::Branch);
        d.setTaken(true);
        d.branchTarget = 0x10000;
        trace.insts.push_back(d);
    }
    const auto stats = run(trace);
    EXPECT_LT(stats.ipc(), 1.1);
}

TEST(Pipeline, IcacheMissesAttributedToStallForI)
{
    // March through far more code than the i-cache holds.
    program::Trace trace;
    for (int i = 0; i < 60000; ++i)
        trace.insts.push_back(dyn(static_cast<std::uint32_t>(i),
                                  0x10000 + 4u * static_cast<std::uint32_t>(i),
                                  OpClass::IntAlu));
    const auto stats = run(trace);
    EXPECT_GT(stats.stallForIIcache, stats.cycles / 20);
    EXPECT_GT(stats.mem.icache.misses, 1000u);
}

TEST(Pipeline, StallRdWhenBackendClogged)
{
    // Serial chain of multiplies: the window fills, the fetch queue
    // backs up, and F.StallForR+D dominates.
    program::Trace trace;
    for (int i = 0; i < 8000; ++i) {
        auto d = dyn(i % 128, 0x10000 + 4 * (i % 128), OpClass::IntMult);
        if (i > 0)
            d.dep0 = i - 1;
        trace.insts.push_back(d);
    }
    const auto stats = run(trace);
    EXPECT_GT(stats.fracStallForRd(), 0.3);
    EXPECT_LT(stats.fracStallForI(), 0.05);
}

TEST(Pipeline, StageBreakdownSumsToResidency)
{
    const auto trace = serialChainTrace(4000);
    const auto stats = run(trace);
    const auto &b = stats.all;
    EXPECT_EQ(b.insts, trace.size());
    EXPECT_GT(b.total(), 0.0);
    // Execute time of a 1-cycle ALU chain is exactly 1 per instruction.
    EXPECT_NEAR(b.execute / static_cast<double>(b.insts), 1.0, 1e-9);
}

TEST(Pipeline, CritMaskSelectsSubset)
{
    const auto trace = independentAluTrace(4000);
    std::vector<std::uint8_t> mask(trace.size(), 0);
    for (std::size_t i = 0; i < mask.size(); i += 10)
        mask[i] = 1;
    CpuConfig cfg;
    mem::MemConfig memCfg;
    bpu::PerfectPredictor bp;
    const auto stats = cpu::runTrace(trace, cfg, memCfg, bp, &mask);
    EXPECT_EQ(stats.crit.insts, trace.size() / 10);
    EXPECT_LT(stats.crit.total(), stats.all.total());
}

TEST(Pipeline, WarmupExcludesColdStart)
{
    // Code footprint bigger than L1 but revisited: warm IPC beats cold.
    program::Trace trace;
    const std::size_t loop = 20000; // 80KB of code
    for (int rep = 0; rep < 4; ++rep)
        for (std::size_t i = 0; i < loop; ++i)
            trace.insts.push_back(dyn(
                static_cast<std::uint32_t>(i),
                static_cast<std::uint32_t>(0x10000 + 4 * i),
                OpClass::IntAlu));
    CpuConfig cold;
    const auto coldStats = run(trace, cold);
    CpuConfig warm;
    warm.warmupCommits = loop;
    const auto warmStats = run(trace, warm);
    EXPECT_EQ(warmStats.committed, trace.size() - loop);
    EXPECT_LT(warmStats.cycles, coldStats.cycles);
    EXPECT_LE(warmStats.mem.icache.misses, coldStats.mem.icache.misses);
}

TEST(Pipeline, CdpRetiresWithoutRobEntry)
{
    program::Trace trace;
    for (int i = 0; i < 3000; ++i) {
        if (i % 6 == 0) {
            auto c = dyn(i % 60, 0x10000 + 2 * (i % 60), OpClass::Cdp,
                         program::NoDep, program::NoDep, 2);
            c.cdpRun = 5;
            trace.insts.push_back(c);
        } else {
            trace.insts.push_back(dyn(i % 60, 0x10000 + 2 * (i % 60),
                                      OpClass::IntAlu, program::NoDep,
                                      program::NoDep, 2));
        }
    }
    const auto stats = run(trace);
    EXPECT_EQ(stats.committed, trace.size());
    EXPECT_GT(stats.decodeCdpBubbles, 0u);
    // CDPs never reach the breakdown (they retire at decode).
    EXPECT_EQ(stats.all.insts, trace.size() - trace.size() / 6);
}

TEST(Pipeline, DoubleFrontendHelpsWideCode)
{
    const auto trace = independentAluTrace(20000);
    CpuConfig base;
    const auto baseStats = run(trace, base);
    CpuConfig wide;
    wide.doubleFrontend();
    wide.intAluUnits = 6;
    const auto wideStats = run(trace, wide);
    EXPECT_LT(wideStats.cycles, baseStats.cycles);
    EXPECT_GT(wideStats.ipc(), 2.5);
}

TEST(Pipeline, CriticalLoadPrefetchHidesMissLatency)
{
    // Loads that miss badly, marked critical; prefetch-at-fetch should
    // cut cycles.
    // Latency-bound (not bandwidth-bound): a miss every 25
    // instructions whose consumer chain gates progress.
    program::Trace trace;
    std::unordered_set<program::InstUid> critSet;
    for (int i = 0; i < 10000; ++i) {
        if (i % 25 == 0) {
            auto d = dyn(7, 0x10000 + 4 * (i % 200), OpClass::Load);
            d.memAddr =
                0x50000000u + 4096u * static_cast<std::uint32_t>(i);
            trace.insts.push_back(d);
        } else {
            auto d = dyn(i % 200, 0x10000 + 4 * (i % 200),
                         OpClass::IntAlu);
            if (i % 25 >= 1 && i % 25 <= 8)
                d.dep0 = i - 1; // dependent chain behind the load
            trace.insts.push_back(d);
        }
    }
    critSet.insert(7);
    CpuConfig cfg;
    mem::MemConfig memCfg;
    bpu::PerfectPredictor bp1, bp2;
    const auto off = cpu::runTrace(trace, cfg, memCfg, bp1);
    cfg.criticalLoadPrefetch = true;
    const auto on =
        cpu::runTrace(trace, cfg, memCfg, bp2, nullptr, &critSet);
    // The direct mechanism: loads complete faster (their execute-stage
    // residency shrinks).  Whole-app cycles are exercised by the
    // Fig. 1a bench at realistic memory utilization.
    EXPECT_LT(on.all.execute, off.all.execute);
    EXPECT_GT(on.mem.dcache.prefetchHits, 20u);
}

TEST(Pipeline, RejectsBadInput)
{
    program::Trace empty;
    CpuConfig cfg;
    mem::MemConfig memCfg;
    bpu::PerfectPredictor bp;
    EXPECT_THROW(cpu::runTrace(empty, cfg, memCfg, bp),
                 std::logic_error);

    const auto trace = independentAluTrace(16);
    std::vector<std::uint8_t> badMask(3, 0);
    EXPECT_THROW(cpu::runTrace(trace, cfg, memCfg, bp, &badMask),
                 std::logic_error);
}

class PipelineWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PipelineWidths, MoreAlusNeverSlower)
{
    program::Trace mixed;
    Rng rng(3);
    for (int i = 0; i < 8000; ++i) {
        auto d = dyn(i % 128, 0x10000 + 4 * (i % 128), OpClass::IntAlu);
        if (i % 3 == 0 && i > 0)
            d.dep0 = i - 1;
        mixed.insts.push_back(d);
    }
    CpuConfig narrow;
    narrow.intAluUnits = 1;
    CpuConfig wide;
    wide.intAluUnits = GetParam();
    EXPECT_LE(run(mixed, wide).cycles, run(mixed, narrow).cycles);
}

INSTANTIATE_TEST_SUITE_P(AluCounts, PipelineWidths,
                         ::testing::Values(2u, 3u, 4u, 6u));
