/**
 * @file
 * Unit tests for the hierarchical stat registry, the interval
 * time-series sampler, the Chrome trace-event writer and the snapshot
 * diff harness behind `critics_cli diff`.
 */

#include <gtest/gtest.h>

#include "stats/diff.hh"
#include "stats/interval.hh"
#include "stats/registry.hh"
#include "stats/trace_event.hh"
#include "support/histogram.hh"
#include "support/json.hh"

#include <cmath>
#include <thread>

using namespace critics;
using namespace critics::stats;

// ---------------------------------------------------------------------------
// StatRegistry

TEST(StatRegistry, RegistersAndLooksUpByDottedName)
{
    std::uint64_t misses = 7;
    double accuracy = 0.5;
    StatRegistry reg;
    reg.addCounter("mem.l1i.misses", misses, "i-cache misses");
    reg.addValue("cpu.efetchAccuracy", accuracy);

    ASSERT_EQ(reg.size(), 2u);
    const StatDef *def = reg.find("mem.l1i.misses");
    ASSERT_NE(def, nullptr);
    EXPECT_EQ(def->kind, StatKind::Counter);
    EXPECT_EQ(def->desc, "i-cache misses");
    EXPECT_DOUBLE_EQ(def->eval(), 7.0);
    EXPECT_EQ(reg.find("mem.l1i"), nullptr);
    EXPECT_EQ(reg.find("nope"), nullptr);

    // Stats are views: the component's field stays the source of truth.
    misses = 11;
    EXPECT_DOUBLE_EQ(def->eval(), 11.0);
}

TEST(StatRegistry, RejectsDuplicateAndPrefixConflicts)
{
    std::uint64_t v = 0;
    StatRegistry reg;
    reg.addCounter("a.b", v);
    EXPECT_THROW(reg.addCounter("a.b", v), std::logic_error);
    // A leaf may not also be a group prefix.
    EXPECT_THROW(reg.addCounter("a.b.c", v), std::logic_error);
    EXPECT_THROW(reg.addCounter("", v), std::logic_error);
}

TEST(StatRegistry, FormulaEvaluatesLazilyAndClampsNonFinite)
{
    std::uint64_t committed = 0, cycles = 0;
    StatRegistry reg;
    reg.addFormula("cpu.ipc", [&] {
        return static_cast<double>(committed) /
               static_cast<double>(cycles);
    });
    // 0/0 would be NaN — eval() clamps so exports stay valid JSON.
    EXPECT_DOUBLE_EQ(reg.find("cpu.ipc")->eval(), 0.0);
    committed = 300;
    cycles = 200;
    EXPECT_DOUBLE_EQ(reg.find("cpu.ipc")->eval(), 1.5);
}

TEST(StatRegistry, SnapshotFlattensVectorsAndDistributions)
{
    std::uint64_t fetch = 4;
    double execute = 2.5;
    Histogram hist;
    hist.add(2);
    hist.add(4);

    StatRegistry reg;
    reg.addVector("cpu.stage",
                  {{"fetch", &fetch, nullptr},
                   {"execute", nullptr, &execute}});
    reg.addDistribution("cpu.fanout", hist);

    const auto snap = reg.snapshot();
    auto value = [&](const std::string &name) {
        for (const auto &[n, v] : snap) {
            if (n == name)
                return v;
        }
        ADD_FAILURE() << "missing " << name;
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(value("cpu.stage.fetch"), 4.0);
    EXPECT_DOUBLE_EQ(value("cpu.stage.execute"), 2.5);
    EXPECT_DOUBLE_EQ(value("cpu.fanout.count"), 2.0);
    EXPECT_DOUBLE_EQ(value("cpu.fanout.mean"), 3.0);
}

TEST(StatRegistry, ToJsonNestsGroupsAndParses)
{
    std::uint64_t hits = 3, misses = 1;
    StatRegistry reg;
    reg.addCounter("runner.cache.hits", hits);
    reg.addCounter("runner.cache.misses", misses);
    reg.addFormula("runner.cache.hitRate", [&] {
        return static_cast<double>(hits) /
               static_cast<double>(hits + misses);
    });

    const std::string out = reg.toJson();
    const auto doc = json::parseJson(out);
    ASSERT_TRUE(doc.has_value()) << out;
    const auto *runner = doc->find("runner");
    ASSERT_NE(runner, nullptr);
    const auto *cache = runner->find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->find("hits")->asUint().value_or(0), 3u);
    EXPECT_NEAR(cache->find("hitRate")->asDouble().value_or(0), 0.75,
                1e-12);
}

// ---------------------------------------------------------------------------
// IntervalSeries

TEST(IntervalSeries, SamplesCumulativeRowsMonotonically)
{
    std::uint64_t committed = 0, stalls = 0;
    StatRegistry reg;
    reg.addCounter("cpu.committed", committed);
    reg.addCounter("cpu.stalls", stalls);

    IntervalSeries series;
    for (std::uint64_t i = 1; i <= 4; ++i) {
        committed = i * 1000;
        stalls = i * 10;
        series.sample(reg, committed);
    }

    ASSERT_EQ(series.size(), 4u);
    ASSERT_EQ(series.names().size(), 2u);
    const auto col = series.column("cpu.stalls");
    ASSERT_EQ(col.size(), 4u);
    for (std::size_t i = 1; i < col.size(); ++i) {
        EXPECT_LT(series.rows()[i - 1].index, series.rows()[i].index);
        EXPECT_LE(col[i - 1], col[i]) << "cumulative rows must grow";
    }
    EXPECT_DOUBLE_EQ(series.at(series.rows().back(), "cpu.stalls"),
                     40.0);
}

TEST(IntervalSeries, RepeatedIndexOverwritesRow)
{
    std::uint64_t v = 1;
    StatRegistry reg;
    reg.addCounter("v", v);

    IntervalSeries series;
    series.sample(reg, 100);
    v = 2;
    series.sample(reg, 100); // forced row at the same position
    ASSERT_EQ(series.size(), 1u);
    EXPECT_DOUBLE_EQ(series.rows()[0].values[0], 2.0);
}

TEST(IntervalSeries, JsonlRowsParseIndividually)
{
    std::uint64_t a = 5;
    double b = 0.25;
    StatRegistry reg;
    reg.addCounter("grp.a", a);
    reg.addValue("grp.b", b);

    IntervalSeries series;
    series.sample(reg, 1000);
    a = 9;
    series.sample(reg, 2000);

    const std::string jsonl = series.toJsonl("app/baseline");
    std::size_t rows = 0, start = 0;
    while (start < jsonl.size()) {
        const std::size_t end = jsonl.find('\n', start);
        ASSERT_NE(end, std::string::npos);
        const auto doc = json::parseJson(jsonl.substr(start, end - start));
        ASSERT_TRUE(doc.has_value());
        EXPECT_EQ(doc->find("label")->asString().value_or(""),
                  "app/baseline");
        ASSERT_NE(doc->find("grp.a"), nullptr);
        ASSERT_NE(doc->find("committed"), nullptr);
        ++rows;
        start = end + 1;
    }
    EXPECT_EQ(rows, 2u);
}

// ---------------------------------------------------------------------------
// TraceEventWriter

TEST(TraceEvent, EmitsWellFormedChromeTraceJson)
{
    TraceEventWriter trace;
    trace.setProcessName(0, "cpu pipeline");
    trace.setThreadName(0, 1, "fetch");
    trace.complete("ldr", "IntAlu", 100, 5, 0, 1);
    trace.complete("add", "IntAlu", 105, 2, 0, 1, "dyn", 42.0);
    trace.instant("warmup done", "phase", 200, 0, 1);
    trace.counter("ipc", 210, "ipc", 1.5);

    const std::string out = trace.toJson();
    const auto doc = json::parseJson(out);
    ASSERT_TRUE(doc.has_value()) << out;
    const auto *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_EQ(events->elements.size(), 6u);
    EXPECT_EQ(trace.size(), 6u);

    bool sawComplete = false, sawInstant = false, sawMeta = false;
    for (const auto &event : events->elements) {
        const std::string phase =
            event.find("ph")->asString().value_or("");
        ASSERT_NE(event.find("name"), nullptr);
        if (phase == "X") {
            sawComplete = true;
            EXPECT_NE(event.find("dur"), nullptr);
        } else if (phase == "i") {
            sawInstant = true;
        } else if (phase == "M") {
            sawMeta = true;
        }
    }
    EXPECT_TRUE(sawComplete);
    EXPECT_TRUE(sawInstant);
    EXPECT_TRUE(sawMeta);
}

TEST(TraceEvent, CapsEventsAndCountsDropped)
{
    TraceEventWriter trace(4);
    for (int i = 0; i < 10; ++i)
        trace.complete("e", "cat", i, 1, 0, 0);
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.dropped(), 6u);
    // Metadata bypasses the cap so the viewer still gets names.
    trace.setProcessName(0, "p");
    EXPECT_EQ(trace.size(), 5u);
    EXPECT_TRUE(json::parseJson(trace.toJson()).has_value());
}

TEST(TraceEvent, AssignsDenseThreadIds)
{
    TraceEventWriter trace;
    const std::uint32_t self = trace.tidForCurrentThread();
    EXPECT_EQ(trace.tidForCurrentThread(), self);
    std::uint32_t other = self;
    std::thread([&] { other = trace.tidForCurrentThread(); }).join();
    EXPECT_NE(other, self);
}

// ---------------------------------------------------------------------------
// Snapshot diff (the critics_cli regression harness)

namespace
{

Snapshot
baseSnapshot()
{
    return {{"cpu.cycles", 100000.0},
            {"cpu.ipc", 1.5},
            {"mem.l1i.misses", 400.0}};
}

} // namespace

TEST(SnapshotDiff, IdenticalRunsReportNoRegressions)
{
    const auto diff = diffSnapshots(baseSnapshot(), baseSnapshot());
    EXPECT_FALSE(diff.hasRegressions());
    EXPECT_EQ(diff.regressions(), 0u);
    EXPECT_EQ(diff.deltas.size(), 3u);
}

TEST(SnapshotDiff, FlagsInjectedRegressionByName)
{
    auto after = baseSnapshot();
    after[0].second = 103000.0; // +3% cycles: beyond the 1% noise band
    const auto diff = diffSnapshots(baseSnapshot(), after);
    ASSERT_TRUE(diff.hasRegressions());
    ASSERT_EQ(diff.regressions(), 1u);
    const auto worst = diff.worst(1);
    ASSERT_EQ(worst.size(), 1u);
    EXPECT_EQ(worst[0].name, "cpu.cycles");
    EXPECT_NEAR(worst[0].relDelta, 3000.0 / 103000.0, 1e-12);
}

TEST(SnapshotDiff, PassesUnderNoiseThreshold)
{
    auto after = baseSnapshot();
    after[0].second *= 1.005;  // +0.5% — inside the 1% noise band
    after[1].second *= 0.997;  // improvements are also just noise
    const auto diff = diffSnapshots(baseSnapshot(), after);
    EXPECT_FALSE(diff.hasRegressions());
}

TEST(SnapshotDiff, DirectionAgnosticBeyondThreshold)
{
    auto after = baseSnapshot();
    after[1].second = 1.8; // +20% "improvement" still drifts
    const auto diff = diffSnapshots(baseSnapshot(), after);
    EXPECT_EQ(diff.regressions(), 1u);
    EXPECT_EQ(diff.worst(1)[0].name, "cpu.ipc");
}

TEST(SnapshotDiff, AbsoluteFloorIgnoresRoundingDust)
{
    Snapshot before{{"x", 0.0}};
    Snapshot after{{"x", 1e-12}}; // rel delta 1.0, abs delta tiny
    EXPECT_FALSE(diffSnapshots(before, after).hasRegressions());
}

TEST(SnapshotDiff, SchemaMismatchIsARegression)
{
    auto after = baseSnapshot();
    after.emplace_back("cpu.newStat", 1.0);
    auto before = baseSnapshot();
    before.emplace_back("cpu.oldStat", 2.0);
    const auto diff = diffSnapshots(before, after);
    EXPECT_EQ(diff.regressions(), 0u);
    EXPECT_TRUE(diff.hasRegressions());
    ASSERT_EQ(diff.onlyBefore.size(), 1u);
    EXPECT_EQ(diff.onlyBefore[0], "cpu.oldStat");
    ASSERT_EQ(diff.onlyAfter.size(), 1u);
    EXPECT_EQ(diff.onlyAfter[0], "cpu.newStat");
}

TEST(SnapshotDiff, NonFiniteValuesAlwaysRegress)
{
    Snapshot before{{"x", 1.0}};
    Snapshot after{{"x", std::nan("")}};
    EXPECT_TRUE(diffSnapshots(before, after).hasRegressions());
}

TEST(SnapshotDiff, CustomThresholdWidensNoiseBand)
{
    auto after = baseSnapshot();
    after[0].second = 103000.0; // +3%
    DiffOptions opt;
    opt.relThreshold = 0.05;
    EXPECT_FALSE(
        diffSnapshots(baseSnapshot(), after, opt).hasRegressions());
}
