/**
 * @file
 * Memory-system tests: cache hit/miss/LRU behaviour, in-flight fills,
 * DRAM row timing, the hierarchy's latency composition, the CLPT
 * stride prefetcher and the EFetch call-target predictor.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/prefetch.hh"

using namespace critics::mem;

// ---- Cache ----------------------------------------------------------------

TEST(Cache, MissThenHit)
{
    Cache cache({"c", 1024, 2, 64, 2});
    EXPECT_FALSE(cache.access(0x100, 10).hit);
    cache.fill(0x100, 20);
    const auto hit = cache.access(0x100, 30);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.readyAt, 32u); // now + hitLatency
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, InFlightFillDelaysHit)
{
    Cache cache({"c", 1024, 2, 64, 2});
    cache.fill(0x200, 100); // arrives at cycle 100
    const auto early = cache.access(0x200, 50);
    EXPECT_TRUE(early.hit);
    EXPECT_EQ(early.readyAt, 102u); // waits for the fill
}

TEST(Cache, SameLineSharesTag)
{
    Cache cache({"c", 1024, 2, 64, 2});
    cache.fill(0x1000, 0);
    EXPECT_TRUE(cache.access(0x103F, 1).hit); // last byte of the line
    EXPECT_FALSE(cache.access(0x1040, 1).hit); // next line
}

TEST(Cache, LruEvictsOldest)
{
    // 2 ways, 64B lines, 2 sets -> set stride 128.
    Cache cache({"c", 256, 2, 64, 1});
    cache.fill(0x0000, 0);
    cache.fill(0x0100, 0); // same set (bit 7 toggles set? -> 0x80 sets)
    cache.fill(0x0200, 0);
    // 3 fills into a 2-way set: the first must be gone.
    EXPECT_FALSE(cache.contains(0x0000));
    EXPECT_TRUE(cache.contains(0x0100));
    EXPECT_TRUE(cache.contains(0x0200));
}

TEST(Cache, LruRespectsRecency)
{
    Cache cache({"c", 256, 2, 64, 1});
    cache.fill(0x0000, 0);
    cache.fill(0x0100, 0);
    (void)cache.access(0x0000, 5); // touch A
    cache.fill(0x0200, 6);         // evicts B (LRU)
    EXPECT_TRUE(cache.contains(0x0000));
    EXPECT_FALSE(cache.contains(0x0100));
}

TEST(Cache, PrefetchAccounting)
{
    Cache cache({"c", 1024, 2, 64, 2});
    cache.fill(0x300, 10, true);
    EXPECT_EQ(cache.stats().prefetchFills, 1u);
    (void)cache.access(0x300, 20);
    EXPECT_EQ(cache.stats().prefetchHits, 1u);
    (void)cache.access(0x300, 21);
    EXPECT_EQ(cache.stats().prefetchHits, 1u); // only first hit counts
}

TEST(Cache, RacingRefillKeepsEarlierReady)
{
    Cache cache({"c", 1024, 2, 64, 2});
    cache.fill(0x400, 100);
    cache.fill(0x400, 50);
    EXPECT_EQ(cache.access(0x400, 0).readyAt, 52u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({"c", 1000, 2, 64, 1}), std::logic_error);
    EXPECT_THROW(Cache({"c", 1024, 2, 60, 1}), std::logic_error);
}

// ---- DRAM -----------------------------------------------------------------

TEST(Dram, RowHitFasterThanConflict)
{
    DramConfig cfg;
    Dram dram(cfg);
    const unsigned first = dram.read(0x0, 1000); // row activate
    const unsigned hit = dram.read(0x40, 2000);  // same row
    const unsigned conflict =
        dram.read(0x40 + cfg.rowBytes * 16, 3000); // same bank, new row
    EXPECT_LT(hit, first);
    EXPECT_GT(conflict, hit);
    EXPECT_EQ(dram.stats().rowHits, 1u);
    EXPECT_EQ(dram.stats().rowConflicts, 1u);
    EXPECT_EQ(dram.stats().reads, 3u);
}

TEST(Dram, BankBusySerializes)
{
    Dram dram;
    const unsigned lone = dram.read(0x0, 1000);
    // Back-to-back same-bank requests at the same cycle must queue.
    const unsigned q1 = dram.read(0x40, 5000);
    const unsigned q2 = dram.read(0x80, 5000);
    EXPECT_GE(q2, q1);
    (void)lone;
}

TEST(Dram, StatsAverage)
{
    Dram dram;
    dram.read(0x0, 0);
    dram.read(0x40, 1000);
    EXPECT_GT(dram.stats().avgLatency(), 0.0);
}

// ---- Hierarchy -------------------------------------------------------------

TEST(Hierarchy, LatencyTiers)
{
    MemConfig cfg;
    cfg.l2StridePrefetch = false;
    MemorySystem mem(cfg);

    const auto cold = mem.load(0x50000000, 1000);
    EXPECT_EQ(cold.servedBy, ServedBy::Dram);
    const auto l1 = mem.load(0x50000000, 5000);
    EXPECT_EQ(l1.servedBy, ServedBy::L1);
    EXPECT_EQ(l1.latency, cfg.dcache.hitLatency);
    EXPECT_GT(cold.latency, 50u);

    // A different address in L2 only: fill L1 with conflicting lines.
    const auto cold2 = mem.load(0x50001000, 10000);
    (void)cold2;
    // Evict 0x50000000 from L1 by filling its set, then re-access: L2.
    for (int w = 1; w <= 2; ++w)
        (void)mem.load(0x50000000u + w * cfg.dcache.sizeBytes /
                           cfg.dcache.assoc * cfg.dcache.assoc,
                       20000 + w);
    const auto l2 = mem.load(0x50000000, 30000);
    EXPECT_EQ(l2.servedBy, ServedBy::L2);
    EXPECT_GT(l2.latency, cfg.dcache.hitLatency);
    EXPECT_LT(l2.latency, cold.latency);
}

TEST(Hierarchy, InstAndDataPathsSeparate)
{
    MemConfig cfg;
    MemorySystem mem(cfg);
    (void)mem.fetchInst(0x10000, 100);
    const auto stats = mem.stats();
    EXPECT_EQ(stats.icache.accesses, 1u);
    EXPECT_EQ(stats.dcache.accesses, 0u);
    (void)mem.load(0x50000000, 200);
    EXPECT_EQ(mem.stats().dcache.accesses, 1u);
}

TEST(Hierarchy, StorePopulatesDcache)
{
    MemorySystem mem;
    mem.store(0x50000100, 100);
    const auto hit = mem.load(0x50000100, 5000);
    EXPECT_EQ(hit.servedBy, ServedBy::L1);
    EXPECT_EQ(mem.stats().storeAccesses, 1u);
}

TEST(Hierarchy, DataPrefetchHidesLatency)
{
    MemConfig cfg;
    cfg.l2StridePrefetch = false;
    MemorySystem mem(cfg);
    mem.prefetchData(0x51000000, 1000);
    const auto later = mem.load(0x51000000, 2000);
    EXPECT_EQ(later.servedBy, ServedBy::L1);
    EXPECT_EQ(later.latency, cfg.dcache.hitLatency);
}

TEST(Hierarchy, PrefetchMshrsBounded)
{
    MemConfig cfg;
    cfg.l2StridePrefetch = false;
    MemorySystem mem(cfg);
    // Burst far more prefetches than MSHRs at the same cycle.
    for (int i = 0; i < 32; ++i)
        mem.prefetchData(0x52000000u + 4096u * i, 100);
    const auto stats = mem.stats();
    EXPECT_LE(stats.dcache.prefetchFills, 8u);
}

TEST(Hierarchy, InstPrefetchFillsIcache)
{
    MemorySystem mem;
    mem.prefetchInst(0x20000, 100);
    const auto hit = mem.fetchInst(0x20000, 5000);
    EXPECT_EQ(hit.servedBy, ServedBy::L1);
}

// ---- Prefetchers ------------------------------------------------------------

class StrideDetection : public ::testing::TestWithParam<int>
{
};

TEST_P(StrideDetection, DetectsConstantStride)
{
    const int stride = GetParam();
    StridePrefetcher pf(1024, 64, 2);
    std::vector<Addr> out;
    // Start mid-region: the table is keyed by 4KB region, so the test
    // streams must stay inside one region.
    Addr addr = (1u << 20) + 2048;
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(addr, out);
        addr = static_cast<Addr>(static_cast<std::int64_t>(addr) + stride);
    }
    // Confidence reached: the last observation must emit prefetches
    // ahead in the stride direction.
    ASSERT_FALSE(out.empty());
    const auto last =
        static_cast<std::int64_t>(addr) - stride; // last observed
    const auto expect0 = (last + stride) & ~63ll;
    EXPECT_EQ(static_cast<std::int64_t>(out[0]), expect0);
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideDetection,
                         ::testing::Values(8, 64, 128, -64));

TEST(StridePrefetcher, NoiseResetsConfidence)
{
    StridePrefetcher pf(1024, 64, 2);
    std::vector<Addr> out;
    Addr base = 1u << 20;
    // Random jumps within the same 4KB region: never confident.
    const Addr addrs[] = {base, base + 512, base + 64, base + 3000,
                          base + 128, base + 2048, base + 700, base + 90};
    for (const Addr a : addrs) {
        out.clear();
        pf.observe(a, out);
    }
    EXPECT_TRUE(out.empty());
}

TEST(EFetch, LearnsRepeatingCallSequence)
{
    EFetchPredictor pf(4096);
    // A fixed cycle of call sites/targets.
    const Addr sites[] = {0x100, 0x200, 0x300};
    const Addr targets[] = {0x1000, 0x2000, 0x3000};
    for (int round = 0; round < 50; ++round)
        for (int k = 0; k < 3; ++k)
            (void)pf.predictAndTrain(sites[k], targets[k]);
    // After training, predictions are correct.
    int correct = 0;
    for (int round = 0; round < 10; ++round) {
        for (int k = 0; k < 3; ++k) {
            if (pf.predictAndTrain(sites[k], targets[k]) == targets[k])
                ++correct;
        }
    }
    EXPECT_EQ(correct, 30);
    EXPECT_GT(pf.accuracy(), 0.8);
}
