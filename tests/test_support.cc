/**
 * @file
 * Unit tests for histograms, summaries, CDFs, logging and the table
 * renderer.
 */

#include <gtest/gtest.h>

#include "support/histogram.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/table.hh"

#include <atomic>
#include <cstdlib>

using namespace critics;

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.total(), 10.0);
}

TEST(Summary, MergeEqualsCombined)
{
    Summary a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = i * 0.37 - 3.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_NEAR(a.min(), all.min(), 1e-12);
    EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(Summary, MergeWithEmpty)
{
    Summary a, empty;
    a.add(5.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Histogram, FractionsAndPercentiles)
{
    Histogram h;
    h.add(1, 1.0);
    h.add(2, 2.0);
    h.add(10, 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(2), 0.75);
    EXPECT_DOUBLE_EQ(h.mean(), (1 + 4 + 10) / 4.0);
    EXPECT_EQ(h.minBucket(), 1);
    EXPECT_EQ(h.maxBucket(), 10);
    EXPECT_EQ(h.percentile(0.5), 2);
    EXPECT_EQ(h.percentile(0.99), 10);
}

TEST(Histogram, MergeAdds)
{
    Histogram a, b;
    a.add(1);
    b.add(1);
    b.add(5, 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.at(1), 2.0);
    EXPECT_DOUBLE_EQ(a.at(5), 3.0);
    EXPECT_DOUBLE_EQ(a.total(), 5.0);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, FormatClampsOverflow)
{
    Histogram h;
    h.add(1);
    h.add(100);
    const std::string text = h.format(64);
    EXPECT_NE(text.find("64+:"), std::string::npos);
}

TEST(Cdf, MonotoneAndNormalized)
{
    std::vector<std::pair<double, double>> values;
    for (int i = 100; i > 0; --i)
        values.push_back({static_cast<double>(i), 1.0});
    const auto cdf = buildCdf(values, 16);
    ASSERT_FALSE(cdf.empty());
    EXPECT_LE(cdf.size(), 16u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].x, cdf[i - 1].x);
        EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
    }
    EXPECT_NEAR(cdf.back().fraction, 1.0, 1e-12);
}

TEST(Cdf, CollapsesDuplicates)
{
    const auto cdf = buildCdf({{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}});
    ASSERT_EQ(cdf.size(), 2u);
    EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(critics_panic("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(critics_fatal("bad config"), std::runtime_error);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(critics_assert(1 + 1 == 2, "fine"));
    EXPECT_THROW(critics_assert(false, "nope"), std::logic_error);
}

TEST(Table, RendersAllCells)
{
    Table t({"app", "speedup"});
    t.addRow({"Acrobat", "15%"});
    t.addRow({"Music", "9%"});
    const std::string text = t.render();
    for (const char *needle : {"app", "speedup", "Acrobat", "15%",
                               "Music", "9%"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongWidth)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Formatting, Helpers)
{
    EXPECT_EQ(fmt(12.3456, 2), "12.35");
    EXPECT_EQ(pct(0.1265, 2), "12.65%");
    EXPECT_EQ(gainPct(1.1265, 2), "12.65%");
    EXPECT_EQ(gainPct(0.95, 1), "-5.0%");
}

TEST(Parallel, VisitsEveryIndexOnce)
{
    std::vector<std::atomic<int>> counts(257);
    parallelFor(counts.size(), [&](std::size_t i) { ++counts[i]; });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, PropagatesException)
{
    EXPECT_THROW(
        parallelFor(64, [](std::size_t i) {
            if (i == 13)
                throw std::runtime_error("boom");
        }),
        std::runtime_error);
}

TEST(Parallel, ZeroIterations)
{
    EXPECT_NO_THROW(parallelFor(0, [](std::size_t) { FAIL(); }));
}

// ---------------------------------------------------------------------------
// The shared JSON escape helper (sim/report and runner/json both rely
// on it for every string they serialize).

TEST(JsonEscape, QuotesAndBackslashes)
{
    EXPECT_EQ(critics::json::jsonEscape("say \"hi\""),
              "say \\\"hi\\\"");
    EXPECT_EQ(critics::json::jsonEscape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, ControlCharacters)
{
    EXPECT_EQ(critics::json::jsonEscape("a\nb\tc\rd"),
              "a\\nb\\tc\\rd");
    // Other C0 controls become \u00XX.
    EXPECT_EQ(critics::json::jsonEscape(std::string("\x01\x1f", 2)),
              "\\u0001\\u001f");
    EXPECT_EQ(critics::json::jsonEscape(std::string("\0", 1)),
              "\\u0000");
}

TEST(JsonEscape, NonAsciiPassesThrough)
{
    // UTF-8 multi-byte sequences are legal in JSON strings unescaped.
    const std::string utf8 = "caf\xc3\xa9 \xe2\x82\xac";
    EXPECT_EQ(critics::json::jsonEscape(utf8), utf8);
}

TEST(JsonEscape, RoundTripsThroughParser)
{
    const std::string nasty = "line1\nline2\t\"quoted\" \\ end";
    const auto doc = critics::json::parseJson(
        "{\"key\":\"" + critics::json::jsonEscape(nasty) + "\"}");
    ASSERT_TRUE(doc.has_value());
    const auto *value = doc->find("key");
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->asString().value_or(""), nasty);
}

TEST(Logging, QuietFlagToggles)
{
    const bool before = critics::quiet();
    critics::setQuiet(true);
    EXPECT_TRUE(critics::quiet());
    critics::setQuiet(false);
    EXPECT_FALSE(critics::quiet());
    critics::setQuiet(before);
}

TEST(Logging, DebugGatedByEnvironment)
{
    // The test binary runs without CRITICS_DEBUG, so no component is
    // enabled (a debug build of the harness may set it; then "all" or
    // the named component would flip these to true, which is fine —
    // only assert the unset case when it really is unset).
    if (::getenv("CRITICS_DEBUG") == nullptr) {
        EXPECT_FALSE(critics::debugEnabled("cpu"));
        EXPECT_FALSE(critics::debugEnabled("no-such-component"));
    }
}
