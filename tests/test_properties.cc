/**
 * @file
 * Property-style sweeps across the ISA and the simulator configuration
 * space: exhaustive encode/decode round-trips, and monotonicity /
 * conservation invariants of the pipeline under many configurations.
 */

#include <gtest/gtest.h>

#include "cpu/cpu.hh"
#include "helpers.hh"
#include "isa/isa.hh"
#include "support/rng.hh"

using namespace critics;
using namespace critics::test;

// ---- Exhaustive encoding round-trips ----------------------------------------

TEST(EncodingSweep, AllArm32ShapesRoundTrip)
{
    // Every op class x dst x src1 x src2 presence/extreme combination.
    std::size_t checked = 0;
    for (unsigned op = 0; op < isa::NumOpClasses; ++op) {
        if (static_cast<isa::OpClass>(op) == isa::OpClass::Cdp)
            continue; // encoded via encodeCdp
        for (const std::uint8_t dst : {isa::NoReg, std::uint8_t(0),
                                       std::uint8_t(7),
                                       std::uint8_t(15)}) {
            for (const std::uint8_t s1 : {isa::NoReg, std::uint8_t(0),
                                          std::uint8_t(15)}) {
                for (const std::uint8_t s2 :
                     {isa::NoReg, std::uint8_t(3), std::uint8_t(14)}) {
                    for (const bool pred : {false, true}) {
                        isa::OperandInfo info;
                        info.op = static_cast<isa::OpClass>(op);
                        info.dst = dst;
                        info.src1 = s1;
                        info.src2 = s2;
                        info.predicated = pred;
                        info.imm = static_cast<std::uint8_t>(
                            checked & 0xFF);
                        const auto d =
                            isa::decodeArm32(isa::encodeArm32(info));
                        ASSERT_EQ(d.op, info.op);
                        ASSERT_EQ(d.dst, info.dst);
                        ASSERT_EQ(d.src1, info.src1);
                        ASSERT_EQ(d.src2, info.src2);
                        ASSERT_EQ(d.predicated, info.predicated);
                        ASSERT_EQ(d.imm, info.imm);
                        ++checked;
                    }
                }
            }
        }
    }
    EXPECT_GT(checked, 500u);
}

TEST(EncodingSweep, AllConvertibleThumbShapesRoundTrip)
{
    std::size_t checked = 0;
    for (unsigned op = 0; op < isa::NumOpClasses; ++op) {
        const auto cls = static_cast<isa::OpClass>(op);
        if (cls == isa::OpClass::Cdp || !isa::hasThumbEncoding(cls))
            continue;
        for (std::uint8_t dst = 0; dst <= isa::ThumbMaxDstReg; ++dst) {
            for (std::uint8_t s1 = 0; s1 <= isa::ThumbMaxSrcReg;
                 s1 += 3) {
                for (const std::uint8_t s2 :
                     {isa::NoReg, std::uint8_t(0), std::uint8_t(7)}) {
                    isa::OperandInfo info;
                    info.op = cls;
                    info.dst = dst;
                    info.src1 = s1;
                    info.src2 = s2;
                    ASSERT_TRUE(isa::thumbConvertible(info));
                    const auto d =
                        isa::decodeThumb16(isa::encodeThumb16(info));
                    ASSERT_EQ(d.op, info.op);
                    ASSERT_EQ(d.dst, info.dst);
                    ASSERT_EQ(d.src1, info.src1);
                    ASSERT_EQ(d.src2, info.src2);
                    ++checked;
                }
            }
        }
    }
    EXPECT_GT(checked, 300u);
}

TEST(EncodingSweep, DirectConvertibleImpliesConvertible)
{
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        isa::OperandInfo info;
        info.op = static_cast<isa::OpClass>(
            rng.below(isa::NumOpClasses));
        info.dst = static_cast<std::uint8_t>(rng.below(17));
        if (info.dst == 16)
            info.dst = isa::NoReg;
        info.src1 = static_cast<std::uint8_t>(rng.below(17));
        if (info.src1 == 16)
            info.src1 = isa::NoReg;
        info.src2 = static_cast<std::uint8_t>(rng.below(17));
        if (info.src2 == 16)
            info.src2 = isa::NoReg;
        info.predicated = rng.chance(0.3);
        info.imm = static_cast<std::uint8_t>(rng.below(256));
        if (isa::thumbDirectlyConvertible(info))
            EXPECT_TRUE(isa::thumbConvertible(info));
    }
}

// ---- Pipeline configuration sweeps ------------------------------------------

namespace
{

struct ConfigPoint
{
    unsigned rob;
    unsigned fetchQ;
    unsigned issue;
};

} // namespace

class PipelineConfigSweep
    : public ::testing::TestWithParam<ConfigPoint>
{
};

TEST_P(PipelineConfigSweep, ConservationAndBounds)
{
    const auto point = GetParam();
    cpu::CpuConfig cfg;
    cfg.robSize = point.rob;
    cfg.fetchQueueSize = point.fetchQ;
    cfg.issueWidth = point.issue;

    program::Trace trace;
    Rng rng(13);
    for (int i = 0; i < 12000; ++i) {
        auto d = dyn(i % 200, 0x10000 + 4 * (i % 200), OpClass::IntAlu);
        if (rng.chance(0.3) && i > 0)
            d.dep0 = i - 1;
        if (rng.chance(0.1)) {
            d.op = OpClass::Load;
            d.memAddr = 0x40000000 + 64 * (i % 64);
        }
        trace.insts.push_back(d);
    }
    bpu::PerfectPredictor bp;
    const auto stats =
        cpu::runTrace(trace, cfg, mem::MemConfig{}, bp);

    // Conservation: everything commits exactly once.
    EXPECT_EQ(stats.committed, trace.size());
    EXPECT_EQ(stats.all.insts, trace.size());
    // Bounds: IPC can never exceed the narrowest width.
    EXPECT_LE(stats.ipc(),
              std::min<double>(point.issue, 4.0) + 1e-9);
    // Stall cycles can never exceed total cycles.
    EXPECT_LE(stats.stallForIIcache + stats.stallForIRedirect +
                  stats.stallForRd,
              stats.cycles);
    // Stage residencies are non-negative.
    EXPECT_GE(stats.all.fetch, 0.0);
    EXPECT_GE(stats.all.issueWait, 0.0);
    EXPECT_GE(stats.all.commitWait, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineConfigSweep,
    ::testing::Values(ConfigPoint{32, 8, 2}, ConfigPoint{64, 16, 4},
                      ConfigPoint{128, 32, 4}, ConfigPoint{128, 32, 8},
                      ConfigPoint{256, 64, 4}, ConfigPoint{16, 4, 1}));

TEST(PipelineMonotonicity, BiggerRobNeverSlower)
{
    const auto trace = serialChainTrace(8000);
    std::uint64_t prev = ~0ull;
    for (const unsigned rob : {16u, 32u, 64u, 128u}) {
        cpu::CpuConfig cfg;
        cfg.robSize = rob;
        bpu::PerfectPredictor bp;
        const auto stats =
            cpu::runTrace(trace, cfg, mem::MemConfig{}, bp);
        EXPECT_LE(stats.cycles, prev) << "rob " << rob;
        prev = stats.cycles;
    }
}

TEST(PipelineMonotonicity, LowerMissLatencyNeverSlower)
{
    program::Trace trace;
    for (int i = 0; i < 6000; ++i) {
        auto d = dyn(i % 100, 0x10000 + 4 * (i % 100), OpClass::Load);
        d.memAddr = 0x50000000u + 4096u * static_cast<std::uint32_t>(i);
        trace.insts.push_back(d);
    }
    mem::MemConfig slow;
    mem::MemConfig fast;
    fast.dram.tCl = fast.dram.tRcd = fast.dram.tRp = 8;
    fast.l2.hitLatency = 4;
    cpu::CpuConfig cfg;
    bpu::PerfectPredictor b1, b2;
    const auto slowStats = cpu::runTrace(trace, cfg, slow, b1);
    const auto fastStats = cpu::runTrace(trace, cfg, fast, b2);
    EXPECT_LE(fastStats.cycles, slowStats.cycles);
}
