/**
 * @file
 * The sharded runner and the cache lifecycle: deterministic shard
 * partitioning, multi-process append safety (fork N writers, no torn
 * lines), merge/compact/gc semantics including truncated-tail,
 * old-schema and collision/orphan records, sharded-vs-unsharded
 * bit-identity, and the double-SIGINT emergency manifest flush.
 */

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "runner/cache_admin.hh"
#include "runner/json.hh"
#include "runner/manifest.hh"
#include "runner/orchestrator.hh"
#include "runner/result_store.hh"
#include "runner/shard.hh"
#include "runner/sigint.hh"
#include "support/logging.hh"

using namespace critics;
using namespace critics::runner;

namespace
{

class TempPath
{
  public:
    explicit TempPath(const std::string &stem)
    {
        static std::atomic<int> counter{0};
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "-" + std::to_string(::getpid()) + "-" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
    }

    ~TempPath()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

JobSpec
tinySpec(std::uint64_t seed = 0,
         sim::Transform transform = sim::Transform::None)
{
    JobSpec spec;
    spec.profile = workload::findApp("Acrobat");
    spec.profile.seed += seed;
    spec.options.traceInsts = 20000;
    spec.variant.label = "test";
    spec.variant.transform = transform;
    return spec;
}

sim::RunResult
sampleResult(double salt = 0.0)
{
    sim::RunResult r;
    r.cpu.cycles = 123456789ULL + static_cast<std::uint64_t>(salt);
    r.cpu.committed = 400000;
    r.cpu.all.fetch = 0.1 + 0.2 + salt;
    r.cpu.all.issueWait = 3.14159265358979;
    r.energy.cpuCore = 0.12345678901234567;
    r.selectionCoverage = 1.0 / 7.0;
    r.dynThumbFraction = 1e-17;
    return r;
}

/** A store line exactly as ResultStore::insert writes it, with the
 *  hash and timestamp overridable to fabricate rot. */
std::string
makeLine(const JobSpec &spec, const sim::RunResult &result,
         std::uint64_t writtenUnix, const std::string &hashOverride = "",
         int schema = kResultSchemaVersion)
{
    JsonWriter w;
    w.beginObject()
        .field("schema", schema)
        .field("hash",
               hashOverride.empty() ? spec.hashHex() : hashOverride)
        .field("app", spec.profile.name)
        .field("variant", spec.variant.label)
        .field("writtenUnix", writtenUnix)
        .field("spec", spec.specString());
    return w.str() + ",\"result\":" + resultToJson(result) + "}\n";
}

std::size_t
wellFormedLineCount(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    std::size_t count = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto doc = parseJson(line);
        if (!doc || !doc->isObject())
            return static_cast<std::size_t>(-1); // torn line
        ++count;
    }
    return count;
}

} // namespace

// ---------------------------------------------------------------------------
// Shard partitioning

TEST(Shard, ParseAcceptsKOverN)
{
    const auto ok = ShardSpec::parse("2/4");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->index, 2u);
    EXPECT_EQ(ok->count, 4u);
    EXPECT_EQ(ok->str(), "2/4");
    EXPECT_TRUE(ok->enabled());

    EXPECT_FALSE(ShardSpec::parse("0/4").has_value());
    EXPECT_FALSE(ShardSpec::parse("5/4").has_value());
    EXPECT_FALSE(ShardSpec::parse("1/0").has_value());
    EXPECT_FALSE(ShardSpec::parse("1").has_value());
    EXPECT_FALSE(ShardSpec::parse("a/b").has_value());
    EXPECT_FALSE(ShardSpec::parse("1/2x").has_value());
    EXPECT_FALSE(ShardSpec{}.enabled());
}

TEST(Shard, PartitionIsDisjointAndCovering)
{
    std::vector<JobSpec> jobs;
    for (std::uint64_t s = 0; s < 12; ++s) {
        jobs.push_back(tinySpec(s));
        jobs.push_back(tinySpec(s, sim::Transform::CritIc));
    }
    const unsigned N = 3;
    std::set<std::size_t> seen;
    for (unsigned k = 1; k <= N; ++k) {
        for (const std::size_t i : shardIndices(jobs, ShardSpec{k, N})) {
            EXPECT_TRUE(seen.insert(i).second)
                << "job " << i << " owned by two shards";
        }
    }
    EXPECT_EQ(seen.size(), jobs.size());
    // Deterministic: a re-partition is identical.
    EXPECT_EQ(shardIndices(jobs, ShardSpec{2, N}),
              shardIndices(jobs, ShardSpec{2, N}));
    // Disabled shard owns everything.
    EXPECT_EQ(shardIndices(jobs, ShardSpec{}).size(), jobs.size());
}

TEST(Shard, AssignmentIgnoresPresentationLabel)
{
    JobSpec a = tinySpec(7);
    JobSpec b = a;
    b.variant.label = "renamed";
    for (unsigned n = 1; n <= 5; ++n)
        EXPECT_EQ(shardOf(a, n), shardOf(b, n));
}

// ---------------------------------------------------------------------------
// Multi-process append safety

TEST(ResultStoreMultiProcess, ForkedWritersNeverTearLines)
{
    TempPath file("critics-store-mp");
    constexpr int kWriters = 4;
    constexpr int kRecords = 8;

    // A pipe barrier lines all writers up before the first append so
    // the flock actually contends.
    int barrier[2];
    ASSERT_EQ(::pipe(barrier), 0);

    std::vector<pid_t> children;
    for (int w = 0; w < kWriters; ++w) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ::close(barrier[1]);
            char go;
            while (::read(barrier[0], &go, 1) == 0) {
            }
            ::close(barrier[0]);
            {
                ResultStore store(file.str());
                for (int m = 0; m < kRecords; ++m) {
                    store.insert(
                        tinySpec(static_cast<std::uint64_t>(
                            w * 1000 + m)),
                        sampleResult(static_cast<double>(m)));
                }
            }
            ::_exit(0);
        }
        children.push_back(pid);
    }
    ::close(barrier[0]);
    ASSERT_EQ(::write(barrier[1], "gggg", kWriters), kWriters);
    ::close(barrier[1]);
    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // No torn lines, and every record of every writer recovered.
    EXPECT_EQ(wellFormedLineCount(file.str()),
              static_cast<std::size_t>(kWriters * kRecords));
    EXPECT_EQ(readResultRecords(file.str()).size(),
              static_cast<std::size_t>(kWriters * kRecords));
}

// ---------------------------------------------------------------------------
// Rewriter vs. appender: the gc temp+rename race

TEST(ResultStore, AppendSurvivesConcurrentRewrite)
{
    // The deterministic half of the gc-race fix: an open store whose
    // backing file gets replaced under it (gc's temp+rename) must
    // notice the swap on its next insert and append to the new file,
    // not the orphaned old inode.
    TempPath file("critics-store-rewrite");
    ResultStore store(file.str());
    store.insert(tinySpec(1), sampleResult(1.0)); // fd now cached

    const auto stats = gcStore(file.str(), GcOptions{});
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->recordsKept, 1u);

    store.insert(tinySpec(2), sampleResult(2.0));
    const auto records = readResultRecords(file.str());
    EXPECT_EQ(records.size(), 2u); // nothing vanished with the inode
}

TEST(CacheGcRace, ForkedWritersNeverLoseRecordsAcrossGc)
{
    // The probabilistic half: writer processes appending while the
    // parent gc's the store in a loop.  gc holds the writer flock
    // across its fold + temp + rename, and a writer waking up on the
    // replaced inode reopens, so every append must survive.
    TempPath file("critics-store-gc-race");
    constexpr int kWriters = 3;
    constexpr int kRecords = 24;

    int barrier[2];
    ASSERT_EQ(::pipe(barrier), 0);

    std::vector<pid_t> children;
    for (int w = 0; w < kWriters; ++w) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ::close(barrier[1]);
            char go;
            while (::read(barrier[0], &go, 1) == 0) {
            }
            ::close(barrier[0]);
            {
                ResultStore store(file.str());
                for (int m = 0; m < kRecords; ++m) {
                    store.insert(
                        tinySpec(static_cast<std::uint64_t>(
                            w * 1000 + m)),
                        sampleResult(static_cast<double>(m)));
                    ::usleep(500); // stretch the window gc races into
                }
            }
            ::_exit(0);
        }
        children.push_back(pid);
    }
    ::close(barrier[0]);
    ASSERT_EQ(::write(barrier[1], "ggg", kWriters), kWriters);
    ::close(barrier[1]);

    // Rewrite the store as fast as possible while the writers append.
    bool anyChildAlive = true;
    while (anyChildAlive) {
        const auto stats = gcStore(file.str(), GcOptions{});
        ASSERT_TRUE(stats.has_value());
        anyChildAlive = false;
        for (pid_t &pid : children) {
            if (pid == 0)
                continue;
            int status = 0;
            const pid_t done = ::waitpid(pid, &status, WNOHANG);
            if (done == pid) {
                EXPECT_TRUE(WIFEXITED(status) &&
                            WEXITSTATUS(status) == 0);
                pid = 0;
            } else {
                anyChildAlive = true;
            }
        }
    }

    // Every record of every writer survived every rewrite.
    EXPECT_EQ(wellFormedLineCount(file.str()),
              static_cast<std::size_t>(kWriters * kRecords));
    EXPECT_EQ(readResultRecords(file.str()).size(),
              static_cast<std::size_t>(kWriters * kRecords));
}

// ---------------------------------------------------------------------------
// Merge

TEST(CacheMerge, LaterRecordWinsAcrossStores)
{
    TempPath a("critics-merge-a"), b("critics-merge-b"),
        out("critics-merge-out");
    const JobSpec shared = tinySpec(1);
    {
        std::ofstream fa(a.str());
        fa << makeLine(shared, sampleResult(1.0), 100);
        fa << makeLine(tinySpec(2), sampleResult(2.0), 100);
        std::ofstream fb(b.str());
        fb << makeLine(shared, sampleResult(3.0), 200);
    }
    const auto stats = mergeStores(out.str(), {a.str(), b.str()});
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->filesRead, 2u);
    EXPECT_EQ(stats->recordsKept, 2u);
    EXPECT_EQ(stats->superseded, 1u);

    const auto records = readResultRecords(out.str());
    ASSERT_EQ(records.size(), 2u);
    bool found = false;
    for (const auto &record : records) {
        if (record.hash == shared.hashHex()) {
            found = true;
            EXPECT_EQ(resultToJson(record.result),
                      resultToJson(sampleResult(3.0)));
        }
    }
    EXPECT_TRUE(found);
}

TEST(CacheMerge, FiltersOldSchemaAndTruncatedTail)
{
    TempPath a("critics-merge-schema"), out("critics-merge-out2");
    {
        std::ofstream fa(a.str());
        fa << makeLine(tinySpec(1), sampleResult(), 100);
        fa << makeLine(tinySpec(2), sampleResult(), 100, "",
                       kResultSchemaVersion + 1);
        fa << "{\"schema\":1,\"hash\":\"trunc"; // no newline: torn tail
    }
    const auto stats = mergeStores(out.str(), {a.str()});
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->recordsKept, 1u);
    EXPECT_EQ(stats->oldSchema, 1u);
    EXPECT_EQ(stats->malformed, 1u);
    EXPECT_EQ(readResultRecords(out.str()).size(), 1u);
}

TEST(CacheMerge, SkipsMissingInputsAndMergesIntoAnInput)
{
    TempPath a("critics-merge-into");
    {
        std::ofstream fa(a.str());
        fa << makeLine(tinySpec(1), sampleResult(), 100);
    }
    // Missing shard stores (a shard with no jobs) are skipped…
    const auto stats =
        mergeStores(a.str(), {a.str(), a.str() + ".does-not-exist"});
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->filesRead, 1u);
    EXPECT_EQ(stats->recordsKept, 1u);
    // …but zero readable inputs is an error.
    EXPECT_FALSE(
        mergeStores(a.str(), {a.str() + ".also-missing"}).has_value());
}

// ---------------------------------------------------------------------------
// Compact

TEST(CacheCompact, DropsSupersededOldSchemaOrphansAndTornTail)
{
    TempPath file("critics-compact");
    const JobSpec live = tinySpec(1);
    const sim::RunResult final = sampleResult(9.0);
    {
        std::ofstream f(file.str());
        f << makeLine(live, sampleResult(1.0), 100); // superseded
        f << makeLine(live, final, 200);             // survives
        f << makeLine(tinySpec(2), sampleResult(), 100, "",
                      kResultSchemaVersion + 1);     // old schema
        // Orphan: a stored hash that is not hash(spec) — a collision
        // or a hash-function-change leftover.
        f << makeLine(tinySpec(3), sampleResult(), 100,
                      "00000000deadbeef");
        f << "{\"schema\":1,\"hash\":\"tr";          // torn tail
    }
    const auto before = std::filesystem::file_size(file.str());
    const auto stats = compactStore(file.str());
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->recordsKept, 1u);
    EXPECT_EQ(stats->superseded, 1u);
    EXPECT_EQ(stats->oldSchema, 1u);
    EXPECT_EQ(stats->orphans, 1u);
    EXPECT_EQ(stats->malformed, 1u);
    EXPECT_EQ(stats->bytesBefore, before);
    EXPECT_GT(stats->bytesReclaimed(), 0u);
    EXPECT_LT(std::filesystem::file_size(file.str()), before);

    // The surviving record is the later one, byte-for-byte.
    const auto records = readResultRecords(file.str());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].hash, live.hashHex());
    EXPECT_EQ(resultToJson(records[0].result), resultToJson(final));
}

TEST(CacheCompact, MissingFileIsAnEmptyNoOp)
{
    TempPath file("critics-compact-missing");
    const auto stats = compactStore(file.str());
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->filesRead, 0u);
    EXPECT_EQ(stats->recordsKept, 0u);
    EXPECT_FALSE(std::filesystem::exists(file.str()));
}

// ---------------------------------------------------------------------------
// GC

TEST(CacheGc, MaxAgeExpiresOldAndUnstampedRecords)
{
    TempPath file("critics-gc-age");
    {
        std::ofstream f(file.str());
        f << makeLine(tinySpec(1), sampleResult(), 1000); // too old
        f << makeLine(tinySpec(2), sampleResult(), 9000); // fresh
        f << makeLine(tinySpec(3), sampleResult(), 0);    // unstamped
    }
    GcOptions opt;
    opt.maxAgeSeconds = 5000;
    opt.nowUnix = 10000; // cutoff = 5000
    const auto stats = gcStore(file.str(), opt);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->expired, 2u);
    const auto records = readResultRecords(file.str());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].hash, tinySpec(2).hashHex());
}

TEST(CacheGc, MaxBytesEvictsOldestFirst)
{
    TempPath file("critics-gc-bytes");
    std::uintmax_t oneLine = 0;
    {
        std::ofstream f(file.str());
        const std::string newest =
            makeLine(tinySpec(3), sampleResult(), 300);
        oneLine = newest.size();
        f << makeLine(tinySpec(2), sampleResult(), 200);
        f << makeLine(tinySpec(1), sampleResult(), 100);
        f << newest;
    }
    GcOptions opt;
    opt.maxBytes = 2 * oneLine + oneLine / 2; // room for two records
    const auto stats = gcStore(file.str(), opt);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->evicted, 1u);
    EXPECT_LE(std::filesystem::file_size(file.str()), opt.maxBytes);
    // The oldest record (writtenUnix 100) went first.
    std::set<std::string> hashes;
    for (const auto &record : readResultRecords(file.str()))
        hashes.insert(record.hash);
    EXPECT_EQ(hashes.count(tinySpec(1).hashHex()), 0u);
    EXPECT_EQ(hashes.count(tinySpec(2).hashHex()), 1u);
    EXPECT_EQ(hashes.count(tinySpec(3).hashHex()), 1u);
}

// ---------------------------------------------------------------------------
// Collision counting

TEST(ResultStore, CollisionLookupIsAMissAndCounted)
{
    TempPath file("critics-collision");
    const JobSpec spec = tinySpec(1);
    {
        // A record with spec A's hash but a different spec string —
        // what a hash collision (or hash-function change) leaves.
        JobSpec other = tinySpec(2);
        std::ofstream f(file.str());
        f << makeLine(other, sampleResult(), 100, spec.hashHex());
    }
    ResultStore store(file.str());
    EXPECT_FALSE(store.lookup(spec).has_value());
    EXPECT_EQ(store.collisions(), 1u);
    EXPECT_EQ(store.misses(), 1u);
}

// ---------------------------------------------------------------------------
// Sharded run == unsharded run, digit for digit

TEST(ShardedRunner, MergedShardsReproduceUnshardedBitExactly)
{
    setQuiet(true);
    TempPath dir("critics-sharded-run");
    std::filesystem::create_directories(dir.str());
    const std::string unsharded = dir.str() + "/unsharded.jsonl";
    const std::string merged = dir.str() + "/merged.jsonl";

    std::vector<JobSpec> jobs;
    for (std::uint64_t s = 0; s < 3; ++s) {
        jobs.push_back(tinySpec(s));
        jobs.push_back(tinySpec(s, sim::Transform::CritIc));
    }

    auto makeOptions = [&](const std::string &cachePath) {
        RunnerOptions options;
        options.cachePath = cachePath;
        options.writeManifest = false;
        options.progress = false;
        return options;
    };

    {
        Runner runner(makeOptions(unsharded));
        ASSERT_TRUE(runner.run("full", jobs).allOk());
    }
    const unsigned N = 2;
    std::vector<std::string> shardPaths;
    std::size_t ownedTotal = 0;
    for (unsigned k = 1; k <= N; ++k) {
        RunnerOptions options = makeOptions(
            dir.str() + "/shard-" + std::to_string(k) + ".jsonl");
        options.shard = ShardSpec{k, N};
        Runner runner(options);
        const auto batch = runner.run("full", jobs);
        ASSERT_TRUE(batch.allOk());
        EXPECT_EQ(batch.manifest.shardIndex, k);
        EXPECT_EQ(batch.manifest.shardCount, N);
        EXPECT_EQ(batch.manifest.shardTotalJobs, jobs.size());
        ownedTotal += batch.jobs.size();
        shardPaths.push_back(options.cachePath);
    }
    EXPECT_EQ(ownedTotal, jobs.size());

    ASSERT_TRUE(mergeStores(merged, shardPaths).has_value());
    const auto expect = readResultRecords(unsharded);
    const auto got = readResultRecords(merged);
    ASSERT_EQ(expect.size(), got.size());
    std::map<std::string, std::string> gotByHash;
    for (const auto &record : got)
        gotByHash[record.hash] = resultToJson(record.result);
    for (const auto &record : expect) {
        const auto it = gotByHash.find(record.hash);
        ASSERT_NE(it, gotByHash.end()) << record.hash;
        EXPECT_EQ(it->second, resultToJson(record.result));
    }
}

TEST(Shard, SingleShardPartitionIsIdentity)
{
    // `--shard 1/1` is sharding in name only: the one shard owns every
    // job, in batch order, exactly as an unsharded run would.
    std::vector<JobSpec> jobs;
    for (std::uint64_t s = 0; s < 5; ++s)
        jobs.push_back(tinySpec(s));
    const auto indices = shardIndices(jobs, ShardSpec{1, 1});
    ASSERT_EQ(indices.size(), jobs.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(indices[i], i);
    EXPECT_EQ(filterShard(jobs, ShardSpec{1, 1}).size(), jobs.size());
}

TEST(Shard, RetrySubsetKeepsItsShardAssignment)
{
    // Re-partitioning a subset (say, the failed jobs of an earlier
    // run, resubmitted alone) must send every job back to the shard
    // that owned it in the full batch — otherwise retry shard stores
    // would overlap the original partition's disjoint ownership.
    std::vector<JobSpec> jobs;
    for (std::uint64_t s = 0; s < 16; ++s) {
        jobs.push_back(tinySpec(s));
        jobs.push_back(tinySpec(s, sim::Transform::CritIc));
    }
    std::vector<JobSpec> retry;
    for (std::size_t i = 0; i < jobs.size(); i += 3)
        retry.push_back(jobs[i]);

    const unsigned N = 4;
    for (unsigned k = 1; k <= N; ++k) {
        std::set<std::string> fullOwned;
        for (const auto &spec : filterShard(jobs, ShardSpec{k, N}))
            fullOwned.insert(spec.hashHex());
        for (const auto &spec : filterShard(retry, ShardSpec{k, N})) {
            EXPECT_EQ(fullOwned.count(spec.hashHex()), 1u)
                << "retried job moved to shard " << k;
        }
    }
}

TEST(ShardedRunner, MoreShardsThanJobsWritesTruthfulEmptyManifests)
{
    // Over-sharding (N workers, fewer jobs) leaves some shards with
    // nothing to do.  An empty shard is not an error: it completes,
    // writes a parseable manifest carrying its slice identity and the
    // pre-filter batch size, and the owned counts still sum to the
    // whole batch so merge tooling can prove coverage.
    setQuiet(true);
    TempPath dir("critics-empty-shard");
    std::filesystem::create_directories(dir.str());
    const std::vector<JobSpec> jobs = {tinySpec(0), tinySpec(1)};
    const unsigned N = 5;
    std::size_t ownedTotal = 0;
    unsigned emptyShards = 0;
    for (unsigned k = 1; k <= N; ++k) {
        RunnerOptions options;
        options.cachePath =
            dir.str() + "/shard-" + std::to_string(k) + ".jsonl";
        options.progress = false;
        options.manifestDir = dir.str() + "/manifests";
        options.shard = ShardSpec{k, N};
        Runner runner(options);
        const auto batch = runner.run("tiny", jobs);
        ASSERT_TRUE(batch.allOk());
        ownedTotal += batch.jobs.size();
        emptyShards += batch.jobs.empty() ? 1 : 0;

        ASSERT_FALSE(batch.manifestPath.empty());
        RunManifest manifest;
        ASSERT_TRUE(RunManifest::read(batch.manifestPath, manifest));
        EXPECT_EQ(manifest.shardIndex, k);
        EXPECT_EQ(manifest.shardCount, N);
        EXPECT_EQ(manifest.shardTotalJobs, jobs.size());
        EXPECT_EQ(manifest.jobs.size(), batch.jobs.size());
        EXPECT_FALSE(manifest.interrupted);
    }
    EXPECT_EQ(ownedTotal, jobs.size());
    EXPECT_GE(emptyShards, N - static_cast<unsigned>(jobs.size()));
}

// ---------------------------------------------------------------------------
// Double-SIGINT emergency flush

TEST(SigintGuardDeath, SecondSigintFlushesManifestThenDies)
{
    TempPath dir("critics-sigint");
    std::filesystem::create_directories(dir.str());
    const std::string emergency = dir.str() + "/batch.interrupted.json";
    const std::string payload = "{\"batch\":\"emergency-snapshot\"}\n";

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        SigintGuard guard;
        SigintGuard::setEmergencyPath(emergency);
        SigintGuard::publishEmergency(&payload);
        ::raise(SIGINT); // first: flag only
        if (!SigintGuard::interrupted())
            ::_exit(3);
        ::raise(SIGINT); // second: flush + default disposition
        ::_exit(4);      // unreachable if the re-raise worked
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited " << WEXITSTATUS(status)
        << " instead of dying by SIGINT";
    EXPECT_EQ(WTERMSIG(status), SIGINT);

    std::ifstream in(emergency);
    ASSERT_TRUE(in.good()) << "no emergency manifest written";
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, payload);
}
