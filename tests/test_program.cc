/**
 * @file
 * Tests for the static program representation: layout/alignment
 * invariants, the uid index, and the block-level DFG utilities.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "program/dfg.hh"

using namespace critics;
using namespace critics::test;
using isa::Format;

TEST(Layout, SequentialAddressesAndAlignment)
{
    BasicBlock bb;
    bb.insts = {inst(0, OpClass::IntAlu, 0),
                inst(1, OpClass::IntAlu, 1, 0),
                inst(2, OpClass::IntAlu, 2, 1)};
    bb.insts[1].format = Format::Thumb16;
    Program prog = makeProgram({bb});

    const auto &insts = prog.funcs[0].blocks[0].insts;
    EXPECT_EQ(insts[0].address % 4, 0u);
    EXPECT_EQ(insts[1].address, insts[0].address + 4);
    // The 32-bit instruction after a lone thumb is padded to 4 bytes.
    EXPECT_EQ(insts[2].address % 4, 0u);
    EXPECT_EQ(insts[2].address, insts[1].address + 2 + 2);
    EXPECT_EQ(prog.textBytes(), 12u);
}

TEST(Layout, CdpIsWordAligned)
{
    BasicBlock bb;
    bb.insts = {inst(0, OpClass::IntAlu, 0)};
    bb.insts[0].format = Format::Thumb16; // leaves address at offset 2
    StaticInst cdp = inst(1, OpClass::Cdp, isa::NoReg);
    cdp.format = Format::Thumb16;
    cdp.cdpRun = 2;
    bb.insts.push_back(cdp);
    Program prog = makeProgram({bb});
    EXPECT_EQ(prog.funcs[0].blocks[0].insts[1].address % 4, 0u);
}

TEST(Layout, UidIndexLocatesEverything)
{
    BasicBlock b0, b1;
    b0.insts = {inst(10, OpClass::IntAlu, 0), inst(11, OpClass::Load, 1)};
    b1.insts = {inst(12, OpClass::Store, isa::NoReg, 1)};
    Program prog = makeProgram({b0, b1});

    EXPECT_EQ(prog.instCount(), 3u);
    const auto &loc = prog.locate(12);
    EXPECT_EQ(loc.block, 1u);
    EXPECT_EQ(loc.index, 0u);
    EXPECT_EQ(prog.instByUid(11).arch.op, OpClass::Load);
    EXPECT_TRUE(prog.contains(10));
    EXPECT_FALSE(prog.contains(999));
    EXPECT_THROW(prog.locate(999), std::logic_error);
}

TEST(Layout, DuplicateUidPanics)
{
    BasicBlock bb;
    bb.insts = {inst(5, OpClass::IntAlu, 0), inst(5, OpClass::IntAlu, 1)};
    Program prog;
    prog.memRegions = {{0, 64, 0}};
    program::Function fn;
    fn.blocks.push_back(bb);
    prog.funcs.push_back(fn);
    EXPECT_THROW(prog.layout(), std::logic_error);
}

TEST(Layout, AllocUidNeverCollides)
{
    BasicBlock bb;
    bb.insts = {inst(100, OpClass::IntAlu, 0)};
    Program prog = makeProgram({bb});
    EXPECT_GT(prog.allocUid(), 100u);
}

TEST(Layout, ThumbFraction)
{
    BasicBlock bb;
    bb.insts = {inst(0, OpClass::IntAlu, 0), inst(1, OpClass::IntAlu, 1)};
    bb.insts[0].format = Format::Thumb16;
    Program prog = makeProgram({bb});
    EXPECT_DOUBLE_EQ(prog.thumbFraction(), 0.5);
}

// ---- Block DFG -----------------------------------------------------------

TEST(BlockDfg, ProducersAndConsumers)
{
    BasicBlock bb;
    bb.insts = {inst(0, OpClass::IntAlu, 1),          // r1 =
                inst(1, OpClass::IntAlu, 2, 1),       // r2 = f(r1)
                inst(2, OpClass::IntAlu, 3, 1, 2),    // r3 = f(r1, r2)
                inst(3, OpClass::IntAlu, 1)};         // r1 = (redef)
    program::BlockDfg dfg(bb);
    EXPECT_EQ(dfg.producers(1)[0], 0);
    EXPECT_EQ(dfg.producers(2)[0], 0);
    EXPECT_EQ(dfg.producers(2)[1], 1);
    EXPECT_EQ(dfg.producers(3)[0], -1);
    ASSERT_EQ(dfg.consumers(0).size(), 2u);
    EXPECT_TRUE(dfg.dependsOn(2, 0));
    EXPECT_TRUE(dfg.dependsOn(2, 1));
    EXPECT_FALSE(dfg.dependsOn(3, 0));
    EXPECT_FALSE(dfg.dependsOn(0, 2));
}

TEST(BlockDfg, TransitiveDependence)
{
    BasicBlock bb;
    bb.insts = {inst(0, OpClass::IntAlu, 1),
                inst(1, OpClass::IntAlu, 2, 1),
                inst(2, OpClass::IntAlu, 3, 2),
                inst(3, OpClass::IntAlu, 4, 3)};
    program::BlockDfg dfg(bb);
    EXPECT_TRUE(dfg.dependsOn(3, 0));
}

TEST(CanSwap, RegisterHazards)
{
    const auto def1 = inst(0, OpClass::IntAlu, 1);
    const auto use1 = inst(1, OpClass::IntAlu, 2, 1);
    const auto def1b = inst(2, OpClass::IntAlu, 1, 3);
    const auto indep = inst(3, OpClass::IntAlu, 4, 5);

    EXPECT_FALSE(program::canSwap(def1, use1));  // RAW
    EXPECT_FALSE(program::canSwap(use1, def1b)); // WAR
    EXPECT_FALSE(program::canSwap(def1, def1b)); // WAW
    EXPECT_TRUE(program::canSwap(def1, indep));
}

TEST(CanSwap, ControlAndCdpNeverMove)
{
    const auto branch = inst(0, OpClass::Branch, isa::NoReg, 8);
    auto cdp = inst(1, OpClass::Cdp, isa::NoReg);
    const auto alu = inst(2, OpClass::IntAlu, 1, 2);
    EXPECT_FALSE(program::canSwap(branch, alu));
    EXPECT_FALSE(program::canSwap(alu, branch));
    EXPECT_FALSE(program::canSwap(cdp, alu));
}

TEST(CanSwap, MemoryAliasClasses)
{
    auto load = inst(0, OpClass::Load, 1);
    auto store = inst(1, OpClass::Store, isa::NoReg, 2);
    load.memRegionId = store.memRegionId = 0;
    load.aliasClass = 3;
    store.aliasClass = 3;
    EXPECT_FALSE(program::canSwap(load, store)); // may alias
    store.aliasClass = 4;
    EXPECT_TRUE(program::canSwap(load, store)); // provably disjoint
    store.aliasClass = 0xFF;
    EXPECT_FALSE(program::canSwap(load, store)); // unknown aliasing
    // load/load always reorderable
    auto load2 = inst(2, OpClass::Load, 3);
    load2.memRegionId = 0;
    load2.aliasClass = 3;
    EXPECT_TRUE(program::canSwap(load, load2));
}

TEST(HoistUpTo, MovesPastIndependentStopsAtHazard)
{
    BasicBlock bb;
    bb.insts = {inst(0, OpClass::IntAlu, 1),       // def r1
                inst(1, OpClass::IntAlu, 5, 6),    // independent
                inst(2, OpClass::IntAlu, 6, 7),    // writes r6 (WAR w/ 1)
                inst(3, OpClass::IntAlu, 2, 1)};   // chain member
    // Hoist index 3 toward index 0: must pass 2 and 1 (legal w.r.t. the
    // mover) and land right after 0.
    const auto landed = program::hoistUpTo(bb, 3, 0);
    EXPECT_EQ(landed, 1u);
    EXPECT_EQ(bb.insts[1].uid, 3u);
    EXPECT_EQ(bb.insts[0].uid, 0u);
}

TEST(HoistUpTo, BlockedByRaw)
{
    BasicBlock bb;
    bb.insts = {inst(0, OpClass::IntAlu, 1),
                inst(1, OpClass::IntAlu, 2),
                inst(2, OpClass::IntAlu, 3, 2)}; // reads r2 from idx 1
    const auto landed = program::hoistUpTo(bb, 2, 0);
    EXPECT_EQ(landed, 2u); // cannot cross its producer
}
