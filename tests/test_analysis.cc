/**
 * @file
 * Criticality-analysis tests: fanout computation, IC extraction on
 * hand-built DFGs (including the paper's Fig. 2 example), chain
 * statistics and the PC-indexed criticality table.
 */

#include <gtest/gtest.h>

#include "analysis/criticality.hh"
#include "helpers.hh"

using namespace critics;
using namespace critics::test;
using analysis::CriticalityConfig;

namespace
{

/** Fig. 2-style trace: I0 feeds I1..I10; I10 feeds I11..I20; I20 feeds
 *  I22 (via nothing) — a chain of high-fanout nodes with a low-fanout
 *  link. */
program::Trace
fig2Trace()
{
    program::Trace t;
    auto add = [&](program::DynIdx dep0, program::DynIdx dep1) {
        const auto i = static_cast<std::uint32_t>(t.size());
        t.insts.push_back(dyn(i, 0x10000 + 4 * i, OpClass::IntAlu,
                              dep0, dep1));
    };
    add(program::NoDep, program::NoDep);   // I0
    for (int k = 1; k <= 10; ++k)          // I1..I10 read I0
        add(0, program::NoDep);
    for (int k = 11; k <= 20; ++k)         // I11..I20 read I10
        add(10, program::NoDep);
    add(1, 11);                            // I21 reads I1 and I11
    add(20, program::NoDep);               // I22 reads I20
    for (int k = 0; k < 9; ++k)            // I23.. read I22
        add(22, program::NoDep);
    return t;
}

} // namespace

TEST(Fanout, CountsDirectConsumers)
{
    const auto trace = fig2Trace();
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(trace, cfg);
    EXPECT_EQ(info.fanout[0], 10);
    EXPECT_EQ(info.fanout[10], 10);
    EXPECT_EQ(info.fanout[1], 1);  // read by I21
    EXPECT_EQ(info.fanout[20], 1); // read by I22
    EXPECT_EQ(info.fanout[22], 9);
    EXPECT_TRUE(info.critMask[0]);
    EXPECT_TRUE(info.critMask[10]);
    EXPECT_FALSE(info.critMask[20]);
    EXPECT_GT(info.critFraction(), 0.0);
}

TEST(Fanout, WindowLimitsCounting)
{
    // Consumer far beyond the window must not count.
    program::Trace t;
    t.insts.push_back(dyn(0, 0x10000, OpClass::IntAlu));
    for (int i = 1; i < 300; ++i)
        t.insts.push_back(dyn(i, 0x10000 + 4 * i, OpClass::IntAlu));
    t.insts.push_back(dyn(300, 0x10000 + 1200, OpClass::IntAlu, 0));
    CriticalityConfig cfg;
    cfg.window = 128;
    const auto info = analysis::computeFanout(t, cfg);
    EXPECT_EQ(info.fanout[0], 0);
    cfg.window = 1024;
    const auto wide = analysis::computeFanout(t, cfg);
    EXPECT_EQ(wide.fanout[0], 1);
}

TEST(Chains, ExtractsTheCriticalChain)
{
    const auto trace = fig2Trace();
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(trace, cfg);
    const auto chains = analysis::extractChains(trace, info, cfg);

    // Every instruction appears in exactly one chain.
    std::vector<int> seen(trace.size(), 0);
    for (const auto &chain : chains.chains)
        for (const auto idx : chain)
            ++seen[idx];
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "dyn " << i;

    // The chain from I0 must run through I10 (the best future critical)
    // and continue via I20 to I22.
    const auto *chain0 = &chains.chains[0];
    for (const auto &chain : chains.chains)
        if (chain.front() == 0)
            chain0 = &chain;
    ASSERT_GE(chain0->size(), 4u);
    EXPECT_EQ((*chain0)[0], 0);
    EXPECT_EQ((*chain0)[1], 10);
    EXPECT_EQ((*chain0)[2], 20);
    EXPECT_EQ((*chain0)[3], 22);
}

TEST(Chains, MembersAreSelfContained)
{
    const auto trace = fig2Trace();
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(trace, cfg);
    const auto chains = analysis::extractChains(trace, info, cfg);
    // I21 has two in-window producers and must never be a chain
    // extension (only a head).
    for (const auto &chain : chains.chains) {
        for (std::size_t k = 1; k < chain.size(); ++k)
            EXPECT_NE(chain[k], 21);
    }
}

TEST(ChainStats, GapHistogram)
{
    const auto trace = fig2Trace();
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(trace, cfg);
    const auto chains = analysis::extractChains(trace, info, cfg);
    const auto stats =
        analysis::chainStatistics(trace, chains, info, cfg);

    // The I0 -> I10 -> I20 -> I22 chain has gaps 0 (I0 to I10) and 1
    // (I10 -(I20)-> I22).
    EXPECT_GT(stats.critGap.at(0), 0.0);
    EXPECT_GT(stats.critGap.at(1), 0.0);
    EXPECT_GT(stats.multiMemberChains, 0u);
    EXPECT_GT(stats.icLength.maxBucket(), 2);
    EXPECT_GE(stats.noDependentCritFrac, 0.0);
    EXPECT_LE(stats.noDependentCritFrac, 1.0);
}

TEST(CriticalSet, SelectsBiasedStatics)
{
    // uid 1 always critical, uid 2 never.
    program::Trace t;
    for (int rep = 0; rep < 50; ++rep) {
        const auto base = static_cast<program::DynIdx>(t.size());
        t.insts.push_back(dyn(1, 0x10000, OpClass::IntAlu));
        for (int c = 0; c < 9; ++c)
            t.insts.push_back(
                dyn(2, 0x10004 + 4 * c, OpClass::IntAlu, base));
    }
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(t, cfg);
    const auto set = analysis::buildCriticalSet(t, info);
    EXPECT_TRUE(set.count(1));
    EXPECT_FALSE(set.count(2));
}

class FanoutThreshold : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FanoutThreshold, MonotoneCritFraction)
{
    const auto trace = fig2Trace();
    CriticalityConfig lo;
    lo.fanoutThreshold = 2;
    CriticalityConfig hi;
    hi.fanoutThreshold = GetParam();
    const auto fLo = analysis::computeFanout(trace, lo);
    const auto fHi = analysis::computeFanout(trace, hi);
    EXPECT_GE(fLo.critFraction(), fHi.critFraction());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FanoutThreshold,
                         ::testing::Values(4u, 8u, 12u, 16u));
