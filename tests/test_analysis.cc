/**
 * @file
 * Criticality-analysis tests: fanout computation, IC extraction on
 * hand-built DFGs (including the paper's Fig. 2 example), chain
 * statistics and the PC-indexed criticality table.  Extraction tests
 * run against both analyze paths (flat and the CRITICS_FLAT_ANALYZE=off
 * legacy escape hatch) and the golden partitions pin both to the same
 * semantics.
 */

#include <gtest/gtest.h>

#include "analysis/criticality.hh"
#include "analysis/mode.hh"
#include "helpers.hh"

using namespace critics;
using namespace critics::test;
using analysis::CriticalityConfig;
using analysis::DynChains;

namespace
{

/** Fig. 2-style trace: I0 feeds I1..I10; I10 feeds I11..I20; I20 feeds
 *  I22 (via nothing) — a chain of high-fanout nodes with a low-fanout
 *  link. */
program::Trace
fig2Trace()
{
    program::Trace t;
    auto add = [&](program::DynIdx dep0, program::DynIdx dep1) {
        const auto i = static_cast<std::uint32_t>(t.size());
        t.insts.push_back(dyn(i, 0x10000 + 4 * i, OpClass::IntAlu,
                              dep0, dep1));
    };
    add(program::NoDep, program::NoDep);   // I0
    for (int k = 1; k <= 10; ++k)          // I1..I10 read I0
        add(0, program::NoDep);
    for (int k = 11; k <= 20; ++k)         // I11..I20 read I10
        add(10, program::NoDep);
    add(1, 11);                            // I21 reads I1 and I11
    add(20, program::NoDep);               // I22 reads I20
    for (int k = 0; k < 9; ++k)            // I23.. read I22
        add(22, program::NoDep);
    return t;
}

/** A deterministic pseudo-random dependence trace for path-parity
 *  checks (no Rng dependence; a plain LCG is plenty). */
program::Trace
scrambledTrace(std::size_t n)
{
    program::Trace t;
    std::uint64_t state = 0x2545F4914F6CDD1DULL;
    auto next = [&]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<std::uint32_t>(state >> 33);
    };
    for (std::size_t i = 0; i < n; ++i) {
        program::DynIdx dep0 = program::NoDep;
        program::DynIdx dep1 = program::NoDep;
        if (i > 0 && next() % 4 != 0)
            dep0 = static_cast<program::DynIdx>(next() % i);
        if (i > 0 && next() % 3 == 0)
            dep1 = static_cast<program::DynIdx>(next() % i);
        t.insts.push_back(dyn(static_cast<std::uint32_t>(i % 97),
                              0x10000 + 4 * static_cast<std::uint32_t>(i),
                              OpClass::IntAlu, dep0, dep1));
    }
    return t;
}

/** Run a callable under a forced analyze path, restoring after. */
template <typename Fn>
auto
withAnalyzePath(bool flat, Fn &&fn)
{
    const bool prev = analysis::flatAnalyzeEnabled();
    analysis::setFlatAnalyze(flat);
    auto result = fn();
    analysis::setFlatAnalyze(prev);
    return result;
}

} // namespace

/** Both analyze paths; GetParam() == true selects flat. */
class AnalyzePath : public ::testing::TestWithParam<bool>
{
  protected:
    void
    SetUp() override
    {
        prev_ = analysis::flatAnalyzeEnabled();
        analysis::setFlatAnalyze(GetParam());
    }

    void TearDown() override { analysis::setFlatAnalyze(prev_); }

  private:
    bool prev_ = true;
};

INSTANTIATE_TEST_SUITE_P(Paths, AnalyzePath, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "flat" : "legacy";
                         });

TEST(Fanout, CountsDirectConsumers)
{
    const auto trace = fig2Trace();
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(trace, cfg);
    EXPECT_EQ(info.fanout[0], 10);
    EXPECT_EQ(info.fanout[10], 10);
    EXPECT_EQ(info.fanout[1], 1);  // read by I21
    EXPECT_EQ(info.fanout[20], 1); // read by I22
    EXPECT_EQ(info.fanout[22], 9);
    EXPECT_TRUE(info.critMask[0]);
    EXPECT_TRUE(info.critMask[10]);
    EXPECT_FALSE(info.critMask[20]);
    EXPECT_GT(info.critFraction(), 0.0);
}

TEST(Fanout, WindowLimitsCounting)
{
    // Consumer far beyond the window must not count.
    program::Trace t;
    t.insts.push_back(dyn(0, 0x10000, OpClass::IntAlu));
    for (int i = 1; i < 300; ++i)
        t.insts.push_back(dyn(i, 0x10000 + 4 * i, OpClass::IntAlu));
    t.insts.push_back(dyn(300, 0x10000 + 1200, OpClass::IntAlu, 0));
    CriticalityConfig cfg;
    cfg.window = 128;
    const auto info = analysis::computeFanout(t, cfg);
    EXPECT_EQ(info.fanout[0], 0);
    cfg.window = 1024;
    const auto wide = analysis::computeFanout(t, cfg);
    EXPECT_EQ(wide.fanout[0], 1);
}

TEST(Fanout, DupDepCountsOnce)
{
    // dep0 == dep1 is one consumer, not two.
    program::Trace t;
    t.insts.push_back(dyn(0, 0x10000, OpClass::IntAlu));
    t.insts.push_back(dyn(1, 0x10004, OpClass::IntAlu, 0, 0));
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(t, cfg);
    EXPECT_EQ(info.fanout[0], 1);
}

TEST(Fanout, DupDepSaturatesAtCap)
{
    // 0x10001 dup-dep consumers of I0 inside one huge window: the
    // counter must saturate at 0xFFFF and stay there.  (The old
    // increment-both-then-compensate scheme suppressed the increments
    // at the cap but still fired the decrement, leaving 0xFFFE.)
    const std::size_t consumers = 0x10001;
    program::Trace t;
    t.insts.reserve(consumers + 1);
    t.insts.push_back(dyn(0, 0x10000, OpClass::IntAlu));
    for (std::size_t i = 0; i < consumers; ++i) {
        t.insts.push_back(dyn(static_cast<std::uint32_t>(1 + i),
                              0x10004, OpClass::IntAlu, 0, 0));
    }
    CriticalityConfig cfg;
    cfg.window = 1u << 20;
    const auto info = analysis::computeFanout(t, cfg);
    EXPECT_EQ(info.fanout[0], 0xFFFF);
}

TEST(Fanout, SingleDepSaturatesAtCap)
{
    const std::size_t consumers = 0x10001;
    program::Trace t;
    t.insts.reserve(consumers + 1);
    t.insts.push_back(dyn(0, 0x10000, OpClass::IntAlu));
    for (std::size_t i = 0; i < consumers; ++i) {
        t.insts.push_back(dyn(static_cast<std::uint32_t>(1 + i),
                              0x10004, OpClass::IntAlu, 0));
    }
    CriticalityConfig cfg;
    cfg.window = 1u << 20;
    const auto info = analysis::computeFanout(t, cfg);
    EXPECT_EQ(info.fanout[0], 0xFFFF);
}

TEST_P(AnalyzePath, ExtractsTheCriticalChain)
{
    const auto trace = fig2Trace();
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(trace, cfg);
    const auto chains = analysis::extractChains(trace, info, cfg);

    // Every instruction appears in exactly one chain.
    std::vector<int> seen(trace.size(), 0);
    for (const DynChains::ChainRef chain : chains)
        for (const auto idx : chain)
            ++seen[idx];
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "dyn " << i;

    // The chain from I0 must run through I10 (the best future critical)
    // and continue via I20 to I22.
    ASSERT_GT(chains.size(), 0u);
    DynChains::ChainRef chain0 = chains[0];
    for (const DynChains::ChainRef chain : chains)
        if (chain.front() == 0)
            chain0 = chain;
    ASSERT_GE(chain0.size(), 4u);
    EXPECT_EQ(chain0[0], 0);
    EXPECT_EQ(chain0[1], 10);
    EXPECT_EQ(chain0[2], 20);
    EXPECT_EQ(chain0[3], 22);
}

TEST_P(AnalyzePath, GoldenFig2Partition)
{
    // The full pinned partition of the Fig. 2 trace: one five-member
    // chain (I0 -> I10 -> I20 -> I22 -> I23, the greedy head eats the
    // first of I22's tied consumers) and 27 singletons in start order.
    const auto trace = fig2Trace();
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(trace, cfg);
    const auto chains = analysis::extractChains(trace, info, cfg);

    ASSERT_EQ(chains.size(), 28u);
    const std::vector<program::DynIdx> lead = {0, 10, 20, 22, 23};
    ASSERT_EQ(chains[0].size(), lead.size());
    for (std::size_t k = 0; k < lead.size(); ++k)
        EXPECT_EQ(chains[0][k], lead[k]) << "member " << k;

    const std::vector<program::DynIdx> singles = {
        1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18,
        19, 21, 24, 25, 26, 27, 28, 29, 30, 31};
    ASSERT_EQ(chains.size(), singles.size() + 1);
    for (std::size_t c = 0; c < singles.size(); ++c) {
        ASSERT_EQ(chains[c + 1].size(), 1u) << "chain " << c + 1;
        EXPECT_EQ(chains[c + 1][0], singles[c]);
    }
}

TEST_P(AnalyzePath, MembersAreSelfContained)
{
    const auto trace = fig2Trace();
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(trace, cfg);
    const auto chains = analysis::extractChains(trace, info, cfg);
    // I21 has two in-window producers and must never be a chain
    // extension (only a head).
    for (const DynChains::ChainRef chain : chains) {
        for (std::size_t k = 1; k < chain.size(); ++k)
            EXPECT_NE(chain[k], 21);
    }
}

TEST(Chains, FlatMatchesLegacyOnScrambledTrace)
{
    // Path parity on a dependence soup: members and offsets must be
    // byte-identical, including every greedy tie-break and lookahead.
    for (const std::size_t n : {64u, 1000u, 5000u}) {
        const auto trace = scrambledTrace(n);
        CriticalityConfig cfg;
        cfg.window = 64;
        const auto info = analysis::computeFanout(trace, cfg);
        const auto flat = withAnalyzePath(true, [&] {
            return analysis::extractChains(trace, info, cfg);
        });
        const auto legacy = withAnalyzePath(false, [&] {
            return analysis::extractChains(trace, info, cfg);
        });
        EXPECT_EQ(flat.members, legacy.members) << "n=" << n;
        EXPECT_EQ(flat.offsets, legacy.offsets) << "n=" << n;
    }
}

TEST_P(AnalyzePath, GapHistogram)
{
    const auto trace = fig2Trace();
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(trace, cfg);
    const auto chains = analysis::extractChains(trace, info, cfg);
    const auto stats =
        analysis::chainStatistics(trace, chains, info, cfg);

    // The I0 -> I10 -> I20 -> I22 chain has gaps 0 (I0 to I10) and 1
    // (I10 -(I20)-> I22).
    EXPECT_GT(stats.critGap.at(0), 0.0);
    EXPECT_GT(stats.critGap.at(1), 0.0);
    EXPECT_GT(stats.multiMemberChains, 0u);
    EXPECT_GT(stats.icLength.maxBucket(), 2);
    EXPECT_GE(stats.noDependentCritFrac, 0.0);
    EXPECT_LE(stats.noDependentCritFrac, 1.0);
}

TEST(CriticalSet, SelectsBiasedStatics)
{
    // uid 1 always critical, uid 2 never.
    program::Trace t;
    for (int rep = 0; rep < 50; ++rep) {
        const auto base = static_cast<program::DynIdx>(t.size());
        t.insts.push_back(dyn(1, 0x10000, OpClass::IntAlu));
        for (int c = 0; c < 9; ++c)
            t.insts.push_back(
                dyn(2, 0x10004 + 4 * c, OpClass::IntAlu, base));
    }
    CriticalityConfig cfg;
    const auto info = analysis::computeFanout(t, cfg);
    const auto set = analysis::buildCriticalSet(t, info);
    EXPECT_TRUE(set.count(1));
    EXPECT_FALSE(set.count(2));
}

class FanoutThreshold : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FanoutThreshold, MonotoneCritFraction)
{
    const auto trace = fig2Trace();
    CriticalityConfig lo;
    lo.fanoutThreshold = 2;
    CriticalityConfig hi;
    hi.fanoutThreshold = GetParam();
    const auto fLo = analysis::computeFanout(trace, lo);
    const auto fHi = analysis::computeFanout(trace, hi);
    EXPECT_GE(fLo.critFraction(), fHi.critFraction());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FanoutThreshold,
                         ::testing::Values(4u, 8u, 12u, 16u));
