/**
 * @file
 * Compiler-pass tests: the CritIC transform (hoisting + conversion +
 * switch emission) and the OPP16/Compress passes, including the key
 * semantic-preservation invariant — a rewritten program must execute
 * the same work with the same dataflow when the same control path is
 * replayed.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/criticality.hh"
#include "analysis/miner.hh"
#include "compiler/passes.hh"
#include "helpers.hh"
#include "program/emit.hh"
#include "program/walker.hh"
#include "workload/synth.hh"

using namespace critics;
using namespace critics::test;
using compiler::CritIcPassOptions;
using compiler::SwitchMode;
using isa::Format;

namespace
{

/** Block with a spread-out chain 1 -> 3 -> 5 amid independent fillers. */
Program
spreadChainProgram()
{
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 6));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 1));    // C1
    bb.insts.push_back(inst(2, OpClass::IntAlu, 8, 1)); // consumer
    bb.insts.push_back(inst(3, OpClass::IntAlu, 2, 1)); // link
    bb.insts.push_back(inst(4, OpClass::IntAlu, 9, 1)); // consumer
    bb.insts.push_back(inst(5, OpClass::IntAlu, 3, 2)); // C2
    bb.insts.push_back(inst(6, OpClass::IntAlu, 10, 3));
    return makeProgram({bb});
}

std::vector<std::vector<program::InstUid>>
theChain()
{
    return {{1u, 3u, 5u}};
}

std::vector<program::InstUid>
blockUidOrder(const Program &prog)
{
    std::vector<program::InstUid> uids;
    for (const auto &si : prog.funcs[0].blocks[0].insts)
        uids.push_back(si.uid);
    return uids;
}

} // namespace

TEST(CritIcPass, HoistsChainContiguousAndConverts)
{
    Program prog = spreadChainProgram();
    CritIcPassOptions opt;
    opt.switchMode = SwitchMode::Cdp;
    const auto stats =
        compiler::applyCritIcPass(prog, theChain(), opt);
    EXPECT_EQ(stats.chainsTransformed, 1u);
    EXPECT_EQ(stats.instsConverted, 3u);
    EXPECT_EQ(stats.cdpsInserted, 1u);
    EXPECT_EQ(stats.hoistFailures, 0u);

    // Find the CDP; the three members must follow it immediately, all
    // in 16-bit format.
    const auto &insts = prog.funcs[0].blocks[0].insts;
    int cdpIdx = -1;
    for (std::size_t i = 0; i < insts.size(); ++i)
        if (insts[i].isCdp())
            cdpIdx = static_cast<int>(i);
    ASSERT_GE(cdpIdx, 0);
    EXPECT_EQ(insts[cdpIdx].cdpRun, 3);
    ASSERT_LT(cdpIdx + 3, static_cast<int>(insts.size()));
    EXPECT_EQ(insts[cdpIdx + 1].uid, 1u);
    EXPECT_EQ(insts[cdpIdx + 2].uid, 3u);
    EXPECT_EQ(insts[cdpIdx + 3].uid, 5u);
    for (int k = 1; k <= 3; ++k)
        EXPECT_EQ(insts[cdpIdx + k].format, Format::Thumb16);
}

TEST(CritIcPass, GroupHoistMovesChainEarly)
{
    Program prog = spreadChainProgram();
    CritIcPassOptions opt;
    opt.switchMode = SwitchMode::None;
    compiler::applyCritIcPass(prog, theChain(), opt);
    // Nothing blocks the packed chain from crossing uid 0 (independent),
    // so the chain head lands at the block start.
    const auto order = blockUidOrder(prog);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 3u);
    EXPECT_EQ(order[2], 5u);
}

TEST(CritIcPass, HoistOnlyKeepsArmFormat)
{
    Program prog = spreadChainProgram();
    CritIcPassOptions opt;
    opt.convertToThumb = false;
    opt.switchMode = SwitchMode::None;
    const auto stats = compiler::applyCritIcPass(prog, theChain(), opt);
    EXPECT_EQ(stats.chainsTransformed, 1u);
    EXPECT_EQ(stats.instsConverted, 0u);
    for (const auto &si : prog.funcs[0].blocks[0].insts)
        EXPECT_EQ(si.format, Format::Arm32);
}

TEST(CritIcPass, BranchPairMode)
{
    Program prog = spreadChainProgram();
    CritIcPassOptions opt;
    opt.switchMode = SwitchMode::BranchPair;
    const auto stats = compiler::applyCritIcPass(prog, theChain(), opt);
    EXPECT_EQ(stats.switchBranchesInserted, 2u);
    EXPECT_EQ(stats.cdpsInserted, 0u);
    const auto &insts = prog.funcs[0].blocks[0].insts;
    // 32-bit branch before, 16-bit branch after the run.
    int firstBr = -1;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].arch.op == OpClass::Branch &&
            insts[i].flow == program::FlowKind::FallThrough) {
            firstBr = static_cast<int>(i);
            break;
        }
    }
    ASSERT_GE(firstBr, 0);
    EXPECT_EQ(insts[firstBr].format, Format::Arm32);
    EXPECT_EQ(insts[firstBr + 4].arch.op, OpClass::Branch);
    EXPECT_EQ(insts[firstBr + 4].format, Format::Thumb16);
}

TEST(CritIcPass, AllOrNothingConvertibility)
{
    Program prog = spreadChainProgram();
    // Predicate the link: the whole chain must stay 32-bit.
    prog.instByUid(3).arch.predicated = true;
    CritIcPassOptions opt;
    const auto stats = compiler::applyCritIcPass(prog, theChain(), opt);
    EXPECT_EQ(stats.instsConverted, 0u);
    EXPECT_EQ(stats.cdpsInserted, 0u);
    for (const auto &si : prog.funcs[0].blocks[0].insts)
        EXPECT_EQ(si.format, Format::Arm32);

    // ...unless forceConvert (the CritIC.Ideal hypothetical).
    Program prog2 = spreadChainProgram();
    prog2.instByUid(3).arch.predicated = true;
    CritIcPassOptions ideal;
    ideal.forceConvert = true;
    const auto istats =
        compiler::applyCritIcPass(prog2, theChain(), ideal);
    EXPECT_EQ(istats.instsConverted, 3u);
}

TEST(CritIcPass, LongChainsChainMultipleCdps)
{
    // 12-member serial chain, all directly convertible.
    BasicBlock bb;
    std::uint8_t reg = 0;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 0));
    for (std::uint32_t k = 1; k < 12; ++k) {
        const auto next = static_cast<std::uint8_t>(k % 7);
        bb.insts.push_back(inst(k, OpClass::IntAlu, next, reg));
        reg = next;
    }
    Program prog = makeProgram({bb});
    std::vector<std::vector<program::InstUid>> chains(1);
    for (std::uint32_t k = 0; k < 12; ++k)
        chains[0].push_back(k);
    CritIcPassOptions opt;
    opt.forceConvert = true;
    const auto stats = compiler::applyCritIcPass(prog, chains, opt);
    // 12 = 9 + 3: two CDPs.
    EXPECT_EQ(stats.cdpsInserted, 2u);
    EXPECT_EQ(stats.instsConverted, 12u);
}

TEST(Opp16, ConvertsOnlyDirectRunsOfMinLength)
{
    BasicBlock bb;
    // run of 4 direct-convertible
    for (std::uint32_t k = 0; k < 4; ++k)
        bb.insts.push_back(inst(k, OpClass::IntAlu,
                                static_cast<std::uint8_t>(k % 7)));
    // a blocker (predicated)
    auto blocker = inst(4, OpClass::IntAlu, 5);
    blocker.arch.predicated = true;
    bb.insts.push_back(blocker);
    // run of only 2: below minRun
    bb.insts.push_back(inst(5, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(6, OpClass::IntAlu, 2));
    Program prog = makeProgram({bb});

    const auto stats = compiler::applyOpp16Pass(prog, 3);
    EXPECT_EQ(stats.instsConverted, 4u);
    EXPECT_EQ(stats.instsExpanded, 0u);
    EXPECT_EQ(stats.cdpsInserted, 1u);
    EXPECT_EQ(prog.instByUid(4).format, Format::Arm32);
    EXPECT_EQ(prog.instByUid(5).format, Format::Arm32);
    EXPECT_EQ(prog.instByUid(0).format, Format::Thumb16);
}

TEST(Opp16, SkipsExistingThumbAndCdp)
{
    Program prog = spreadChainProgram();
    compiler::applyCritIcPass(prog, theChain(), CritIcPassOptions{});
    const auto before = prog.thumbFraction();
    const auto stats = compiler::applyOpp16Pass(prog, 2);
    // Converted instructions were never double-converted.
    EXPECT_GE(prog.thumbFraction(), before);
    for (const auto &si : prog.funcs[0].blocks[0].insts) {
        if (si.isCdp())
            EXPECT_EQ(si.format, Format::Thumb16);
    }
    (void)stats;
}

TEST(Compress, ConvertsShorterRunsThanOpp16)
{
    workload::AppProfile profile = workload::mobileApps()[0];
    profile.numFunctions = 150;
    profile.dispatchTargets = 24;
    Program p1 = workload::synthesize(profile);
    Program p2 = workload::synthesize(profile);
    const auto opp = compiler::applyOpp16Pass(p1);
    const auto comp = compiler::applyCompressPass(p2);
    EXPECT_GT(comp.instsConverted, opp.instsConverted);
    EXPECT_EQ(comp.instsExpanded, 0u);
}

TEST(Passes, SemanticsPreservedUnderReplay)
{
    // The acid test: transform a synthesized program, replay the same
    // control path, and verify every dynamic instruction's producers
    // are the same *static* instructions as in the baseline.
    workload::AppProfile profile = workload::mobileApps()[0];
    profile.numFunctions = 150;
    profile.dispatchTargets = 24;
    Program prog = workload::synthesize(profile);
    Rng rng(7);
    program::WalkLimits limits;
    limits.targetInsts = 30000;
    const auto path = program::walkProgram(prog, rng, limits);
    const auto base = program::emitTrace(prog, path);

    // Baseline producer-uid map per dynamic occurrence.
    auto producerMap = [](const program::Trace &t) {
        std::map<std::pair<std::uint32_t, std::uint32_t>,
                 std::pair<std::int64_t, std::int64_t>> m;
        std::map<std::uint32_t, std::uint32_t> occ;
        for (const auto &d : t.insts) {
            if (d.op == isa::OpClass::Cdp)
                continue;
            const auto key = std::make_pair(d.staticUid,
                                            occ[d.staticUid]++);
            const std::int64_t p0 = d.dep0 == program::NoDep
                ? -1 : t.insts[d.dep0].staticUid;
            const std::int64_t p1 = d.dep1 == program::NoDep
                ? -1 : t.insts[d.dep1].staticUid;
            m[key] = {p0, p1};
        }
        return m;
    };
    const auto baseMap = producerMap(base);

    // Apply the full CritIC transform with real mined chains.
    analysis::CriticalityConfig cfg;
    const auto fanout = analysis::computeFanout(base, cfg);
    const auto chains = analysis::extractChains(base, fanout, cfg);
    const auto mined =
        analysis::mineCritIcs(base, prog, chains, fanout, cfg, 1.0);
    const auto sel = analysis::selectCritIcs(mined, {});
    CritIcPassOptions opt;
    const auto stats = compiler::applyCritIcPass(prog, sel.chains, opt);
    ASSERT_GT(stats.chainsTransformed, 0u);

    const auto after = program::emitTrace(prog, path);
    const auto afterMap = producerMap(after);
    ASSERT_EQ(baseMap.size(), afterMap.size());

    // Local renaming may change *which uid* produces a value only if
    // the pass rewrote registers; dataflow equivalence means: for every
    // dynamic occurrence, the producers' uids match, except that a
    // renamed def keeps the same position in the block. We assert full
    // uid equality, which holds because renaming rewrites consumers to
    // follow the same producer.
    std::size_t mismatches = 0;
    for (const auto &[key, producers] : baseMap) {
        const auto it = afterMap.find(key);
        ASSERT_NE(it, afterMap.end());
        if (it->second != producers)
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u);
}
