/**
 * @file
 * Unit tests for the deterministic RNG and distribution helpers.
 */

#include <gtest/gtest.h>

#include "support/rng.hh"

using namespace critics;

TEST(SplitMix, Deterministic)
{
    std::uint64_t a = 42, b = 42;
    EXPECT_EQ(splitMix64(a), splitMix64(b));
    EXPECT_EQ(a, b);
}

TEST(SplitMix, AdvancesState)
{
    std::uint64_t state = 7;
    const auto first = splitMix64(state);
    const auto second = splitMix64(state);
    EXPECT_NE(first, second);
}

TEST(HashCombine, OrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
    EXPECT_EQ(hashCombine(1, 2), hashCombine(1, 2));
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

class RngSeeded : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeeded, BelowStaysInBounds)
{
    Rng rng(GetParam());
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST_P(RngSeeded, RangeInclusive)
{
    Rng rng(GetParam());
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST_P(RngSeeded, UniformInUnitInterval)
{
    Rng rng(GetParam());
    double sum = 0;
    for (int i = 0; i < 5000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 5000.0, 0.5, 0.03);
}

TEST_P(RngSeeded, ChanceMatchesProbability)
{
    Rng rng(GetParam());
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST_P(RngSeeded, GeometricMean)
{
    Rng rng(GetParam());
    double sum = 0;
    const double p = 0.25;
    for (int i = 0; i < 20000; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // mean of geometric (failures before success) = (1-p)/p = 3
    EXPECT_NEAR(sum / 20000.0, 3.0, 0.25);
}

TEST_P(RngSeeded, WeightedRespectsWeights)
{
    Rng rng(GetParam());
    std::vector<double> weights{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.weighted(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST_P(RngSeeded, ZipfSkewsLow)
{
    Rng rng(GetParam());
    int low = 0, high = 0;
    for (int i = 0; i < 4000; ++i) {
        const auto r = rng.zipf(16, 1.0);
        EXPECT_LT(r, 16u);
        if (r < 4)
            ++low;
        else if (r >= 12)
            ++high;
    }
    EXPECT_GT(low, high * 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeeded,
                         ::testing::Values(1, 7, 42, 0xDEADBEEF,
                                           0xFFFFFFFFFFFFFFFFULL));

TEST(Rng, WeightedEmptyReturnsZero)
{
    Rng rng(1);
    std::vector<double> empty;
    EXPECT_EQ(rng.weighted(empty), 0u);
    std::vector<double> zeros{0.0, 0.0};
    EXPECT_EQ(rng.weighted(zeros), 0u);
}

TEST(DiscreteDist, MatchesWeights)
{
    Rng rng(99);
    DiscreteDist dist({2.0, 0.0, 2.0, 4.0});
    int counts[4] = {0, 0, 0, 0};
    for (int i = 0; i < 16000; ++i)
        ++counts[dist.sample(rng)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[3]) / counts[0], 2.0, 0.35);
}

TEST(RngStream, StableHistoricalConstants)
{
    // The stream constants are the literals synth/walker historically
    // mixed into the user seed, so existing seeds keep producing the
    // same programs and walks.  Pin them: changing either silently
    // regenerates every workload.
    for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xC0FFEEull}) {
        EXPECT_EQ(streamSeed(seed, RngStream::Synth),
                  hashCombine(seed, 0xC417C5ULL));
        EXPECT_EQ(streamSeed(seed, RngStream::Walk),
                  hashCombine(seed, 0xA117ULL));
        EXPECT_EQ(streamSeed(seed, RngStream::Sample),
                  hashCombine(seed, 0x5A3417EULL));
    }
}

TEST(RngStream, StreamsAreIndependent)
{
    // Same user seed, different streams: the derived generators must
    // not correlate — one job's synth draws can't echo its walk draws.
    const std::uint64_t seed = 42;
    Rng synth(streamSeed(seed, RngStream::Synth));
    Rng walk(streamSeed(seed, RngStream::Walk));
    Rng sample(streamSeed(seed, RngStream::Sample));
    int synthWalk = 0, synthSample = 0, walkSample = 0;
    for (int i = 0; i < 256; ++i) {
        const auto a = synth.next(), b = walk.next(), c = sample.next();
        synthWalk += (a == b);
        synthSample += (a == c);
        walkSample += (b == c);
    }
    EXPECT_EQ(synthWalk, 0);
    EXPECT_EQ(synthSample, 0);
    EXPECT_EQ(walkSample, 0);

    // And distinct seeds stay distinct within one stream.
    EXPECT_NE(streamSeed(1, RngStream::Synth),
              streamSeed(2, RngStream::Synth));
}

TEST(DiscreteDist, EmptySafe)
{
    Rng rng(1);
    DiscreteDist dist;
    EXPECT_TRUE(dist.empty());
    EXPECT_EQ(dist.sample(rng), 0u);
}
