/**
 * @file
 * Branch predictor tests.
 */

#include <gtest/gtest.h>

#include "bpu/bpu.hh"
#include "support/rng.hh"

using namespace critics;

TEST(PerfectPredictor, AlwaysCorrect)
{
    bpu::PerfectPredictor bp;
    Rng rng(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(bp.predictAndTrain(0x1000 + 4 * (i % 7),
                                       rng.chance(0.5)));
    EXPECT_EQ(bp.stats().mispredicts, 0u);
    EXPECT_EQ(bp.stats().lookups, 1000u);
}

TEST(TwoLevel, LearnsAlwaysTaken)
{
    bpu::TwoLevelPredictor bp;
    for (int i = 0; i < 64; ++i)
        bp.predictAndTrain(0x1000, true);
    bp.resetStats();
    for (int i = 0; i < 512; ++i)
        bp.predictAndTrain(0x1000, true);
    EXPECT_EQ(bp.stats().mispredicts, 0u);
}

TEST(TwoLevel, LearnsAlternatingPattern)
{
    bpu::TwoLevelPredictor bp;
    for (int i = 0; i < 256; ++i)
        bp.predictAndTrain(0x2000, i % 2 == 0);
    bp.resetStats();
    for (int i = 0; i < 512; ++i)
        bp.predictAndTrain(0x2000, i % 2 == 0);
    // Pattern fits trivially in global history.
    EXPECT_LT(bp.stats().mispredictRate(), 0.02);
}

TEST(TwoLevel, StrugglesWithRandom)
{
    bpu::TwoLevelPredictor bp;
    Rng rng(42);
    for (int i = 0; i < 4000; ++i)
        bp.predictAndTrain(0x3000, rng.chance(0.5));
    EXPECT_GT(bp.stats().mispredictRate(), 0.30);
}

class TwoLevelBias : public ::testing::TestWithParam<double>
{
};

TEST_P(TwoLevelBias, BeatsStaticPrediction)
{
    const double bias = GetParam();
    bpu::TwoLevelPredictor bp;
    Rng rng(7);
    for (int i = 0; i < 8000; ++i)
        bp.predictAndTrain(0x4000, rng.chance(bias));
    // Must do no worse than always predicting the majority direction
    // (with a small training allowance).
    const double staticMiss = std::min(bias, 1.0 - bias);
    EXPECT_LE(bp.stats().mispredictRate(), staticMiss + 0.08)
        << "bias " << bias;
}

INSTANTIATE_TEST_SUITE_P(Biases, TwoLevelBias,
                         ::testing::Values(0.05, 0.1, 0.25, 0.75, 0.9,
                                           0.95));

TEST(TwoLevel, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(bpu::TwoLevelPredictor(1000, 10), std::logic_error);
}
