/**
 * @file
 * The experiment orchestrator: job-hash stability, persistent-cache
 * hit/miss/invalidation, JSONL round-tripping, failed-job isolation,
 * bounded retry, in-flight dedup, and cold/warm bit-identity.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "runner/json.hh"
#include "runner/manifest.hh"
#include "runner/orchestrator.hh"
#include "runner/result_store.hh"
#include "runner/thread_pool.hh"
#include "support/logging.hh"
#include "support/parallel.hh"

using namespace critics;
using namespace critics::runner;

namespace
{

/** Unique-per-test temp file path, removed on destruction. */
class TempPath
{
  public:
    explicit TempPath(const std::string &stem)
    {
        static std::atomic<int> counter{0};
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "-" + std::to_string(::getpid()) + "-" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
    }

    ~TempPath()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

JobSpec
tinySpec(const std::string &app = "Acrobat",
         sim::Transform transform = sim::Transform::None)
{
    JobSpec spec;
    spec.profile = workload::findApp(app);
    spec.options.traceInsts = 20000; // keep test simulations small
    spec.variant.label = "test";
    spec.variant.transform = transform;
    return spec;
}

/** A filled-in, irregular RunResult for round-trip checks. */
sim::RunResult
sampleResult()
{
    sim::RunResult r;
    r.cpu.cycles = 123456789012345ULL;
    r.cpu.committed = 400000;
    r.cpu.stallForIIcache = 1111;
    r.cpu.stallForIRedirect = 2222;
    r.cpu.stallForRd = 3333;
    r.cpu.decodeCdpBubbles = 44;
    r.cpu.fetchedBytes = 555555;
    r.cpu.condBranches = 6666;
    r.cpu.mispredicts = 777;
    r.cpu.fetchWindows = 8888;
    r.cpu.efetchAccuracy = 1.0 / 3.0;
    r.cpu.all.fetch = 0.1 + 0.2; // deliberately not representable
    r.cpu.all.decode = 1e-300;
    r.cpu.all.issueWait = 3.14159265358979;
    r.cpu.all.execute = 2.0;
    r.cpu.all.commitWait = 0.0;
    r.cpu.all.insts = 42;
    r.cpu.crit.fetch = 7.0 / 11.0;
    r.cpu.crit.insts = 9;
    r.cpu.mem.icache.accesses = 10;
    r.cpu.mem.icache.misses = 3;
    r.cpu.mem.dcache.accesses = 20;
    r.cpu.mem.dcache.prefetchFills = 4;
    r.cpu.mem.l2.misses = 5;
    r.cpu.mem.dram.reads = 6;
    r.cpu.mem.dram.totalLatency = 700;
    r.cpu.mem.stride.trains = 8;
    r.cpu.mem.stride.issued = 9;
    r.cpu.mem.storeAccesses = 1234;
    r.energy.cpuCore = 0.12345678901234567;
    r.energy.icache = 2e-9;
    r.energy.dcache = 3.5;
    r.energy.l2 = 4.25;
    r.energy.dram = 5.125;
    r.energy.socRest = 6.0625;
    r.pass.chainsAttempted = 11;
    r.pass.chainsTransformed = 10;
    r.pass.instsConverted = 99;
    r.pass.cdpsInserted = 12;
    r.selectionCoverage = 1.0 / 7.0;
    r.staticThumbFraction = 0.25;
    r.dynThumbFraction = 1e-17;
    return r;
}

} // namespace

// ---------------------------------------------------------------------------
// Job hashing

TEST(JobHash, StableAcrossConstructions)
{
    const JobSpec a = tinySpec();
    const JobSpec b = tinySpec();
    EXPECT_EQ(a.specString(), b.specString());
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a.hashHex(), b.hashHex());
    EXPECT_EQ(a.hashHex().size(), 16u);
}

TEST(JobHash, SensitiveToEveryKnobLayer)
{
    const JobSpec base = tinySpec();

    JobSpec profile = base;
    profile.profile.seed += 1;
    EXPECT_NE(base.hash(), profile.hash());

    JobSpec options = base;
    options.options.traceInsts += 1;
    EXPECT_NE(base.hash(), options.hash());

    JobSpec crit = base;
    crit.options.crit.fanoutThreshold += 1;
    EXPECT_NE(base.hash(), crit.hash());

    JobSpec variant = base;
    variant.variant.transform = sim::Transform::CritIc;
    EXPECT_NE(base.hash(), variant.hash());

    JobSpec knob = base;
    knob.variant.perfectBranch = true;
    EXPECT_NE(base.hash(), knob.hash());
}

TEST(JobHash, LabelIsPresentationOnly)
{
    const JobSpec a = tinySpec();
    JobSpec b = a;
    b.variant.label = "renamed";
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(JobHash, AppKeyIgnoresVariant)
{
    const JobSpec a = tinySpec();
    JobSpec b = a;
    b.variant.transform = sim::Transform::Hoist;
    EXPECT_EQ(a.appKey(), b.appKey());
    JobSpec c = a;
    c.options.warmupFraction = 0.5;
    EXPECT_NE(a.appKey(), c.appKey());
}

// ---------------------------------------------------------------------------
// Result serialization + store

TEST(ResultStore, JsonRoundTripIsBitExact)
{
    const sim::RunResult original = sampleResult();
    const std::string json = resultToJson(original);
    const auto doc = parseJson(json);
    ASSERT_TRUE(doc.has_value());
    const auto restored = resultFromJson(*doc);
    ASSERT_TRUE(restored.has_value());
    // Serialized forms equal => every field round-tripped bit-exactly.
    EXPECT_EQ(resultToJson(*restored), json);
    EXPECT_EQ(restored->cpu.cycles, original.cpu.cycles);
    EXPECT_EQ(restored->cpu.all.fetch, original.cpu.all.fetch);
    EXPECT_EQ(restored->cpu.all.decode, original.cpu.all.decode);
    EXPECT_EQ(restored->energy.cpuCore, original.energy.cpuCore);
    EXPECT_EQ(restored->dynThumbFraction, original.dynThumbFraction);
}

TEST(ResultStore, HitMissAndInvalidation)
{
    TempPath file("critics-store");
    const JobSpec spec = tinySpec();
    const sim::RunResult result = sampleResult();
    {
        ResultStore store(file.str());
        EXPECT_FALSE(store.lookup(spec).has_value());
        store.insert(spec, result);
        EXPECT_TRUE(store.lookup(spec).has_value());
    }
    // Reload from disk: still a hit for the same spec…
    ResultStore reloaded(file.str());
    EXPECT_EQ(reloaded.size(), 1u);
    const auto hit = reloaded.lookup(spec);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(resultToJson(*hit), resultToJson(result));
    // …and a miss once any spec knob changes.
    JobSpec changed = spec;
    changed.options.crit.window += 1;
    EXPECT_FALSE(reloaded.lookup(changed).has_value());
    JobSpec variantChanged = spec;
    variantChanged.variant.maxChainLen += 1;
    EXPECT_FALSE(reloaded.lookup(variantChanged).has_value());
}

TEST(ResultStore, SkipsTruncatedTailLine)
{
    TempPath file("critics-store-trunc");
    const JobSpec spec = tinySpec();
    {
        ResultStore store(file.str());
        store.insert(spec, sampleResult());
    }
    // Simulate an interrupt mid-append: a second, truncated record.
    {
        std::ofstream out(file.str(), std::ios::app);
        out << "{\"schema\":1,\"hash\":\"dead";
    }
    setQuiet(true);
    ResultStore store(file.str());
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.lookup(spec).has_value());
}

// ---------------------------------------------------------------------------
// Orchestrator

namespace
{

RunnerOptions
testOptions(const std::string &cachePath)
{
    RunnerOptions options;
    options.cachePath = cachePath;
    options.writeManifest = false;
    options.progress = false;
    return options;
}

} // namespace

TEST(Runner, ColdThenWarmIsBitIdenticalAndSimulationFree)
{
    TempPath file("critics-runner-warm");
    const std::vector<JobSpec> jobs{
        tinySpec("Acrobat"),
        tinySpec("Acrobat", sim::Transform::CritIc)};

    std::string coldJson0, coldJson1;
    {
        Runner runner(testOptions(file.str()));
        const auto cold = runner.run("cold", jobs);
        ASSERT_TRUE(cold.allOk());
        EXPECT_FALSE(cold.outcomes[0].fromCache);
        coldJson0 = resultToJson(cold.result(0));
        coldJson1 = resultToJson(cold.result(1));
    }
    // Fresh Runner, same cache file: everything served from disk.
    std::atomic<int> executed{0};
    RunnerOptions options = testOptions(file.str());
    options.executor = [&](const JobSpec &spec,
                           sim::AppExperiment &experiment) {
        ++executed;
        return experiment.run(spec.variant);
    };
    Runner runner(options);
    const auto warm = runner.run("warm", jobs);
    ASSERT_TRUE(warm.allOk());
    EXPECT_EQ(executed.load(), 0);
    EXPECT_TRUE(warm.outcomes[0].fromCache);
    EXPECT_TRUE(warm.outcomes[1].fromCache);
    EXPECT_EQ(resultToJson(warm.result(0)), coldJson0);
    EXPECT_EQ(resultToJson(warm.result(1)), coldJson1);
}

TEST(Runner, FailedJobIsIsolatedAndRecorded)
{
    TempPath file("critics-runner-fail");
    RunnerOptions options = testOptions(file.str());
    options.maxAttempts = 2;
    options.executor = [](const JobSpec &spec,
                          sim::AppExperiment &experiment) {
        if (spec.variant.label == "poison")
            throw std::runtime_error("deliberately bad design point");
        return experiment.run(spec.variant);
    };
    Runner runner(options);

    std::vector<JobSpec> jobs{tinySpec(), tinySpec("Office"),
                              tinySpec("Music")};
    jobs[1].variant.label = "poison";
    const auto batch = runner.run("poisoned", jobs);

    // The bad job failed with a record; the rest of the batch is fine.
    EXPECT_FALSE(batch.allOk());
    EXPECT_TRUE(batch.outcomes[0].ok);
    EXPECT_FALSE(batch.outcomes[1].ok);
    EXPECT_TRUE(batch.outcomes[2].ok);
    EXPECT_EQ(batch.outcomes[1].attempts, 2u); // bounded retry
    EXPECT_NE(batch.outcomes[1].error.find("deliberately bad"),
              std::string::npos);
    EXPECT_EQ(batch.manifest.failedCount(), 1u);
    // Failures are not cached: only the two good results persist.
    EXPECT_EQ(runner.store().size(), 2u);
}

TEST(Runner, RetrySucceedsOnSecondAttempt)
{
    TempPath file("critics-runner-retry");
    std::atomic<int> calls{0};
    RunnerOptions options = testOptions(file.str());
    options.maxAttempts = 3;
    options.executor = [&](const JobSpec &spec,
                           sim::AppExperiment &experiment) {
        if (calls.fetch_add(1) == 0)
            throw std::runtime_error("transient");
        return experiment.run(spec.variant);
    };
    Runner runner(options);
    const auto batch = runner.run("flaky", {tinySpec()});
    ASSERT_TRUE(batch.allOk());
    EXPECT_EQ(batch.outcomes[0].attempts, 2u);
}

TEST(Runner, IdenticalInFlightJobsDeduplicate)
{
    TempPath file("critics-runner-dedup");
    std::atomic<int> executed{0};
    RunnerOptions options = testOptions(file.str());
    options.executor = [&](const JobSpec &spec,
                           sim::AppExperiment &experiment) {
        ++executed;
        return experiment.run(spec.variant);
    };
    Runner runner(options);

    JobSpec a = tinySpec();
    JobSpec b = a;
    b.variant.label = "same-knobs-different-name";
    const auto batch = runner.run("dedup", {a, b, a});
    ASSERT_TRUE(batch.allOk());
    EXPECT_EQ(executed.load(), 1);
    EXPECT_EQ(resultToJson(batch.result(0)),
              resultToJson(batch.result(1)));
    EXPECT_EQ(resultToJson(batch.result(0)),
              resultToJson(batch.result(2)));
}

TEST(Runner, SharesOneExperimentPerApp)
{
    TempPath file("critics-runner-share");
    Runner runner(testOptions(file.str()));
    const JobSpec spec = tinySpec();
    const auto first = runner.experiment(spec.profile, spec.options);
    const auto second = runner.experiment(spec.profile, spec.options);
    EXPECT_EQ(first.get(), second.get());
    JobSpec other = tinySpec("Office");
    EXPECT_NE(first.get(),
              runner.experiment(other.profile, other.options).get());
}

TEST(Manifest, WriteReadRoundTrip)
{
    TempPath dir("critics-manifests");
    RunManifest manifest;
    manifest.batch = "unit";
    manifest.schema = kResultSchemaVersion;
    manifest.gitDescribe = "deadbeef";
    manifest.wallSeconds = 1.5;
    JobRecord good;
    good.app = "Acrobat";
    good.variant = "critic";
    good.hash = "0123456789abcdef";
    good.ok = true;
    good.wallSeconds = 0.75;
    good.simInsts = 400000;
    JobRecord bad;
    bad.app = "Office";
    bad.variant = "poison";
    bad.ok = false;
    bad.attempts = 2;
    bad.error = "it \"broke\"\nbadly";
    manifest.jobs = {good, bad};

    const std::string path = manifest.write(dir.str());
    ASSERT_FALSE(path.empty());
    RunManifest restored;
    ASSERT_TRUE(RunManifest::read(path, restored));
    EXPECT_EQ(restored.batch, "unit");
    EXPECT_EQ(restored.gitDescribe, "deadbeef");
    ASSERT_EQ(restored.jobs.size(), 2u);
    EXPECT_TRUE(restored.jobs[0].ok);
    EXPECT_EQ(restored.jobs[0].simInsts, 400000u);
    EXPECT_FALSE(restored.jobs[1].ok);
    EXPECT_EQ(restored.jobs[1].error, bad.error);
    EXPECT_EQ(restored.failedCount(), 1u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    std::atomic<int> total{0};
    parallelFor(4, [&](std::size_t) {
        parallelFor(8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ForEachRunsEveryIndexAcrossThreads)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> counts(100);
    pool.forEach(counts.size(),
                 [&](std::size_t i) { ++counts[i]; });
    for (const auto &count : counts)
        EXPECT_EQ(count.load(), 1);
}
