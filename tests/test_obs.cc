/**
 * @file
 * The observability layer: LatencyHistogram bucket exactness and
 * conservative percentiles, span wire-format round-trips, StageScope
 * nesting and span emission, cross-process trace stitching (worker
 * span lines landing on per-pid tracks with monotonic re-based
 * timestamps), the SIGPROF sampling profiler end to end, and the
 * daemon's stats op reporting job-latency percentiles plus per-batch
 * manifests with a trace id.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "obs/profiler.hh"
#include "obs/span.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "stats/trace_event.hh"
#include "support/histogram.hh"
#include "support/json.hh"
#include "support/logging.hh"

using namespace critics;

namespace
{

class TempDir
{
  public:
    explicit TempDir(const std::string &stem)
        : path_(std::filesystem::temp_directory_path() /
                (stem + "-" + std::to_string(::getpid())))
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogram, EmptyReportsZeros)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0.0);
    EXPECT_EQ(h.percentile(0.99), 0.0);
}

TEST(LatencyHistogram, BucketBoundariesAreExact)
{
    // Sub-µs values land in the underflow bucket.
    EXPECT_EQ(LatencyHistogram::bucketOf(0.0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(0.999), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(-5.0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketUpperBound(0), 1.0);

    // 1.0 opens octave 0, sub-bucket 0: [1, 1.125).
    EXPECT_EQ(LatencyHistogram::bucketOf(1.0), 1u);
    EXPECT_EQ(LatencyHistogram::bucketLowerBound(1), 1.0);
    EXPECT_EQ(LatencyHistogram::bucketUpperBound(1), 1.125);

    // A value exactly on a sub-bucket boundary belongs to the upper
    // bucket (frexp is exact — no log() rounding surprises).
    EXPECT_EQ(LatencyHistogram::bucketOf(1.125), 2u);
    EXPECT_EQ(LatencyHistogram::bucketLowerBound(2), 1.125);

    // The last sub-bucket of octave 0 is [1.875, 2); 2.0 itself opens
    // octave 1.
    EXPECT_EQ(LatencyHistogram::bucketOf(1.9999), 8u);
    EXPECT_EQ(LatencyHistogram::bucketUpperBound(8), 2.0);
    EXPECT_EQ(LatencyHistogram::bucketOf(2.0), 9u);
    EXPECT_EQ(LatencyHistogram::bucketLowerBound(9), 2.0);

    // Adjacent buckets tile the axis: upper(i) == lower(i+1).
    for (std::size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i) {
        EXPECT_EQ(LatencyHistogram::bucketUpperBound(i),
                  LatencyHistogram::bucketLowerBound(i + 1))
            << "gap between buckets " << i << " and " << i + 1;
    }

    // Values past the last octave clamp into the top bucket.
    EXPECT_EQ(LatencyHistogram::bucketOf(std::ldexp(1.0, 60)),
              LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, OneSampleIsConservativelyReported)
{
    LatencyHistogram h;
    h.add(1.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.mean(), 1.0);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 1.0);
    // percentile() answers with the bucket's upper bound — never an
    // under-estimate.
    EXPECT_EQ(h.percentile(0.5), 1.125);
    EXPECT_EQ(h.percentile(1.0), 1.125);
}

TEST(LatencyHistogram, PercentilesAreMonotoneAndBounded)
{
    LatencyHistogram h;
    for (int v = 1; v <= 100; ++v)
        h.add(static_cast<double>(v));
    const double p50 = h.percentile(0.50);
    const double p90 = h.percentile(0.90);
    const double p99 = h.percentile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // Conservative: at or above the true value, within one bucket
    // (12.5% relative width).
    EXPECT_GE(p50, 50.0);
    EXPECT_LE(p50, 50.0 * 1.125);
    EXPECT_GE(p99, 99.0);
    EXPECT_LE(p99, 99.0 * 1.125);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 100.0);
    EXPECT_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(LatencyHistogram, MergeFoldsCountsAndExtremes)
{
    LatencyHistogram a, b;
    a.add(10.0);
    a.add(20.0);
    b.add(1.0);
    b.add(4000.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.min(), 1.0);
    EXPECT_EQ(a.max(), 4000.0);
    EXPECT_GE(a.percentile(1.0), 4000.0);
}

// ---------------------------------------------------------------------------
// Span wire format

TEST(ObsSpan, RenderParseRoundTrip)
{
    obs::SpanEvent span;
    span.traceId = "5af3-serve-1";
    span.name = "Acrobat/critic";
    span.category = "job";
    span.startUs = 123456789;
    span.durUs = 250000;
    span.tid = 3;
    const auto back = obs::parseSpanEvent(obs::renderSpanEvent(span));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->traceId, span.traceId);
    EXPECT_EQ(back->name, span.name);
    EXPECT_EQ(back->category, span.category);
    EXPECT_EQ(back->startUs, span.startUs);
    EXPECT_EQ(back->durUs, span.durUs);
    EXPECT_EQ(back->tid, span.tid);
}

TEST(ObsSpan, NonSpanLinesAreRejected)
{
    // Job events share the worker's stdout channel with span events;
    // each parser must let the other kind pass through.
    serve::JobEvent job;
    job.hash = "abc";
    job.app = "Acrobat";
    job.variant = "critic";
    job.ok = true;
    EXPECT_FALSE(
        obs::parseSpanEvent(serve::renderJobEvent(job)).has_value());
    EXPECT_FALSE(obs::parseSpanEvent("not json").has_value());
    EXPECT_FALSE(obs::parseSpanEvent("{}").has_value());
    // A span without a timestamp is malformed, not merely sparse.
    EXPECT_FALSE(
        obs::parseSpanEvent("{\"event\":\"span\",\"name\":\"x\"}")
            .has_value());
}

TEST(ObsSpan, JobEventCarriesWallSeconds)
{
    serve::JobEvent event;
    event.hash = "h";
    event.app = "Office";
    event.variant = "baseline";
    event.ok = true;
    event.wallSeconds = 1.5;
    const auto back =
        serve::parseJobEvent(serve::renderJobEvent(event));
    ASSERT_TRUE(back.has_value());
    EXPECT_DOUBLE_EQ(back->wallSeconds, 1.5);
}

// ---------------------------------------------------------------------------
// StageScope

TEST(ObsStage, NestedScopesRestoreThePreviousStage)
{
    EXPECT_EQ(obs::currentStage(), obs::Stage::None);
    {
        obs::StageScope outer(obs::Stage::Transform);
        EXPECT_EQ(obs::currentStage(), obs::Stage::Transform);
        {
            obs::StageScope inner(obs::Stage::Analyze);
            EXPECT_EQ(obs::currentStage(), obs::Stage::Analyze);
        }
        EXPECT_EQ(obs::currentStage(), obs::Stage::Transform);
    }
    EXPECT_EQ(obs::currentStage(), obs::Stage::None);
}

TEST(ObsStage, SinkReceivesSpansInnermostFirst)
{
    std::vector<obs::SpanRecord> records;
    obs::setSpanSink([&records](const obs::SpanRecord &span) {
        records.push_back(span);
    });
    {
        obs::StageScope job(obs::Stage::None, "Acrobat/critic", "job");
        obs::StageScope stage(obs::Stage::Simulate);
        // Stage::None leaves the stage marker alone...
        EXPECT_EQ(obs::currentStage(), obs::Stage::Simulate);
    }
    obs::setSpanSink(nullptr);

    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name, "simulate");
    EXPECT_EQ(records[0].category, "stage");
    EXPECT_EQ(records[1].name, "Acrobat/critic");
    EXPECT_EQ(records[1].category, "job");
    EXPECT_GT(records[0].tid, 0u);
    EXPECT_GT(records[0].startUs, 0u);
    // ...and the job span brackets the stage span.
    EXPECT_LE(records[1].startUs, records[0].startUs);

    // With the sink removed, scopes are marker-only again.
    {
        obs::StageScope quiet(obs::Stage::Emit);
    }
    EXPECT_EQ(records.size(), 2u);
}

// ---------------------------------------------------------------------------
// Cross-process stitching

TEST(ObsStitch, WorkerSpanLinesLandOnPerPidTracks)
{
    // Two "workers" emit span lines with absolute CLOCK_MONOTONIC
    // timestamps; the stitcher re-bases them on its own epoch and
    // files them under each worker's OS pid — the same arithmetic
    // Server::stitchSpan performs on live worker stdout.
    const std::uint64_t epochUs = 1000000;
    const std::string traceId = "77-serve-9";
    stats::TraceEventWriter trace;

    struct Worker
    {
        std::uint32_t pid;
        std::uint64_t firstUs;
    };
    const Worker workers[] = {{101, epochUs + 5000},
                              {102, epochUs + 6000}};
    for (const auto &w : workers) {
        for (int k = 0; k < 2; ++k) {
            obs::SpanEvent span;
            span.traceId = traceId;
            span.name = "analyze";
            span.category = "stage";
            span.startUs = w.firstUs + static_cast<std::uint64_t>(k) *
                                           2000;
            span.durUs = 1500;
            span.tid = 1;
            const auto parsed =
                obs::parseSpanEvent(obs::renderSpanEvent(span));
            ASSERT_TRUE(parsed.has_value());
            const std::uint64_t ts = parsed->startUs > epochUs
                ? parsed->startUs - epochUs : 0;
            trace.complete(parsed->name, parsed->category, ts,
                           parsed->durUs, w.pid, parsed->tid, "trace",
                           parsed->traceId);
        }
    }

    const auto doc = json::parseJson(trace.toJson());
    ASSERT_TRUE(doc.has_value());
    const auto *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->elements.size(), 4u);

    std::uint64_t lastTsPerPid[2] = {0, 0};
    for (const auto &e : events->elements) {
        const auto pid = e.find("pid")->asUint().value_or(0);
        ASSERT_TRUE(pid == 101 || pid == 102);
        EXPECT_EQ(e.find("tid")->asUint().value_or(0), 1u);
        EXPECT_EQ(e.find("cat")->asString().value_or(""), "stage");
        EXPECT_EQ(
            e.find("args")->find("trace")->asString().value_or(""),
            traceId);
        // Re-based timestamps: absolute µs minus the epoch, strictly
        // increasing per worker track.
        const auto ts = e.find("ts")->asUint().value_or(0);
        EXPECT_GE(ts, 5000u);
        EXPECT_LT(ts, 10000u);
        std::uint64_t &last = lastTsPerPid[pid - 101];
        EXPECT_GT(ts, last);
        last = ts;
    }
}

// ---------------------------------------------------------------------------
// Sampling profiler.  Named ObsProfiler* so the TSan CI lane can
// filter it (signal-driven sampling and TSan interceptors disagree).

/** Burn roughly `ms` of CPU time (not wall time). */
volatile double gProfilerSinkhole = 0.0;
void
burnCpu(double seconds, obs::Stage stage)
{
    obs::StageScope scope(stage);
    const std::uint64_t start = obs::monotonicMicros();
    const auto budget = static_cast<std::uint64_t>(seconds * 1e6);
    double x = 1.0;
    while (obs::monotonicMicros() - start < budget) {
        for (int i = 0; i < 1000; ++i)
            x = x * 1.000001 + 0.5;
        gProfilerSinkhole = x;
    }
}

TEST(ObsProfiler, SamplesAreAttributedToStages)
{
    obs::SamplingProfiler profiler;
    ASSERT_TRUE(profiler.start());
    // Two stages with a deliberately lopsided CPU split.
    burnCpu(0.30, obs::Stage::Analyze);
    burnCpu(0.05, obs::Stage::Emit);
    profiler.stop();

    // ~5ms CPU per sample -> ~70 expected; demand only a loose floor
    // so a loaded CI machine cannot flake this.
    EXPECT_GE(profiler.sampleCount(), 10u);

    const std::string report = profiler.reportJson();
    const auto doc = json::parseJson(report);
    ASSERT_TRUE(doc.has_value()) << report;
    EXPECT_EQ(doc->find("schema")->asString().value_or(""),
              "critics-profile-v1");
    const auto samples = doc->find("samples")->asUint().value_or(0);
    EXPECT_EQ(samples, profiler.sampleCount());

    const auto *stages = doc->find("stages");
    ASSERT_NE(stages, nullptr);
    const auto analyze =
        stages->find("analyze")->asUint().value_or(0);
    const auto emit = stages->find("emit")->asUint().value_or(0);
    // The whole busy loop ran inside named stages.
    const double attributed =
        doc->find("attributedFraction")->asDouble().value_or(0.0);
    EXPECT_GE(attributed, 0.9);
    // 6x the CPU -> clearly dominant even under scheduler noise.
    EXPECT_GT(analyze, emit * 2);

    const auto *flat = doc->find("flat");
    ASSERT_NE(flat, nullptr);
    ASSERT_TRUE(flat->isArray());
    EXPECT_FALSE(flat->elements.empty());

    EXPECT_TRUE(obs::printProfileReport(report, 5));
}

TEST(ObsProfiler, SecondProfilerIsRefusedWhileOneRuns)
{
    setQuiet(true);
    obs::SamplingProfiler first;
    ASSERT_TRUE(first.start());
    obs::SamplingProfiler second;
    EXPECT_FALSE(second.start());
    first.stop();
    // stop() is idempotent and frees the slot for the next run.
    first.stop();
    obs::SamplingProfiler third;
    EXPECT_TRUE(third.start());
    third.stop();
}

TEST(ObsProfiler, ReportSurvivesWriteAndPrettyPrint)
{
    TempDir dir("critics-obs-prof");
    obs::SamplingProfiler profiler;
    ASSERT_TRUE(profiler.start());
    burnCpu(0.05, obs::Stage::Simulate);
    profiler.stop();
    const std::string path = dir.str() + "/prof.json";
    ASSERT_TRUE(profiler.writeReport(path));
    std::ifstream in(path);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    EXPECT_TRUE(obs::printProfileReport(text));
    EXPECT_FALSE(obs::printProfileReport("{\"schema\":\"other\"}"));
    EXPECT_FALSE(obs::printProfileReport("not json"));
}

// ---------------------------------------------------------------------------
// The daemon's observability surface (in-process workers).

TEST(ServeObs, StatsOpReportsLatencyAndBatchManifestCarriesTraceId)
{
    setQuiet(true);
    TempDir dir("critics-obs-serve");

    stats::TraceEventWriter trace;
    serve::ServerOptions options;
    options.workers = 0; // in-process: no child binary needed
    options.cachePath = dir.str() + "/results.jsonl";
    options.trace = &trace;
    serve::Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::ServeClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;

    serve::Request submit;
    submit.op = serve::Request::Op::Submit;
    submit.submit.batch = "obs";
    submit.submit.apps = "Acrobat";
    submit.submit.variants = "baseline,critic";
    submit.submit.insts = 20000;
    ASSERT_TRUE(client.sendLine(serve::renderRequest(submit)));
    const auto reply = client.readLine(30000);
    ASSERT_TRUE(reply.has_value());
    const auto replyDoc = json::parseJson(*reply);
    ASSERT_TRUE(replyDoc.has_value());
    ASSERT_TRUE(replyDoc->find("ok")->asBool().value_or(false))
        << *reply;
    const std::string jobId =
        replyDoc->find("job")->asString().value_or("");
    // The submit reply hands back the batch's trace id.
    const auto *traceField = replyDoc->find("trace");
    ASSERT_NE(traceField, nullptr);
    const std::string traceId =
        traceField->asString().value_or("");
    EXPECT_FALSE(traceId.empty());

    // Stream to completion.
    serve::Request wait;
    wait.op = serve::Request::Op::Wait;
    wait.job = jobId;
    ASSERT_TRUE(client.sendLine(serve::renderRequest(wait)));
    for (;;) {
        const auto line = client.readLine(120000);
        ASSERT_TRUE(line.has_value()) << "stream ended early";
        const auto doc = json::parseJson(*line);
        if (doc && doc->find("event") != nullptr &&
            doc->find("event")->asString().value_or("") == "done")
            break;
    }

    // stats op: job-latency percentiles over the two executed jobs.
    ASSERT_TRUE(client.sendLine("{\"op\":\"stats\"}"));
    const auto statsLine = client.readLine(5000);
    ASSERT_TRUE(statsLine.has_value());
    const auto stats = json::parseJson(*statsLine);
    ASSERT_TRUE(stats.has_value());
    const auto *serveStats = stats->find("serve");
    ASSERT_NE(serveStats, nullptr);
    const auto *latency = serveStats->find("jobLatency");
    ASSERT_NE(latency, nullptr) << *statsLine;
    EXPECT_EQ(latency->find("count")->asUint().value_or(0), 2u);
    const double p50 =
        latency->find("p50Us")->asDouble().value_or(0.0);
    const double p99 =
        latency->find("p99Us")->asDouble().value_or(0.0);
    EXPECT_GT(p50, 0.0);
    EXPECT_GE(p99, p50);
    ASSERT_NE(serveStats->find("queueWait"), nullptr);
    EXPECT_EQ(serveStats->find("queueWait")
                  ->find("count")
                  ->asUint()
                  .value_or(0),
              1u);

    ASSERT_TRUE(client.sendLine("{\"op\":\"shutdown\"}"));
    (void)client.readLine(5000);
    server.wait();

    // The merged trace holds the server-side request spans and the
    // per-job spans, all tagged with the batch's trace id.
    const auto traceDoc = json::parseJson(trace.toJson());
    ASSERT_TRUE(traceDoc.has_value());
    const auto *events = traceDoc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    unsigned jobSpans = 0, taggedSpans = 0;
    bool sawSubmit = false, sawBatch = false;
    for (const auto &e : events->elements) {
        const std::string name =
            e.find("name")->asString().value_or("");
        const std::string cat = e.find("cat") != nullptr
            ? e.find("cat")->asString().value_or("") : "";
        if (name == "submit")
            sawSubmit = true;
        if (name.rfind("batch ", 0) == 0)
            sawBatch = true;
        if (cat == "job")
            ++jobSpans;
        const auto *args = e.find("args");
        if (args != nullptr && args->find("trace") != nullptr &&
            args->find("trace")->asString().value_or("") == traceId)
            ++taggedSpans;
    }
    EXPECT_TRUE(sawSubmit);
    EXPECT_TRUE(sawBatch);
    EXPECT_EQ(jobSpans, 2u);
    EXPECT_GE(taggedSpans, 3u); // 2 job spans + the batch span

    // Satellite: the per-batch manifest, stamped with the trace id.
    const std::string manifestPath =
        dir.str() + "/manifests/obs." + jobId + ".json";
    runner::RunManifest manifest;
    ASSERT_TRUE(runner::RunManifest::read(manifestPath, manifest))
        << manifestPath;
    EXPECT_EQ(manifest.traceId, traceId);
    EXPECT_EQ(manifest.jobs.size(), 2u);
    for (const auto &job : manifest.jobs) {
        EXPECT_TRUE(job.ok);
        EXPECT_FALSE(job.fromCache);
        EXPECT_GT(job.wallSeconds, 0.0);
    }
}

} // namespace
