/**
 * @file
 * Regression tests for the simulator hot paths: the transformed-trace
 * memo must make reruns bit-identical, the memo key must distinguish
 * every binary-changing variant field, and the emit-time thumb
 * counters must agree with a full rescan.  (The pre-overhaul legacy
 * paths and their CRITICS_PACKED_TRACE=off escape hatch were removed
 * after one release; the drift sweep that compared the two lives on as
 * the CI cache-drift job.)
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace critics;
using sim::AppExperiment;
using sim::ExperimentOptions;
using sim::Transform;
using sim::TransformKey;
using sim::Variant;

namespace
{

ExperimentOptions
smallOptions()
{
    ExperimentOptions opt;
    opt.traceInsts = 40000;
    opt.warmupFraction = 0.25;
    return opt;
}

workload::AppProfile
smallApp(const std::string &name)
{
    auto profile = workload::findApp(name);
    profile.numFunctions = std::min(profile.numFunctions, 120u);
    profile.dispatchTargets = std::min(profile.dispatchTargets, 24u);
    return profile;
}

void
expectSameStage(const cpu::StageBreakdown &a,
                const cpu::StageBreakdown &b)
{
    EXPECT_EQ(a.fetch, b.fetch);
    EXPECT_EQ(a.decode, b.decode);
    EXPECT_EQ(a.issueWait, b.issueWait);
    EXPECT_EQ(a.execute, b.execute);
    EXPECT_EQ(a.commitWait, b.commitWait);
    EXPECT_EQ(a.insts, b.insts);
}

void
expectSameCache(const mem::CacheStats &a, const mem::CacheStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.prefetchFills, b.prefetchFills);
    EXPECT_EQ(a.prefetchHits, b.prefetchHits);
}

/** Every CpuStats field, doubles compared for exact equality: serving
 *  a run from the memo must change no arithmetic, only its cost. */
void
expectSameStats(const cpu::CpuStats &a, const cpu::CpuStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.stallForIIcache, b.stallForIIcache);
    EXPECT_EQ(a.stallForIRedirect, b.stallForIRedirect);
    EXPECT_EQ(a.stallForRd, b.stallForRd);
    EXPECT_EQ(a.decodeCdpBubbles, b.decodeCdpBubbles);
    EXPECT_EQ(a.fetchedBytes, b.fetchedBytes);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.fetchWindows, b.fetchWindows);
    EXPECT_EQ(a.efetchAccuracy, b.efetchAccuracy);
    expectSameStage(a.all, b.all);
    expectSameStage(a.crit, b.crit);
    expectSameCache(a.mem.icache, b.mem.icache);
    expectSameCache(a.mem.dcache, b.mem.dcache);
    expectSameCache(a.mem.l2, b.mem.l2);
    EXPECT_EQ(a.mem.dram.reads, b.mem.dram.reads);
    EXPECT_EQ(a.mem.dram.rowHits, b.mem.dram.rowHits);
    EXPECT_EQ(a.mem.dram.rowConflicts, b.mem.dram.rowConflicts);
    EXPECT_EQ(a.mem.dram.activates, b.mem.dram.activates);
    EXPECT_EQ(a.mem.dram.totalLatency, b.mem.dram.totalLatency);
    EXPECT_EQ(a.mem.stride.trains, b.mem.stride.trains);
    EXPECT_EQ(a.mem.stride.issued, b.mem.stride.issued);
    EXPECT_EQ(a.mem.storeAccesses, b.mem.storeAccesses);
}

} // namespace

TEST(PackedTrace, MemoizedRerunIsIdentical)
{
    // The second run of a transformed variant is served from the memo;
    // it must match the first (freshly built) run exactly.
    AppExperiment exp(smallApp("Angrybirds"), smallOptions());
    Variant v;
    v.label = "critic";
    v.transform = Transform::CritIc;
    const auto first = exp.run(v);
    const auto second = exp.run(v);
    expectSameStats(first.cpu, second.cpu);
    EXPECT_EQ(first.dynThumbFraction, second.dynThumbFraction);
}

TEST(TransformMemoKey, DistinguishesEveryBinaryChangingField)
{
    const double fraction = 0.72;
    const Variant base;
    const TransformKey baseKey = sim::transformMemoKey(base, fraction);

    // Every field that changes the transformed binary must change the
    // key.
    Variant v = base;
    v.transform = Transform::CritIc;
    EXPECT_NE(sim::transformMemoKey(v, fraction), baseKey);

    Variant sw = v;
    sw.switchMode = compiler::SwitchMode::BranchPair;
    EXPECT_NE(sim::transformMemoKey(sw, fraction),
              sim::transformMemoKey(v, fraction));

    Variant len = v;
    len.maxChainLen = 7;
    EXPECT_NE(sim::transformMemoKey(len, fraction),
              sim::transformMemoKey(v, fraction));

    Variant exact = v;
    exact.exactChainLen = 3;
    EXPECT_NE(sim::transformMemoKey(exact, fraction),
              sim::transformMemoKey(v, fraction));

    Variant frac = v;
    frac.profileFraction = 0.7205;
    EXPECT_NE(sim::transformMemoKey(frac, fraction),
              sim::transformMemoKey(v, fraction));

    // Closer than the old 1e-3 rounding granularity: still distinct.
    Variant fracNear = v;
    fracNear.profileFraction = 0.72049999;
    EXPECT_NE(sim::transformMemoKey(fracNear, fraction),
              sim::transformMemoKey(frac, fraction));

    // Hardware-only knobs share the transformed trace.
    Variant hw = v;
    hw.perfectBranch = true;
    hw.efetch = true;
    hw.icache4x = true;
    hw.doubleFrontend = true;
    hw.aluPrio = true;
    hw.backendPrio = true;
    hw.criticalLoadPrefetch = true;
    EXPECT_EQ(sim::transformMemoKey(hw, fraction),
              sim::transformMemoKey(v, fraction));

    // An explicit override equal to the default is the same key: the
    // effective fraction is what the miner sees.
    Variant same = v;
    same.profileFraction = fraction;
    EXPECT_EQ(sim::transformMemoKey(same, fraction),
              sim::transformMemoKey(v, fraction));
}

TEST(MinedAtKey, SubMilliFractionsAreDistinct)
{
    // The old int(fraction*1000+0.5) key collapsed these two; with the
    // bit-pattern key each fraction mines its own result.
    AppExperiment exp(smallApp("Acrobat"), smallOptions());
    const auto &a = exp.minedAt(0.5000);
    const auto &b = exp.minedAt(0.50004);
    EXPECT_NE(&a, &b);
    // Same bit pattern still hits the cache.
    EXPECT_EQ(&a, &exp.minedAt(0.5000));
}

TEST(DynInst, PackedFlags)
{
    program::DynInst d;
    EXPECT_FALSE(d.taken());
    EXPECT_FALSE(d.isCond());
    d.setTaken(true);
    EXPECT_TRUE(d.taken());
    EXPECT_FALSE(d.isCond());
    d.setCond(true);
    EXPECT_TRUE(d.taken());
    EXPECT_TRUE(d.isCond());
    d.setTaken(false);
    EXPECT_FALSE(d.taken());
    EXPECT_TRUE(d.isCond());
}

TEST(Trace, EmitFillsThumbCounts)
{
    AppExperiment exp(smallApp("Acrobat"), smallOptions());
    const program::Trace &t = exp.baseTrace();
    ASSERT_GT(t.dynCount, 0u);
    // Cross-check the emit-time counters against a rescan.
    std::uint64_t dyn = 0, thumb = 0;
    for (const auto &d : t.insts) {
        if (d.op == isa::OpClass::Cdp)
            continue;
        ++dyn;
        if (d.sizeBytes == 2)
            ++thumb;
    }
    EXPECT_EQ(t.dynCount, dyn);
    EXPECT_EQ(t.thumbDynCount, thumb);
}
