/**
 * @file
 * ISA tests: encode/decode round-trips for both formats, the
 * convertibility predicates, and the CDP format-switch command.
 */

#include <gtest/gtest.h>

#include "isa/isa.hh"

using namespace critics::isa;

namespace
{

OperandInfo
make(OpClass op, std::uint8_t dst, std::uint8_t src1, std::uint8_t src2,
     bool predicated = false, std::uint8_t imm = 0)
{
    OperandInfo info;
    info.op = op;
    info.dst = dst;
    info.src1 = src1;
    info.src2 = src2;
    info.predicated = predicated;
    info.imm = imm;
    return info;
}

bool
sameArch(const OperandInfo &a, const OperandInfo &b)
{
    return a.op == b.op && a.dst == b.dst && a.src1 == b.src1 &&
           a.src2 == b.src2 && a.predicated == b.predicated;
}

} // namespace

TEST(OpClasses, NamesAndKinds)
{
    EXPECT_STREQ(opClassName(OpClass::IntAlu), "IntAlu");
    EXPECT_STREQ(opClassName(OpClass::Cdp), "Cdp");
    EXPECT_TRUE(isControl(OpClass::Branch));
    EXPECT_TRUE(isControl(OpClass::Call));
    EXPECT_TRUE(isControl(OpClass::Return));
    EXPECT_FALSE(isControl(OpClass::Load));
    EXPECT_TRUE(isMemory(OpClass::Load));
    EXPECT_TRUE(isMemory(OpClass::Store));
    EXPECT_FALSE(isMemory(OpClass::IntAlu));
}

TEST(OpClasses, LatenciesOrdered)
{
    EXPECT_EQ(execLatency(OpClass::IntAlu), 1u);
    EXPECT_GT(execLatency(OpClass::IntDiv), execLatency(OpClass::IntMult));
    EXPECT_GT(execLatency(OpClass::FloatDiv),
              execLatency(OpClass::FloatMul));
}

TEST(Convertibility, PredicationBlocks)
{
    const auto plain = make(OpClass::IntAlu, 1, 2, NoReg);
    const auto pred = make(OpClass::IntAlu, 1, 2, NoReg, true);
    EXPECT_TRUE(thumbConvertible(plain));
    EXPECT_FALSE(thumbConvertible(pred));
    EXPECT_EQ(thumbRejectReason(pred), "predicated");
}

TEST(Convertibility, RegisterLimits)
{
    EXPECT_TRUE(thumbConvertible(make(OpClass::IntAlu, 10, 7, 7)));
    EXPECT_FALSE(thumbConvertible(make(OpClass::IntAlu, 11, 0, NoReg)));
    EXPECT_FALSE(thumbConvertible(make(OpClass::IntAlu, 0, 8, NoReg)));
    EXPECT_FALSE(thumbConvertible(make(OpClass::IntAlu, 0, 0, 9)));
}

TEST(Convertibility, DividesHaveNoThumbEncoding)
{
    EXPECT_FALSE(hasThumbEncoding(OpClass::IntDiv));
    EXPECT_FALSE(hasThumbEncoding(OpClass::FloatDiv));
    EXPECT_FALSE(thumbConvertible(make(OpClass::IntDiv, 0, 1, NoReg)));
}

TEST(Convertibility, DirectRequiresTwoAddressAndNoImm)
{
    // single source: direct
    EXPECT_TRUE(thumbDirectlyConvertible(make(OpClass::IntAlu, 1, 2,
                                              NoReg)));
    // dst == src1 accumulate form: direct
    EXPECT_TRUE(thumbDirectlyConvertible(make(OpClass::IntAlu, 1, 1, 2)));
    // three-address: needs expansion
    EXPECT_FALSE(thumbDirectlyConvertible(make(OpClass::IntAlu, 1, 2, 3)));
    // immediate payload: not representable
    EXPECT_FALSE(thumbDirectlyConvertible(
        make(OpClass::IntAlu, 1, 2, NoReg, false, 5)));
}

struct RoundTripCase
{
    OpClass op;
    std::uint8_t dst, src1, src2;
    bool predicated;
    std::uint8_t imm;
};

class Arm32RoundTrip : public ::testing::TestWithParam<RoundTripCase>
{
};

TEST_P(Arm32RoundTrip, EncodeDecode)
{
    const auto &c = GetParam();
    const auto info = make(c.op, c.dst, c.src1, c.src2, c.predicated,
                           c.imm);
    const auto decoded = decodeArm32(encodeArm32(info));
    EXPECT_TRUE(sameArch(info, decoded))
        << opClassName(info.op) << " dst=" << int(info.dst);
    EXPECT_EQ(decoded.imm, info.imm);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, Arm32RoundTrip,
    ::testing::Values(
        RoundTripCase{OpClass::IntAlu, 0, 1, 2, false, 0},
        RoundTripCase{OpClass::IntAlu, 15, 14, 13, true, 0xFF},
        RoundTripCase{OpClass::IntMult, 3, 3, 3, false, 1},
        RoundTripCase{OpClass::IntDiv, 7, 8, NoReg, false, 0},
        RoundTripCase{OpClass::FloatAdd, 1, 2, NoReg, true, 9},
        RoundTripCase{OpClass::FloatMul, 9, 10, 11, false, 0},
        RoundTripCase{OpClass::FloatDiv, 0, 0, 0, false, 0},
        RoundTripCase{OpClass::Load, 5, 6, NoReg, false, 4},
        RoundTripCase{OpClass::Store, NoReg, 2, NoReg, false, 0},
        RoundTripCase{OpClass::Branch, NoReg, 9, NoReg, true, 0},
        RoundTripCase{OpClass::Call, NoReg, NoReg, NoReg, false, 0},
        RoundTripCase{OpClass::Return, NoReg, NoReg, NoReg, false, 0},
        RoundTripCase{OpClass::Nop, NoReg, NoReg, NoReg, false, 0}));

class Thumb16RoundTrip : public ::testing::TestWithParam<RoundTripCase>
{
};

TEST_P(Thumb16RoundTrip, EncodeDecode)
{
    const auto &c = GetParam();
    const auto info = make(c.op, c.dst, c.src1, c.src2, false, 0);
    ASSERT_TRUE(thumbConvertible(info));
    const auto decoded = decodeThumb16(encodeThumb16(info));
    EXPECT_TRUE(sameArch(info, decoded)) << opClassName(info.op);
}

INSTANTIATE_TEST_SUITE_P(
    ThumbShapes, Thumb16RoundTrip,
    ::testing::Values(
        RoundTripCase{OpClass::IntAlu, 0, 1, 2, false, 0},
        RoundTripCase{OpClass::IntAlu, 10, 7, 7, false, 0},
        RoundTripCase{OpClass::IntMult, 4, 4, 5, false, 0},
        RoundTripCase{OpClass::FloatAdd, 2, 3, NoReg, false, 0},
        RoundTripCase{OpClass::Load, 6, 0, NoReg, false, 0},
        RoundTripCase{OpClass::Store, NoReg, 1, 2, false, 0},
        RoundTripCase{OpClass::Branch, NoReg, 3, NoReg, false, 0},
        RoundTripCase{OpClass::Nop, NoReg, NoReg, NoReg, false, 0}));

TEST(Thumb16, RejectsNonConvertible)
{
    EXPECT_THROW(encodeThumb16(make(OpClass::IntAlu, 11, 0, NoReg)),
                 std::logic_error);
    EXPECT_THROW(encodeThumb16(make(OpClass::IntDiv, 1, 0, NoReg)),
                 std::logic_error);
}

TEST(Cdp, RoundTripAllRunLengths)
{
    for (unsigned run = 1; run <= MaxCdpRun; ++run)
        EXPECT_EQ(decodeCdpRun(encodeCdp(run)), run);
}

TEST(Cdp, RejectsOutOfRange)
{
    EXPECT_THROW(encodeCdp(0), std::logic_error);
    EXPECT_THROW(encodeCdp(MaxCdpRun + 1), std::logic_error);
}

TEST(Cdp, DistinctFromThumbOpcodes)
{
    // A CDP halfword must never decode as a regular thumb instruction.
    const auto cdp = encodeCdp(5);
    EXPECT_THROW(decodeThumb16(cdp), std::logic_error);
    // ...and regular thumb encodings must never look like a CDP.
    const auto alu = encodeThumb16(make(OpClass::IntAlu, 1, 2, NoReg));
    EXPECT_NO_THROW(decodeThumb16(alu));
}

TEST(Formats, ByteSizes)
{
    EXPECT_EQ(formatBytes(Format::Arm32), 4u);
    EXPECT_EQ(formatBytes(Format::Thumb16), 2u);
}
