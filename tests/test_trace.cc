/**
 * @file
 * Tests for the walker and trace emitter: path validity, emission
 * dataflow, address determinism and control-path invariance under
 * program rewrites.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "program/dfg.hh"
#include "program/emit.hh"
#include "program/walker.hh"
#include "workload/synth.hh"

using namespace critics;
using namespace critics::test;
using program::ControlPath;
using program::FlowKind;
using program::Trace;

namespace
{

/** Two-function program: fn0 loops { call fn1 }, fn1 has a conditional
 *  skip and returns. */
Program
callProgram()
{
    Program prog;
    prog.memRegions = {{0x40000000u, 4096, 0}};

    program::Function fn0;
    fn0.name = "loop";
    BasicBlock b0;
    b0.insts = {inst(0, OpClass::IntAlu, 0)};
    StaticInst call = inst(1, OpClass::Call, isa::NoReg);
    call.flow = FlowKind::CallFn;
    call.targetFunc = 1;
    b0.insts.push_back(call);
    BasicBlock b1;
    b1.insts = {inst(2, OpClass::IntAlu, 1)};
    StaticInst jump = inst(3, OpClass::Branch, isa::NoReg);
    jump.flow = FlowKind::Jump;
    jump.targetBlock = 0;
    b1.insts.push_back(jump);
    fn0.blocks = {b0, b1};

    program::Function fn1;
    fn1.name = "callee";
    BasicBlock c0;
    c0.insts = {inst(4, OpClass::IntAlu, 2)};
    StaticInst br = inst(5, OpClass::Branch, isa::NoReg, 2);
    br.flow = FlowKind::CondBranch;
    br.targetBlock = 2;
    br.takenBias = 0.5f;
    c0.insts.push_back(br);
    BasicBlock c1;
    c1.insts = {inst(6, OpClass::IntAlu, 3, 2)};
    BasicBlock c2;
    c2.insts = {inst(7, OpClass::IntAlu, 4, 2)};
    StaticInst ret = inst(8, OpClass::Return, isa::NoReg);
    ret.flow = FlowKind::Ret;
    c2.insts.push_back(ret);
    fn1.blocks = {c0, c1, c2};

    prog.funcs = {fn0, fn1};
    prog.layout();
    return prog;
}

} // namespace

TEST(Walker, ProducesValidVisits)
{
    Program prog = callProgram();
    Rng rng(7);
    program::WalkLimits limits;
    limits.targetInsts = 500;
    const ControlPath path = program::walkProgram(prog, rng, limits);
    ASSERT_FALSE(path.visits.empty());
    for (const auto &visit : path.visits) {
        ASSERT_LT(visit.func, prog.funcs.size());
        ASSERT_LT(visit.block, prog.funcs[visit.func].blocks.size());
    }
}

TEST(Walker, Deterministic)
{
    Program prog = callProgram();
    program::WalkLimits limits;
    limits.targetInsts = 400;
    Rng r1(9), r2(9);
    const auto p1 = program::walkProgram(prog, r1, limits);
    const auto p2 = program::walkProgram(prog, r2, limits);
    ASSERT_EQ(p1.visits.size(), p2.visits.size());
    EXPECT_EQ(p1.branchOutcomes, p2.branchOutcomes);
}

TEST(Walker, OutcomeCountMatchesCondBranchExecutions)
{
    Program prog = callProgram();
    Rng rng(3);
    program::WalkLimits limits;
    limits.targetInsts = 600;
    const auto path = program::walkProgram(prog, rng, limits);
    std::size_t condExecs = 0;
    for (const auto &visit : path.visits) {
        const auto &bb = prog.funcs[visit.func].blocks[visit.block];
        if (!bb.insts.empty() &&
            bb.insts.back().flow == FlowKind::CondBranch) {
            ++condExecs;
        }
    }
    EXPECT_EQ(condExecs, path.branchOutcomes.size());
}

TEST(Walker, CallAndReturnSequence)
{
    Program prog = callProgram();
    Rng rng(5);
    program::WalkLimits limits;
    limits.targetInsts = 200;
    const auto path = program::walkProgram(prog, rng, limits);
    // After visiting fn0/b0 (the call block), the next visit must be
    // fn1/b0; after fn1's return block comes fn0/b1.
    for (std::size_t i = 0; i + 1 < path.visits.size(); ++i) {
        const auto &cur = path.visits[i];
        const auto &next = path.visits[i + 1];
        if (cur.func == 0 && cur.block == 0) {
            EXPECT_EQ(next.func, 1u);
            EXPECT_EQ(next.block, 0u);
        }
        if (cur.func == 1 && cur.block == 2) {
            EXPECT_EQ(next.func, 0u);
            EXPECT_EQ(next.block, 1u);
        }
    }
}

TEST(Emit, AddressesMatchLayoutAndDepsAreTrue)
{
    Program prog = callProgram();
    Rng rng(11);
    program::WalkLimits limits;
    limits.targetInsts = 500;
    const auto path = program::walkProgram(prog, rng, limits);
    const Trace trace = program::emitTrace(prog, path);

    ASSERT_FALSE(trace.insts.empty());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto &d = trace.insts[i];
        EXPECT_EQ(d.address, prog.instByUid(d.staticUid).address);
        for (const auto dep : {d.dep0, d.dep1}) {
            if (dep == program::NoDep)
                continue;
            ASSERT_GE(dep, 0);
            ASSERT_LT(dep, static_cast<program::DynIdx>(i));
            // The producer must write a register this inst reads.
            const auto &p = prog.instByUid(trace.insts[dep].staticUid);
            const auto &c = prog.instByUid(d.staticUid);
            EXPECT_TRUE(p.arch.dst == c.arch.src1 ||
                        p.arch.dst == c.arch.src2);
        }
    }
}

TEST(Emit, ControlTargetsPointToNextVisit)
{
    Program prog = callProgram();
    Rng rng(13);
    program::WalkLimits limits;
    limits.targetInsts = 300;
    const auto path = program::walkProgram(prog, rng, limits);
    const Trace trace = program::emitTrace(prog, path);
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        const auto &d = trace.insts[i];
        if (d.isControl() && d.taken())
            EXPECT_EQ(d.branchTarget, trace.insts[i + 1].address);
    }
}

TEST(Emit, DataAddressesStableAcrossReEmission)
{
    Program prog = callProgram();
    // add a load so there is a data stream
    StaticInst load = inst(9, OpClass::Load, 5);
    load.memPattern = program::MemPattern::HotRegion;
    load.memRegionId = 0;
    load.aliasClass = 2;
    prog.funcs[1].blocks[0].insts.insert(
        prog.funcs[1].blocks[0].insts.begin(), load);
    prog.layout();

    Rng rng(17);
    program::WalkLimits limits;
    limits.targetInsts = 400;
    const auto path = program::walkProgram(prog, rng, limits);
    const Trace t1 = program::emitTrace(prog, path);
    const Trace t2 = program::emitTrace(prog, path);
    ASSERT_EQ(t1.size(), t2.size());
    for (std::size_t i = 0; i < t1.size(); ++i)
        EXPECT_EQ(t1.insts[i].memAddr, t2.insts[i].memAddr);
}

TEST(Emit, LoopCarriedDependenceCrossesIterations)
{
    // fn0: block with acc = f(acc) in a loop.
    Program prog;
    prog.memRegions = {{0x40000000u, 4096, 0}};
    program::Function fn;
    BasicBlock body;
    body.insts = {inst(0, OpClass::IntAlu, 7, 7)}; // acc = f(acc)
    StaticInst loop = inst(1, OpClass::Branch, isa::NoReg, 8);
    loop.flow = FlowKind::CondBranch;
    loop.targetBlock = 0;
    loop.takenBias = 1.0f;
    body.insts.push_back(loop);
    fn.blocks = {body};
    prog.funcs = {fn};
    prog.layout();

    Rng rng(23);
    program::WalkLimits limits;
    limits.targetInsts = 40;
    const auto path = program::walkProgram(prog, rng, limits);
    const Trace trace = program::emitTrace(prog, path);
    // Every second acc-op depends on the previous iteration's acc-op.
    int carried = 0;
    for (std::size_t i = 2; i < trace.size(); i += 2) {
        if (trace.insts[i].dep0 ==
            static_cast<program::DynIdx>(i - 2)) {
            ++carried;
        }
    }
    EXPECT_GT(carried, 10);
}

TEST(Emit, SameWorkAfterReorderingWithinBlocks)
{
    // Reordering independent instructions inside a block must preserve
    // the multiset of executed uids (the control path is unchanged).
    workload::AppProfile profile = workload::mobileApps()[0];
    profile.numFunctions = 120;
    profile.dispatchTargets = 24;
    Program prog = workload::synthesize(profile);
    Rng rng(31);
    program::WalkLimits limits;
    limits.targetInsts = 20000;
    const auto path = program::walkProgram(prog, rng, limits);
    const Trace before = program::emitTrace(prog, path);

    // Swap the first two independent instructions of some block.
    bool swapped = false;
    for (auto &fn : prog.funcs) {
        for (auto &block : fn.blocks) {
            if (block.insts.size() >= 2 &&
                program::canSwap(block.insts[0], block.insts[1])) {
                std::swap(block.insts[0], block.insts[1]);
                swapped = true;
                break;
            }
        }
        if (swapped)
            break;
    }
    ASSERT_TRUE(swapped);
    prog.layout();
    const Trace after = program::emitTrace(prog, path);
    ASSERT_EQ(before.size(), after.size());

    std::vector<std::uint32_t> u1, u2;
    for (const auto &d : before.insts)
        u1.push_back(d.staticUid);
    for (const auto &d : after.insts)
        u2.push_back(d.staticUid);
    std::sort(u1.begin(), u1.end());
    std::sort(u2.begin(), u2.end());
    EXPECT_EQ(u1, u2);
}
