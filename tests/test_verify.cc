/**
 * @file
 * The IR verifier and lint framework (src/verify/): seeded-mutation
 * tests (corrupt exactly one invariant, expect exactly one dotted
 * diagnostic code), differential dataflow checks, pass post-condition
 * bracketing, audit advisories, report plumbing and JSON export.
 */

#include <algorithm>
#include <cstdlib>

#include <gtest/gtest.h>

#include "compiler/passes.hh"
#include "helpers.hh"
#include "sim/experiment.hh"
#include "stats/registry.hh"
#include "support/json.hh"
#include "verify/verify.hh"
#include "workload/profile.hh"
#include "workload/synth.hh"

using namespace critics;
using critics::test::inst;
using critics::test::makeProgram;
using program::BasicBlock;
using program::FlowKind;
using program::Program;
using program::StaticInst;
using isa::Format;
using isa::OpClass;

namespace
{

/** A small well-formed single-block program: r0..r3 ALU dataflow, a
 *  load/store pair, and a Jump terminator. */
Program
cleanProgram()
{
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 0));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 1, 0));
    bb.insts.push_back(inst(2, OpClass::Load, 2, 1));
    bb.insts.push_back(inst(3, OpClass::IntAlu, 3, 2, 1));
    bb.insts.push_back(inst(4, OpClass::Store, isa::NoReg, 3));
    StaticInst jump = inst(5, OpClass::Branch, isa::NoReg);
    jump.flow = FlowKind::Jump;
    jump.targetBlock = 0;
    bb.insts.push_back(jump);
    return makeProgram({bb});
}

/** Structural findings of one (possibly corrupted) program. */
verify::Report
structuralReport(const Program &prog,
                 const verify::StructuralOptions &opt = {})
{
    verify::Report report;
    verify::verifyStructure(prog, report, opt);
    return report;
}

/** The block every test mutates. */
std::vector<StaticInst> &
insts(Program &prog)
{
    return prog.funcs[0].blocks[0].insts;
}

} // namespace

TEST(VerifyStructural, CleanProgramIsClean)
{
    const auto report = structuralReport(cleanProgram());
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.errors(), 0u);
    EXPECT_EQ(report.warnings(), 0u);
}

TEST(VerifyStructural, SynthesizedWorkloadIsClean)
{
    workload::AppProfile profile = workload::findApp("Acrobat");
    const Program prog = workload::synthesize(profile);
    const auto report = structuralReport(prog);
    EXPECT_TRUE(report.clean()) << report.render();
    EXPECT_EQ(report.warnings(), 0u) << report.render();
}

// ---------------------------------------------------------------------------
// Seeded mutations: one corrupted invariant -> one exact dotted code.

TEST(VerifyMutation, DuplicateUid)
{
    Program prog = cleanProgram();
    insts(prog)[1].uid = 0;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.uid-dup"), 1u);
}

TEST(VerifyMutation, MissingUid)
{
    Program prog = cleanProgram();
    insts(prog)[2].uid = program::NoUid;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.uid-missing"), 1u);
}

TEST(VerifyMutation, FlowMidBlock)
{
    Program prog = cleanProgram();
    insts(prog)[1].arch.op = OpClass::Branch;
    insts(prog)[1].flow = FlowKind::Jump;
    insts(prog)[1].targetBlock = 0;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.flow-mid-block"), 1u);
}

TEST(VerifyMutation, FlowOpMismatch)
{
    Program prog = cleanProgram();
    insts(prog).back().arch.op = OpClass::IntAlu;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.flow-op-mismatch"), 1u);
}

TEST(VerifyMutation, TargetBlockOutOfRange)
{
    Program prog = cleanProgram();
    insts(prog).back().targetBlock = 57;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.target-block-range"), 1u);
}

TEST(VerifyMutation, TargetFuncOutOfRange)
{
    Program prog = cleanProgram();
    auto &tail = insts(prog).back();
    tail.arch.op = OpClass::Call;
    tail.flow = FlowKind::CallFn;
    tail.targetFunc = 99;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.target-func-range"), 1u);
}

TEST(VerifyMutation, IndirectTableOutOfRange)
{
    Program prog = cleanProgram();
    auto &tail = insts(prog).back();
    tail.arch.op = OpClass::Call;
    tail.flow = FlowKind::CallFn;
    tail.indirectTable = 3; // no tables registered
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.indirect-table-range"), 1u);
}

TEST(VerifyMutation, RegisterOutOfRange)
{
    Program prog = cleanProgram();
    insts(prog)[1].arch.src1 = isa::NumArchRegs; // r16: one past the file
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.reg-range"), 1u);
}

TEST(VerifyMutation, ThumbPredicated)
{
    Program prog = cleanProgram();
    insts(prog)[1].format = Format::Thumb16;
    insts(prog)[1].arch.predicated = true;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.thumb-predicated"), 1u);
    EXPECT_FALSE(report.clean());

    // CritIC.Ideal deliberately ignores encodability: same finding,
    // downgraded to an advisory.
    verify::StructuralOptions ideal;
    ideal.idealThumb = true;
    const auto relaxed = structuralReport(prog, ideal);
    EXPECT_EQ(relaxed.countOf("verify.struct.thumb-predicated"), 1u);
    EXPECT_TRUE(relaxed.clean());
}

TEST(VerifyMutation, ThumbRegisterOutOfRange)
{
    Program prog = cleanProgram();
    insts(prog)[1].format = Format::Thumb16;
    insts(prog)[1].arch.dst = isa::ThumbMaxDstReg + 1;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.thumb-reg-range"), 1u);
}

TEST(VerifyMutation, ThumbOpWithoutEncoding)
{
    Program prog = cleanProgram();
    insts(prog)[1].format = Format::Thumb16;
    insts(prog)[1].arch.op = OpClass::IntDiv;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.thumb-op"), 1u);
}

TEST(VerifyMutation, CdpRunOutOfRange)
{
    Program prog = cleanProgram();
    auto &si = insts(prog)[0];
    si.arch.op = OpClass::Cdp;
    si.arch.dst = isa::NoReg;
    si.format = Format::Thumb16;
    si.cdpRun = static_cast<std::uint8_t>(isa::MaxCdpRun + 1);
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.cdp-run-range"), 1u);
}

TEST(VerifyMutation, CdpRunOnNonCdp)
{
    Program prog = cleanProgram();
    insts(prog)[1].cdpRun = 3;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.cdp-run-range"), 1u);
}

TEST(VerifyMutation, CdpOverrun)
{
    Program prog = cleanProgram();
    auto &si = insts(prog)[4]; // second-to-last: run of 9 dangles
    si.arch.op = OpClass::Cdp;
    si.arch.src1 = isa::NoReg;
    si.memPattern = program::MemPattern::None;
    si.format = Format::Thumb16;
    si.cdpRun = 9;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.cdp-overrun"), 1u);
}

TEST(VerifyMutation, CdpNestedAndCoversArm)
{
    // cdp(run 3) covering [alu16, cdp, alu32]: one nested switch, one
    // 32-bit instruction inside a 16-bit run.
    BasicBlock bb;
    StaticInst cdp0 = inst(0, OpClass::Cdp, isa::NoReg);
    cdp0.format = Format::Thumb16;
    cdp0.cdpRun = 3;
    bb.insts.push_back(cdp0);
    StaticInst alu = inst(1, OpClass::IntAlu, 0);
    alu.format = Format::Thumb16;
    bb.insts.push_back(alu);
    StaticInst cdp1 = inst(2, OpClass::Cdp, isa::NoReg);
    cdp1.format = Format::Thumb16;
    cdp1.cdpRun = 1;
    bb.insts.push_back(cdp1);
    bb.insts.push_back(inst(3, OpClass::IntAlu, 1, 0)); // Arm32
    bb.insts.push_back(inst(4, OpClass::IntAlu, 2, 1));
    Program prog = makeProgram({bb});
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.cdp-nested"), 1u);
    EXPECT_EQ(report.countOf("verify.struct.cdp-covers-arm"), 1u);
}

TEST(VerifyMutation, SwitchBranchUnpaired)
{
    Program prog = cleanProgram();
    // A lone Arm32 switch opener (Branch + FallThrough) mid-block.
    auto &si = insts(prog)[1];
    si.arch.op = OpClass::Branch;
    si.arch.dst = isa::NoReg;
    si.arch.src1 = isa::NoReg;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.switch-unpaired"), 1u);
}

TEST(VerifyMutation, SwitchRegionCoversArm)
{
    BasicBlock bb;
    StaticInst open = inst(0, OpClass::Branch, isa::NoReg);
    bb.insts.push_back(open); // Arm32 opener
    bb.insts.push_back(inst(1, OpClass::IntAlu, 0)); // Arm32 inside!
    StaticInst close = inst(2, OpClass::Branch, isa::NoReg);
    close.format = Format::Thumb16;
    bb.insts.push_back(close);
    Program prog = makeProgram({bb});
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.switch-covers-arm"), 1u);
    EXPECT_EQ(report.countOf("verify.struct.switch-unpaired"), 0u);
}

TEST(VerifyMutation, MemMetaOnNonMemory)
{
    Program prog = cleanProgram();
    insts(prog)[1].memPattern = program::MemPattern::Stride;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.mem-meta"), 1u);
    EXPECT_FALSE(report.clean());
}

TEST(VerifyMutation, MemMetaMissingIsWarning)
{
    Program prog = cleanProgram();
    insts(prog)[2].memPattern = program::MemPattern::None;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.mem-meta"), 1u);
    EXPECT_TRUE(report.clean()); // warning, not error
    EXPECT_EQ(report.warnings(), 1u);
}

TEST(VerifyMutation, MemRegionOutOfRange)
{
    Program prog = cleanProgram();
    insts(prog)[2].memRegionId = 200;
    const auto report = structuralReport(prog);
    EXPECT_EQ(report.countOf("verify.struct.mem-region-range"), 1u);
}

// ---------------------------------------------------------------------------
// Differential dataflow.

TEST(VerifyDataflow, IdenticalProgramIsClean)
{
    Program prog = cleanProgram();
    verify::DataflowSnapshot pre;
    pre.capture(prog);
    verify::Report report;
    verify::verifyDataflow(pre, prog, report);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.errors() + report.warnings() + report.advice(), 0u);
}

TEST(VerifyDataflow, UidVanished)
{
    Program prog = cleanProgram();
    verify::DataflowSnapshot pre;
    pre.capture(prog);
    insts(prog).erase(insts(prog).begin() + 3);
    verify::Report report;
    verify::verifyDataflow(pre, prog, report);
    EXPECT_EQ(report.countOf("verify.dataflow.uid-vanished"), 1u);
}

TEST(VerifyDataflow, UidMovedAcrossBlocks)
{
    BasicBlock a, b;
    a.insts.push_back(inst(0, OpClass::IntAlu, 0));
    a.insts.push_back(inst(1, OpClass::IntAlu, 1, 0));
    b.insts.push_back(inst(2, OpClass::IntAlu, 2));
    Program prog = makeProgram({a, b});
    verify::DataflowSnapshot pre;
    pre.capture(prog);
    auto &blocks = prog.funcs[0].blocks;
    blocks[1].insts.push_back(blocks[0].insts.back());
    blocks[0].insts.pop_back();
    verify::Report report;
    verify::verifyDataflow(pre, prog, report);
    EXPECT_EQ(report.countOf("verify.dataflow.uid-moved"), 1u);
}

TEST(VerifyDataflow, UseBeforeDef)
{
    // [def r1, use r1] reordered to [use r1, def r1]: the use now
    // reads the live-in value.
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 2, 1));
    Program prog = makeProgram({bb});
    verify::DataflowSnapshot pre;
    pre.capture(prog);
    std::swap(insts(prog)[0], insts(prog)[1]);
    verify::Report report;
    verify::verifyDataflow(pre, prog, report);
    EXPECT_EQ(report.countOf("verify.dataflow.use-before-def"), 1u);
}

TEST(VerifyDataflow, RawBrokenByRedefSwap)
{
    // [def r1 (uid 0), def r1 (uid 1), use r1]: swapping the two defs
    // silently changes which value the use reads.
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 1, 2));
    bb.insts.push_back(inst(2, OpClass::IntAlu, 3, 1));
    Program prog = makeProgram({bb});
    verify::DataflowSnapshot pre;
    pre.capture(prog);
    std::swap(insts(prog)[0], insts(prog)[1]);
    verify::Report report;
    verify::verifyDataflow(pre, prog, report);
    EXPECT_EQ(report.countOf("verify.dataflow.raw-broken"), 1u);
}

TEST(VerifyDataflow, MovExpansionResolvesTransitively)
{
    // The OPP16 expansion shape: an inserted mov forwards uid 0's
    // value, and the consumer reads it through the mov.  The
    // differential check must trace through the inserted uid and stay
    // clean.
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 3, 1, 2));
    Program prog = makeProgram({bb});
    verify::DataflowSnapshot pre;
    pre.capture(prog);

    StaticInst mov = inst(100, OpClass::IntAlu, 3, 1);
    mov.format = Format::Thumb16;
    auto &body = insts(prog);
    body.insert(body.begin() + 1, mov);
    body[2].arch.src1 = 3; // consumer now reads through the mov

    verify::Report report;
    verify::verifyDataflow(pre, prog, report);
    EXPECT_TRUE(report.clean()) << report.render();
}

TEST(VerifyDataflow, ChainSplitDetected)
{
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 0));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 1)); // interloper
    bb.insts.push_back(inst(2, OpClass::IntAlu, 2, 0));
    Program prog = makeProgram({bb});
    verify::Report report;
    verify::verifyChainsContiguous(prog, {{0, 2}}, report);
    EXPECT_EQ(report.countOf("verify.dataflow.chain-split"), 1u);

    // A CDP interleaved between members is the transform's own switch
    // and does not split the chain.
    BasicBlock ok;
    ok.insts.push_back(inst(0, OpClass::IntAlu, 0));
    StaticInst cdp = inst(1, OpClass::Cdp, isa::NoReg);
    cdp.format = Format::Thumb16;
    cdp.cdpRun = 1;
    ok.insts.push_back(cdp);
    ok.insts.push_back(inst(2, OpClass::IntAlu, 2, 0));
    ok.insts.back().format = Format::Thumb16;
    Program prog2 = makeProgram({ok});
    verify::Report report2;
    verify::verifyChainsContiguous(prog2, {{0, 2}}, report2);
    EXPECT_TRUE(report2.clean()) << report2.render();
}

// ---------------------------------------------------------------------------
// Advisory lints.

TEST(VerifyLint, DeadSwitchAndUnconvertedRun)
{
    BasicBlock bb;
    StaticInst cdp = inst(0, OpClass::Cdp, isa::NoReg);
    cdp.format = Format::Thumb16;
    cdp.cdpRun = 1; // switch word costs more than it saves
    bb.insts.push_back(cdp);
    StaticInst covered = inst(1, OpClass::IntAlu, 0);
    covered.format = Format::Thumb16;
    bb.insts.push_back(covered);
    // Three directly convertible 32-bit instructions in a row.
    bb.insts.push_back(inst(2, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(3, OpClass::IntAlu, 1, 1));
    bb.insts.push_back(inst(4, OpClass::IntAlu, 1, 1));
    Program prog = makeProgram({bb});
    verify::Report report;
    verify::lintAdvisories(prog, report, 3);
    EXPECT_EQ(report.countOf("verify.lint.dead-switch"), 1u);
    EXPECT_EQ(report.countOf("verify.lint.unconverted-run"), 1u);
    EXPECT_TRUE(report.clean());
}

// ---------------------------------------------------------------------------
// Pass post-conditions and audits.

TEST(VerifyPass, PassBracketsPanicOnCorruptOutput)
{
    // A PassVerifier without an audit escalates error findings to a
    // panic naming the pass.
    Program prog = cleanProgram();
    verify::PassVerifier v("test-pass", prog);
    insts(prog)[1].uid = 0; // corrupt: duplicate uid
    EXPECT_THROW(v.finish(prog), std::logic_error);
}

TEST(VerifyPass, AuditCollectsInsteadOfPanicking)
{
    Program prog = cleanProgram();
    verify::PassAudit audit;
    verify::PassVerifier v("test-pass", prog, &audit);
    insts(prog)[1].uid = 0;
    EXPECT_NO_THROW(v.finish(prog));
    EXPECT_EQ(audit.report.countOf("verify.struct.uid-dup"), 1u);
}

TEST(VerifyPass, CriticPassExplainsSkips)
{
    // A chain whose second member carries an immediate payload is not
    // directly convertible: with an audit attached, the pass says so.
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 0));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 1, 0));
    bb.insts.push_back(inst(2, OpClass::IntAlu, 2, 1));
    bb.insts[2].arch.imm = 42; // no immediate field in 16-bit format
    Program prog = makeProgram({bb});

    verify::PassAudit audit;
    compiler::CritIcPassOptions opt;
    const auto stats = compiler::applyCritIcPass(
        prog, {{0, 1, 2}}, opt, &audit);
    EXPECT_EQ(stats.instsConverted, 0u);
    EXPECT_EQ(audit.report.countOf("verify.pass.unconvertible"), 1u);
    EXPECT_TRUE(audit.report.clean()) << audit.report.render();
}

TEST(VerifyPass, StaleChainReported)
{
    Program prog = cleanProgram();
    verify::PassAudit audit;
    compiler::CritIcPassOptions opt;
    compiler::applyCritIcPass(prog, {{77, 78}}, opt, &audit);
    EXPECT_GE(audit.report.countOf("verify.pass.chain-stale"), 1u);
    EXPECT_TRUE(audit.report.clean());
}

TEST(VerifyPass, TransformedVariantsAuditClean)
{
    // End-to-end: every software transform over a synthesized app
    // passes the full audit (structural + dataflow + contiguity).
    workload::AppProfile profile = workload::findApp("Acrobat");
    sim::ExperimentOptions options;
    options.traceInsts = 30000;
    sim::AppExperiment exp(profile, options);

    for (const sim::Transform t :
         {sim::Transform::Hoist, sim::Transform::CritIc,
          sim::Transform::CritIcIdeal, sim::Transform::Opp16,
          sim::Transform::Compress, sim::Transform::Opp16PlusCritIc}) {
        sim::Variant variant;
        variant.transform = t;
        verify::PassAudit audit;
        Program prog = exp.baseProgram();
        exp.applyTransform(prog, variant, nullptr, &audit);
        EXPECT_TRUE(audit.report.clean())
            << "transform " << static_cast<int>(t) << ":\n"
            << audit.report.render();
        EXPECT_EQ(audit.report.warnings(), 0u);
    }
}

// ---------------------------------------------------------------------------
// Levels, counters, report plumbing.

TEST(VerifyLevel, EnvParsing)
{
    const char *saved = std::getenv("CRITICS_VERIFY");
    const std::string restore = saved ? saved : "";

    ::setenv("CRITICS_VERIFY", "off", 1);
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Off);
    ::setenv("CRITICS_VERIFY", "0", 1);
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Off);
    ::setenv("CRITICS_VERIFY", "struct", 1);
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Structural);
    ::setenv("CRITICS_VERIFY", "structural", 1);
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Structural);
    ::setenv("CRITICS_VERIFY", "full", 1);
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Full);
    ::setenv("CRITICS_VERIFY", "2", 1);
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Full);
    ::setenv("CRITICS_VERIFY", "global", 1);
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Global);
    ::setenv("CRITICS_VERIFY", "3", 1);
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Global);
    ::unsetenv("CRITICS_VERIFY");
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Structural);
    // Unknown values warn (once) and fall back to the default.
    ::setenv("CRITICS_VERIFY", "bogus", 1);
    EXPECT_EQ(verify::levelFromEnv(), verify::Level::Structural);

    if (saved)
        ::setenv("CRITICS_VERIFY", restore.c_str(), 1);
    else
        ::unsetenv("CRITICS_VERIFY");
}

TEST(VerifyCounters, PassesBumpProcessCounters)
{
    const auto structBefore = verify::counters().structuralChecks.load();
    Program prog = cleanProgram();
    compiler::applyOpp16Pass(prog);
    EXPECT_GT(verify::counters().structuralChecks.load(), structBefore);
}

TEST(VerifyCounters, RegisterStatsExposesFormulas)
{
    stats::StatRegistry reg;
    verify::registerStats(reg);
    const auto snapshot = reg.snapshot();
    std::vector<std::string> names;
    for (const auto &[name, value] : snapshot) {
        (void)value;
        names.push_back(name);
    }
    for (const char *want :
         {"verify.structChecks", "verify.fullChecks", "verify.errors",
          "verify.warnings", "verify.advisories"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), want),
                  names.end())
            << "missing " << want;
    }
}

TEST(VerifyReport, CapsStoredDiagnosticsButCountsAll)
{
    verify::Report report;
    for (int i = 0; i < 200; ++i)
        report.report(verify::Severity::Advice, "verify.lint.test",
                      "advisory " + std::to_string(i));
    EXPECT_EQ(report.countOf("verify.lint.test"), 200u);
    EXPECT_EQ(report.advice(), 200u);
    EXPECT_LE(report.diags().size(), verify::Report::MaxStoredPerCode);
}

TEST(VerifyReport, JsonRoundTrips)
{
    Program prog = cleanProgram();
    insts(prog)[1].uid = 0;
    insts(prog)[2].memRegionId = 200;
    const auto report = structuralReport(prog);

    json::JsonWriter w;
    w.beginObject();
    report.writeJson(w);
    w.endObject();
    const auto doc = json::parseJson(w.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("errors")->asUint().value_or(0), 2u);
    const json::JsonValue *codes = doc->find("codes");
    ASSERT_NE(codes, nullptr);
    EXPECT_NE(codes->find("verify.struct.uid-dup"), nullptr);
    EXPECT_NE(codes->find("verify.struct.mem-region-range"), nullptr);
    const json::JsonValue *findings = doc->find("findings");
    ASSERT_NE(findings, nullptr);
    EXPECT_EQ(findings->elements.size(), 2u);
}

TEST(VerifyReport, RenderNamesCodeAndLocation)
{
    Program prog = cleanProgram();
    insts(prog)[2].memRegionId = 200;
    const auto report = structuralReport(prog);
    const std::string text = report.render();
    EXPECT_NE(text.find("verify.struct.mem-region-range"),
              std::string::npos);
    EXPECT_NE(text.find("test_fn"), std::string::npos);
}
