/**
 * @file
 * Edge cases in program/dfg.cc beyond test_program.cc's basics: the
 * store/store disambiguation matrix, terminator/CDP immobility from
 * both sides, hoistUpTo's displaced-order invariant and early stop,
 * and dependsOn direction/reflexivity corners.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "program/dfg.hh"

using namespace critics;
using critics::test::inst;
using program::BasicBlock;
using program::FlowKind;
using program::StaticInst;
using program::canSwap;
using program::hoistUpTo;
using isa::OpClass;

namespace
{

StaticInst
store(program::InstUid uid, std::uint8_t src, std::uint32_t region,
      std::uint8_t aliasClass)
{
    StaticInst si = inst(uid, OpClass::Store, isa::NoReg, src);
    si.memRegionId = region;
    si.aliasClass = aliasClass;
    return si;
}

} // namespace

TEST(CanSwap, StoreStoreSameRegionSameClassBlocks)
{
    const StaticInst a = store(0, 1, 0, 3);
    const StaticInst b = store(1, 2, 0, 3);
    EXPECT_FALSE(canSwap(a, b));
}

TEST(CanSwap, StoreStoreSameRegionDifferentClassSwaps)
{
    const StaticInst a = store(0, 1, 0, 3);
    const StaticInst b = store(1, 2, 0, 4);
    EXPECT_TRUE(canSwap(a, b));
}

TEST(CanSwap, StoreStoreDifferentRegionSwaps)
{
    // Same alias class but provably disjoint regions.
    const StaticInst a = store(0, 1, 0, 3);
    const StaticInst b = store(1, 2, 1, 3);
    EXPECT_TRUE(canSwap(a, b));
}

TEST(CanSwap, StoreStoreWildcardClassBlocksEitherSide)
{
    const StaticInst a = store(0, 1, 0, 0xFF);
    const StaticInst b = store(1, 2, 0, 5);
    EXPECT_FALSE(canSwap(a, b));
    EXPECT_FALSE(canSwap(b, a));
}

TEST(CanSwap, TerminatorAndCdpBlockFromBothSides)
{
    StaticInst jump = inst(0, OpClass::Branch, isa::NoReg);
    jump.flow = FlowKind::Jump;
    const StaticInst alu = inst(1, OpClass::IntAlu, 4);
    EXPECT_FALSE(canSwap(jump, alu));
    EXPECT_FALSE(canSwap(alu, jump));

    StaticInst cdp = inst(2, OpClass::Cdp, isa::NoReg);
    cdp.format = isa::Format::Thumb16;
    cdp.cdpRun = 1;
    EXPECT_FALSE(canSwap(cdp, alu));
    EXPECT_FALSE(canSwap(alu, cdp)); // can't drift into a covered run
}

TEST(HoistUpTo, EarlyStopPreservesDisplacedOrder)
{
    // The mover (reads r2) bubbles past two independents, stops just
    // below its r2 producer, and the displaced instructions keep their
    // relative order.
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 2, 1));
    bb.insts.push_back(inst(2, OpClass::IntAlu, 3));
    bb.insts.push_back(inst(3, OpClass::IntAlu, 4));
    bb.insts.push_back(inst(4, OpClass::IntAlu, 5, 2)); // reads r2
    const std::size_t landed = hoistUpTo(bb, 4, 0);
    EXPECT_EQ(landed, 2u);
    EXPECT_EQ(bb.insts[0].uid, 0u);
    EXPECT_EQ(bb.insts[1].uid, 1u); // producer stays put
    EXPECT_EQ(bb.insts[2].uid, 4u); // mover lands just after it
    EXPECT_EQ(bb.insts[3].uid, 2u); // displaced insts slid down in order
    EXPECT_EQ(bb.insts[4].uid, 3u);
}

TEST(HoistUpTo, ReachesAnchorWhenPathIsClear)
{
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 2));
    bb.insts.push_back(inst(2, OpClass::IntAlu, 3));
    bb.insts.push_back(inst(3, OpClass::IntAlu, 4, 1)); // only needs r1
    const std::size_t landed = hoistUpTo(bb, 3, 0);
    EXPECT_EQ(landed, 1u);
    EXPECT_EQ(bb.insts[1].uid, 3u);
}

TEST(HoistUpTo, StoppedByStoreStoreAliasing)
{
    // A store cannot bubble past a may-aliasing store even when no
    // registers conflict.
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 1));
    bb.insts.push_back(store(1, 2, 0, 7));
    bb.insts.push_back(store(2, 3, 0, 7));
    const std::size_t landed = hoistUpTo(bb, 2, 0);
    EXPECT_EQ(landed, 2u);
}

TEST(BlockDfg, DependsOnDirectionAndReflexivity)
{
    // 0: def r1; 1: r2 = f(r1); 2: r3 = f(r2); 3: independent.
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 2, 1));
    bb.insts.push_back(inst(2, OpClass::IntAlu, 3, 2));
    bb.insts.push_back(inst(3, OpClass::IntAlu, 7));
    const program::BlockDfg dfg(bb);
    EXPECT_TRUE(dfg.dependsOn(2, 0));  // through the chain
    EXPECT_FALSE(dfg.dependsOn(3, 0));
    EXPECT_FALSE(dfg.dependsOn(0, 2)); // direction matters
    EXPECT_FALSE(dfg.dependsOn(2, 2)); // not reflexive
}

TEST(BlockDfg, ProducersTrackRedefinition)
{
    // The second def of r1 shadows the first for later readers.
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(1, OpClass::IntAlu, 1));
    bb.insts.push_back(inst(2, OpClass::IntAlu, 2, 1));
    const program::BlockDfg dfg(bb);
    EXPECT_EQ(dfg.producers(2)[0], 1);
    EXPECT_TRUE(dfg.consumers(0).empty());
    ASSERT_EQ(dfg.consumers(1).size(), 1u);
    EXPECT_EQ(dfg.consumers(1)[0], 2);
}
