/**
 * @file
 * Shared construction helpers for the test suite: tiny hand-built
 * programs, blocks and traces with known dataflow.
 */

#ifndef CRITICS_TESTS_HELPERS_HH
#define CRITICS_TESTS_HELPERS_HH

#include "program/program.hh"
#include "program/trace.hh"

namespace critics::test
{

using program::BasicBlock;
using program::Program;
using program::StaticInst;
using isa::NoReg;
using isa::OpClass;

/** Build a StaticInst with explicit uid and operands. */
inline StaticInst
inst(program::InstUid uid, OpClass op, std::uint8_t dst,
     std::uint8_t src1 = NoReg, std::uint8_t src2 = NoReg)
{
    StaticInst si;
    si.uid = uid;
    si.arch.op = op;
    si.arch.dst = dst;
    si.arch.src1 = src1;
    si.arch.src2 = src2;
    if (op == OpClass::Load || op == OpClass::Store) {
        si.memPattern = program::MemPattern::HotRegion;
        si.memRegionId = 0;
        si.aliasClass = static_cast<std::uint8_t>(uid % 16);
    }
    return si;
}

/** Wrap blocks into a one-function program with a default hot region. */
inline Program
makeProgram(std::vector<BasicBlock> blocks)
{
    Program prog;
    prog.memRegions = {
        {0x40000000u, 64u << 10, 0},
        {0x50000000u, 1u << 20, 0},
        {0x60000000u, 1u << 20, 64},
    };
    program::Function fn;
    fn.name = "test_fn";
    fn.blocks = std::move(blocks);
    prog.funcs.push_back(std::move(fn));
    prog.layout();
    return prog;
}

/** Build a DynInst for hand-made traces. */
inline program::DynInst
dyn(std::uint32_t uid, std::uint32_t address, OpClass op,
    program::DynIdx dep0 = program::NoDep,
    program::DynIdx dep1 = program::NoDep, std::uint8_t sizeBytes = 4)
{
    program::DynInst d;
    d.staticUid = uid;
    d.address = address;
    d.op = op;
    d.dep0 = dep0;
    d.dep1 = dep1;
    d.sizeBytes = sizeBytes;
    return d;
}

/** A trace of `n` independent single-cycle ALU ops in a small loop of
 *  code (always i-cache resident after the first lines). */
inline program::Trace
independentAluTrace(std::size_t n, std::size_t loopInsts = 256)
{
    program::Trace trace;
    for (std::size_t i = 0; i < n; ++i) {
        trace.insts.push_back(dyn(
            static_cast<std::uint32_t>(i % loopInsts),
            static_cast<std::uint32_t>(0x10000 + 4 * (i % loopInsts)),
            OpClass::IntAlu));
    }
    return trace;
}

/** A fully serial dependence chain (each op depends on its
 *  predecessor). */
inline program::Trace
serialChainTrace(std::size_t n, std::size_t loopInsts = 256)
{
    program::Trace trace = independentAluTrace(n, loopInsts);
    for (std::size_t i = 1; i < n; ++i)
        trace.insts[i].dep0 = static_cast<program::DynIdx>(i - 1);
    return trace;
}

} // namespace critics::test

#endif // CRITICS_TESTS_HELPERS_HH
