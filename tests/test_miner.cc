/**
 * @file
 * Tests for CritIC mining and selection: signature aggregation,
 * end-trimming, thresholding, length handling, convertibility and
 * non-overlap constraints, and the coverage CDF.  The miner runs under
 * both analyze paths (flat and the CRITICS_FLAT_ANALYZE=off legacy
 * escape hatch); golden hand-built traces pin the aggregation numbers.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "analysis/miner.hh"
#include "analysis/mode.hh"
#include "helpers.hh"
#include "program/emit.hh"
#include "program/walker.hh"

using namespace critics;
using namespace critics::test;
using analysis::CriticalityConfig;
using analysis::DynChains;
using analysis::MinedChain;
using analysis::MineResult;
using analysis::SelectOptions;

namespace
{

/** A single-block loop program containing one designed chain:
 *  C1 (uid 1) -> link (uid 2) -> C2 (uid 3) with enough consumers for
 *  both chain nodes to be high fanout. */
Program
chainLoopProgram()
{
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 6)); // filler def
    bb.insts.push_back(inst(1, OpClass::IntAlu, 1));         // C1
    bb.insts.push_back(inst(2, OpClass::IntAlu, 2, 1));      // link
    bb.insts.push_back(inst(3, OpClass::IntAlu, 3, 2));      // C2
    std::uint32_t uid = 4;
    for (int c = 0; c < 12; ++c) // consumers of C1 and C2
        bb.insts.push_back(inst(uid++, OpClass::IntAlu,
                                static_cast<std::uint8_t>(8 + c % 3),
                                1, 3));
    StaticInst loop = inst(uid++, OpClass::Branch, isa::NoReg, 8);
    loop.flow = program::FlowKind::CondBranch;
    loop.targetBlock = 0;
    loop.takenBias = 1.0f;
    bb.insts.push_back(loop);
    return makeProgram({bb});
}

struct Mined
{
    Program prog;
    program::Trace trace;
    analysis::FanoutInfo fanout;
    analysis::DynChains chains;
    MineResult result;
};

Mined
mineChainLoop(double profileFraction = 1.0)
{
    Mined m;
    m.prog = chainLoopProgram();
    Rng rng(3);
    program::WalkLimits limits;
    limits.targetInsts = 6000;
    const auto path = program::walkProgram(m.prog, rng, limits);
    m.trace = program::emitTrace(m.prog, path);
    CriticalityConfig cfg;
    m.fanout = analysis::computeFanout(m.trace, cfg);
    m.chains = analysis::extractChains(m.trace, m.fanout, cfg);
    m.result = analysis::mineCritIcs(m.trace, m.prog, m.chains,
                                     m.fanout, cfg, profileFraction);
    return m;
}

/** Run a callable under a forced analyze path, restoring after. */
template <typename Fn>
auto
withAnalyzePath(bool flat, Fn &&fn)
{
    const bool prev = analysis::flatAnalyzeEnabled();
    analysis::setFlatAnalyze(flat);
    auto result = fn();
    analysis::setFlatAnalyze(prev);
    return result;
}

/**
 * A hand-built mining input with fully known trim behavior:
 *
 *  - two executions of a 5-member dyn chain over uids 0..4 whose fanout
 *    pattern [0, 9, 9, 9, 0] forces the trim loop to shave both ends
 *    (avg 5.4 < 8, then 6.75 < 8, then 9 >= 8) down to uids [1,2,3];
 *  - one 2-member chain (uids 0 and 4, fanouts 3 and 3) that survives
 *    the >= 2 length floor, is aggregated, and is then dropped by the
 *    avg-fanout threshold.
 */
struct GoldenInput
{
    Program prog;
    program::Trace trace;
    analysis::FanoutInfo fanout;
    DynChains chains;
    CriticalityConfig cfg;
};

GoldenInput
goldenInput()
{
    GoldenInput g;
    BasicBlock bb;
    for (std::uint32_t k = 0; k < 5; ++k)
        bb.insts.push_back(
            inst(k, OpClass::IntAlu, static_cast<std::uint8_t>(k)));
    g.prog = makeProgram({bb});

    const std::uint16_t fanouts[] = {0, 9, 9, 9, 0};
    for (int rep = 0; rep < 2; ++rep) {
        for (std::uint32_t k = 0; k < 5; ++k) {
            g.trace.insts.push_back(
                dyn(k, 0x10000 + 4 * k, OpClass::IntAlu));
            g.fanout.fanout.push_back(fanouts[k]);
        }
    }
    g.trace.insts.push_back(dyn(0, 0x10000, OpClass::IntAlu));
    g.fanout.fanout.push_back(3);
    g.trace.insts.push_back(dyn(4, 0x10010, OpClass::IntAlu));
    g.fanout.fanout.push_back(3);
    g.fanout.critMask.assign(g.trace.size(), 0);

    g.chains.members = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
    g.chains.offsets = {0, 5, 10, 12};
    return g;
}

} // namespace

/** Both analyze paths; GetParam() == true selects flat. */
class MinerPath : public ::testing::TestWithParam<bool>
{
  protected:
    void
    SetUp() override
    {
        prev_ = analysis::flatAnalyzeEnabled();
        analysis::setFlatAnalyze(GetParam());
    }

    void TearDown() override { analysis::setFlatAnalyze(prev_); }

  private:
    bool prev_ = true;
};

INSTANTIATE_TEST_SUITE_P(Paths, MinerPath, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "flat" : "legacy";
                         });

TEST(Miner, FindsTheDesignedChain)
{
    const auto m = mineChainLoop();
    ASSERT_FALSE(m.result.chains.empty());
    // The top chain by coverage must be (a superset of) 1 -> 2 -> 3.
    const auto &top = m.result.chains.front();
    ASSERT_GE(top.uids.size(), 3u);
    EXPECT_EQ(top.uids[0], 1u);
    EXPECT_EQ(top.uids[1], 2u);
    EXPECT_EQ(top.uids[2], 3u);
    EXPECT_GE(top.avgFanout, 8.0);
    EXPECT_GT(top.dynCount, 100u);
    EXPECT_TRUE(top.directlyConvertible);
    EXPECT_EQ(top.memberFanout.size(), top.uids.size());
    EXPECT_EQ(top.memberConvertible.size(), top.uids.size());
}

TEST_P(MinerPath, GoldenTrimAndAggregation)
{
    const auto g = goldenInput();
    const auto result = analysis::mineCritIcs(
        g.trace, g.prog, g.chains, g.fanout, g.cfg, 1.0);

    EXPECT_EQ(result.dynInsts, 12u);
    // Three segments survive the length floor: two trimmed copies of
    // uids [1,2,3] and the low-fanout pair [0,4].
    EXPECT_EQ(result.segmentsSeen, 3u);
    // The pair's avg fanout 3 < 8 drops it; one unique chain remains.
    ASSERT_EQ(result.chains.size(), 1u);
    const MinedChain &chain = result.chains.front();
    const std::vector<program::InstUid> uids = {1, 2, 3};
    EXPECT_EQ(chain.uids, uids);
    EXPECT_EQ(chain.dynCount, 2u);
    EXPECT_DOUBLE_EQ(chain.avgFanout, 9.0);
    const std::vector<double> member = {9.0, 9.0, 9.0};
    EXPECT_EQ(chain.memberFanout, member);
    const std::vector<std::uint8_t> conv = {1, 1, 1};
    EXPECT_EQ(chain.memberConvertible, conv);
    EXPECT_TRUE(chain.directlyConvertible);
    EXPECT_EQ(chain.coverage(), 6u);
}

TEST(Miner, FlatMatchesLegacy)
{
    const auto flat =
        withAnalyzePath(true, [] { return mineChainLoop(); });
    const auto legacy =
        withAnalyzePath(false, [] { return mineChainLoop(); });
    EXPECT_EQ(flat.result.dynInsts, legacy.result.dynInsts);
    EXPECT_EQ(flat.result.segmentsSeen, legacy.result.segmentsSeen);
    ASSERT_EQ(flat.result.chains.size(), legacy.result.chains.size());
    for (std::size_t i = 0; i < flat.result.chains.size(); ++i) {
        const MinedChain &a = flat.result.chains[i];
        const MinedChain &b = legacy.result.chains[i];
        EXPECT_EQ(a.uids, b.uids) << "chain " << i;
        EXPECT_EQ(a.dynCount, b.dynCount) << "chain " << i;
        EXPECT_DOUBLE_EQ(a.avgFanout, b.avgFanout) << "chain " << i;
        EXPECT_EQ(a.memberFanout, b.memberFanout) << "chain " << i;
        EXPECT_EQ(a.memberConvertible, b.memberConvertible)
            << "chain " << i;
        EXPECT_EQ(a.directlyConvertible, b.directlyConvertible)
            << "chain " << i;
    }
}

TEST_P(MinerPath, SharedLocTableMatchesPrivate)
{
    // Passing the AppExperiment-shared LocTable must not change
    // anything vs the miner building its own (or, on the legacy path,
    // ignoring it entirely).
    auto m = mineChainLoop();
    CriticalityConfig cfg;
    const analysis::LocTable locs(m.prog);
    const auto shared = analysis::mineCritIcs(
        m.trace, m.prog, m.chains, m.fanout, cfg, 1.0, &locs);
    ASSERT_EQ(shared.chains.size(), m.result.chains.size());
    for (std::size_t i = 0; i < shared.chains.size(); ++i) {
        EXPECT_EQ(shared.chains[i].uids, m.result.chains[i].uids);
        EXPECT_EQ(shared.chains[i].dynCount,
                  m.result.chains[i].dynCount);
    }
}

TEST(Miner, ChainsSortedByCoverage)
{
    const auto m = mineChainLoop();
    for (std::size_t i = 1; i < m.result.chains.size(); ++i) {
        EXPECT_GE(m.result.chains[i - 1].coverage(),
                  m.result.chains[i].coverage());
    }
}

TEST(Miner, ProfileFractionLimitsCounts)
{
    const auto full = mineChainLoop(1.0);
    const auto half = mineChainLoop(0.5);
    ASSERT_FALSE(full.result.chains.empty());
    ASSERT_FALSE(half.result.chains.empty());
    EXPECT_LT(half.result.chains.front().dynCount,
              full.result.chains.front().dynCount);
}

TEST(Selection, PicksAndCoversNonOverlapping)
{
    const auto m = mineChainLoop();
    const auto sel = analysis::selectCritIcs(m.result, {});
    ASSERT_FALSE(sel.chains.empty());
    EXPECT_GT(sel.expectedCoverage, 0.0);
    std::unordered_set<program::InstUid> seen;
    for (const auto &chain : sel.chains) {
        for (const auto uid : chain) {
            EXPECT_TRUE(seen.insert(uid).second)
                << "uid " << uid << " selected twice";
        }
    }
}

TEST(Selection, MaxLenTruncatesToBestWindow)
{
    const auto m = mineChainLoop();
    SelectOptions opt;
    opt.maxLen = 2;
    const auto sel = analysis::selectCritIcs(m.result, opt);
    for (const auto &chain : sel.chains)
        EXPECT_LE(chain.size(), 2u);
}

TEST(Selection, ExactLenFiltersStrictly)
{
    const auto m = mineChainLoop();
    SelectOptions opt;
    opt.exactLen = 3;
    const auto sel = analysis::selectCritIcs(m.result, opt);
    for (const auto &chain : sel.chains)
        EXPECT_EQ(chain.size(), 3u);
}

TEST(Selection, ConvertibilityFilter)
{
    auto m = mineChainLoop();
    // Poison every mined chain's convertibility — the whole-chain bit
    // and the per-member bits the windowed test consults.
    for (auto &chain : m.result.chains) {
        chain.directlyConvertible = false;
        std::fill(chain.memberConvertible.begin(),
                  chain.memberConvertible.end(),
                  static_cast<std::uint8_t>(0));
    }
    SelectOptions strict;
    strict.requireConvertible = true;
    EXPECT_TRUE(analysis::selectCritIcs(m.result, strict).chains.empty());
    SelectOptions ideal;
    ideal.ideal = true;
    EXPECT_FALSE(analysis::selectCritIcs(m.result, ideal).chains.empty());
}

TEST(Selection, ConvertibilityTestsTheSelectedWindow)
{
    // A chain whose ends are not Thumb-convertible but whose best
    // maxLen=2 window is: the window must pass the filter (the old code
    // tested the whole chain and skipped it).
    MineResult mined;
    mined.dynInsts = 100;
    MinedChain chain;
    chain.uids = {1, 2, 3, 4};
    chain.dynCount = 10;
    chain.avgFanout = 5.0;
    chain.memberFanout = {1.0, 9.0, 9.0, 1.0};
    chain.memberConvertible = {0, 1, 1, 0};
    chain.directlyConvertible = false;
    mined.chains.push_back(chain);

    SelectOptions two;
    two.maxLen = 2;
    const auto sel = analysis::selectCritIcs(mined, two);
    ASSERT_EQ(sel.chains.size(), 1u);
    const std::vector<program::InstUid> window = {2, 3};
    EXPECT_EQ(sel.chains.front(), window);
    EXPECT_DOUBLE_EQ(sel.expectedCoverage, 0.2);

    // maxLen=3 ties 1+9+9 vs 9+9+1; the first window wins and includes
    // the non-convertible uid 1, so the chain is (correctly) skipped.
    SelectOptions three;
    three.maxLen = 3;
    EXPECT_TRUE(analysis::selectCritIcs(mined, three).chains.empty());
}

TEST(Selection, MaxChainsCap)
{
    const auto m = mineChainLoop();
    SelectOptions opt;
    opt.maxChains = 1;
    EXPECT_LE(analysis::selectCritIcs(m.result, opt).chains.size(), 1u);
}

TEST(CoverageCdf, MonotoneNormalized)
{
    const auto m = mineChainLoop();
    const auto cdf = analysis::coverageCdf(m.result);
    ASSERT_FALSE(cdf.all.empty());
    for (std::size_t i = 1; i < cdf.all.size(); ++i) {
        EXPECT_GE(cdf.all[i].x, cdf.all[i - 1].x);
        EXPECT_GE(cdf.all[i].fraction, cdf.all[i - 1].fraction);
    }
    EXPECT_LE(cdf.all.back().fraction, 1.0 + 1e-9);
    EXPECT_GE(cdf.convertibleChainFraction, 0.0);
    EXPECT_LE(cdf.convertibleChainFraction, 1.0);
}

TEST(CoverageCdf, DecimationKeepsTheTerminalPoint)
{
    // For every series length the decimated curve must end at the true
    // terminal point (rank = #chains, fraction = total coverage): the
    // old 63 * stride index could truncate to size - 2.
    for (std::size_t n = 65; n <= 400; ++n) {
        MineResult mined;
        mined.dynInsts = 2 * n;
        for (std::size_t i = 0; i < n; ++i) {
            MinedChain chain;
            chain.uids = {static_cast<program::InstUid>(2 * i),
                          static_cast<program::InstUid>(2 * i + 1)};
            chain.dynCount = 1;
            chain.avgFanout = 9.0;
            chain.directlyConvertible = true;
            mined.chains.push_back(std::move(chain));
        }
        const auto cdf = analysis::coverageCdf(mined);
        ASSERT_EQ(cdf.all.size(), 64u) << "n=" << n;
        EXPECT_DOUBLE_EQ(cdf.all.front().x, 1.0) << "n=" << n;
        EXPECT_DOUBLE_EQ(cdf.all.back().x, static_cast<double>(n))
            << "n=" << n;
        EXPECT_NEAR(cdf.all.back().fraction, 1.0, 1e-12) << "n=" << n;
    }
}
