/**
 * @file
 * Tests for CritIC mining and selection: signature aggregation,
 * end-trimming, thresholding, length handling, convertibility and
 * non-overlap constraints, and the coverage CDF.
 */

#include <gtest/gtest.h>

#include "analysis/miner.hh"
#include "helpers.hh"
#include "program/emit.hh"
#include "program/walker.hh"

using namespace critics;
using namespace critics::test;
using analysis::CriticalityConfig;
using analysis::MineResult;
using analysis::SelectOptions;

namespace
{

/** A single-block loop program containing one designed chain:
 *  C1 (uid 1) -> link (uid 2) -> C2 (uid 3) with enough consumers for
 *  both chain nodes to be high fanout. */
Program
chainLoopProgram()
{
    BasicBlock bb;
    bb.insts.push_back(inst(0, OpClass::IntAlu, 6)); // filler def
    bb.insts.push_back(inst(1, OpClass::IntAlu, 1));         // C1
    bb.insts.push_back(inst(2, OpClass::IntAlu, 2, 1));      // link
    bb.insts.push_back(inst(3, OpClass::IntAlu, 3, 2));      // C2
    std::uint32_t uid = 4;
    for (int c = 0; c < 12; ++c) // consumers of C1 and C2
        bb.insts.push_back(inst(uid++, OpClass::IntAlu,
                                static_cast<std::uint8_t>(8 + c % 3),
                                1, 3));
    StaticInst loop = inst(uid++, OpClass::Branch, isa::NoReg, 8);
    loop.flow = program::FlowKind::CondBranch;
    loop.targetBlock = 0;
    loop.takenBias = 1.0f;
    bb.insts.push_back(loop);
    return makeProgram({bb});
}

struct Mined
{
    Program prog;
    program::Trace trace;
    analysis::FanoutInfo fanout;
    analysis::DynChains chains;
    MineResult result;
};

Mined
mineChainLoop(double profileFraction = 1.0)
{
    Mined m;
    m.prog = chainLoopProgram();
    Rng rng(3);
    program::WalkLimits limits;
    limits.targetInsts = 6000;
    const auto path = program::walkProgram(m.prog, rng, limits);
    m.trace = program::emitTrace(m.prog, path);
    CriticalityConfig cfg;
    m.fanout = analysis::computeFanout(m.trace, cfg);
    m.chains = analysis::extractChains(m.trace, m.fanout, cfg);
    m.result = analysis::mineCritIcs(m.trace, m.prog, m.chains,
                                     m.fanout, cfg, profileFraction);
    return m;
}

} // namespace

TEST(Miner, FindsTheDesignedChain)
{
    const auto m = mineChainLoop();
    ASSERT_FALSE(m.result.chains.empty());
    // The top chain by coverage must be (a superset of) 1 -> 2 -> 3.
    const auto &top = m.result.chains.front();
    ASSERT_GE(top.uids.size(), 3u);
    EXPECT_EQ(top.uids[0], 1u);
    EXPECT_EQ(top.uids[1], 2u);
    EXPECT_EQ(top.uids[2], 3u);
    EXPECT_GE(top.avgFanout, 8.0);
    EXPECT_GT(top.dynCount, 100u);
    EXPECT_TRUE(top.directlyConvertible);
    EXPECT_EQ(top.memberFanout.size(), top.uids.size());
}

TEST(Miner, ChainsSortedByCoverage)
{
    const auto m = mineChainLoop();
    for (std::size_t i = 1; i < m.result.chains.size(); ++i) {
        EXPECT_GE(m.result.chains[i - 1].coverage(),
                  m.result.chains[i].coverage());
    }
}

TEST(Miner, ProfileFractionLimitsCounts)
{
    const auto full = mineChainLoop(1.0);
    const auto half = mineChainLoop(0.5);
    ASSERT_FALSE(full.result.chains.empty());
    ASSERT_FALSE(half.result.chains.empty());
    EXPECT_LT(half.result.chains.front().dynCount,
              full.result.chains.front().dynCount);
}

TEST(Selection, PicksAndCoversNonOverlapping)
{
    const auto m = mineChainLoop();
    const auto sel = analysis::selectCritIcs(m.result, {});
    ASSERT_FALSE(sel.chains.empty());
    EXPECT_GT(sel.expectedCoverage, 0.0);
    std::unordered_set<program::InstUid> seen;
    for (const auto &chain : sel.chains) {
        for (const auto uid : chain) {
            EXPECT_TRUE(seen.insert(uid).second)
                << "uid " << uid << " selected twice";
        }
    }
}

TEST(Selection, MaxLenTruncatesToBestWindow)
{
    const auto m = mineChainLoop();
    SelectOptions opt;
    opt.maxLen = 2;
    const auto sel = analysis::selectCritIcs(m.result, opt);
    for (const auto &chain : sel.chains)
        EXPECT_LE(chain.size(), 2u);
}

TEST(Selection, ExactLenFiltersStrictly)
{
    const auto m = mineChainLoop();
    SelectOptions opt;
    opt.exactLen = 3;
    const auto sel = analysis::selectCritIcs(m.result, opt);
    for (const auto &chain : sel.chains)
        EXPECT_EQ(chain.size(), 3u);
}

TEST(Selection, ConvertibilityFilter)
{
    auto m = mineChainLoop();
    // Poison every mined chain's convertibility.
    for (auto &chain : m.result.chains)
        chain.directlyConvertible = false;
    SelectOptions strict;
    strict.requireConvertible = true;
    EXPECT_TRUE(analysis::selectCritIcs(m.result, strict).chains.empty());
    SelectOptions ideal;
    ideal.ideal = true;
    EXPECT_FALSE(analysis::selectCritIcs(m.result, ideal).chains.empty());
}

TEST(Selection, MaxChainsCap)
{
    const auto m = mineChainLoop();
    SelectOptions opt;
    opt.maxChains = 1;
    EXPECT_LE(analysis::selectCritIcs(m.result, opt).chains.size(), 1u);
}

TEST(CoverageCdf, MonotoneNormalized)
{
    const auto m = mineChainLoop();
    const auto cdf = analysis::coverageCdf(m.result);
    ASSERT_FALSE(cdf.all.empty());
    for (std::size_t i = 1; i < cdf.all.size(); ++i) {
        EXPECT_GE(cdf.all[i].x, cdf.all[i - 1].x);
        EXPECT_GE(cdf.all[i].fraction, cdf.all[i - 1].fraction);
    }
    EXPECT_LE(cdf.all.back().fraction, 1.0 + 1e-9);
    EXPECT_GE(cdf.convertibleChainFraction, 0.0);
    EXPECT_LE(cdf.convertibleChainFraction, 1.0);
}
