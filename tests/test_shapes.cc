/**
 * @file
 * Calibration-regression tests: the paper's *qualitative* claims, as
 * executable assertions over small-but-real experiment runs.  These
 * guard the workload/pipeline calibration — if a future change breaks
 * one of the orderings the reproduction stands on, it fails here
 * rather than silently skewing EXPERIMENTS.md.
 *
 * Kept small (three apps, 120k-instruction samples) so the whole
 * suite stays fast; the full-size numbers live in the benches.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace critics;
using sim::AppExperiment;
using sim::Transform;
using sim::Variant;

namespace
{

sim::ExperimentOptions
shapeOptions()
{
    sim::ExperimentOptions opt;
    opt.traceInsts = 120000;
    return opt;
}

double
speedupOf(AppExperiment &exp, const Variant &variant)
{
    return exp.speedup(exp.run(variant));
}

} // namespace

TEST(Shapes, MobileIsFrontEndBoundSpecIsBackEndBound)
{
    // Sec. II-D: the bottleneck shifts from the rear (SPEC) to the
    // front (mobile) of the pipeline.
    AppExperiment mobile(workload::findApp("Acrobat"), shapeOptions());
    AppExperiment spec(workload::findApp("mcf"), shapeOptions());

    const auto &m = mobile.baseline().cpu;
    const auto &s = spec.baseline().cpu;
    EXPECT_GT(m.fracStallForI(), s.fracStallForI());
    EXPECT_GT(s.fracStallForRd(), m.fracStallForRd());
    // Mobile i-cache pressure is the dominant supply stall.
    EXPECT_GT(m.stallForIIcache, m.stallForIRedirect / 2);
    EXPECT_LT(static_cast<double>(s.stallForIIcache) /
                  static_cast<double>(s.cycles),
              0.03);
}

TEST(Shapes, MobileHasMoreCriticalsButChainedOnes)
{
    // Fig. 1: mobile apps have MORE critical instructions, arranged in
    // chains (gaps 1..5), while SPEC criticals are isolated.
    AppExperiment mobile(workload::findApp("Office"), shapeOptions());
    AppExperiment spec(workload::findApp("lbm"), shapeOptions());

    EXPECT_GT(mobile.fanout().critFraction(),
              spec.fanout().critFraction());
    EXPECT_LT(mobile.chainStats().noDependentCritFrac,
              spec.chainStats().noDependentCritFrac);
    // Android chain gaps concentrate at 1..2.
    const auto &gaps = mobile.chainStats().critGap;
    EXPECT_GT(gaps.fraction(1) + gaps.fraction(2),
              gaps.fraction(0));
}

TEST(Shapes, SpecChainsAreLongMobileChainsAreShort)
{
    // Fig. 5a: SPEC ICs run orders of magnitude longer (loop-carried
    // recurrences accumulate with sample length, so this shape needs a
    // slightly longer sample than the other tests).
    sim::ExperimentOptions opt = shapeOptions();
    opt.traceInsts = 300000;
    AppExperiment mobile(workload::findApp("Facebook"), opt);
    AppExperiment spec(workload::findApp("namd"), opt);
    EXPECT_GT(spec.chainStats().icLength.maxBucket(),
              4 * mobile.chainStats().icLength.maxBucket());
}

TEST(Shapes, CritIcBeatsHoistAlone)
{
    // Fig. 10a: conversion + hoisting >> hoisting alone, averaged over
    // a few apps (per-app noise is real at this sample size).
    double critic = 0, hoist = 0;
    for (const char *app : {"Acrobat", "Office", "Music"}) {
        AppExperiment exp(workload::findApp(app), shapeOptions());
        Variant c;
        c.transform = Transform::CritIc;
        critic += speedupOf(exp, c);
        Variant h;
        h.transform = Transform::Hoist;
        hoist += speedupOf(exp, h);
    }
    EXPECT_GT(critic, hoist);
    EXPECT_GT(critic / 3.0, 1.0); // net positive on average
}

TEST(Shapes, BranchPairSwitchLosesMostOfTheGain)
{
    // Fig. 8: approach 1 keeps only a small fraction of the ideal.
    double branchPair = 0, ideal = 0;
    for (const char *app : {"Acrobat", "Office"}) {
        AppExperiment exp(workload::findApp(app), shapeOptions());
        Variant bp;
        bp.transform = Transform::CritIc;
        bp.switchMode = compiler::SwitchMode::BranchPair;
        branchPair += speedupOf(exp, bp);
        Variant zero;
        zero.transform = Transform::CritIc;
        zero.switchMode = compiler::SwitchMode::None;
        ideal += speedupOf(exp, zero);
    }
    EXPECT_LT(branchPair, ideal - 0.01);
}

TEST(Shapes, ProfileCoverageMonotone)
{
    // Fig. 12b: more profiling -> more selected coverage.
    AppExperiment exp(workload::findApp("Acrobat"), shapeOptions());
    double prev = -1.0;
    for (const double frac : {0.2, 0.5, 1.0}) {
        Variant v;
        v.transform = Transform::CritIc;
        v.profileFraction = frac;
        const auto result = exp.run(v);
        EXPECT_GE(result.selectionCoverage, prev);
        prev = result.selectionCoverage;
    }
}

TEST(Shapes, HardwareMechanismsComposeWithCritIc)
{
    // Fig. 11a: CritIC adds on top of a hardware mechanism.
    AppExperiment exp(workload::findApp("Office"), shapeOptions());
    Variant hw;
    hw.icache4x = true;
    Variant both = hw;
    both.transform = Transform::CritIc;
    EXPECT_GT(speedupOf(exp, both), speedupOf(exp, hw));
}

TEST(Shapes, PrefetchHelpsSpecMoreThanMobile)
{
    // Fig. 1a: the classic criticality prefetch pays on SPEC, not on
    // mobile.
    AppExperiment spec(workload::findApp("mcf"), shapeOptions());
    AppExperiment mobile(workload::findApp("Browser"), shapeOptions());
    Variant pf;
    pf.criticalLoadPrefetch = true;
    EXPECT_GT(speedupOf(spec, pf), speedupOf(mobile, pf));
}
