/**
 * @file
 * End-to-end tests of the experiment facade and the energy model.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace critics;
using sim::AppExperiment;
using sim::ExperimentOptions;
using sim::Transform;
using sim::Variant;

namespace
{

ExperimentOptions
smallOptions()
{
    ExperimentOptions opt;
    opt.traceInsts = 60000;
    opt.warmupFraction = 0.25;
    return opt;
}

workload::AppProfile
smallApp(const std::string &name)
{
    auto profile = workload::findApp(name);
    profile.numFunctions = std::min(profile.numFunctions, 140u);
    profile.dispatchTargets = std::min(profile.dispatchTargets, 24u);
    return profile;
}

} // namespace

TEST(Experiment, BaselineDeterministic)
{
    AppExperiment a(smallApp("Acrobat"), smallOptions());
    AppExperiment b(smallApp("Acrobat"), smallOptions());
    EXPECT_EQ(a.baseline().cpu.cycles, b.baseline().cpu.cycles);
    EXPECT_EQ(a.baseTrace().size(), b.baseTrace().size());
}

TEST(Experiment, BaselineVariantIsIdentity)
{
    AppExperiment exp(smallApp("Acrobat"), smallOptions());
    const auto again = exp.run(Variant{});
    EXPECT_EQ(again.cpu.cycles, exp.baseline().cpu.cycles);
    EXPECT_DOUBLE_EQ(exp.speedup(again), 1.0);
}

TEST(Experiment, ProfileArtifactsConsistent)
{
    AppExperiment exp(smallApp("Office"), smallOptions());
    const auto &fanout = exp.fanout();
    EXPECT_EQ(fanout.fanout.size(), exp.baseTrace().size());
    EXPECT_GT(fanout.critFraction(), 0.0);
    EXPECT_LT(fanout.critFraction(), 0.5);

    const auto &mined = exp.mined();
    EXPECT_GT(mined.chains.size(), 0u);
    EXPECT_FALSE(exp.criticalSet().empty());
    const auto &stats = exp.chainStats();
    EXPECT_GT(stats.multiMemberChains, 0u);
}

class TransformVariant : public ::testing::TestWithParam<Transform>
{
};

TEST_P(TransformVariant, RunsAndStaysSane)
{
    AppExperiment exp(smallApp("Facebook"), smallOptions());
    Variant v;
    v.transform = GetParam();
    const auto result = exp.run(v);
    EXPECT_GT(result.cpu.cycles, 0u);
    EXPECT_GT(result.cpu.committed, 0u);
    // Any transform must stay within sane bounds of baseline.
    const double speedup = exp.speedup(result);
    EXPECT_GT(speedup, 0.7);
    EXPECT_LT(speedup, 1.5);
    if (GetParam() == Transform::CritIc ||
        GetParam() == Transform::Opp16 ||
        GetParam() == Transform::Compress ||
        GetParam() == Transform::Opp16PlusCritIc) {
        EXPECT_GT(result.dynThumbFraction, 0.0);
    }
    if (GetParam() == Transform::Hoist)
        EXPECT_DOUBLE_EQ(result.dynThumbFraction, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransforms, TransformVariant,
    ::testing::Values(Transform::Hoist, Transform::CritIc,
                      Transform::CritIcIdeal, Transform::Opp16,
                      Transform::Compress, Transform::Opp16PlusCritIc));

TEST(Experiment, HardwareVariantsRun)
{
    AppExperiment exp(smallApp("Email"), smallOptions());
    for (const bool knob : {true}) {
        Variant v;
        v.perfectBranch = knob;
        EXPECT_GT(exp.run(v).cpu.cycles, 0u);
        Variant v2;
        v2.icache4x = true;
        v2.efetch = true;
        v2.doubleFrontend = true;
        const auto all = exp.run(v2);
        EXPECT_GT(all.cpu.cycles, 0u);
        // More hardware must not slow the machine down appreciably.
        EXPECT_GE(exp.speedup(all), 0.95);
    }
}

TEST(Experiment, ExactLenSelectsOnlyThatLength)
{
    AppExperiment exp(smallApp("Acrobat"), smallOptions());
    Variant v;
    v.transform = Transform::CritIc;
    v.exactChainLen = 3;
    const auto result = exp.run(v);
    if (result.pass.chainsTransformed > 0) {
        EXPECT_EQ(result.pass.instsConverted % 3, 0u);
    }
}

TEST(Experiment, ProfileFractionMonotoneCoverage)
{
    AppExperiment exp(smallApp("Acrobat"), smallOptions());
    Variant lo;
    lo.transform = Transform::CritIc;
    lo.profileFraction = 0.2;
    Variant hi;
    hi.transform = Transform::CritIc;
    hi.profileFraction = 1.0;
    const auto rLo = exp.run(lo);
    const auto rHi = exp.run(hi);
    EXPECT_GE(rHi.selectionCoverage, rLo.selectionCoverage);
}

TEST(Experiment, TableIDescription)
{
    const auto text = sim::describeBaselineConfig();
    EXPECT_NE(text.find("128-entry ROB"), std::string::npos);
    EXPECT_NE(text.find("LPDDR3"), std::string::npos);
    EXPECT_NE(text.find("2MB L2"), std::string::npos);
}

// ---- Energy model ----------------------------------------------------------

TEST(Energy, ComponentsPositiveAndSum)
{
    AppExperiment exp(smallApp("Music"), smallOptions());
    const auto &e = exp.baseline().energy;
    EXPECT_GT(e.cpuCore, 0.0);
    EXPECT_GT(e.icache, 0.0);
    EXPECT_GT(e.dcache, 0.0);
    EXPECT_GT(e.socRest, 0.0);
    EXPECT_NEAR(e.total(),
                e.cpuCore + e.icache + e.dcache + e.l2 + e.dram +
                    e.socRest,
                1e-9);
    EXPECT_LT(e.cpu(), e.total());
}

TEST(Energy, ScalesWithActivity)
{
    cpu::CpuStats small;
    small.cycles = 1000;
    small.committed = 1000;
    small.fetchedBytes = 4000;
    small.mem.icache.accesses = 500;
    cpu::CpuStats big = small;
    big.cycles *= 2;
    big.committed *= 2;
    big.fetchedBytes *= 2;
    big.mem.icache.accesses *= 2;
    const auto eSmall = energy::computeEnergy(small);
    const auto eBig = energy::computeEnergy(big);
    EXPECT_NEAR(eBig.total(), 2.0 * eSmall.total(), 1e-6);
}

TEST(Energy, FewerIcacheAccessesSaveEnergy)
{
    cpu::CpuStats a;
    a.cycles = 1000;
    a.committed = 1000;
    a.mem.icache.accesses = 1000;
    cpu::CpuStats b = a;
    b.mem.icache.accesses = 600; // the paper's 40% fewer accesses
    EXPECT_LT(energy::computeEnergy(b).icache,
              energy::computeEnergy(a).icache);
    EXPECT_LT(energy::computeEnergy(b).total(),
              energy::computeEnergy(a).total());
}
