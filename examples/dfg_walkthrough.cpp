/**
 * @file
 * A faithful walkthrough of the paper's Fig. 2 example: why prioritizing
 * individual high-fanout instructions is not enough, and why the whole
 * chain I0 -> I10 -> I20 -> I22 must be treated as one critical unit.
 *
 * We build the example DFG instruction by instruction, run the fanout
 * profiler and the IC extractor on it, and show that (a) I20 is
 * low-fanout yet lies on the critical chain, and (b) the chain the
 * library extracts is exactly the one the paper argues for.
 */

#include <cstdio>

#include "analysis/criticality.hh"
#include "program/trace.hh"
#include "support/logging.hh"

using namespace critics;
using isa::OpClass;

namespace
{

program::DynInst
node(std::uint32_t id, program::DynIdx dep0 = program::NoDep,
     program::DynIdx dep1 = program::NoDep)
{
    program::DynInst d;
    d.staticUid = id;
    d.address = 0x10000 + 4 * id;
    d.op = OpClass::IntAlu;
    d.dep0 = dep0;
    d.dep1 = dep1;
    return d;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("Fig. 2 walkthrough — the DFG where single-instruction "
                "criticality fails\n\n");

    // I0 makes I1..I10 ready; I10 makes I11..I20 ready; I11 and I12
    // have two dependents each; I13..I20 have one; I20's dependent I22
    // is itself high-fanout (it feeds I23..I31).
    program::Trace trace;
    trace.insts.push_back(node(0));              // I0
    for (std::uint32_t k = 1; k <= 10; ++k)      // I1..I10
        trace.insts.push_back(node(k, 0));
    for (std::uint32_t k = 11; k <= 20; ++k)     // I11..I20
        trace.insts.push_back(node(k, 10));
    trace.insts.push_back(node(21, 1, 11));      // I21 (two producers)
    trace.insts.push_back(node(22, 20));         // I22 reads I20
    for (std::uint32_t k = 23; k <= 31; ++k)     // I22's fanout
        trace.insts.push_back(node(k, 22));

    analysis::CriticalityConfig cfg;
    const auto fanout = analysis::computeFanout(trace, cfg);

    std::printf("Fanout of each interesting instruction "
                "(threshold for 'critical' = %u):\n",
                cfg.fanoutThreshold);
    for (const std::uint32_t id : {0u, 1u, 10u, 11u, 20u, 22u}) {
        std::printf("  I%-3u fanout = %-3u %s\n", id, fanout.fanout[id],
                    fanout.critMask[id] ? "CRITICAL" : "");
    }

    std::printf("\nA high-fanout-only scheme ranks I20 (fanout %u) "
                "last — yet I22 (fanout %u)\ncannot start until I20 "
                "completes.  The fix: treat the self-contained chain\n"
                "as the unit of criticality.\n\n",
                fanout.fanout[20], fanout.fanout[22]);

    const auto chains = analysis::extractChains(trace, fanout, cfg);
    for (const analysis::DynChains::ChainRef chain : chains) {
        if (chain.front() != 0)
            continue;
        std::printf("Extracted IC starting at I0: ");
        double sum = 0;
        for (const auto idx : chain) {
            std::printf("I%u ", trace.insts[idx].staticUid);
            sum += fanout.fanout[idx];
        }
        std::printf("\n  length %zu, average fanout per instruction "
                    "%.1f -> %s\n",
                    chain.size(), sum / double(chain.size()),
                    sum / double(chain.size()) >=
                            cfg.chainCritThreshold
                        ? "a CritIC"
                        : "below the CritIC threshold");
    }

    std::printf("\nThe path I0 -> I10 -> I20 -> I22 is independently "
                "schedulable (every member's\nonly in-flight producer "
                "is its predecessor), so the compiler may hoist it\n"
                "and emit it as one 16-bit run behind a single CDP "
                "switch.\n");
    return 0;
}
