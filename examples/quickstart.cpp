/**
 * @file
 * Quickstart: the complete CritICs pipeline on one app, end to end.
 *
 *   1. Synthesize a mobile workload (Table II's "Acrobat") — a static
 *      program plus a deterministic dynamic execution.
 *   2. Run the offline profiler: per-instruction fanout, IC
 *      extraction, CritIC mining (the paper's QEMU+gem5+Spark stage).
 *   3. Apply the compiler pass: hoist each selected chain, re-encode
 *      it in the 16-bit format, emit the CDP switch (the ART pass).
 *   4. Re-simulate the rewritten binary on the same input and compare.
 *
 * Build & run:  cmake -B build -G Ninja && cmake --build build
 *               ./build/examples/quickstart [app-name]
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace critics;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string appName = argc > 1 ? argv[1] : "Acrobat";

    // ---- 1. Workload ---------------------------------------------------
    const workload::AppProfile profile = workload::findApp(appName);
    std::printf("App: %s (%s) — activity: %s\n", profile.name.c_str(),
                workload::suiteName(profile.suite),
                profile.activity.c_str());

    sim::AppExperiment exp(profile);
    std::printf("Synthesized %zu static instructions (%u KB of text); "
                "sampled %zu dynamic instructions.\n\n",
                exp.baseProgram().instCount(),
                exp.baseProgram().textBytes() >> 10,
                exp.baseTrace().size());

    // ---- 2. Offline profile ---------------------------------------------
    const auto &fanout = exp.fanout();
    const auto &mined = exp.mined();
    std::printf("Profiler: %s of dynamic instructions are critical "
                "(fanout >= 8);\n          %zu unique CritIC sequences "
                "mined at 72%% profile coverage.\n",
                pct(fanout.critFraction()).c_str(),
                mined.chains.size());
    if (!mined.chains.empty()) {
        const auto &top = mined.chains.front();
        std::printf("          hottest chain: %zu instructions, "
                    "executed %llu times, avg fanout %.1f\n\n",
                    top.uids.size(),
                    static_cast<unsigned long long>(top.dynCount),
                    top.avgFanout);
    }

    // ---- 3 + 4. Transform and compare -----------------------------------
    const auto &base = exp.baseline();
    sim::Variant critic;
    critic.transform = sim::Transform::CritIc;
    const auto opt = exp.run(critic);

    Table table({"metric", "baseline", "CritIC"});
    table.addRow({"cycles", fmt(double(base.cpu.cycles), 0),
                  fmt(double(opt.cpu.cycles), 0)});
    table.addRow({"IPC", fmt(base.cpu.ipc()), fmt(opt.cpu.ipc())});
    table.addRow({"F.StallForI", pct(base.cpu.fracStallForI()),
                  pct(opt.cpu.fracStallForI())});
    table.addRow({"F.StallForR+D", pct(base.cpu.fracStallForRd()),
                  pct(opt.cpu.fracStallForRd())});
    table.addRow({"dyn insts in 16-bit", pct(0.0),
                  pct(opt.dynThumbFraction)});
    table.addRow({"SoC energy (norm.)", fmt(1.0),
                  fmt(opt.energy.total() / base.energy.total(), 4)});
    std::printf("%s\n", table.render().c_str());

    std::printf("Chains transformed: %llu/%llu (%llu local renames); "
                "CDPs inserted: %llu\n",
                static_cast<unsigned long long>(
                    opt.pass.chainsTransformed),
                static_cast<unsigned long long>(
                    opt.pass.chainsAttempted),
                static_cast<unsigned long long>(opt.pass.localRenames),
                static_cast<unsigned long long>(opt.pass.cdpsInserted));
    std::printf("CritIC speedup: %s\n",
                gainPct(exp.speedup(opt)).c_str());
    return 0;
}
