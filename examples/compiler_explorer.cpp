/**
 * @file
 * Example: watch the CritIC compiler pass rewrite one basic block.
 *
 * Builds a small block containing a spread-out critical chain, prints
 * it before and after the pass with real bit-level encodings (32-bit
 * words / 16-bit halfwords / the CDP command), and shows the byte
 * savings the 16-bit re-encoding buys.
 */

#include <cstdio>

#include "compiler/passes.hh"
#include "program/printer.hh"
#include "isa/isa.hh"
#include "program/program.hh"
#include "support/logging.hh"

using namespace critics;
using isa::Format;
using isa::NoReg;
using isa::OpClass;

namespace
{

program::StaticInst
make(program::InstUid uid, OpClass op, std::uint8_t dst,
     std::uint8_t src1 = NoReg, std::uint8_t src2 = NoReg)
{
    program::StaticInst si;
    si.uid = uid;
    si.arch.op = op;
    si.arch.dst = dst;
    si.arch.src1 = src1;
    si.arch.src2 = src2;
    return si;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("CritIC compiler pass, one block at a time\n\n");

    // A chain C1(uid 1) -> link(uid 3) -> C2(uid 5), spread between
    // its fanout consumers and an unrelated filler.
    program::Program prog;
    prog.memRegions = {{0x40000000u, 4096, 0}};
    program::Function fn;
    fn.name = "hot_handler";
    program::BasicBlock bb;
    bb.insts.push_back(make(0, OpClass::IntAlu, 6));     // filler
    bb.insts.push_back(make(1, OpClass::IntAlu, 1));     // C1
    bb.insts.push_back(make(2, OpClass::IntAlu, 8, 1));  // consumer
    bb.insts.push_back(make(3, OpClass::IntAlu, 2, 1));  // link
    bb.insts.push_back(make(4, OpClass::IntAlu, 9, 1));  // consumer
    bb.insts.push_back(make(5, OpClass::IntAlu, 3, 2));  // C2
    bb.insts.push_back(make(6, OpClass::IntAlu, 10, 3)); // consumer
    fn.blocks.push_back(bb);
    prog.funcs.push_back(fn);
    prog.layout();

    std::printf("Before the pass (chain 1 -> 3 -> 5 spread through "
                "the block):\n%s\n",
                program::formatBlock(prog.funcs[0].blocks[0]).c_str());

    compiler::CritIcPassOptions opt;
    opt.switchMode = compiler::SwitchMode::Cdp;
    const auto stats =
        compiler::applyCritIcPass(prog, {{1u, 3u, 5u}}, opt);

    std::printf("After applyCritIcPass (hoisted, 16-bit, CDP "
                "switch):\n%s\n",
                program::formatBlock(prog.funcs[0].blocks[0]).c_str());
    std::printf("Program: %s\n\n",
                program::summarizeProgram(prog).c_str());

    std::printf("Pass stats: %llu chain transformed, %llu instructions "
                "re-encoded,\n%llu CDP inserted, %llu local renames, "
                "%llu hoist failures.\n",
                static_cast<unsigned long long>(stats.chainsTransformed),
                static_cast<unsigned long long>(stats.instsConverted),
                static_cast<unsigned long long>(stats.cdpsInserted),
                static_cast<unsigned long long>(stats.localRenames),
                static_cast<unsigned long long>(stats.hoistFailures));
    return 0;
}
