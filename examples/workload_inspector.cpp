/**
 * @file
 * Example: inspect the characteristics of any synthesized workload and
 * the effect of the CritIC transformation on it.
 *
 * Usage: workload_inspector [app-name ...]
 * With no arguments, inspects one representative app per suite.
 *
 * This is the tool to reach for when deciding whether a workload is
 * front-end bound (mobile-shaped) or back-end bound (SPEC-shaped), and
 * whether CritICs exist worth transforming.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "support/table.hh"

using namespace critics;

namespace
{

void
inspect(const workload::AppProfile &profile)
{
    sim::AppExperiment exp(profile);

    std::printf("== %s (%s) — %s\n", profile.name.c_str(),
                workload::suiteName(profile.suite),
                profile.activity.c_str());
    std::printf("  static insts: %zu, text: %u KB, trace: %zu insts\n",
                exp.baseProgram().instCount(),
                exp.baseProgram().textBytes() >> 10,
                exp.baseTrace().size());

    const auto &base = exp.baseline();
    std::printf("  baseline: IPC %.2f | F.StallForI %.1f%% "
                "(icache %.1f%%, redirect %.1f%%) | F.StallForR+D %.1f%%\n",
                base.cpu.ipc(), base.cpu.fracStallForI() * 100,
                100.0 * static_cast<double>(base.cpu.stallForIIcache) /
                    static_cast<double>(base.cpu.cycles),
                100.0 * static_cast<double>(base.cpu.stallForIRedirect) /
                    static_cast<double>(base.cpu.cycles),
                base.cpu.fracStallForRd() * 100);
    std::printf("  icache miss %.2f%% | dcache miss %.2f%% | "
                "L2 miss %.2f%% | branch mispred %.2f%%\n",
                base.cpu.mem.icache.missRate() * 100,
                base.cpu.mem.dcache.missRate() * 100,
                base.cpu.mem.l2.missRate() * 100,
                base.cpu.condBranches
                    ? 100.0 * static_cast<double>(base.cpu.mispredicts) /
                          static_cast<double>(base.cpu.condBranches)
                    : 0.0);

    const auto &fan = exp.fanout();
    const auto &cs = exp.chainStats();
    std::printf("  critical (fanout>=8): %.1f%% of dyn insts | "
                "multi-member ICs: %llu | IC len p50/p99/max: "
                "%lld/%lld/%lld | spread p99: %lld\n",
                fan.critFraction() * 100,
                static_cast<unsigned long long>(cs.multiMemberChains),
                static_cast<long long>(cs.icLength.percentile(0.5)),
                static_cast<long long>(cs.icLength.percentile(0.99)),
                static_cast<long long>(cs.icLength.maxBucket()),
                static_cast<long long>(cs.icSpread.percentile(0.99)));
    std::printf("  crit-gap none: %.1f%% | gaps 0..5: ",
                cs.noDependentCritFrac * 100);
    for (int g = 0; g <= 5; ++g)
        std::printf("%.1f%% ", cs.critGap.fraction(g) * 100);
    std::printf("\n");

    const auto &mined = exp.mined();
    std::printf("  unique CritICs: %zu\n", mined.chains.size());

    // The critical-instruction stage breakdown (Fig. 3a shape).
    const auto &crit = base.cpu.crit;
    if (crit.insts > 0 && crit.total() > 0) {
        std::printf("  crit-inst stages: fetch %.1f%% decode %.1f%% "
                    "issueWait %.1f%% exec %.1f%% commitWait %.1f%%\n",
                    100 * crit.fetch / crit.total(),
                    100 * crit.decode / crit.total(),
                    100 * crit.issueWait / crit.total(),
                    100 * crit.execute / crit.total(),
                    100 * crit.commitWait / crit.total());
    }

    sim::Variant critic;
    critic.label = "CritIC";
    critic.transform = sim::Transform::CritIc;
    auto run = exp.run(critic);
    std::printf("  CritIC: speedup %s | coverage %.1f%% | "
                "chains %llu/%llu | converted %llu | dyn thumb %.1f%%\n\n",
                gainPct(exp.speedup(run)).c_str(),
                run.selectionCoverage * 100,
                static_cast<unsigned long long>(
                    run.pass.chainsTransformed),
                static_cast<unsigned long long>(run.pass.chainsAttempted),
                static_cast<unsigned long long>(run.pass.instsConverted),
                run.dynThumbFraction * 100);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<workload::AppProfile> profiles;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            profiles.push_back(workload::findApp(argv[i]));
    } else {
        profiles.push_back(workload::findApp("Acrobat"));
        profiles.push_back(workload::findApp("Music"));
        profiles.push_back(workload::findApp("mcf"));
        profiles.push_back(workload::findApp("lbm"));
    }
    for (const auto &profile : profiles)
        inspect(profile);
    return 0;
}
