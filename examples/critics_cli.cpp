/**
 * @file
 * Command-line driver for the experiment orchestrator.
 *
 * Subcommands:
 *   critics_cli run --apps Acrobat,Office --variants baseline,critic
 *       Run an (apps × variants) sweep through the runner: cached
 *       design points are served from the persistent JSONL store, the
 *       rest simulate on the thread pool; prints a speedup table and
 *       the manifest summary.
 *   critics_cli report [manifest.json ...]
 *       Summarize run manifests (default: every manifest in the cache
 *       directory); exits non-zero if any batch recorded a failed job.
 *   critics_cli cache [stats|path|clear]
 *       Inspect or clear the persistent result cache.
 *   critics_cli diff <before> <after>
 *       Regression harness: compare two runs metric-by-metric.  Each
 *       side is a run manifest (results resolved from the result
 *       store by job hash) or a result-store JSONL file; jobs are
 *       matched by app/variant, every stat of the registry is diffed
 *       under a noise threshold, and any significant drift — faster
 *       or slower — exits non-zero naming the regressed dotted stats.
 *   critics_cli lint [--apps ...] [--variants ...] [--out report.json]
 *       Static-analysis gate: synthesize each app's program, apply
 *       each variant's passes under a full verifier audit (structural
 *       + differential dataflow + skip advisories + post-pass lints),
 *       write a machine-readable JSON report and exit non-zero on any
 *       error-severity diagnostic.  No simulation runs.
 *
 * The original single-run interface still works:
 *   critics_cli --app Acrobat --variant critic [--json]
 *   critics_cli --list
 *
 * Variants: baseline, hoist, critic, critic-ideal, critic-branchpair,
 *           opp16, compress, opp16+critic, prefetch, aluprio,
 *           backendprio, efetch, perfectbr, icache4x, 2xfd, allhw
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/criticality.hh"
#include "analysis/miner.hh"
#include "analysis/mode.hh"
#include "obs/obs.hh"
#include "obs/profiler.hh"
#include "program/emit.hh"
#include "runner/manifest.hh"

#include "runner/cache_admin.hh"
#include "runner/orchestrator.hh"
#include "sim/experiment.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/worker.hh"
#include "sim/report.hh"
#include "sim/variants.hh"
#include "stats/diff.hh"
#include "stats/interval.hh"
#include "stats/registry.hh"
#include "stats/trace_event.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "verify/trace_check.hh"
#include "verify/verify.hh"

using namespace critics;

namespace
{

// The apps/variants string vocabulary is shared with the serve
// protocol and the worker argv (sim/variants.hh), so a spec submitted
// over the wire resolves to exactly the grid these flags would build.
using sim::parseApps;
using sim::parseVariant;
using sim::splitList;

int
usage()
{
    std::printf(
        "critics_cli — experiment orchestrator driver\n\n"
        "critics_cli run [options]     run an apps × variants sweep\n"
        "  --apps <list>       comma list of app names, or one of\n"
        "                      mobile|specint|specfloat|all\n"
        "  --variants <list>   comma list of variant names\n"
        "  --insts <n>         dynamic instructions per sample\n"
        "  --batch <name>      manifest name (default 'cli')\n"
        "  --no-cache          bypass the persistent result cache\n"
        "  --refresh           ignore cached records, re-simulate\n"
        "  --shard K/N         run only slice K of an N-way hash\n"
        "                      partition of the batch; results land\n"
        "                      in a per-shard store (merge with\n"
        "                      `cache merge`), the manifest is named\n"
        "                      <batch>.shard-K-of-N\n"
        "  --cache-file <f>    result store path (default: the shared\n"
        "                      cache; sharded runs default to\n"
        "                      results.shard-K-of-N.jsonl)\n"
        "  --json              emit per-job comparison JSON\n"
        "  --stats-interval <n> sample all stats every n committed\n"
        "                      insts; JSONL to --stats-out\n"
        "                      (simulated jobs only — use --refresh\n"
        "                      to force fresh runs)\n"
        "  --stats-out <file>  interval JSONL path\n"
        "                      (default stats_cli.jsonl)\n"
        "  --trace-out <file>  Chrome trace of runner phases, per-job\n"
        "                      spans and pipeline-stage spans (load in\n"
        "                      Perfetto)\n"
        "  --profile <file>    sample this process with SIGPROF and\n"
        "                      write a per-stage/per-symbol profile\n"
        "                      (inspect with `prof report`)\n"
        "critics_cli bench [options]   tracked simulator microbench:\n"
        "                      N repetitions of a fixed app/variant\n"
        "                      matrix, median sim-insts/s per stage\n"
        "                      (emit, analyze, simulate); appends the\n"
        "                      measurement to BENCH_sim.json\n"
        "  --quick             small matrix for CI smoke\n"
        "  --reps <n>          repetitions (default 5; 3 with --quick)\n"
        "  --insts <n>         dynamic insts per app (default 400000)\n"
        "  --apps/--variants   override the fixed matrix\n"
        "  --label <text>      measurement label (default full/quick)\n"
        "  --out <file>        trajectory file (default BENCH_sim.json)\n"
        "  --baseline <file>   print per-stage deltas vs the last\n"
        "                      measurement in <file> (non-gating)\n"
        "  --profile <file>    sampling profile of the bench process\n"
        "critics_cli report [file ...] summarize run manifests\n"
        "                      (default: all manifests in the cache\n"
        "                      dir); exit 1 on any failed job\n"
        "critics_cli cache [stats|path|clear]\n"
        "critics_cli cache merge <out> <in...>\n"
        "                      concatenate result stores into <out>\n"
        "                      (later record wins per content hash;\n"
        "                      old-schema/malformed lines dropped;\n"
        "                      surviving lines copied byte-exactly)\n"
        "critics_cli cache compact [file]\n"
        "                      rewrite a store dropping superseded,\n"
        "                      old-schema and collision/orphan\n"
        "                      records; reports bytes reclaimed\n"
        "critics_cli cache gc [--max-age <dur>] [--max-bytes <n>]\n"
        "                      [file]  compact, then bound the store:\n"
        "                      drop records older than <dur>\n"
        "                      (30d, 12h, 900s, plain seconds) and\n"
        "                      evict oldest-first past <n> bytes\n"
        "                      (512K, 512M, 2G, plain bytes)\n"
        "critics_cli lint [options]    verify every variant's passes\n"
        "  --apps <list>       apps or suite (default mobile)\n"
        "  --variants <list>   variant names (default: all)\n"
        "  --insts <n>         synthesis budget per app\n"
        "  --min-run <n>       unconverted-run lint threshold\n"
        "                      (default 3)\n"
        "  --trace             also replay each variant's re-emitted\n"
        "                      trace against its transformed program\n"
        "                      (verify.trace.* conformance checks,\n"
        "                      incl. the taken-bias bound)\n"
        "  --out <file>        JSON report path\n"
        "                      (default lint_report.json)\n"
        "                      exit 1 on any error-severity finding\n"
        "critics_cli diff <before> <after> [options]\n"
        "                      compare two runs metric-by-metric;\n"
        "                      exit 1 on any drift beyond noise.\n"
        "                      each side: manifest .json or result\n"
        "                      store .jsonl\n"
        "  --rel <frac>        relative noise threshold (default 0.01)\n"
        "  --abs <eps>         absolute noise floor (default 1e-9)\n"
        "  --store <file>      result store for manifest sides\n"
        "                      (default: the shared cache)\n"
        "critics_cli serve [options]   job-queue daemon: JSONL\n"
        "                      submit/status/wait over TCP, warm jobs\n"
        "                      answered from the result store without\n"
        "                      simulating, cold jobs hash-sharded\n"
        "                      across forked serve-worker processes\n"
        "                      (crash -> bounded restart); SIGTERM\n"
        "                      drains in-flight work and exits\n"
        "  --host <ip>         bind address (default 127.0.0.1)\n"
        "  --port <n>          TCP port (0 = pick one; see below)\n"
        "  --port-file <f>     write the bound port here after listen\n"
        "  --workers <n>       worker processes per batch (default 2;\n"
        "                      0 = run jobs in-process)\n"
        "  --max-restarts <n>  respawns per crashed worker (default 2)\n"
        "  --attempts <n>      per-job attempt budget (default 2)\n"
        "  --cache-file <f>    result store (default: shared cache)\n"
        "  --trace-out <f>     merged Chrome trace: server request\n"
        "                      spans plus every worker's job/stage\n"
        "                      spans, stitched per-pid under one\n"
        "                      trace id per batch\n"
        "  --profile-dir <d>   each worker writes a sampling profile\n"
        "                      to <d>/<batch>.worker-<k>.json\n"
        "  --stats-out <f>     serve.* stats JSON on shutdown\n"
        "critics_cli submit [options]  submit a sweep to a daemon and\n"
        "                      stream its progress events\n"
        "  --host/--port/--port-file   daemon address\n"
        "  --apps/--variants/--insts/--batch/--refresh   as `run`\n"
        "  --no-wait           print the job id and return\n"
        "critics_cli status <job> [--host ...] one-line job state\n"
        "critics_cli wait <job> [--host ...]   stream events until\n"
        "                      done; exit 1 if any job failed\n"
        "critics_cli top [options]     live daemon monitor: queue\n"
        "                      depth, warm-hit ratio, job-latency\n"
        "                      percentiles, worker states\n"
        "  --host/--port/--port-file   daemon address\n"
        "  --interval <sec>    refresh period (default 2)\n"
        "  --once              print one snapshot and exit\n"
        "critics_cli prof report <file> [--top <n>]\n"
        "                      pretty-print a --profile report\n\n"
        "critics_cli --app <name> --variant <name> [--insts n]\n"
        "                      [--json] [--stats-interval n]\n"
        "                      [--stats-out f] [--trace-out f]\n"
        "                      single run (legacy); --trace-out here\n"
        "                      traces the CPU pipeline stages\n"
        "critics_cli --list    list registered apps\n\n"
        "  variants: baseline|hoist|critic|critic-ideal|\n"
        "            critic-branchpair|opp16|compress|opp16+critic|\n"
        "            prefetch|aluprio|backendprio|efetch|perfectbr|\n"
        "            icache4x|2xfd|allhw\n");
    return 2;
}

// ---------------------------------------------------------------------------
// diff: the regression harness.

/** Flat registry snapshot of one run's metrics. */
stats::Snapshot
snapshotOf(const sim::RunResult &result)
{
    stats::StatRegistry reg;
    sim::bindRunResult(reg, result);
    return reg.snapshot();
}

/**
 * Load one diff side as app/variant → RunResult.  A side is either a
 * run manifest (results resolved from `storePath` by job hash) or a
 * result-store JSONL file.  Matching is by app/variant, not hash, so
 * runs of the same specs across a config or code change stay
 * comparable even though every content hash moved.
 */
std::map<std::string, sim::RunResult>
loadDiffSide(const std::string &path, const std::string &storePath)
{
    std::map<std::string, sim::RunResult> side;
    runner::RunManifest manifest;
    if (runner::RunManifest::read(path, manifest) &&
        !manifest.batch.empty()) {
        std::map<std::string, sim::RunResult> byHash;
        for (auto &record : runner::readResultRecords(storePath))
            byHash.emplace(record.hash, std::move(record.result));
        for (const auto &job : manifest.jobs) {
            if (!job.ok)
                continue;
            const auto it = byHash.find(job.hash);
            if (it == byHash.end()) {
                // Leaves the job on one side only, which the caller
                // reports as a mismatch.
                critics_warn("no stored result for ", job.app, "/",
                             job.variant, " (hash ", job.hash,
                             ") in ", storePath);
                continue;
            }
            side[job.app + "/" + job.variant] = it->second;
        }
        return side;
    }
    for (auto &record : runner::readResultRecords(path))
        side[record.app + "/" + record.variant] =
            std::move(record.result);
    if (side.empty()) {
        critics_fatal("'", path, "' holds no results (expected a run ",
                      "manifest or a result-store JSONL file)");
    }
    return side;
}

int
cmdDiff(int argc, char **argv)
{
    stats::DiffOptions opt;
    std::string storePath;
    std::vector<std::string> paths;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--rel") {
            opt.relThreshold = std::stod(next());
        } else if (arg == "--abs") {
            opt.absThreshold = std::stod(next());
        } else if (arg == "--store") {
            storePath = next();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        return usage();
    if (storePath.empty())
        storePath = runner::cacheDir() + "/results.jsonl";

    const auto before = loadDiffSide(paths[0], storePath);
    const auto after = loadDiffSide(paths[1], storePath);

    std::size_t compared = 0, regressedJobs = 0, regressedMetrics = 0;
    bool mismatch = false;
    for (const auto &[key, beforeResult] : before) {
        const auto it = after.find(key);
        if (it == after.end()) {
            std::printf("%s: only in %s\n", key.c_str(),
                        paths[0].c_str());
            mismatch = true;
            continue;
        }
        ++compared;
        const auto diff = stats::diffSnapshots(
            snapshotOf(beforeResult), snapshotOf(it->second), opt);
        if (!diff.hasRegressions())
            continue;
        if (diff.regressions() > 0) {
            ++regressedJobs;
            regressedMetrics += diff.regressions();
            std::printf("%s: %zu metric(s) beyond noise "
                        "(rel %g, abs %g)\n",
                        key.c_str(), diff.regressions(),
                        opt.relThreshold, opt.absThreshold);
            for (const auto &d : diff.worst(diff.deltas.size())) {
                if (!d.regression)
                    break;
                std::printf("  %-34s %.6g -> %.6g  (%+.2f%%)\n",
                            d.name.c_str(), d.before, d.after,
                            (d.after >= d.before ? 1.0 : -1.0) *
                                d.relDelta * 100.0);
            }
        }
        for (const auto &name : diff.onlyBefore) {
            std::printf("%s: stat %s vanished\n", key.c_str(),
                        name.c_str());
            mismatch = true;
        }
        for (const auto &name : diff.onlyAfter) {
            std::printf("%s: stat %s appeared\n", key.c_str(),
                        name.c_str());
            mismatch = true;
        }
    }
    for (const auto &[key, result] : after) {
        (void)result;
        if (before.find(key) == before.end()) {
            std::printf("%s: only in %s\n", key.c_str(),
                        paths[1].c_str());
            mismatch = true;
        }
    }

    std::printf("diff: %zu job(s) compared, %zu regressed "
                "(%zu metric(s))%s\n",
                compared, regressedJobs, regressedMetrics,
                mismatch ? ", job/stat sets mismatch" : "");
    return (regressedMetrics > 0 || mismatch) ? 1 : 0;
}

// ---------------------------------------------------------------------------
// lint: the static-analysis gate.

int
cmdLint(int argc, char **argv)
{
    std::string appsArg = "mobile";
    std::string variantsArg = "all";
    std::uint64_t insts = 400000;
    unsigned minRun = 3;
    bool withTrace = false;
    std::string outPath = "lint_report.json";

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--apps") {
            appsArg = next();
        } else if (arg == "--variants") {
            variantsArg = next();
        } else if (arg == "--insts") {
            insts = std::stoull(next());
        } else if (arg == "--min-run") {
            minRun = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--trace") {
            withTrace = true;
        } else if (arg == "--out") {
            outPath = next();
        } else {
            return usage();
        }
    }

    const auto apps = parseApps(appsArg);
    std::vector<std::string> variantNames;
    if (variantsArg == "all")
        variantNames = sim::allVariantNames();
    else
        variantNames = splitList(variantsArg);
    if (variantNames.empty())
        critics_fatal("--variants needs at least one variant");

    sim::ExperimentOptions expOptions;
    expOptions.traceInsts = insts;

    json::JsonWriter w;
    w.beginObject();
    // Schema history: 1 = original report; 2 = adds this version
    // field's contract plus `totals.codes` (per-diagnostic-code counts)
    // and the optional per-variant `trace` object, so CI greps match on
    // structure and code identity instead of message text.
    w.field("schema", 2);
    w.field("tool", "critics_cli lint");
    w.field("trace", withTrace);
    w.beginArray("apps");

    std::size_t totalErrors = 0, totalWarnings = 0, totalAdvice = 0;
    std::map<std::string, std::uint64_t> totalCodes;
    Table table({"app", "variant", "errors", "warnings", "advice"});

    for (const auto &profile : apps) {
        sim::AppExperiment exp(profile, expOptions);
        verify::TraceCheckOptions traceOptions;
        traceOptions.biasVocabulary =
            workload::branchBiasVocabulary(profile);
        w.elementObject();
        w.field("app", profile.name);
        w.beginArray("variants");
        for (const auto &name : variantNames) {
            const sim::Variant variant = parseVariant(name);
            verify::PassAudit audit;

            w.elementObject();
            w.field("variant", name);
            if (withTrace) {
                const sim::MaterializedTransform m =
                    exp.materializeTransform(variant, &audit);
                verify::lintAdvisories(m.prog, audit.report, minRun);
                const verify::TraceCheckStats ts =
                    verify::checkTraceConformance(
                        m.prog, m.trace, audit.report, traceOptions);
                w.beginObject("trace");
                w.field("blocksReplayed", ts.blocksReplayed);
                w.field("transitionsChecked", ts.transitionsChecked);
                w.field("branchSitesTested", ts.branchSitesTested);
                w.field("conformant", ts.conformant);
                w.endObject();
            } else {
                program::Program prog = exp.baseProgram();
                exp.applyTransform(prog, variant, nullptr, &audit);
                verify::lintAdvisories(prog, audit.report, minRun);
            }
            audit.report.writeJson(w);
            w.endObject();

            for (const auto &[code, count] :
                 audit.report.codeCounts()) {
                totalCodes[code] += count;
            }
            totalErrors += audit.report.errors();
            totalWarnings += audit.report.warnings();
            totalAdvice += audit.report.advice();
            table.addRow({profile.name, name,
                          std::to_string(audit.report.errors()),
                          std::to_string(audit.report.warnings()),
                          std::to_string(audit.report.advice())});
            // Errors are simulator bugs: show them right away, capped
            // by the report's own per-code stored limit.
            for (const auto &d : audit.report.diags()) {
                if (d.severity == verify::Severity::Error) {
                    std::printf("%s/%s: %s\n", profile.name.c_str(),
                                name.c_str(), d.render().c_str());
                }
            }
        }
        w.endArray();
        w.endObject();
    }

    w.endArray();
    w.beginObject("totals");
    w.field("errors", static_cast<std::uint64_t>(totalErrors));
    w.field("warnings", static_cast<std::uint64_t>(totalWarnings));
    w.field("advice", static_cast<std::uint64_t>(totalAdvice));
    w.beginObject("codes");
    for (const auto &[code, count] : totalCodes)
        w.field(code.c_str(), count);
    w.endObject();
    w.endObject();
    w.field("clean", totalErrors == 0);
    w.endObject();

    std::ofstream out(outPath, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 2;
    }
    out << w.str() << "\n";

    std::printf("%s\n", table.render().c_str());
    std::printf("lint: %zu app(s) x %zu variant(s): %zu error(s), "
                "%zu warning(s), %zu advisor%s\nreport: %s\n",
                apps.size(), variantNames.size(), totalErrors,
                totalWarnings, totalAdvice,
                totalAdvice == 1 ? "y" : "ies", outPath.c_str());
    return totalErrors > 0 ? 1 : 0;
}

// ---------------------------------------------------------------------------
// bench: the tracked simulator microbenchmark.

/** One stage's timings across repetitions. */
struct StageSamples
{
    std::vector<double> instsPerSec; ///< one entry per repetition

    double
    median() const
    {
        if (instsPerSec.empty())
            return 0.0;
        std::vector<double> sorted = instsPerSec;
        std::sort(sorted.begin(), sorted.end());
        return sorted[sorted.size() / 2];
    }
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Median insts/s of one stage of the last measurement in a
 *  BENCH_sim.json document; 0 when absent/unreadable. */
double
lastStageRate(const json::JsonValue &doc, const char *stage,
              std::string *label)
{
    const json::JsonValue *ms = doc.find("measurements");
    if (ms == nullptr || !ms->isArray() || ms->elements.empty())
        return 0.0;
    const json::JsonValue &last = ms->elements.back();
    if (label != nullptr) {
        if (const auto *l = last.find("label"))
            *label = l->asString().value_or("");
    }
    const json::JsonValue *stages = last.find("stages");
    if (stages == nullptr)
        return 0.0;
    const json::JsonValue *s = stages->find(stage);
    if (s == nullptr)
        return 0.0;
    if (const auto *rate = s->find("medianInstsPerSec"))
        return rate->asDouble().value_or(0.0);
    return 0.0;
}

int
cmdBench(int argc, char **argv)
{
    bool quick = false;
    std::string appsArg, variantsArg, label, baselinePath;
    std::string profilePath;
    std::string outPath = "BENCH_sim.json";
    std::uint64_t insts = 0;
    unsigned reps = 0;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--apps") {
            appsArg = next();
        } else if (arg == "--variants") {
            variantsArg = next();
        } else if (arg == "--insts") {
            insts = std::stoull(next());
        } else if (arg == "--reps") {
            reps = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--label") {
            label = next();
        } else if (arg == "--out") {
            outPath = next();
        } else if (arg == "--baseline") {
            baselinePath = next();
        } else if (arg == "--profile") {
            profilePath = next();
        } else {
            return usage();
        }
    }

    // The fixed matrix: stable across releases so the recorded
    // trajectory stays comparable.  --quick shrinks it for CI smoke.
    if (appsArg.empty())
        appsArg = quick ? "Acrobat,Office" : "Acrobat,Angrybirds,Office,Browser";
    if (variantsArg.empty())
        variantsArg = quick ? "baseline,critic" : "baseline,critic,opp16,allhw";
    if (insts == 0)
        insts = quick ? 150000 : 400000;
    if (reps == 0)
        reps = quick ? 3 : 5;
    if (label.empty())
        label = quick ? "quick" : "full";

    const auto apps = parseApps(appsArg);
    std::vector<sim::Variant> variants;
    for (const auto &name : splitList(variantsArg))
        variants.push_back(parseVariant(name));
    if (variants.empty())
        critics_fatal("--variants needs at least one variant");

    sim::ExperimentOptions expOptions;
    expOptions.traceInsts = insts;

    // One experiment per app, built untimed: synthesis and the control
    // walk are one-time costs the paper sweeps never repeat.
    std::vector<std::unique_ptr<sim::AppExperiment>> exps;
    std::uint64_t matrixInsts = 0;
    for (const auto &profile : apps) {
        exps.push_back(
            std::make_unique<sim::AppExperiment>(profile, expOptions));
        matrixInsts += exps.back()->baseTrace().size();
    }

    // --profile: sample the timed stages (construction above is the
    // one-time untimed cost).  The explicit StageScopes below mirror
    // the bench's own stage split, because stage 2 calls the analysis
    // passes directly rather than through AppExperiment's accessors.
    obs::SamplingProfiler profiler;
    if (!profilePath.empty() && !profiler.start())
        profilePath.clear();

    StageSamples emitStage, analyzeStage, simulateStage;
    for (unsigned rep = 0; rep < reps; ++rep) {
        // Stage 1: trace emission (the per-variant re-emission cost).
        auto t0 = std::chrono::steady_clock::now();
        {
            obs::StageScope stage(obs::Stage::Emit);
            for (const auto &exp : exps) {
                const program::Trace trace = program::emitTrace(
                    exp->baseProgram(), exp->path());
                critics_assert(trace.size() > 0, "empty bench trace");
            }
        }
        emitStage.instsPerSec.push_back(
            static_cast<double>(matrixInsts) / secondsSince(t0));

        // Stage 2: offline criticality analysis (fanout, chains,
        // mining), always from scratch so result caching cannot hide
        // cost.  The per-app location table IS shared across reps —
        // it indexes the static program, not the dynamic stream, and
        // AppExperiment likewise builds one and shares it across all
        // minedAt() calls, so rebuilding it per rep would bill the
        // pipeline for work production never repeats.
        t0 = std::chrono::steady_clock::now();
        {
            obs::StageScope stage(obs::Stage::Analyze);
            for (const auto &exp : exps) {
                const auto fanout = analysis::computeFanout(
                    exp->baseTrace(), expOptions.crit);
                const auto chains = analysis::extractChains(
                    exp->baseTrace(), fanout, expOptions.crit);
                const analysis::LocTable *locs =
                    analysis::flatAnalyzeEnabled()
                        ? &exp->locTable() : nullptr;
                const auto mined = analysis::mineCritIcs(
                    exp->baseTrace(), exp->baseProgram(), chains,
                    fanout, expOptions.crit,
                    expOptions.profileFraction, locs);
                critics_assert(!mined.chains.empty() || true,
                               "unused");
            }
        }
        analyzeStage.instsPerSec.push_back(
            static_cast<double>(matrixInsts) / secondsSince(t0));

        // Stage 3: the simulate-one-job path, exactly as the runner
        // drives it (transform + re-emission/memo + pipeline model).
        t0 = std::chrono::steady_clock::now();
        std::uint64_t simInsts = 0;
        for (const auto &exp : exps) {
            for (const auto &variant : variants) {
                const auto result = exp->run(variant);
                critics_assert(result.cpu.cycles > 0, "empty run");
                simInsts += exp->baseTrace().size();
            }
        }
        simulateStage.instsPerSec.push_back(
            static_cast<double>(simInsts) / secondsSince(t0));
    }

    if (!profilePath.empty()) {
        profiler.stop();
        const std::string report = profiler.reportJson();
        if (profiler.writeReport(profilePath))
            std::printf("profile: %s\n", profilePath.c_str());
        obs::printProfileReport(report);
    }

    // ---- Report ------------------------------------------------------
    Table table({"stage", "median insts/s", "min", "max"});
    auto addRow = [&](const char *name, const StageSamples &s) {
        const auto [lo, hi] = std::minmax_element(
            s.instsPerSec.begin(), s.instsPerSec.end());
        table.addRow({name, fmt(s.median(), 0), fmt(*lo, 0),
                      fmt(*hi, 0)});
    };
    addRow("emit", emitStage);
    addRow("analyze", analyzeStage);
    addRow("simulate", simulateStage);
    std::printf("%s\n", table.render().c_str());

    // ---- Persist the trajectory --------------------------------------
    // BENCH_sim.json accumulates measurements; the newest is appended
    // so the perf history of the simulator is recorded in-tree.
    double prevRate = 0.0;
    std::string prevLabel;

    json::JsonWriter w;
    w.beginObject();
    w.field("schema", 1);
    w.field("tool", "critics_cli bench");
    w.beginArray("measurements");

    // Copy prior measurements structurally (the writer re-serializes
    // the parsed document, then the new entry is appended).
    std::function<void(const json::JsonValue &, const char *)>
        copyMember;
    copyMember = [&](const json::JsonValue &v, const char *key) {
        switch (v.kind) {
          case json::JsonValue::Kind::Object:
            if (key)
                w.beginObject(key);
            else
                w.elementObject();
            for (const auto &[k, member] : v.members)
                copyMember(member, k.c_str());
            w.endObject();
            break;
          case json::JsonValue::Kind::Array:
            w.beginArray(key);
            for (const auto &el : v.elements)
                copyMember(el, nullptr);
            w.endArray();
            break;
          case json::JsonValue::Kind::String:
            if (key)
                w.field(key, v.text);
            else
                w.element(v.text);
            break;
          case json::JsonValue::Kind::Number:
            // Preserve the original spelling via a raw double/uint.
            if (v.text.find_first_of(".eE") == std::string::npos) {
                if (key)
                    w.field(key, v.asUint().value_or(0));
                else
                    w.element(static_cast<double>(
                        v.asDouble().value_or(0.0)));
            } else {
                if (key)
                    w.fieldReadable(key, v.asDouble().value_or(0.0));
                else
                    w.element(v.asDouble().value_or(0.0));
            }
            break;
          case json::JsonValue::Kind::Bool:
            if (key)
                w.field(key, v.boolean);
            break;
          case json::JsonValue::Kind::Null:
            break;
        }
    };
    // Snapshot the baseline before appending, so --out and --baseline
    // may name the same file (the new measurement never compares
    // against itself).
    std::string baselineText;
    if (!baselinePath.empty()) {
        std::ifstream in(baselinePath);
        if (in)
            baselineText.assign((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
    }
    {
        std::ifstream in(outPath);
        if (in) {
            const std::string text(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            if (const auto doc = json::parseJson(text)) {
                prevRate = lastStageRate(*doc, "simulate", &prevLabel);
                if (const auto *ms = doc->find("measurements");
                    ms != nullptr && ms->isArray()) {
                    for (const auto &m : ms->elements)
                        copyMember(m, nullptr);
                }
            }
        }
    }

    w.elementObject();
    w.field("label", label);
    w.field("git", runner::gitDescribe());
    w.field("quick", quick);
    w.field("analyzePath",
            analysis::flatAnalyzeEnabled() ? "flat" : "legacy");
    w.field("apps", appsArg);
    w.field("variants", variantsArg);
    w.field("insts", insts);
    w.field("reps", reps);
    w.beginObject("stages");
    auto writeStage = [&](const char *name, const StageSamples &s) {
        w.beginObject(name);
        w.fieldReadable("medianInstsPerSec", s.median());
        w.beginArray("perRep");
        for (const double r : s.instsPerSec)
            w.element(r);
        w.endArray();
        w.endObject();
    };
    writeStage("emit", emitStage);
    writeStage("analyze", analyzeStage);
    writeStage("simulate", simulateStage);
    w.endObject();
    w.endObject();
    w.endArray();
    w.endObject();

    std::ofstream out(outPath, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 2;
    }
    out << w.str() << "\n";
    std::printf("bench: %s (%s, %u rep(s), %s insts/app)\n",
                outPath.c_str(), label.c_str(), reps,
                fmt(double(insts), 0).c_str());

    // Delta against the previous in-file measurement, and optionally
    // against a committed baseline file (CI's non-gating perf-smoke).
    const double nowRate = simulateStage.median();
    if (prevRate > 0.0) {
        std::printf("simulate: %s insts/s vs %s insts/s (%s) -> %.2fx\n",
                    fmt(nowRate, 0).c_str(), fmt(prevRate, 0).c_str(),
                    prevLabel.c_str(), nowRate / prevRate);
    }
    if (!baselinePath.empty()) {
        if (!baselineText.empty()) {
            const std::string &text = baselineText;
            std::string baseLabel;
            bool any = false;
            if (const auto doc = json::parseJson(text)) {
                const struct
                {
                    const char *name;
                    const StageSamples *samples;
                } deltas[] = {{"emit", &emitStage},
                              {"analyze", &analyzeStage},
                              {"simulate", &simulateStage}};
                for (const auto &d : deltas) {
                    const double baseRate =
                        lastStageRate(*doc, d.name, &baseLabel);
                    if (baseRate <= 0.0)
                        continue;
                    any = true;
                    std::printf(
                        "%-8s vs baseline %s (%s): %.2fx\n", d.name,
                        baselinePath.c_str(), baseLabel.c_str(),
                        d.samples->median() / baseRate);
                }
            }
            if (!any) {
                std::printf("baseline %s: no stage rates found\n",
                            baselinePath.c_str());
            }
        } else {
            std::printf("baseline %s: unreadable\n",
                        baselinePath.c_str());
        }
    }
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    std::string appsArg = "mobile";
    std::string variantsArg = "baseline,critic";
    std::string batchName = "cli";
    std::uint64_t insts = 400000;
    std::uint64_t statsInterval = 0;
    std::string statsOut = "stats_cli.jsonl";
    std::string traceOut, profilePath;
    bool json = false;
    runner::RunnerOptions options;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--apps") {
            appsArg = next();
        } else if (arg == "--variants") {
            variantsArg = next();
        } else if (arg == "--insts") {
            insts = std::stoull(next());
        } else if (arg == "--batch") {
            batchName = next();
        } else if (arg == "--no-cache") {
            options.useCache = false;
        } else if (arg == "--refresh") {
            options.refresh = true;
        } else if (arg == "--shard") {
            const std::string value = next();
            const auto parsed = runner::ShardSpec::parse(value);
            if (!parsed) {
                critics_fatal("--shard wants K/N with 1 <= K <= N, "
                              "got '", value, "'");
            }
            options.shard = *parsed;
        } else if (arg == "--cache-file") {
            options.cachePath = next();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--stats-interval") {
            statsInterval = std::stoull(next());
        } else if (arg == "--stats-out") {
            statsOut = next();
        } else if (arg == "--trace-out") {
            traceOut = next();
        } else if (arg == "--profile") {
            profilePath = next();
        } else {
            return usage();
        }
    }

    const auto apps = parseApps(appsArg);
    // `all` expands to every variant, as in lint — the analyze-drift
    // CI sweep runs the complete matrix.
    std::vector<std::string> variantNames;
    if (variantsArg == "all")
        variantNames = sim::allVariantNames();
    else
        variantNames = splitList(variantsArg);
    std::vector<sim::Variant> variants;
    for (const auto &name : variantNames)
        variants.push_back(parseVariant(name));
    if (variants.empty())
        critics_fatal("--variants needs at least one variant");

    // Each shard appends to its own disjoint store; `cache merge`
    // folds them back into the shared one.
    if (options.shard.enabled() && options.cachePath.empty()) {
        options.cachePath =
            runner::shardStorePath(runner::cacheDir(), options.shard);
    }

    sim::ExperimentOptions expOptions;
    expOptions.traceInsts = insts;

    stats::TraceEventWriter trace;
    if (!traceOut.empty()) {
        options.trace = &trace;
        // Route the pipeline's StageScope spans into the same writer.
        // Both clocks are CLOCK_MONOTONIC; re-basing on an epoch taken
        // here puts the stage spans on the runner's 0-based timeline,
        // nested under the job spans of the same pool thread.
        const std::uint64_t epochUs = obs::monotonicMicros();
        obs::setSpanSink([&trace, epochUs](const obs::SpanRecord &s) {
            trace.complete(s.name, s.category,
                           s.startUs > epochUs ? s.startUs - epochUs
                                               : 0,
                           s.durUs, 0, trace.tidForCurrentThread());
        });
    }

    // Interval sampling rides the executor: each simulated job runs
    // with its own series (cache hits never execute, so they produce
    // no rows) and appends its JSONL under the batch lock.
    std::mutex statsLock;
    std::string statsJsonl;
    if (statsInterval > 0) {
        options.executor = [&statsLock, &statsJsonl, statsInterval](
                               const runner::JobSpec &spec,
                               sim::AppExperiment &experiment) {
            sim::RunHooks hooks;
            stats::IntervalSeries series;
            hooks.statsInterval = statsInterval;
            hooks.intervals = &series;
            auto result = experiment.run(spec.variant, hooks);
            std::lock_guard<std::mutex> guard(statsLock);
            statsJsonl += series.toJsonl(spec.profile.name + "/" +
                                         spec.variant.label);
            return result;
        };
    }

    obs::SamplingProfiler profiler;
    if (!profilePath.empty() && !profiler.start())
        profilePath.clear();

    runner::Runner runner(options);
    const auto batch = runner.run(
        batchName, runner::makeGrid(apps, variants, expOptions));

    obs::setSpanSink(nullptr);
    if (!profilePath.empty()) {
        profiler.stop();
        const std::string report = profiler.reportJson();
        if (profiler.writeReport(profilePath))
            std::printf("profile: %s\n", profilePath.c_str());
        obs::printProfileReport(report);
    }

    if (json) {
        for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
            if (batch.outcomes[i].ok) {
                std::printf("%s\n",
                            sim::toJson(batch.outcomes[i].result,
                                        batch.jobs[i].profile.name +
                                            "/" +
                                            batch.jobs[i].variant.label)
                                .c_str());
            }
        }
    } else if (options.shard.enabled()) {
        // A shard holds an arbitrary slice of the grid, so the
        // apps × variants speedup table cannot be filled in; list
        // the owned jobs instead and leave comparisons to a
        // post-merge `critics_cli diff`/report.
        for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
            const auto &job = batch.jobs[i];
            const auto &outcome = batch.outcomes[i];
            std::printf("%-12s %-16s %s\n", job.profile.name.c_str(),
                        job.variant.label.c_str(),
                        outcome.ok
                            ? (fmt(double(outcome.result.cpu.cycles),
                                   0) + " cyc").c_str()
                            : "FAILED");
        }
    } else {
        std::vector<std::string> header{"app"};
        for (const auto &variant : variants)
            header.push_back(variant.label);
        Table table(std::move(header));
        for (std::size_t a = 0; a < apps.size(); ++a) {
            std::vector<std::string> row{apps[a].name};
            for (std::size_t v = 0; v < variants.size(); ++v) {
                const std::size_t i = a * variants.size() + v;
                if (!batch.outcomes[i].ok) {
                    row.push_back("FAILED");
                } else if (v == 0) {
                    row.push_back(
                        fmt(double(batch.outcomes[i].result.cpu.cycles),
                            0) +
                        " cyc");
                } else {
                    row.push_back(gainPct(
                        batch.speedup(a * variants.size(), i)));
                }
            }
            table.addRow(std::move(row));
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("%s\n", batch.manifest.summaryLine().c_str());
    if (!batch.manifestPath.empty())
        std::printf("manifest: %s\n", batch.manifestPath.c_str());
    if (statsInterval > 0) {
        if (statsJsonl.empty()) {
            std::printf("stats: no interval rows (every job came from "
                        "the cache; use --refresh)\n");
        } else {
            std::ofstream out(statsOut, std::ios::trunc);
            out << statsJsonl;
            std::printf("stats: %s\n", statsOut.c_str());
        }
    }
    if (!traceOut.empty() && trace.writeTo(traceOut)) {
        std::printf("trace: %s (%zu events)\n", traceOut.c_str(),
                    trace.size());
    }
    return batch.allOk() ? 0 : 1;
}

int
cmdReport(int argc, char **argv)
{
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i)
        paths.emplace_back(argv[i]);
    if (paths.empty()) {
        const std::string dir = runner::cacheDir() + "/manifests";
        std::error_code ec;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir, ec)) {
            if (entry.path().extension() == ".json")
                paths.push_back(entry.path().string());
        }
        std::sort(paths.begin(), paths.end());
        if (paths.empty()) {
            std::printf("no manifests under %s\n", dir.c_str());
            return 0;
        }
    }

    std::size_t failures = 0;
    bool interrupted = false;
    for (const auto &path : paths) {
        runner::RunManifest manifest;
        if (!runner::RunManifest::read(path, manifest)) {
            std::printf("%s: unreadable manifest\n", path.c_str());
            ++failures;
            continue;
        }
        std::printf("%s\n", manifest.summaryLine().c_str());
        interrupted = interrupted || manifest.interrupted;
        for (const auto &job : manifest.jobs) {
            if (!job.ok) {
                ++failures;
                std::printf("  FAILED %s/%s (%u attempts): %s\n",
                            job.app.c_str(), job.variant.c_str(),
                            job.attempts, job.error.c_str());
            }
        }
    }
    if (failures > 0 || interrupted) {
        std::printf("%zu failed job(s)%s\n", failures,
                    interrupted ? ", batch interrupted" : "");
        return 1;
    }
    return 0;
}

/** "900", "900s", "15m", "12h" or "30d" → seconds. */
std::uint64_t
parseDuration(const std::string &text)
{
    if (text.empty())
        critics_fatal("empty duration");
    std::uint64_t scale = 1;
    std::string digits = text;
    switch (text.back()) {
      case 'd': scale = 86400; digits.pop_back(); break;
      case 'h': scale = 3600; digits.pop_back(); break;
      case 'm': scale = 60; digits.pop_back(); break;
      case 's': scale = 1; digits.pop_back(); break;
      default: break;
    }
    return std::stoull(digits) * scale;
}

/** "65536", "512K", "512M" or "2G" → bytes. */
std::uintmax_t
parseBytes(const std::string &text)
{
    if (text.empty())
        critics_fatal("empty size");
    std::uintmax_t scale = 1;
    std::string digits = text;
    switch (text.back()) {
      case 'K': case 'k': scale = 1024ull; digits.pop_back(); break;
      case 'M': case 'm': scale = 1024ull << 10; digits.pop_back(); break;
      case 'G': case 'g': scale = 1024ull << 20; digits.pop_back(); break;
      default: break;
    }
    return std::stoull(digits) * scale;
}

int
cmdCacheMerge(int argc, char **argv)
{
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i)
        paths.emplace_back(argv[i]);
    if (paths.size() < 2) {
        std::fprintf(stderr,
                     "cache merge wants <out> <in...> (one output, at "
                     "least one input)\n");
        return 2;
    }
    const std::string out = paths.front();
    paths.erase(paths.begin());
    const auto stats = runner::mergeStores(out, paths);
    if (!stats) {
        std::fprintf(stderr, "cache merge failed\n");
        return 1;
    }
    std::printf("merged %zu store(s) -> %s\n  %s\n", stats->filesRead,
                out.c_str(), stats->summary().c_str());
    return 0;
}

int
cmdCacheCompact(int argc, char **argv)
{
    const std::string path = argc > 0
        ? argv[0] : runner::cacheDir() + "/results.jsonl";
    const auto stats = runner::compactStore(path);
    if (!stats) {
        std::fprintf(stderr, "cache compact failed for %s\n",
                     path.c_str());
        return 1;
    }
    std::printf("compacted %s\n  %s\n", path.c_str(),
                stats->summary().c_str());
    return 0;
}

int
cmdCacheGc(int argc, char **argv)
{
    runner::GcOptions opt;
    std::string path;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--max-age") {
            opt.maxAgeSeconds = parseDuration(next());
        } else if (arg == "--max-bytes") {
            opt.maxBytes = parseBytes(next());
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            path = arg;
        }
    }
    if (opt.maxAgeSeconds == 0 && opt.maxBytes == 0) {
        std::fprintf(stderr,
                     "cache gc wants --max-age and/or --max-bytes\n");
        return 2;
    }
    if (path.empty())
        path = runner::cacheDir() + "/results.jsonl";
    const auto stats = runner::gcStore(path, opt);
    if (!stats) {
        std::fprintf(stderr, "cache gc failed for %s\n", path.c_str());
        return 1;
    }
    std::printf("gc %s\n  %s\n", path.c_str(),
                stats->summary().c_str());
    return 0;
}

int
cmdCache(int argc, char **argv)
{
    const std::string action = argc > 0 ? argv[0] : "stats";
    if (action == "merge")
        return cmdCacheMerge(argc - 1, argv + 1);
    if (action == "compact")
        return cmdCacheCompact(argc - 1, argv + 1);
    if (action == "gc")
        return cmdCacheGc(argc - 1, argv + 1);
    runner::ResultStore store;
    if (action == "stats") {
        std::uintmax_t bytes = 0;
        std::error_code ec;
        bytes = std::filesystem::file_size(store.path(), ec);
        if (ec)
            bytes = 0;
        std::printf("cache: %s\n  records: %zu (schema v%d)\n"
                    "  size: %.1f KiB\n",
                    store.path().c_str(), store.size(),
                    runner::kResultSchemaVersion,
                    static_cast<double>(bytes) / 1024.0);
        return 0;
    }
    if (action == "path") {
        std::printf("%s\n", store.path().c_str());
        return 0;
    }
    if (action == "clear") {
        const std::size_t had = store.size();
        store.clear();
        std::printf("cleared %zu record(s) from %s\n", had,
                    store.path().c_str());
        return 0;
    }
    return usage();
}

// ---------------------------------------------------------------------------
// serve / submit / status / wait: simulation as a service.

/** Atomic so the install/clear in cmdServe and the read in the signal
 *  handler never race (a plain pointer here is a data race the
 *  concurrency checks rightly reject). */
std::atomic<serve::Server *> gServeInstance{nullptr};

/** SIGTERM/SIGINT → graceful drain.  requestShutdown() is an atomic
 *  store plus a self-pipe write(), both async-signal-safe; the
 *  signal-handler check cannot see through the member call, hence the
 *  justification NOLINT. */
void
serveSignalHandler(int)
{
    serve::Server *server =
        gServeInstance.load(std::memory_order_acquire);
    if (server != nullptr)
        server->requestShutdown(); // NOLINT(bugprone-signal-handler)
}

/** This binary's path, for exec'ing serve-worker children. */
std::string
selfExecutable()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return "critics_cli"; // fall back to execvp's PATH lookup
}

/** --port / --port-file → a port number; 0 when neither resolves. */
unsigned short
resolvePort(const std::string &portArg, const std::string &portFile)
{
    if (!portArg.empty())
        return static_cast<unsigned short>(std::stoul(portArg));
    if (!portFile.empty()) {
        std::ifstream in(portFile);
        unsigned port = 0;
        if (in >> port)
            return static_cast<unsigned short>(port);
    }
    return 0;
}

bool
connectDaemon(serve::ServeClient &client, const std::string &host,
              const std::string &portArg, const std::string &portFile)
{
    const unsigned short port = resolvePort(portArg, portFile);
    if (port == 0) {
        std::fprintf(stderr,
                     "need --port <n> or --port-file <f> to find the "
                     "daemon\n");
        return false;
    }
    std::string error;
    if (!client.connect(host, port, &error)) {
        std::fprintf(stderr, "cannot connect: %s\n", error.c_str());
        return false;
    }
    return true;
}

/** Stream a job's events to stdout until its "done" line; exit code
 *  0 only when the batch finished with zero failed jobs. */
int
streamJob(serve::ServeClient &client, const std::string &jobId)
{
    serve::Request request;
    request.op = serve::Request::Op::Wait;
    request.job = jobId;
    if (!client.sendLine(serve::renderRequest(request)))
        return 1;
    for (;;) {
        const auto line = client.readLine(-1);
        if (!line) {
            std::fprintf(stderr,
                         "connection lost; the job keeps running — "
                         "`critics_cli wait %s` resumes the stream\n",
                         jobId.c_str());
            return 1;
        }
        std::printf("%s\n", line->c_str());
        std::fflush(stdout);
        const auto doc = json::parseJson(*line);
        if (!doc)
            continue;
        if (const auto *ok = doc->find("ok")) {
            if (ok->asBool() == false)
                return 1; // protocol error (e.g. unknown job)
        }
        const auto *event = doc->find("event");
        if (event != nullptr &&
            event->asString().value_or("") == "done") {
            const auto *state = doc->find("state");
            const auto *failed = doc->find("failed");
            const bool clean =
                state != nullptr &&
                state->asString().value_or("") == "done" &&
                failed != nullptr && failed->asUint().value_or(1) == 0;
            return clean ? 0 : 1;
        }
    }
}

int
cmdServe(int argc, char **argv)
{
    serve::ServerOptions options;
    std::string traceOut, statsOut;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--host") {
            options.host = next();
        } else if (arg == "--port") {
            options.port =
                static_cast<unsigned short>(std::stoul(next()));
        } else if (arg == "--port-file") {
            options.portFile = next();
        } else if (arg == "--workers") {
            options.workers =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--max-restarts") {
            options.maxRestarts =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--attempts") {
            options.maxAttempts =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--cache-file") {
            options.cachePath = next();
        } else if (arg == "--trace-out") {
            traceOut = next();
        } else if (arg == "--profile-dir") {
            options.profileDir = next();
        } else if (arg == "--stats-out") {
            statsOut = next();
        } else {
            return usage();
        }
    }
    options.workerExe = selfExecutable();

    stats::TraceEventWriter trace;
    if (!traceOut.empty())
        options.trace = &trace;

    serve::Server server(options);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 1;
    }

    stats::StatRegistry reg;
    server.registerStats(reg);

    gServeInstance = &server;
    std::signal(SIGTERM, serveSignalHandler);
    std::signal(SIGINT, serveSignalHandler);

    std::printf("serving on %s:%u (pid %d, %u worker(s))\n",
                options.host.c_str(), server.port(),
                static_cast<int>(::getpid()), options.workers);
    std::fflush(stdout);

    server.wait();
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    gServeInstance = nullptr;

    if (!statsOut.empty()) {
        std::ofstream out(statsOut, std::ios::trunc);
        out << reg.toJson() << "\n";
    }
    if (!traceOut.empty() && trace.writeTo(traceOut)) {
        std::printf("trace: %s (%zu events)\n", traceOut.c_str(),
                    trace.size());
    }
    std::printf("serve: drained; %llu warm hit(s), %llu simulated, "
                "%llu failed, %llu worker restart(s)\n",
                static_cast<unsigned long long>(server.warmHits()),
                static_cast<unsigned long long>(server.simulated()),
                static_cast<unsigned long long>(server.failedJobs()),
                static_cast<unsigned long long>(
                    server.workerRestarts()));
    return 0;
}

int
cmdSubmit(int argc, char **argv)
{
    std::string host = "127.0.0.1", portArg, portFile;
    bool noWait = false;
    serve::Request request;
    request.op = serve::Request::Op::Submit;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--host") {
            host = next();
        } else if (arg == "--port") {
            portArg = next();
        } else if (arg == "--port-file") {
            portFile = next();
        } else if (arg == "--apps") {
            request.submit.apps = next();
        } else if (arg == "--variants") {
            request.submit.variants = next();
        } else if (arg == "--insts") {
            request.submit.insts = std::stoull(next());
        } else if (arg == "--batch") {
            request.submit.batch = next();
        } else if (arg == "--refresh") {
            request.submit.refresh = true;
        } else if (arg == "--sleep-ms") {
            request.submit.sleepMs = std::stoull(next());
        } else if (arg == "--no-wait") {
            noWait = true;
        } else {
            return usage();
        }
    }

    serve::ServeClient client;
    if (!connectDaemon(client, host, portArg, portFile))
        return 1;
    if (!client.sendLine(serve::renderRequest(request)))
        return 1;
    const auto reply = client.readLine(-1);
    if (!reply) {
        std::fprintf(stderr, "daemon closed the connection\n");
        return 1;
    }
    std::printf("%s\n", reply->c_str());
    const auto doc = json::parseJson(*reply);
    if (!doc)
        return 1;
    const auto *ok = doc->find("ok");
    if (ok == nullptr || ok->asBool() != true)
        return 1;
    const auto *job = doc->find("job");
    const std::string jobId =
        job != nullptr ? job->asString().value_or("") : "";
    if (jobId.empty())
        return 1;
    if (noWait)
        return 0;
    return streamJob(client, jobId);
}

int
cmdStatus(int argc, char **argv)
{
    std::string host = "127.0.0.1", portArg, portFile, jobId;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--host") {
            host = next();
        } else if (arg == "--port") {
            portArg = next();
        } else if (arg == "--port-file") {
            portFile = next();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            jobId = arg;
        }
    }
    if (jobId.empty()) {
        std::fprintf(stderr, "status wants a job id (serve-<n>)\n");
        return 2;
    }
    serve::ServeClient client;
    if (!connectDaemon(client, host, portArg, portFile))
        return 1;
    serve::Request request;
    request.op = serve::Request::Op::Status;
    request.job = jobId;
    if (!client.sendLine(serve::renderRequest(request)))
        return 1;
    const auto reply = client.readLine(-1);
    if (!reply) {
        std::fprintf(stderr, "daemon closed the connection\n");
        return 1;
    }
    std::printf("%s\n", reply->c_str());
    const auto doc = json::parseJson(*reply);
    if (!doc)
        return 1;
    const auto *ok = doc->find("ok");
    return (ok != nullptr && ok->asBool() == true) ? 0 : 1;
}

int
cmdWait(int argc, char **argv)
{
    std::string host = "127.0.0.1", portArg, portFile, jobId;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--host") {
            host = next();
        } else if (arg == "--port") {
            portArg = next();
        } else if (arg == "--port-file") {
            portFile = next();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            jobId = arg;
        }
    }
    if (jobId.empty()) {
        std::fprintf(stderr, "wait wants a job id (serve-<n>)\n");
        return 2;
    }
    serve::ServeClient client;
    if (!connectDaemon(client, host, portArg, portFile))
        return 1;
    return streamJob(client, jobId);
}

// ---------------------------------------------------------------------------
// top: the live daemon monitor.

/** Numeric field of the stats reply's "serve" object (optionally one
 *  level deeper); 0 when absent. */
double
serveStat(const json::JsonValue &doc, const char *outer,
          const char *inner = nullptr)
{
    const json::JsonValue *node = doc.find("serve");
    if (node != nullptr)
        node = node->find(outer);
    if (node != nullptr && inner != nullptr)
        node = node->find(inner);
    return node != nullptr ? node->asDouble().value_or(0.0) : 0.0;
}

/** Microseconds → "980us" / "1.2ms" / "3.40s". */
std::string
fmtUs(double us)
{
    char buf[32];
    if (us >= 1e6)
        std::snprintf(buf, sizeof buf, "%.2fs", us / 1e6);
    else if (us >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fms", us / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0fus", us);
    return buf;
}

int
cmdTop(int argc, char **argv)
{
    std::string host = "127.0.0.1", portArg, portFile;
    double interval = 2.0;
    bool once = false;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--host") {
            host = next();
        } else if (arg == "--port") {
            portArg = next();
        } else if (arg == "--port-file") {
            portFile = next();
        } else if (arg == "--interval") {
            interval = std::stod(next());
        } else if (arg == "--once") {
            once = true;
        } else {
            return usage();
        }
    }
    if (interval <= 0.0)
        interval = 2.0;

    serve::ServeClient client;
    if (!connectDaemon(client, host, portArg, portFile))
        return 1;

    serve::Request request;
    request.op = serve::Request::Op::Stats;
    const std::string statsLine = serve::renderRequest(request);
    const bool tty = ::isatty(::fileno(stdout)) != 0;

    for (;;) {
        if (!client.sendLine(statsLine))
            return 1;
        const auto reply = client.readLine(-1);
        if (!reply) {
            std::fprintf(stderr, "daemon closed the connection\n");
            return 1;
        }
        const auto doc = json::parseJson(*reply);
        if (!doc || doc->find("serve") == nullptr) {
            std::fprintf(stderr, "malformed stats reply: %s\n",
                         reply->c_str());
            return 1;
        }
        // Home + clear keeps the panel in place between refreshes;
        // piped output just gets one panel per poll.
        if (!once && tty)
            std::printf("\x1b[H\x1b[2J");

        std::string runningBatch = "-";
        if (const auto *serve = doc->find("serve")) {
            if (const auto *batch = serve->find("runningBatch")) {
                const auto name = batch->asString().value_or("");
                if (!name.empty())
                    runningBatch = name;
            }
        }
        std::printf("critics serve @ %s — up %s\n", host.c_str(),
                    fmtUs(serveStat(*doc, "uptimeUs")).c_str());
        std::printf("%-16s %8.0f   %-16s %s\n", "queue depth",
                    serveStat(*doc, "queueDepth"), "running batch",
                    runningBatch.c_str());
        std::printf("%-16s %8.0f   %-16s %.0f\n", "active workers",
                    serveStat(*doc, "activeWorkers"),
                    "in-flight shards",
                    serveStat(*doc, "inFlightShards"));
        std::printf("%-16s %8.0f   %-16s %.1f%%\n", "warm hits",
                    serveStat(*doc, "warmHits"), "warm-hit ratio",
                    serveStat(*doc, "warmHitRatio") * 100.0);
        std::printf("%-16s %8.0f   %-16s %.0f\n", "simulated",
                    serveStat(*doc, "simulated"), "failed jobs",
                    serveStat(*doc, "failedJobs"));
        std::printf("%-16s %8.0f   %-16s %.0f\n", "worker crashes",
                    serveStat(*doc, "workerCrashes"), "restarts",
                    serveStat(*doc, "workerRestarts"));
        std::printf("job latency  n=%-6.0f p50 %-8s p90 %-8s p99 %-8s"
                    " mean %s\n",
                    serveStat(*doc, "jobLatency", "count"),
                    fmtUs(serveStat(*doc, "jobLatency", "p50Us"))
                        .c_str(),
                    fmtUs(serveStat(*doc, "jobLatency", "p90Us"))
                        .c_str(),
                    fmtUs(serveStat(*doc, "jobLatency", "p99Us"))
                        .c_str(),
                    fmtUs(serveStat(*doc, "jobLatency", "meanUs"))
                        .c_str());
        std::printf("queue wait   n=%-6.0f p50 %-8s p99 %s\n",
                    serveStat(*doc, "queueWait", "count"),
                    fmtUs(serveStat(*doc, "queueWait", "p50Us"))
                        .c_str(),
                    fmtUs(serveStat(*doc, "queueWait", "p99Us"))
                        .c_str());
        std::fflush(stdout);
        if (once)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
    }
}

// ---------------------------------------------------------------------------
// prof: profile report pretty-printer.

int
cmdProf(int argc, char **argv)
{
    if (argc < 1 || std::string(argv[0]) != "report")
        return usage();
    std::string path;
    std::size_t topN = 20;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top") {
            if (i + 1 >= argc)
                critics_fatal("--top needs a value");
            topN = std::stoul(argv[++i]);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "prof report wants a --profile JSON file\n");
        return 2;
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    return obs::printProfileReport(text, topN) ? 0 : 1;
}

int
legacySingleRun(int argc, char **argv)
{
    std::string app = "Acrobat";
    std::string variantName = "critic";
    std::uint64_t insts = 400000;
    std::uint64_t statsInterval = 0;
    std::string statsOut = "stats_single.jsonl";
    std::string traceOut;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--app") {
            app = next();
        } else if (arg == "--variant") {
            variantName = next();
        } else if (arg == "--insts") {
            insts = std::stoull(next());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--stats-interval") {
            statsInterval = std::stoull(next());
        } else if (arg == "--stats-out") {
            statsOut = next();
        } else if (arg == "--trace-out") {
            traceOut = next();
        } else if (arg == "--list") {
            for (const auto &profile : workload::allApps()) {
                std::printf("%-12s %-10s %s\n", profile.name.c_str(),
                            workload::suiteName(profile.suite),
                            profile.activity.c_str());
            }
            return 0;
        } else {
            return usage();
        }
    }

    sim::ExperimentOptions options;
    options.traceInsts = insts;
    sim::AppExperiment exp(workload::findApp(app), options);
    const sim::Variant variant = parseVariant(variantName);
    const auto &base = exp.baseline();

    sim::RunHooks hooks;
    stats::IntervalSeries series;
    stats::TraceEventWriter trace;
    hooks.statsInterval = statsInterval;
    if (statsInterval > 0)
        hooks.intervals = &series;
    if (!traceOut.empty())
        hooks.trace = &trace;
    const auto result = exp.run(variant, hooks);

    if (statsInterval > 0) {
        std::ofstream out(statsOut, std::ios::trunc);
        out << series.toJsonl(app + "/" + variantName);
        std::fprintf(stderr, "stats: %s (%zu rows)\n",
                     statsOut.c_str(), series.size());
    }
    if (!traceOut.empty() && trace.writeTo(traceOut)) {
        std::fprintf(stderr, "trace: %s (%zu events)\n",
                     traceOut.c_str(), trace.size());
    }

    if (json) {
        std::printf("%s\n",
                    sim::comparisonJson(base, result, variantName)
                        .c_str());
        return 0;
    }

    Table table({"metric", "baseline", variantName});
    table.addRow({"cycles", fmt(double(base.cpu.cycles), 0),
                  fmt(double(result.cpu.cycles), 0)});
    table.addRow({"IPC", fmt(base.cpu.ipc()), fmt(result.cpu.ipc())});
    table.addRow({"F.StallForI", pct(base.cpu.fracStallForI()),
                  pct(result.cpu.fracStallForI())});
    table.addRow({"F.StallForR+D", pct(base.cpu.fracStallForRd()),
                  pct(result.cpu.fracStallForRd())});
    table.addRow({"dyn 16-bit", pct(base.dynThumbFraction),
                  pct(result.dynThumbFraction)});
    table.addRow({"SoC energy (norm.)", fmt(1.0),
                  fmt(result.energy.total() / base.energy.total(), 4)});
    std::printf("%s (%s) under '%s'\n%s\nspeedup: %s\n",
                app.c_str(),
                workload::suiteName(exp.profile().suite),
                variantName.c_str(), table.render().c_str(),
                gainPct(exp.speedup(result)).c_str());
    return 0;
}

} // namespace

int
run(int argc, char **argv)
{
    setQuiet(true);
    if (argc > 1) {
        const std::string command = argv[1];
        if (command == "run")
            return cmdRun(argc - 2, argv + 2);
        if (command == "bench")
            return cmdBench(argc - 2, argv + 2);
        if (command == "report")
            return cmdReport(argc - 2, argv + 2);
        if (command == "cache")
            return cmdCache(argc - 2, argv + 2);
        if (command == "diff")
            return cmdDiff(argc - 2, argv + 2);
        if (command == "lint")
            return cmdLint(argc - 2, argv + 2);
        if (command == "serve")
            return cmdServe(argc - 2, argv + 2);
        if (command == "serve-worker")
            return serve::serveWorkerMain(argc - 2, argv + 2);
        if (command == "submit")
            return cmdSubmit(argc - 2, argv + 2);
        if (command == "status")
            return cmdStatus(argc - 2, argv + 2);
        if (command == "wait")
            return cmdWait(argc - 2, argv + 2);
        if (command == "top")
            return cmdTop(argc - 2, argv + 2);
        if (command == "prof")
            return cmdProf(argc - 2, argv + 2);
        if (command == "--help" || command == "-h" ||
            command == "help") {
            usage();
            return 0;
        }
    }
    return legacySingleRun(argc, argv);
}

int
main(int argc, char **argv)
{
    // Bad input (unknown app, malformed number) surfaces as an
    // exception from the layer that rejected it; exit cleanly
    // instead of std::terminate.
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &) {
        std::fprintf(stderr, "error: malformed numeric argument\n");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
    }
    return 2;
}
