/**
 * @file
 * Command-line driver for the experiment orchestrator.
 *
 * Subcommands:
 *   critics_cli run --apps Acrobat,Office --variants baseline,critic
 *       Run an (apps × variants) sweep through the runner: cached
 *       design points are served from the persistent JSONL store, the
 *       rest simulate on the thread pool; prints a speedup table and
 *       the manifest summary.
 *   critics_cli report [manifest.json ...]
 *       Summarize run manifests (default: every manifest in the cache
 *       directory); exits non-zero if any batch recorded a failed job.
 *   critics_cli cache [stats|path|clear]
 *       Inspect or clear the persistent result cache.
 *
 * The original single-run interface still works:
 *   critics_cli --app Acrobat --variant critic [--json]
 *   critics_cli --list
 *
 * Variants: baseline, hoist, critic, critic-ideal, critic-branchpair,
 *           opp16, compress, opp16+critic, prefetch, aluprio,
 *           backendprio, efetch, perfectbr, icache4x, 2xfd, allhw
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "runner/orchestrator.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace critics;

namespace
{

sim::Variant
parseVariant(const std::string &name)
{
    sim::Variant v;
    v.label = name;
    if (name == "baseline") {
    } else if (name == "hoist") {
        v.transform = sim::Transform::Hoist;
    } else if (name == "critic") {
        v.transform = sim::Transform::CritIc;
    } else if (name == "critic-ideal") {
        v.transform = sim::Transform::CritIcIdeal;
    } else if (name == "critic-branchpair") {
        v.transform = sim::Transform::CritIc;
        v.switchMode = compiler::SwitchMode::BranchPair;
    } else if (name == "opp16") {
        v.transform = sim::Transform::Opp16;
    } else if (name == "compress") {
        v.transform = sim::Transform::Compress;
    } else if (name == "opp16+critic") {
        v.transform = sim::Transform::Opp16PlusCritIc;
    } else if (name == "prefetch") {
        v.criticalLoadPrefetch = true;
    } else if (name == "aluprio") {
        v.aluPrio = true;
    } else if (name == "backendprio") {
        v.backendPrio = true;
    } else if (name == "efetch") {
        v.efetch = true;
    } else if (name == "perfectbr") {
        v.perfectBranch = true;
    } else if (name == "icache4x") {
        v.icache4x = true;
    } else if (name == "2xfd") {
        v.doubleFrontend = true;
    } else if (name == "allhw") {
        v.doubleFrontend = v.icache4x = v.efetch = v.perfectBranch =
            v.backendPrio = true;
    } else {
        critics_fatal("unknown variant '", name,
                      "' (see --help for the list)");
    }
    return v;
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::string current;
    for (const char c : text) {
        if (c == ',') {
            if (!current.empty())
                out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        out.push_back(current);
    return out;
}

/** --apps value: a suite name or a comma list of app names. */
std::vector<workload::AppProfile>
parseApps(const std::string &value)
{
    if (value == "mobile" || value == "android")
        return workload::mobileApps();
    if (value == "specint")
        return workload::specIntApps();
    if (value == "specfloat")
        return workload::specFloatApps();
    if (value == "all")
        return workload::allApps();
    std::vector<workload::AppProfile> apps;
    for (const auto &name : splitList(value))
        apps.push_back(workload::findApp(name));
    if (apps.empty())
        critics_fatal("--apps needs at least one app");
    return apps;
}

int
usage()
{
    std::printf(
        "critics_cli — experiment orchestrator driver\n\n"
        "critics_cli run [options]     run an apps × variants sweep\n"
        "  --apps <list>       comma list of app names, or one of\n"
        "                      mobile|specint|specfloat|all\n"
        "  --variants <list>   comma list of variant names\n"
        "  --insts <n>         dynamic instructions per sample\n"
        "  --batch <name>      manifest name (default 'cli')\n"
        "  --no-cache          bypass the persistent result cache\n"
        "  --refresh           ignore cached records, re-simulate\n"
        "  --json              emit per-job comparison JSON\n"
        "critics_cli report [file ...] summarize run manifests\n"
        "                      (default: all manifests in the cache\n"
        "                      dir); exit 1 on any failed job\n"
        "critics_cli cache [stats|path|clear]\n\n"
        "critics_cli --app <name> --variant <name> [--insts n]\n"
        "                      [--json]   single run (legacy)\n"
        "critics_cli --list    list registered apps\n\n"
        "  variants: baseline|hoist|critic|critic-ideal|\n"
        "            critic-branchpair|opp16|compress|opp16+critic|\n"
        "            prefetch|aluprio|backendprio|efetch|perfectbr|\n"
        "            icache4x|2xfd|allhw\n");
    return 2;
}

int
cmdRun(int argc, char **argv)
{
    std::string appsArg = "mobile";
    std::string variantsArg = "baseline,critic";
    std::string batchName = "cli";
    std::uint64_t insts = 400000;
    bool json = false;
    runner::RunnerOptions options;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--apps") {
            appsArg = next();
        } else if (arg == "--variants") {
            variantsArg = next();
        } else if (arg == "--insts") {
            insts = std::stoull(next());
        } else if (arg == "--batch") {
            batchName = next();
        } else if (arg == "--no-cache") {
            options.useCache = false;
        } else if (arg == "--refresh") {
            options.refresh = true;
        } else if (arg == "--json") {
            json = true;
        } else {
            return usage();
        }
    }

    const auto apps = parseApps(appsArg);
    std::vector<sim::Variant> variants;
    for (const auto &name : splitList(variantsArg))
        variants.push_back(parseVariant(name));
    if (variants.empty())
        critics_fatal("--variants needs at least one variant");

    sim::ExperimentOptions expOptions;
    expOptions.traceInsts = insts;

    runner::Runner runner(options);
    const auto batch = runner.run(
        batchName, runner::makeGrid(apps, variants, expOptions));

    if (json) {
        for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
            if (batch.outcomes[i].ok) {
                std::printf("%s\n",
                            sim::toJson(batch.outcomes[i].result,
                                        batch.jobs[i].profile.name +
                                            "/" +
                                            batch.jobs[i].variant.label)
                                .c_str());
            }
        }
    } else {
        std::vector<std::string> header{"app"};
        for (const auto &variant : variants)
            header.push_back(variant.label);
        Table table(std::move(header));
        for (std::size_t a = 0; a < apps.size(); ++a) {
            std::vector<std::string> row{apps[a].name};
            for (std::size_t v = 0; v < variants.size(); ++v) {
                const std::size_t i = a * variants.size() + v;
                if (!batch.outcomes[i].ok) {
                    row.push_back("FAILED");
                } else if (v == 0) {
                    row.push_back(
                        fmt(double(batch.outcomes[i].result.cpu.cycles),
                            0) +
                        " cyc");
                } else {
                    row.push_back(gainPct(
                        batch.speedup(a * variants.size(), i)));
                }
            }
            table.addRow(std::move(row));
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("%s\n", batch.manifest.summaryLine().c_str());
    if (!batch.manifestPath.empty())
        std::printf("manifest: %s\n", batch.manifestPath.c_str());
    return batch.allOk() ? 0 : 1;
}

int
cmdReport(int argc, char **argv)
{
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i)
        paths.emplace_back(argv[i]);
    if (paths.empty()) {
        const std::string dir = runner::cacheDir() + "/manifests";
        std::error_code ec;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir, ec)) {
            if (entry.path().extension() == ".json")
                paths.push_back(entry.path().string());
        }
        std::sort(paths.begin(), paths.end());
        if (paths.empty()) {
            std::printf("no manifests under %s\n", dir.c_str());
            return 0;
        }
    }

    std::size_t failures = 0;
    bool interrupted = false;
    for (const auto &path : paths) {
        runner::RunManifest manifest;
        if (!runner::RunManifest::read(path, manifest)) {
            std::printf("%s: unreadable manifest\n", path.c_str());
            ++failures;
            continue;
        }
        std::printf("%s\n", manifest.summaryLine().c_str());
        interrupted = interrupted || manifest.interrupted;
        for (const auto &job : manifest.jobs) {
            if (!job.ok) {
                ++failures;
                std::printf("  FAILED %s/%s (%u attempts): %s\n",
                            job.app.c_str(), job.variant.c_str(),
                            job.attempts, job.error.c_str());
            }
        }
    }
    if (failures > 0 || interrupted) {
        std::printf("%zu failed job(s)%s\n", failures,
                    interrupted ? ", batch interrupted" : "");
        return 1;
    }
    return 0;
}

int
cmdCache(int argc, char **argv)
{
    const std::string action = argc > 0 ? argv[0] : "stats";
    runner::ResultStore store;
    if (action == "stats") {
        std::uintmax_t bytes = 0;
        std::error_code ec;
        bytes = std::filesystem::file_size(store.path(), ec);
        if (ec)
            bytes = 0;
        std::printf("cache: %s\n  records: %zu (schema v%d)\n"
                    "  size: %.1f KiB\n",
                    store.path().c_str(), store.size(),
                    runner::kResultSchemaVersion,
                    static_cast<double>(bytes) / 1024.0);
        return 0;
    }
    if (action == "path") {
        std::printf("%s\n", store.path().c_str());
        return 0;
    }
    if (action == "clear") {
        const std::size_t had = store.size();
        store.clear();
        std::printf("cleared %zu record(s) from %s\n", had,
                    store.path().c_str());
        return 0;
    }
    return usage();
}

int
legacySingleRun(int argc, char **argv)
{
    std::string app = "Acrobat";
    std::string variantName = "critic";
    std::uint64_t insts = 400000;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--app") {
            app = next();
        } else if (arg == "--variant") {
            variantName = next();
        } else if (arg == "--insts") {
            insts = std::stoull(next());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list") {
            for (const auto &profile : workload::allApps()) {
                std::printf("%-12s %-10s %s\n", profile.name.c_str(),
                            workload::suiteName(profile.suite),
                            profile.activity.c_str());
            }
            return 0;
        } else {
            return usage();
        }
    }

    sim::ExperimentOptions options;
    options.traceInsts = insts;
    sim::AppExperiment exp(workload::findApp(app), options);
    const sim::Variant variant = parseVariant(variantName);
    const auto &base = exp.baseline();
    const auto result = exp.run(variant);

    if (json) {
        std::printf("%s\n",
                    sim::comparisonJson(base, result, variantName)
                        .c_str());
        return 0;
    }

    Table table({"metric", "baseline", variantName});
    table.addRow({"cycles", fmt(double(base.cpu.cycles), 0),
                  fmt(double(result.cpu.cycles), 0)});
    table.addRow({"IPC", fmt(base.cpu.ipc()), fmt(result.cpu.ipc())});
    table.addRow({"F.StallForI", pct(base.cpu.fracStallForI()),
                  pct(result.cpu.fracStallForI())});
    table.addRow({"F.StallForR+D", pct(base.cpu.fracStallForRd()),
                  pct(result.cpu.fracStallForRd())});
    table.addRow({"dyn 16-bit", pct(base.dynThumbFraction),
                  pct(result.dynThumbFraction)});
    table.addRow({"SoC energy (norm.)", fmt(1.0),
                  fmt(result.energy.total() / base.energy.total(), 4)});
    std::printf("%s (%s) under '%s'\n%s\nspeedup: %s\n",
                app.c_str(),
                workload::suiteName(exp.profile().suite),
                variantName.c_str(), table.render().c_str(),
                gainPct(exp.speedup(result)).c_str());
    return 0;
}

} // namespace

int
run(int argc, char **argv)
{
    setQuiet(true);
    if (argc > 1) {
        const std::string command = argv[1];
        if (command == "run")
            return cmdRun(argc - 2, argv + 2);
        if (command == "report")
            return cmdReport(argc - 2, argv + 2);
        if (command == "cache")
            return cmdCache(argc - 2, argv + 2);
        if (command == "--help" || command == "-h" ||
            command == "help") {
            usage();
            return 0;
        }
    }
    return legacySingleRun(argc, argv);
}

int
main(int argc, char **argv)
{
    // Bad input (unknown app, malformed number) surfaces as an
    // exception from the layer that rejected it; exit cleanly
    // instead of std::terminate.
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &) {
        std::fprintf(stderr, "error: malformed numeric argument\n");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
    }
    return 2;
}
