/**
 * @file
 * Command-line driver: run any registered app under any design point
 * and emit either a human-readable summary or the JSON report (for
 * plotting scripts / CI regression checks).
 *
 * Usage:
 *   critics_cli --app Acrobat --variant critic
 *   critics_cli --app mcf --variant prefetch --json
 *   critics_cli --list
 *
 * Variants: baseline, hoist, critic, critic-ideal, critic-branchpair,
 *           opp16, compress, opp16+critic, prefetch, aluprio,
 *           backendprio, efetch, perfectbr, icache4x, 2xfd, allhw
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/experiment.hh"
#include "sim/report.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace critics;

namespace
{

sim::Variant
parseVariant(const std::string &name)
{
    sim::Variant v;
    v.label = name;
    if (name == "baseline") {
    } else if (name == "hoist") {
        v.transform = sim::Transform::Hoist;
    } else if (name == "critic") {
        v.transform = sim::Transform::CritIc;
    } else if (name == "critic-ideal") {
        v.transform = sim::Transform::CritIcIdeal;
    } else if (name == "critic-branchpair") {
        v.transform = sim::Transform::CritIc;
        v.switchMode = compiler::SwitchMode::BranchPair;
    } else if (name == "opp16") {
        v.transform = sim::Transform::Opp16;
    } else if (name == "compress") {
        v.transform = sim::Transform::Compress;
    } else if (name == "opp16+critic") {
        v.transform = sim::Transform::Opp16PlusCritIc;
    } else if (name == "prefetch") {
        v.criticalLoadPrefetch = true;
    } else if (name == "aluprio") {
        v.aluPrio = true;
    } else if (name == "backendprio") {
        v.backendPrio = true;
    } else if (name == "efetch") {
        v.efetch = true;
    } else if (name == "perfectbr") {
        v.perfectBranch = true;
    } else if (name == "icache4x") {
        v.icache4x = true;
    } else if (name == "2xfd") {
        v.doubleFrontend = true;
    } else if (name == "allhw") {
        v.doubleFrontend = v.icache4x = v.efetch = v.perfectBranch =
            v.backendPrio = true;
    } else {
        critics_fatal("unknown variant '", name,
                      "' (see --help for the list)");
    }
    return v;
}

int
usage()
{
    std::printf(
        "critics_cli — run one app under one design point\n\n"
        "  --app <name>        Table II app or SPEC benchmark\n"
        "  --variant <name>    baseline|hoist|critic|critic-ideal|\n"
        "                      critic-branchpair|opp16|compress|\n"
        "                      opp16+critic|prefetch|aluprio|\n"
        "                      backendprio|efetch|perfectbr|icache4x|\n"
        "                      2xfd|allhw\n"
        "  --insts <n>         dynamic instructions to sample\n"
        "  --json              emit the JSON comparison report\n"
        "  --list              list registered apps and exit\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string app = "Acrobat";
    std::string variantName = "critic";
    std::uint64_t insts = 400000;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                critics_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--app") {
            app = next();
        } else if (arg == "--variant") {
            variantName = next();
        } else if (arg == "--insts") {
            insts = std::stoull(next());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list") {
            for (const auto &profile : workload::allApps()) {
                std::printf("%-12s %-10s %s\n", profile.name.c_str(),
                            workload::suiteName(profile.suite),
                            profile.activity.c_str());
            }
            return 0;
        } else {
            return usage();
        }
    }

    sim::ExperimentOptions options;
    options.traceInsts = insts;
    sim::AppExperiment exp(workload::findApp(app), options);
    const sim::Variant variant = parseVariant(variantName);
    const auto &base = exp.baseline();
    const auto result = exp.run(variant);

    if (json) {
        std::printf("%s\n",
                    sim::comparisonJson(base, result, variantName)
                        .c_str());
        return 0;
    }

    Table table({"metric", "baseline", variantName});
    table.addRow({"cycles", fmt(double(base.cpu.cycles), 0),
                  fmt(double(result.cpu.cycles), 0)});
    table.addRow({"IPC", fmt(base.cpu.ipc()), fmt(result.cpu.ipc())});
    table.addRow({"F.StallForI", pct(base.cpu.fracStallForI()),
                  pct(result.cpu.fracStallForI())});
    table.addRow({"F.StallForR+D", pct(base.cpu.fracStallForRd()),
                  pct(result.cpu.fracStallForRd())});
    table.addRow({"dyn 16-bit", pct(base.dynThumbFraction),
                  pct(result.dynThumbFraction)});
    table.addRow({"SoC energy (norm.)", fmt(1.0),
                  fmt(result.energy.total() / base.energy.total(), 4)});
    std::printf("%s (%s) under '%s'\n%s\nspeedup: %s\n",
                app.c_str(),
                workload::suiteName(exp.profile().suite),
                variantName.c_str(), table.render().c_str(),
                gainPct(exp.speedup(result)).c_str());
    return 0;
}
