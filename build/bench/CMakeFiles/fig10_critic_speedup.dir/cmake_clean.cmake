file(REMOVE_RECURSE
  "CMakeFiles/fig10_critic_speedup.dir/fig10_critic_speedup.cc.o"
  "CMakeFiles/fig10_critic_speedup.dir/fig10_critic_speedup.cc.o.d"
  "fig10_critic_speedup"
  "fig10_critic_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_critic_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
