# Empty dependencies file for fig10_critic_speedup.
# This may be replaced when dependencies are built.
