# Empty compiler generated dependencies file for fig01_conventional_criticality.
# This may be replaced when dependencies are built.
