file(REMOVE_RECURSE
  "CMakeFiles/fig01_conventional_criticality.dir/fig01_conventional_criticality.cc.o"
  "CMakeFiles/fig01_conventional_criticality.dir/fig01_conventional_criticality.cc.o.d"
  "fig01_conventional_criticality"
  "fig01_conventional_criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_conventional_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
