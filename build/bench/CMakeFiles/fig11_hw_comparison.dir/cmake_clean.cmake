file(REMOVE_RECURSE
  "CMakeFiles/fig11_hw_comparison.dir/fig11_hw_comparison.cc.o"
  "CMakeFiles/fig11_hw_comparison.dir/fig11_hw_comparison.cc.o.d"
  "fig11_hw_comparison"
  "fig11_hw_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hw_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
