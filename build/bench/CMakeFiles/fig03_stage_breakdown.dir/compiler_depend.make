# Empty compiler generated dependencies file for fig03_stage_breakdown.
# This may be replaced when dependencies are built.
