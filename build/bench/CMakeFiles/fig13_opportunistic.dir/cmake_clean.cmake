file(REMOVE_RECURSE
  "CMakeFiles/fig13_opportunistic.dir/fig13_opportunistic.cc.o"
  "CMakeFiles/fig13_opportunistic.dir/fig13_opportunistic.cc.o.d"
  "fig13_opportunistic"
  "fig13_opportunistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_opportunistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
