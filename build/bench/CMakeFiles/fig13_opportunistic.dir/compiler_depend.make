# Empty compiler generated dependencies file for fig13_opportunistic.
# This may be replaced when dependencies are built.
