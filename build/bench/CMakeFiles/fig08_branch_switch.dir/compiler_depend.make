# Empty compiler generated dependencies file for fig08_branch_switch.
# This may be replaced when dependencies are built.
