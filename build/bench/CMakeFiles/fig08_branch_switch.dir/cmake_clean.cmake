file(REMOVE_RECURSE
  "CMakeFiles/fig08_branch_switch.dir/fig08_branch_switch.cc.o"
  "CMakeFiles/fig08_branch_switch.dir/fig08_branch_switch.cc.o.d"
  "fig08_branch_switch"
  "fig08_branch_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_branch_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
