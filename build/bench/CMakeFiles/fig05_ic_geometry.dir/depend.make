# Empty dependencies file for fig05_ic_geometry.
# This may be replaced when dependencies are built.
