file(REMOVE_RECURSE
  "CMakeFiles/fig05_ic_geometry.dir/fig05_ic_geometry.cc.o"
  "CMakeFiles/fig05_ic_geometry.dir/fig05_ic_geometry.cc.o.d"
  "fig05_ic_geometry"
  "fig05_ic_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ic_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
