# Empty dependencies file for critics.
# This may be replaced when dependencies are built.
