
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/criticality.cc" "src/CMakeFiles/critics.dir/analysis/criticality.cc.o" "gcc" "src/CMakeFiles/critics.dir/analysis/criticality.cc.o.d"
  "/root/repo/src/analysis/miner.cc" "src/CMakeFiles/critics.dir/analysis/miner.cc.o" "gcc" "src/CMakeFiles/critics.dir/analysis/miner.cc.o.d"
  "/root/repo/src/bpu/bpu.cc" "src/CMakeFiles/critics.dir/bpu/bpu.cc.o" "gcc" "src/CMakeFiles/critics.dir/bpu/bpu.cc.o.d"
  "/root/repo/src/compiler/passes.cc" "src/CMakeFiles/critics.dir/compiler/passes.cc.o" "gcc" "src/CMakeFiles/critics.dir/compiler/passes.cc.o.d"
  "/root/repo/src/cpu/cpu.cc" "src/CMakeFiles/critics.dir/cpu/cpu.cc.o" "gcc" "src/CMakeFiles/critics.dir/cpu/cpu.cc.o.d"
  "/root/repo/src/energy/energy.cc" "src/CMakeFiles/critics.dir/energy/energy.cc.o" "gcc" "src/CMakeFiles/critics.dir/energy/energy.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/critics.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/critics.dir/isa/isa.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/critics.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/critics.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/critics.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/critics.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/critics.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/critics.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/prefetch.cc" "src/CMakeFiles/critics.dir/mem/prefetch.cc.o" "gcc" "src/CMakeFiles/critics.dir/mem/prefetch.cc.o.d"
  "/root/repo/src/program/dfg.cc" "src/CMakeFiles/critics.dir/program/dfg.cc.o" "gcc" "src/CMakeFiles/critics.dir/program/dfg.cc.o.d"
  "/root/repo/src/program/emit.cc" "src/CMakeFiles/critics.dir/program/emit.cc.o" "gcc" "src/CMakeFiles/critics.dir/program/emit.cc.o.d"
  "/root/repo/src/program/printer.cc" "src/CMakeFiles/critics.dir/program/printer.cc.o" "gcc" "src/CMakeFiles/critics.dir/program/printer.cc.o.d"
  "/root/repo/src/program/program.cc" "src/CMakeFiles/critics.dir/program/program.cc.o" "gcc" "src/CMakeFiles/critics.dir/program/program.cc.o.d"
  "/root/repo/src/program/walker.cc" "src/CMakeFiles/critics.dir/program/walker.cc.o" "gcc" "src/CMakeFiles/critics.dir/program/walker.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/critics.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/critics.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/critics.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/critics.dir/sim/report.cc.o.d"
  "/root/repo/src/support/histogram.cc" "src/CMakeFiles/critics.dir/support/histogram.cc.o" "gcc" "src/CMakeFiles/critics.dir/support/histogram.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/critics.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/critics.dir/support/logging.cc.o.d"
  "/root/repo/src/support/parallel.cc" "src/CMakeFiles/critics.dir/support/parallel.cc.o" "gcc" "src/CMakeFiles/critics.dir/support/parallel.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/critics.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/critics.dir/support/rng.cc.o.d"
  "/root/repo/src/support/table.cc" "src/CMakeFiles/critics.dir/support/table.cc.o" "gcc" "src/CMakeFiles/critics.dir/support/table.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/critics.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/critics.dir/workload/profile.cc.o.d"
  "/root/repo/src/workload/synth.cc" "src/CMakeFiles/critics.dir/workload/synth.cc.o" "gcc" "src/CMakeFiles/critics.dir/workload/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
