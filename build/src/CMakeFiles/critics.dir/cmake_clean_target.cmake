file(REMOVE_RECURSE
  "libcritics.a"
)
