
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/critics_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_bpu.cc" "tests/CMakeFiles/critics_tests.dir/test_bpu.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_bpu.cc.o.d"
  "/root/repo/tests/test_cpu.cc" "tests/CMakeFiles/critics_tests.dir/test_cpu.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_cpu.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/critics_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/critics_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/critics_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_miner.cc" "tests/CMakeFiles/critics_tests.dir/test_miner.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_miner.cc.o.d"
  "/root/repo/tests/test_passes.cc" "tests/CMakeFiles/critics_tests.dir/test_passes.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_passes.cc.o.d"
  "/root/repo/tests/test_printer_report.cc" "tests/CMakeFiles/critics_tests.dir/test_printer_report.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_printer_report.cc.o.d"
  "/root/repo/tests/test_program.cc" "tests/CMakeFiles/critics_tests.dir/test_program.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_program.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/critics_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/critics_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_shapes.cc" "tests/CMakeFiles/critics_tests.dir/test_shapes.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_shapes.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/critics_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/critics_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/critics_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/critics_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/critics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
