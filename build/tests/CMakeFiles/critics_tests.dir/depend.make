# Empty dependencies file for critics_tests.
# This may be replaced when dependencies are built.
