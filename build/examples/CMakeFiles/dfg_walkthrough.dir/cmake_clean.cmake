file(REMOVE_RECURSE
  "CMakeFiles/dfg_walkthrough.dir/dfg_walkthrough.cpp.o"
  "CMakeFiles/dfg_walkthrough.dir/dfg_walkthrough.cpp.o.d"
  "dfg_walkthrough"
  "dfg_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfg_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
