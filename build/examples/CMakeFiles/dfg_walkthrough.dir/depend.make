# Empty dependencies file for dfg_walkthrough.
# This may be replaced when dependencies are built.
