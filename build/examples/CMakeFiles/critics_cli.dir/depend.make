# Empty dependencies file for critics_cli.
# This may be replaced when dependencies are built.
