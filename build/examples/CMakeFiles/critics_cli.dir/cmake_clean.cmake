file(REMOVE_RECURSE
  "CMakeFiles/critics_cli.dir/critics_cli.cpp.o"
  "CMakeFiles/critics_cli.dir/critics_cli.cpp.o.d"
  "critics_cli"
  "critics_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critics_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
