/**
 * @file
 * The simulation-as-a-service daemon behind `critics_cli serve`: a TCP
 * server speaking the JSONL line protocol of serve/protocol.hh.  A
 * submitted batch is answered in two halves — jobs whose content hash
 * is already in the result store are "warm" and answered immediately
 * without simulating anything, and the cold remainder is partitioned
 * with the same deterministic hash sharding as `run --shard` and
 * fanned out to a pool of forked serve-worker processes whose progress
 * events stream back to every waiting client.
 *
 * Lifecycle guarantees:
 *   - a worker crash costs a bounded respawn (the restarted worker
 *     warm-replays its shard store), and a worker that exhausts its
 *     budget degrades its unfinished jobs to failed-job events instead
 *     of wedging the batch;
 *   - a client disconnect never cancels a job — the batch keeps
 *     running and a later status/wait replays its full event log;
 *   - SIGTERM (requestShutdown) drains the in-flight batch, fails the
 *     queued ones with a clear error, merges/flushes everything and
 *     returns from wait().
 *
 * Threading: one accept loop, one scheduler (batches execute one at a
 * time — simulator jobs already saturate the machine through the
 * worker pool), one detached thread per client connection.  All shared
 * state sits behind one mutex + condvar; the signal path only touches
 * an atomic and a self-pipe.
 */

#ifndef CRITICS_SERVE_SERVER_HH
#define CRITICS_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/types.h>

#include "runner/manifest.hh"
#include "runner/result_store.hh"
#include "serve/protocol.hh"
#include "support/histogram.hh"

namespace critics::stats
{
class StatRegistry;
class TraceEventWriter;
}

namespace critics::serve
{

struct ServerOptions
{
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (see port()). */
    unsigned short port = 0;
    /** When non-empty, the bound port is written here after listen()
     *  succeeds — how scripts using --port 0 find the daemon. */
    std::string portFile;
    /** Worker processes per batch; 0 runs jobs in-process (tests). */
    unsigned workers = 2;
    /** Respawns allowed per crashed worker. */
    unsigned maxRestarts = 2;
    /** Per-job attempt budget inside each worker. */
    unsigned maxAttempts = 2;
    /** Result store; "" = cacheDir()/results.jsonl. */
    std::string cachePath;
    /** The critics_cli binary workers are exec'd from; required when
     *  workers > 0 (the CLI passes /proc/self/exe). */
    std::string workerExe;
    /** Per-request spans (ts/dur in real µs); nullptr = off.  When
     *  set, workers are started with --trace-id and their span events
     *  are stitched into this writer under the worker's pid/tid. */
    stats::TraceEventWriter *trace = nullptr;
    /** When non-empty, each worker profiles itself (--profile) and
     *  writes `<profileDir>/<batch-id>.worker-<k>.json`. */
    std::string profileDir;
};

class Server
{
  public:
    explicit Server(ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen and start the accept/scheduler threads; false
     *  (with *error set) when the socket cannot be bound. */
    bool start(std::string *error = nullptr);

    /** The bound port (resolves --port 0 after start()). */
    unsigned short port() const { return boundPort_; }

    /**
     * Begin a graceful drain: stop accepting, finish the in-flight
     * batch, fail queued batches, wake every waiter.  Async-signal-
     * safe (an atomic store + a self-pipe write), so the CLI calls it
     * straight from its SIGTERM/SIGINT handler.
     */
    void requestShutdown();

    /** Block until the drain completes and every thread is joined. */
    void wait();

    /** Register the serve.* counters/formulas; the server must
     *  outlive the registry. */
    void registerStats(stats::StatRegistry &reg) const;

    // Lifetime counters (exposed for tests; see registerStats).
    std::uint64_t warmHits() const { return warmHits_; }
    std::uint64_t simulated() const { return simulated_; }
    std::uint64_t failedJobs() const { return failedJobs_; }
    std::uint64_t workerRestarts() const { return workerRestarts_; }

  private:
    /** One submitted batch and its full event log. */
    struct Batch
    {
        enum class State : std::uint8_t
        {
            Queued,
            Running,
            Done,
            Failed,
        };

        std::string id; ///< "serve-<n>"
        /** Distributed-trace id minted at submit; every span of this
         *  batch — server-side and worker-side — carries it. */
        std::string traceId;
        SubmitRequest request;
        std::vector<runner::JobSpec> coldSpecs;
        State state = State::Queued;
        std::string error; ///< batch-level failure (shutdown, spawn)

        std::uint64_t submitUs = 0;    ///< nowMicros() at submit
        std::uint64_t startedUnix = 0; ///< wall clock at submit

        std::uint64_t total = 0;     ///< grid size
        std::uint64_t warm = 0;      ///< answered from the store
        std::uint64_t simulated = 0; ///< executed by this batch
        std::uint64_t failed = 0;

        /** Rendered event lines in arrival order — the replay log a
         *  late status/wait streams from index 0. */
        std::vector<std::string> events;
        /** Hashes already accounted for: a restarted worker replays
         *  its shard, so duplicate events must count once. */
        std::unordered_map<std::string, bool> seen;
        /** Live worker pids (status exposes them; the smoke test
         *  kills one mid-batch). */
        std::vector<pid_t> workerPids;
        /** nowMicros() of the last crash per worker slot (0 = never):
         *  the respawn's onSpawn turns it into a restart-delay
         *  sample. */
        std::vector<std::uint64_t> crashedAtUs;
        /** Structured copies of the deduplicated job events, in
         *  arrival order — the rows of the per-batch manifest. */
        std::vector<runner::JobRecord> records;
    };

    void acceptLoop();
    void schedulerLoop();
    void handleClient(int fd);
    /** One request on an established connection; false = close it. */
    bool handleRequest(int fd, const std::string &line);

    std::string handleSubmit(const SubmitRequest &submit);
    std::string handleStatus(const std::string &jobId);
    bool streamWait(int fd, const std::string &jobId);

    void executeBatch(const std::shared_ptr<Batch> &batch);
    void runInProcess(const std::shared_ptr<Batch> &batch);
    void runWithWorkers(const std::shared_ptr<Batch> &batch);
    /** Record one (possibly duplicate) job event, taking lock_. */
    void recordEvent(const std::shared_ptr<Batch> &batch,
                     const JobEvent &event);
    /** Same, with lock_ already held; `warmOrigin` marks a submit-time
     *  store answer (counts as a warm hit, not a simulation). */
    void recordEventLocked(Batch &batch, const JobEvent &event,
                           bool warmOrigin);

    std::string statusJson(const Batch &batch) const; ///< caller locks
    std::uint64_t nowMicros() const;
    void traceSpan(const char *op, std::uint64_t startUs);
    /** Stitch one worker span line into the merged trace under the
     *  worker's OS pid (no-op without a trace writer). */
    void stitchSpan(const std::shared_ptr<Batch> &batch,
                    std::size_t slot, const std::string &line);
    /** Per-batch summary manifest in `<storeDir>/manifests`. */
    void writeBatchManifest(const std::shared_ptr<Batch> &batch,
                            double wallSeconds);

    ServerOptions options_;
    runner::ResultStore store_;
    std::chrono::steady_clock::time_point started_;
    /** obs::monotonicMicros() captured together with started_ — the
     *  offset that maps workers' absolute CLOCK_MONOTONIC span
     *  timestamps onto the daemon's 0-based trace timeline. */
    std::uint64_t epochUs_ = 0;

    mutable std::mutex lock_;
    std::condition_variable cv_;
    std::map<std::string, std::shared_ptr<Batch>> batches_;
    std::vector<std::shared_ptr<Batch>> queue_;
    std::uint64_t nextBatchId_ = 1;

    std::atomic<bool> stop_{false};
    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1}; ///< self-pipe: signal → accept loop
    unsigned short boundPort_ = 0;
    std::thread acceptThread_;
    std::thread schedulerThread_;
    std::atomic<std::uint64_t> activeClients_{0};

    // serve.* stats (all guarded by lock_ except the atomics above).
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t warmHits_ = 0;
    std::uint64_t simulated_ = 0;
    std::uint64_t failedJobs_ = 0;
    std::uint64_t workerCrashes_ = 0;
    std::uint64_t workerRestarts_ = 0;
    std::uint64_t inFlightShards_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t badRequests_ = 0;

    // Latency distributions (internally synchronized).
    LatencyHistogram jobLatency_;   ///< per executed job wall time, µs
    LatencyHistogram queueWait_;    ///< submit → scheduler dequeue, µs
    LatencyHistogram restartDelay_; ///< worker crash → respawn, µs
};

} // namespace critics::serve

#endif // CRITICS_SERVE_SERVER_HH
