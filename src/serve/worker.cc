#include "serve/worker.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/obs.hh"
#include "obs/profiler.hh"
#include "obs/span.hh"
#include "runner/orchestrator.hh"
#include "serve/protocol.hh"
#include "sim/variants.hh"

namespace critics::serve
{

namespace
{

/** stdout is the event channel: one whole line per write, flushed
 *  immediately so the supervisor sees events as jobs finish, under a
 *  mutex because the executor runs on the Runner's pool threads. */
std::mutex stdoutLock;

void
emitLine(const std::string &line)
{
    std::lock_guard<std::mutex> guard(stdoutLock);
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
}

JobEvent
eventOf(const runner::JobSpec &spec)
{
    JobEvent event;
    event.hash = spec.hashHex();
    event.app = spec.profile.name;
    event.variant = spec.variant.label;
    return event;
}

} // namespace

int
serveWorkerMain(int argc, char **argv)
{
    std::string batch = "serve";
    std::string appsArg, variantsArg, storePath, hashesPath;
    std::uint64_t insts = 400000;
    unsigned maxAttempts = 2;
    bool refresh = false;
    std::uint64_t sleepMs = 0;
    std::string traceId, profilePath;

    auto bad = [](const std::string &what) {
        std::fprintf(stderr, "serve-worker: %s\n", what.c_str());
        return 2;
    };
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *value = nullptr;
        if (arg == "--refresh") {
            refresh = true;
        } else if ((value = next()) == nullptr) {
            return bad(arg + " needs a value");
        } else if (arg == "--batch") {
            batch = value;
        } else if (arg == "--apps") {
            appsArg = value;
        } else if (arg == "--variants") {
            variantsArg = value;
        } else if (arg == "--insts") {
            insts = std::stoull(value);
        } else if (arg == "--store") {
            storePath = value;
        } else if (arg == "--hashes") {
            hashesPath = value;
        } else if (arg == "--attempts") {
            maxAttempts = static_cast<unsigned>(std::stoul(value));
        } else if (arg == "--sleep-ms") {
            sleepMs = std::stoull(value);
        } else if (arg == "--trace-id") {
            traceId = value;
        } else if (arg == "--profile") {
            profilePath = value;
        } else {
            return bad("unknown argument '" + arg + "'");
        }
    }
    if (appsArg.empty() || variantsArg.empty() || storePath.empty() ||
        hashesPath.empty()) {
        return bad("--apps, --variants, --store and --hashes are "
                   "required");
    }

    std::string error;
    const auto apps = sim::tryParseApps(appsArg, &error);
    if (!apps)
        return bad(error);
    const auto variants = sim::tryParseVariants(variantsArg, &error);
    if (!variants)
        return bad(error);

    std::unordered_set<std::string> owned;
    {
        std::ifstream in(hashesPath);
        if (!in)
            return bad("cannot read hash file " + hashesPath);
        std::string line;
        while (std::getline(in, line)) {
            if (!line.empty())
                owned.insert(line);
        }
    }

    sim::ExperimentOptions expOptions;
    expOptions.traceInsts = insts;
    std::vector<runner::JobSpec> jobs;
    for (auto &spec : runner::makeGrid(*apps, *variants, expOptions)) {
        if (owned.count(spec.hashHex()) > 0)
            jobs.push_back(std::move(spec));
    }

    // --trace-id: every StageScope in the pipeline now streams a span
    // event up the existing stdout channel, tagged with the batch's
    // trace context; the server stitches them under this worker's pid.
    if (!traceId.empty()) {
        obs::setSpanSink([traceId](const obs::SpanRecord &span) {
            emitLine(
                obs::renderSpanEvent(obs::toSpanEvent(span, traceId)));
        });
    }
    obs::SamplingProfiler profiler;
    if (!profilePath.empty())
        profiler.start();

    runner::RunnerOptions options;
    options.cachePath = storePath;
    options.refresh = refresh;
    options.maxAttempts = maxAttempts;
    options.progress = false;
    // The supervisor's event stream is the record of this shard; a run
    // manifest in the shared cache dir would just accumulate.
    options.writeManifest = false;
    options.executor = [sleepMs](const runner::JobSpec &spec,
                                 sim::AppExperiment &experiment) {
        const std::uint64_t startUs = obs::monotonicMicros();
        sim::RunResult result;
        {
            // A "job" span wrapping the whole execution, labelled
            // app/variant; the stage spans nest inside it.
            obs::StageScope jobSpan(obs::Stage::None,
                                    spec.profile.name + "/" +
                                        spec.variant.label,
                                    "job");
            result = experiment.run(spec.variant);
        }
        if (sleepMs > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sleepMs));
        }
        JobEvent event = eventOf(spec);
        event.ok = true;
        event.wallSeconds = static_cast<double>(
                                obs::monotonicMicros() - startUs) /
                            1e6;
        emitLine(renderJobEvent(event));
        return result;
    };

    runner::Runner runner(options);
    const auto result = runner.run(batch, jobs);

    if (profiler.running()) {
        profiler.stop();
        profiler.writeReport(profilePath);
    }
    obs::setSpanSink(nullptr);

    // Simulated successes streamed live from the executor; account for
    // everything else (cache answers, exhausted-retry failures) here.
    // A respawned worker finds its earlier work in the shard store, so
    // this sweep is what re-emits the pre-crash events.
    ShardDone done;
    done.total = result.jobs.size();
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const auto &outcome = result.outcomes[i];
        if (outcome.ok && !outcome.fromCache)
            continue;
        JobEvent event = eventOf(result.jobs[i]);
        event.ok = outcome.ok;
        event.fromCache = outcome.fromCache;
        event.error = outcome.error;
        emitLine(renderJobEvent(event));
    }
    for (const auto &outcome : result.outcomes)
        done.failed += outcome.ok ? 0 : 1;
    emitLine(renderShardDone(done));
    return 0;
}

} // namespace critics::serve
