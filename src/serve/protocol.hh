/**
 * @file
 * Wire format of the serve subsystem: newline-delimited JSON objects
 * (JSONL) on both legs — client → server requests and server → client
 * replies/events over TCP, and worker → supervisor progress events
 * over a stdout pipe.  One line is one message; a message never
 * contains a raw newline (jsonEscape guarantees it), so framing is
 * just "split on \n" and a crashed peer leaves at most one truncated
 * tail line, which readers drop — the same tail discipline as the
 * result store.
 *
 * Requests:  {"op":"submit","batch":B,"apps":A,"variants":V,
 *             "insts":N,"refresh":false,"sleep-ms":0}
 *            {"op":"status","job":J}  {"op":"wait","job":J}
 *            {"op":"ping"}  {"op":"stats"}  {"op":"shutdown"}
 *
 * Job events (worker stdout AND server wait/status streams):
 *            {"event":"job","hash":H,"app":A,"variant":V,
 *             "ok":true,"from-cache":false,"wall-s":1.5,"error":""}
 * Worker end-of-shard marker:
 *            {"event":"shard-done","failed":F,"total":T}
 *
 * Workers started with --trace-id additionally emit span events
 * ({"event":"span",...}, see obs/span.hh) on the same stdout channel;
 * the server stitches them into its merged Chrome trace.
 */

#ifndef CRITICS_SERVE_PROTOCOL_HH
#define CRITICS_SERVE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace critics::serve
{

/**
 * Incremental newline framer.  feed() raw bytes as they arrive from a
 * socket or pipe; nextLine() yields each complete line (without the
 * terminator) in arrival order.  Bytes after the last newline stay
 * buffered until more data arrives — or forever, which is how a
 * truncated tail from a crashed writer is discarded.
 */
class LineReader
{
  public:
    void feed(const char *data, std::size_t len);
    std::optional<std::string> nextLine();

  private:
    std::string buffer_;
    std::size_t scanned_ = 0; ///< prefix known to hold no newline
};

/** The payload of an "op":"submit" request: one apps × variants sweep
 *  described in the shared string vocabulary of sim/variants.hh, so
 *  the server and its workers rebuild exactly the grid the client
 *  named. */
struct SubmitRequest
{
    std::string batch = "serve";
    std::string apps = "mobile";
    std::string variants = "all";
    std::uint64_t insts = 400000;
    bool refresh = false;
    /** Per-simulated-job artificial delay — a debug/test knob so smoke
     *  tests can catch a worker mid-batch (e.g. to kill -9 it). */
    std::uint64_t sleepMs = 0;
};

struct Request
{
    enum class Op : std::uint8_t
    {
        Submit,
        Status,
        Wait,
        Ping,
        Stats,
        Shutdown,
    };

    Op op = Op::Ping;
    std::string job;      ///< status/wait target ("serve-<n>")
    SubmitRequest submit; ///< valid when op == Submit
};

/** Parse one request line; nullopt (with *error set) on syntax errors,
 *  unknown ops or missing fields — remote input never kills the
 *  daemon. */
std::optional<Request> parseRequest(const std::string &line,
                                    std::string *error = nullptr);

/** One-line rendering of `request` (no trailing newline). */
std::string renderRequest(const Request &request);

/**
 * One job's terminal state, as streamed live from a worker and
 * re-streamed (after dedup) to every waiting client.  `hash` is the
 * JobSpec content hash — the stable identity events are deduplicated
 * by when a restarted worker replays its shard.
 */
struct JobEvent
{
    std::string hash;
    std::string app;
    std::string variant;
    bool ok = false;
    bool fromCache = false;
    /** Wall-clock seconds the job took where it ran (0 for warm
     *  hits) — feeds the server's serve.jobLatency histogram. */
    double wallSeconds = 0.0;
    std::string error; ///< last failure message when !ok
};

std::string renderJobEvent(const JobEvent &event);
std::optional<JobEvent> parseJobEvent(const std::string &line);

/** A worker's final line: every owned job has been accounted for. */
struct ShardDone
{
    std::uint64_t failed = 0;
    std::uint64_t total = 0;
};

std::string renderShardDone(const ShardDone &done);
std::optional<ShardDone> parseShardDone(const std::string &line);

} // namespace critics::serve

#endif // CRITICS_SERVE_PROTOCOL_HH
