/**
 * @file
 * Local worker-pool supervisor: fork+exec one child per argv, capture
 * each child's stdout through a pipe, feed complete lines to the
 * caller as they arrive, and restart crashed children (killed by a
 * signal, or nonzero exit) up to a bounded number of times.  A child
 * that exits 0 is done; a child that exhausts its restart budget is
 * recorded as failed and the pool keeps draining the others — one bad
 * worker degrades the batch (its jobs surface as failed records), it
 * does not abort it.
 *
 * The supervisor is deliberately generic over argv: the serve server
 * passes `critics_cli serve-worker ...` command lines, and the unit
 * tests pass `/bin/sh -c` scripts that print marker lines and crash on
 * cue — the restart state machine is exercised without a simulator in
 * the loop.  Restart correctness leans on worker idempotence: a
 * respawned serve-worker replays its shard against its per-shard
 * store, answering already-finished jobs from cache (and re-emitting
 * their events; the consumer deduplicates by job hash).
 */

#ifndef CRITICS_SERVE_SUPERVISOR_HH
#define CRITICS_SERVE_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace critics::serve
{

struct SupervisorOptions
{
    /** Respawns allowed per worker slot (on top of the first spawn). */
    unsigned maxRestarts = 2;
    /** One complete stdout line from worker `index`. */
    std::function<void(std::size_t index, const std::string &line)>
        onLine;
    /** A worker (re)started as `pid`. */
    std::function<void(std::size_t index, pid_t pid)> onSpawn;
    /** Worker `index` died abnormally with waitpid `status`;
     *  `willRestart` tells whether a respawn follows. */
    std::function<void(std::size_t index, int status, bool willRestart)>
        onCrash;
};

struct SupervisorResult
{
    bool allOk = false;          ///< every slot eventually exited 0
    std::uint64_t restarts = 0;  ///< respawns across all slots
    std::vector<bool> workerOk;  ///< per-slot final verdict
};

class WorkerSupervisor
{
  public:
    explicit WorkerSupervisor(SupervisorOptions options = {});

    /**
     * Spawn one worker per argv vector and block until every worker
     * has exited 0 or exhausted its restarts.  Each argv is
     * `{executable, arg1, ...}` resolved via execvp.
     */
    SupervisorResult
    run(const std::vector<std::vector<std::string>> &argvs);

  private:
    SupervisorOptions options_;
};

} // namespace critics::serve

#endif // CRITICS_SERVE_SUPERVISOR_HH
