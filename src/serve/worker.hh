/**
 * @file
 * The `critics_cli serve-worker` entry point: one forked shard
 * executor of a serve batch.  The server hands each worker the batch
 * vocabulary (apps/variants/insts strings), the subset of job hashes
 * its shard owns, a private per-shard result store and a retry
 * budget; the worker rebuilds the grid, keeps only its owned jobs,
 * runs them through the ordinary Runner and streams one JSONL JobEvent
 * per finished job on stdout, ending with a "shard-done" line.
 *
 * Restart idempotence: everything the worker needs is on disk (the
 * hash file and its shard store), so a respawned worker after a crash
 * re-runs the same command line, answers already-completed jobs from
 * its shard store (emitting their events again — the server dedupes by
 * hash) and simulates only the remainder.
 */

#ifndef CRITICS_SERVE_WORKER_HH
#define CRITICS_SERVE_WORKER_HH

namespace critics::serve
{

/**
 * `argv` holds the arguments after the `serve-worker` word:
 * --batch <name> --apps <list> --variants <list> --insts <n>
 * --store <shard.jsonl> --hashes <file> [--attempts <n>] [--refresh]
 * [--sleep-ms <n>].  Returns the process exit code: 0 when the shard
 * was fully accounted for (failed jobs are event records, not worker
 * failures), 2 on bad arguments.
 */
int serveWorkerMain(int argc, char **argv);

} // namespace critics::serve

#endif // CRITICS_SERVE_WORKER_HH
