#include "serve/supervisor.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/protocol.hh"
#include "support/logging.hh"

namespace critics::serve
{

namespace
{

/** One worker slot: the argv it (re)runs and its live child state. */
struct Slot
{
    std::vector<std::string> argv;
    pid_t pid = -1;
    int fd = -1; ///< read end of the child's stdout pipe
    LineReader lines;
    unsigned spawns = 0;
    bool done = false;
    bool ok = false;
};

/** fork+exec `slot.argv` with stdout piped back to the parent; false
 *  when the pipe or fork itself fails (exec failures surface as a
 *  child exiting 127, i.e. a crash). */
bool
spawn(Slot &slot)
{
    int fds[2];
    if (::pipe(fds) != 0)
        return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (pid == 0) {
        ::close(fds[0]);
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[1]);
        std::vector<char *> argv;
        argv.reserve(slot.argv.size() + 1);
        for (auto &arg : slot.argv)
            argv.push_back(arg.data());
        argv.push_back(nullptr);
        ::execvp(argv[0], argv.data());
        ::_exit(127);
    }
    ::close(fds[1]);
    slot.pid = pid;
    slot.fd = fds[0];
    slot.spawns++;
    return true;
}

} // namespace

WorkerSupervisor::WorkerSupervisor(SupervisorOptions options)
    : options_(std::move(options))
{
}

SupervisorResult
WorkerSupervisor::run(const std::vector<std::vector<std::string>> &argvs)
{
    std::vector<Slot> slots(argvs.size());
    SupervisorResult result;
    result.workerOk.assign(argvs.size(), false);

    for (std::size_t i = 0; i < argvs.size(); ++i) {
        slots[i].argv = argvs[i];
        if (spawn(slots[i])) {
            if (options_.onSpawn)
                options_.onSpawn(i, slots[i].pid);
        } else {
            critics_warn("serve: could not spawn worker ", i, ": ",
                         std::strerror(errno));
            slots[i].done = true;
        }
    }

    // One poll()-gated read per wakeup (never a second, possibly
    // blocking, read); false on EOF or error means "reap this child".
    auto drain = [&](Slot &slot, std::size_t index) {
        char buf[4096];
        ssize_t n;
        do {
            n = ::read(slot.fd, buf, sizeof(buf));
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return false;
        slot.lines.feed(buf, static_cast<std::size_t>(n));
        while (const auto line = slot.lines.nextLine()) {
            if (options_.onLine)
                options_.onLine(index, *line);
        }
        return true;
    };

    auto reap = [&](Slot &slot, std::size_t index) {
        ::close(slot.fd);
        slot.fd = -1;
        int status = 0;
        while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
        }
        slot.pid = -1;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            slot.done = true;
            slot.ok = true;
            return;
        }
        // Crash (signal) or nonzero exit: respawn if budget remains.
        const bool willRestart = slot.spawns <= options_.maxRestarts;
        if (options_.onCrash)
            options_.onCrash(index, status, willRestart);
        if (!willRestart) {
            slot.done = true;
            return;
        }
        slot.lines = LineReader(); // drop any truncated tail line
        if (spawn(slot)) {
            result.restarts++;
            if (options_.onSpawn)
                options_.onSpawn(index, slot.pid);
        } else {
            critics_warn("serve: could not respawn worker ", index,
                         ": ", std::strerror(errno));
            slot.done = true;
        }
    };

    for (;;) {
        std::vector<struct pollfd> fds;
        std::vector<std::size_t> owner;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (slots[i].done || slots[i].fd < 0)
                continue;
            fds.push_back({slots[i].fd, POLLIN, 0});
            owner.push_back(i);
        }
        if (fds.empty())
            break;

        const int ready = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()), -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            critics_warn("serve: poll failed: ", std::strerror(errno));
            break;
        }
        for (std::size_t f = 0; f < fds.size(); ++f) {
            if (fds[f].revents == 0)
                continue;
            Slot &slot = slots[owner[f]];
            if (!drain(slot, owner[f]))
                reap(slot, owner[f]); // EOF: child closed stdout
        }
    }

    result.allOk = true;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        result.workerOk[i] = slots[i].ok;
        result.allOk = result.allOk && slots[i].ok;
    }
    return result;
}

} // namespace critics::serve
