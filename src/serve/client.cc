#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace critics::serve
{

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServeClient::connect(const std::string &host, unsigned short port,
                     std::string *error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error != nullptr)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (error != nullptr)
            *error = "bad host '" + host + "'";
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error != nullptr) {
            *error = host + ":" + std::to_string(port) + ": " +
                     std::strerror(errno);
        }
        close();
        return false;
    }
    return true;
}

bool
ServeClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string>
ServeClient::readLine(int timeoutMs)
{
    if (const auto line = lines_.nextLine())
        return line;
    char buf[4096];
    while (fd_ >= 0) {
        struct pollfd p = {fd_, POLLIN, 0};
        const int ready = ::poll(&p, 1, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (ready == 0)
            return std::nullopt; // timeout
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0) {
            close();
            return std::nullopt;
        }
        lines_.feed(buf, static_cast<std::size_t>(n));
        if (const auto line = lines_.nextLine())
            return line;
    }
    return std::nullopt;
}

} // namespace critics::serve
