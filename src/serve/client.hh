/**
 * @file
 * Minimal line-protocol client for the serve daemon — just enough for
 * `critics_cli submit/status/wait`, the unit tests and the smoke
 * script: connect, send one JSONL request line, read reply lines with
 * a timeout.  Anything that can speak "JSON lines over TCP" (netcat,
 * a python script) is an equally valid client; this class exists so
 * the CLI and the tests need no such dependency.
 */

#ifndef CRITICS_SERVE_CLIENT_HH
#define CRITICS_SERVE_CLIENT_HH

#include <optional>
#include <string>

#include "serve/protocol.hh"

namespace critics::serve
{

class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to host:port; false (with *error set) on failure. */
    bool connect(const std::string &host, unsigned short port,
                 std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Send one request line (the newline is added here). */
    bool sendLine(const std::string &line);

    /** Next complete reply line, waiting up to `timeoutMs` (-1 =
     *  forever); nullopt on timeout or a closed connection. */
    std::optional<std::string> readLine(int timeoutMs = -1);

  private:
    int fd_ = -1;
    LineReader lines_;
};

} // namespace critics::serve

#endif // CRITICS_SERVE_CLIENT_HH
