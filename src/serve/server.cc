#include "serve/server.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hh"
#include "obs/span.hh"
#include "runner/cache_admin.hh"
#include "runner/orchestrator.hh"
#include "runner/shard.hh"
#include "serve/supervisor.hh"
#include "sim/variants.hh"
#include "stats/registry.hh"
#include "stats/trace_event.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace critics::serve
{

namespace
{

/** Whole-line send with partial-write handling; false on a dead peer
 *  (the job does not care — it keeps running). */
bool
sendLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
errorLine(const std::string &message)
{
    json::JsonWriter w;
    w.beginObject()
        .field("ok", false)
        .field("error", message)
        .endObject();
    return w.str();
}

const char *
stateName(std::uint8_t state)
{
    switch (state) {
      case 0: return "queued";
      case 1: return "running";
      case 2: return "done";
      case 3: return "failed";
    }
    return "unknown";
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), store_(options_.cachePath),
      started_(std::chrono::steady_clock::now()),
      epochUs_(obs::monotonicMicros())
{
    if (::pipe(wakePipe_) != 0)
        critics_fatal("serve: cannot create wake pipe: ",
                      std::strerror(errno));
}

Server::~Server()
{
    requestShutdown();
    wait();
    for (const int fd : wakePipe_) {
        if (fd >= 0)
            ::close(fd);
    }
}

bool
Server::start(std::string *error)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error != nullptr)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
        1) {
        if (error != nullptr)
            *error = "bad --host '" + options_.host + "'";
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        if (error != nullptr) {
            *error = options_.host + ":" +
                     std::to_string(options_.port) + ": " +
                     std::strerror(errno);
        }
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listenFd_,
                  reinterpret_cast<struct sockaddr *>(&bound), &len);
    boundPort_ = ntohs(bound.sin_port);

    if (!options_.portFile.empty()) {
        std::ofstream out(options_.portFile, std::ios::trunc);
        out << boundPort_ << "\n";
    }

    acceptThread_ = std::thread([this] { acceptLoop(); });
    schedulerThread_ = std::thread([this] { schedulerLoop(); });
    return true;
}

void
Server::requestShutdown()
{
    stop_.store(true);
    if (wakePipe_[1] >= 0) {
        const char byte = 'x';
        [[maybe_unused]] const ssize_t n =
            ::write(wakePipe_[1], &byte, 1);
    }
}

void
Server::wait()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (schedulerThread_.joinable())
        schedulerThread_.join();
    // Client handlers are detached; they notice stop_ within one poll
    // interval and bump the count down as they close.
    std::unique_lock<std::mutex> lock(lock_);
    cv_.wait(lock, [this] { return activeClients_.load() == 0; });
}

void
Server::acceptLoop()
{
    for (;;) {
        struct pollfd fds[2] = {
            {listenFd_, POLLIN, 0},
            {wakePipe_[0], POLLIN, 0},
        };
        const int ready = ::poll(fds, 2, 200);
        if (stop_.load())
            break;
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            critics_warn("serve: accept poll failed: ",
                         std::strerror(errno));
            break;
        }
        if (ready == 0 || (fds[0].revents & POLLIN) == 0)
            continue;
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        activeClients_.fetch_add(1);
        std::thread([this, client] { handleClient(client); }).detach();
    }
    ::close(listenFd_);
    listenFd_ = -1;
}

void
Server::handleClient(int fd)
{
    LineReader lines;
    char buf[4096];
    bool keep = true;
    while (keep) {
        struct pollfd p = {fd, POLLIN, 0};
        const int ready = ::poll(&p, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0) {
            if (stop_.load())
                break;
            continue;
        }
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        lines.feed(buf, static_cast<std::size_t>(n));
        while (keep) {
            const auto line = lines.nextLine();
            if (!line)
                break;
            keep = handleRequest(fd, *line);
        }
    }
    ::close(fd);
    activeClients_.fetch_sub(1);
    cv_.notify_all();
}

bool
Server::handleRequest(int fd, const std::string &line)
{
    const std::uint64_t startUs = nowMicros();
    {
        std::lock_guard<std::mutex> lock(lock_);
        requests_++;
    }
    std::string error;
    const auto request = parseRequest(line, &error);
    if (!request) {
        std::lock_guard<std::mutex> lock(lock_);
        badRequests_++;
        return sendLine(fd, errorLine(error));
    }

    switch (request->op) {
      case Request::Op::Ping: {
          json::JsonWriter w;
          w.beginObject().field("ok", true).endObject();
          const bool alive = sendLine(fd, w.str());
          traceSpan("ping", startUs);
          return alive;
      }
      case Request::Op::Submit: {
          const bool alive =
              sendLine(fd, handleSubmit(request->submit));
          traceSpan("submit", startUs);
          return alive;
      }
      case Request::Op::Status: {
          const bool alive = sendLine(fd, handleStatus(request->job));
          traceSpan("status", startUs);
          return alive;
      }
      case Request::Op::Wait: {
          const bool alive = streamWait(fd, request->job);
          traceSpan("wait", startUs);
          return alive;
      }
      case Request::Op::Stats: {
          json::JsonWriter w;
          {
              std::lock_guard<std::mutex> lock(lock_);
              std::string runningBatch;
              std::uint64_t activeWorkers = 0;
              for (const auto &[id, batch] : batches_) {
                  if (batch->state != Batch::State::Running)
                      continue;
                  runningBatch = id;
                  for (const pid_t pid : batch->workerPids)
                      activeWorkers += pid > 0 ? 1 : 0;
              }
              w.beginObject().field("ok", true).beginObject("serve");
              w.field("submitted", submitted_)
                  .field("completed", completed_)
                  .field("queueDepth",
                         static_cast<std::uint64_t>(queue_.size()))
                  .field("warmHits", warmHits_)
                  .field("simulated", simulated_)
                  .field("failedJobs", failedJobs_)
                  .field("workerCrashes", workerCrashes_)
                  .field("workerRestarts", workerRestarts_)
                  .field("inFlightShards", inFlightShards_)
                  .field("requests", requests_)
                  .field("badRequests", badRequests_);
              const double answered =
                  static_cast<double>(warmHits_ + simulated_);
              w.fieldReadable("warmHitRatio",
                              answered > 0
                                  ? static_cast<double>(warmHits_) /
                                        answered
                                  : 0.0)
                  .field("activeWorkers", activeWorkers)
                  .field("runningBatch", runningBatch)
                  .field("uptimeUs", nowMicros());
              w.beginObject("jobLatency")
                  .field("count", jobLatency_.count())
                  .fieldReadable("meanUs", jobLatency_.mean())
                  .fieldReadable("p50Us", jobLatency_.percentile(0.50))
                  .fieldReadable("p90Us", jobLatency_.percentile(0.90))
                  .fieldReadable("p99Us", jobLatency_.percentile(0.99))
                  .endObject();
              w.beginObject("queueWait")
                  .field("count", queueWait_.count())
                  .fieldReadable("p50Us", queueWait_.percentile(0.50))
                  .fieldReadable("p99Us", queueWait_.percentile(0.99))
                  .endObject();
              w.endObject().endObject();
          }
          const bool alive = sendLine(fd, w.str());
          traceSpan("stats", startUs);
          return alive;
      }
      case Request::Op::Shutdown: {
          json::JsonWriter w;
          w.beginObject()
              .field("ok", true)
              .field("draining", true)
              .endObject();
          sendLine(fd, w.str());
          traceSpan("shutdown", startUs);
          requestShutdown();
          return false;
      }
    }
    return false;
}

std::string
Server::handleSubmit(const SubmitRequest &submit)
{
    std::string error;
    const auto apps = sim::tryParseApps(submit.apps, &error);
    if (!apps)
        return errorLine(error);
    const auto variants =
        sim::tryParseVariants(submit.variants, &error);
    if (!variants)
        return errorLine(error);

    sim::ExperimentOptions expOptions;
    expOptions.traceInsts = submit.insts;
    auto grid = runner::makeGrid(*apps, *variants, expOptions);

    std::unique_lock<std::mutex> lock(lock_);
    auto batch = std::make_shared<Batch>();
    batch->id = "serve-" + std::to_string(nextBatchId_++);
    batch->submitUs = nowMicros();
    batch->startedUnix =
        static_cast<std::uint64_t>(::time(nullptr));
    {
        // Trace context, minted here and carried through worker argv:
        // unique per daemon lifetime (epoch µs) and per batch (id).
        char traceId[64];
        std::snprintf(traceId, sizeof(traceId), "%llx-%s",
                      static_cast<unsigned long long>(epochUs_),
                      batch->id.c_str());
        batch->traceId = traceId;
    }
    batch->request = submit;
    batch->total = grid.size();
    submitted_++;

    // The warm half: anything already in the store is answered right
    // now, with zero simulation — the whole point of a daemon sitting
    // on a long-lived cache.
    for (auto &spec : grid) {
        if (!submit.refresh && store_.lookup(spec)) {
            JobEvent event;
            event.hash = spec.hashHex();
            event.app = spec.profile.name;
            event.variant = spec.variant.label;
            event.ok = true;
            event.fromCache = true;
            recordEventLocked(*batch, event, /*warmOrigin=*/true);
        } else {
            batch->coldSpecs.push_back(std::move(spec));
        }
    }

    bool allWarm = false;
    if (batch->coldSpecs.empty()) {
        batch->state = Batch::State::Done;
        completed_++;
        allWarm = true;
    } else if (stop_.load()) {
        batch->state = Batch::State::Failed;
        batch->error = "server shutting down";
    } else {
        queue_.push_back(batch);
    }
    batches_[batch->id] = batch;
    cv_.notify_all();

    json::JsonWriter w;
    w.beginObject()
        .field("ok", true)
        .field("job", batch->id)
        .field("trace", batch->traceId)
        .field("total", batch->total)
        .field("warm", batch->warm)
        .field("cold",
               static_cast<std::uint64_t>(batch->coldSpecs.size()))
        .endObject();
    const std::string reply = w.str();
    lock.unlock();
    // A fully-warm batch never reaches the scheduler, so its summary
    // manifest is written here; cold batches get theirs at the end of
    // executeBatch.
    if (allWarm) {
        writeBatchManifest(
            batch,
            static_cast<double>(nowMicros() - batch->submitUs) / 1e6);
    }
    return reply;
}

std::string
Server::handleStatus(const std::string &jobId)
{
    std::lock_guard<std::mutex> lock(lock_);
    const auto it = batches_.find(jobId);
    if (it == batches_.end())
        return errorLine("unknown job '" + jobId + "'");
    return statusJson(*it->second);
}

std::string
Server::statusJson(const Batch &batch) const
{
    json::JsonWriter w;
    w.beginObject()
        .field("ok", true)
        .field("job", batch.id)
        .field("state",
               stateName(static_cast<std::uint8_t>(batch.state)))
        .field("trace", batch.traceId)
        .field("total", batch.total)
        .field("warm", batch.warm)
        .field("simulated", batch.simulated)
        .field("failed", batch.failed)
        .field("events",
               static_cast<std::uint64_t>(batch.events.size()));
    if (!batch.error.empty())
        w.field("error", batch.error);
    w.beginArray("pids");
    for (const pid_t pid : batch.workerPids)
        w.element(std::to_string(pid));
    w.endArray();
    w.endObject();
    return w.str();
}

bool
Server::streamWait(int fd, const std::string &jobId)
{
    std::shared_ptr<Batch> batch;
    {
        std::lock_guard<std::mutex> lock(lock_);
        const auto it = batches_.find(jobId);
        if (it == batches_.end())
            return sendLine(fd, errorLine("unknown job '" + jobId +
                                          "'"));
        batch = it->second;
    }

    // Replay the full event log from the top, then follow it live
    // until the batch reaches a terminal state — a client that
    // reconnects after a disconnect sees exactly what a patient one
    // did.
    std::size_t next = 0;
    for (;;) {
        std::vector<std::string> chunk;
        bool terminal = false;
        std::string doneLine;
        {
            std::unique_lock<std::mutex> lock(lock_);
            cv_.wait_for(lock, std::chrono::milliseconds(200), [&] {
                return batch->events.size() > next ||
                       batch->state == Batch::State::Done ||
                       batch->state == Batch::State::Failed;
            });
            while (next < batch->events.size())
                chunk.push_back(batch->events[next++]);
            terminal = batch->state == Batch::State::Done ||
                       batch->state == Batch::State::Failed;
            if (terminal && next == batch->events.size()) {
                json::JsonWriter w;
                w.beginObject()
                    .field("event", "done")
                    .field("job", batch->id)
                    .field("state",
                           stateName(static_cast<std::uint8_t>(
                               batch->state)))
                    .field("total", batch->total)
                    .field("warm", batch->warm)
                    .field("simulated", batch->simulated)
                    .field("failed", batch->failed);
                if (!batch->error.empty())
                    w.field("error", batch->error);
                w.endObject();
                doneLine = w.str();
            }
        }
        for (const auto &line : chunk) {
            if (!sendLine(fd, line))
                return false; // job keeps running without us
        }
        if (!doneLine.empty())
            return sendLine(fd, doneLine);
    }
}

void
Server::recordEventLocked(Batch &batch, const JobEvent &event,
                          bool warmOrigin)
{
    // A respawned worker replays its whole shard, so its event stream
    // may repeat hashes; the first event for a hash is the one that
    // counts (and the only one clients see).
    if (!batch.seen.emplace(event.hash, event.ok).second)
        return;
    batch.events.push_back(renderJobEvent(event));
    if (!event.ok) {
        batch.failed++;
        failedJobs_++;
    } else if (warmOrigin) {
        batch.warm++;
        warmHits_++;
    } else {
        batch.simulated++;
        simulated_++;
        if (event.wallSeconds > 0.0)
            jobLatency_.add(event.wallSeconds * 1e6);
    }
    runner::JobRecord record;
    record.app = event.app;
    record.variant = event.variant;
    record.hash = event.hash;
    record.ok = event.ok;
    record.fromCache = event.fromCache || warmOrigin;
    record.wallSeconds = event.wallSeconds;
    record.simInsts = (event.ok && !record.fromCache)
        ? batch.request.insts : 0;
    record.error = event.error;
    batch.records.push_back(std::move(record));
    cv_.notify_all();
}

void
Server::recordEvent(const std::shared_ptr<Batch> &batch,
                    const JobEvent &event)
{
    std::lock_guard<std::mutex> lock(lock_);
    recordEventLocked(*batch, event, /*warmOrigin=*/false);
}

void
Server::schedulerLoop()
{
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(lock_);
            cv_.wait_for(lock, std::chrono::milliseconds(200), [this] {
                return !queue_.empty() || stop_.load();
            });
            if (!queue_.empty()) {
                batch = queue_.front();
                queue_.erase(queue_.begin());
                batch->state = Batch::State::Running;
                const std::uint64_t waited =
                    nowMicros() - batch->submitUs;
                queueWait_.add(static_cast<double>(waited));
                if (options_.trace != nullptr) {
                    options_.trace->complete(
                        "queue-wait " + batch->id, "serve",
                        batch->submitUs, waited, 0, 0, "trace",
                        batch->traceId);
                }
            } else if (stop_.load()) {
                break;
            } else {
                continue;
            }
        }
        executeBatch(batch);
    }

    // Drain: the in-flight batch (if any) already finished above;
    // everything still queued fails fast with a clear reason.
    std::lock_guard<std::mutex> lock(lock_);
    for (const auto &batch : queue_) {
        batch->state = Batch::State::Failed;
        batch->error = "server shutting down";
    }
    queue_.clear();
    cv_.notify_all();
}

void
Server::executeBatch(const std::shared_ptr<Batch> &batch)
{
    const std::uint64_t startUs = nowMicros();
    if (options_.workers == 0)
        runInProcess(batch);
    else
        runWithWorkers(batch);

    {
        std::lock_guard<std::mutex> lock(lock_);
        batch->state = (batch->failed > 0 || !batch->error.empty())
                           ? Batch::State::Failed
                           : Batch::State::Done;
        batch->workerPids.clear();
        completed_++;
        cv_.notify_all();
    }
    const std::uint64_t endUs = nowMicros();
    writeBatchManifest(batch,
                       static_cast<double>(endUs - startUs) / 1e6);
    if (options_.trace != nullptr) {
        options_.trace->complete("batch " + batch->id, "serve",
                                 startUs, endUs - startUs, 0, 0,
                                 "trace", batch->traceId);
    }
}

void
Server::stitchSpan(const std::shared_ptr<Batch> &batch,
                   std::size_t slot, const std::string &line)
{
    if (options_.trace == nullptr)
        return;
    const auto span = obs::parseSpanEvent(line);
    if (!span || span->traceId != batch->traceId)
        return;
    pid_t pid = 0;
    {
        std::lock_guard<std::mutex> lock(lock_);
        if (slot < batch->workerPids.size() &&
            batch->workerPids[slot] > 0) {
            pid = batch->workerPids[slot];
        }
    }
    // Worker timestamps are absolute CLOCK_MONOTONIC µs; shift them
    // onto the daemon's 0-based trace timeline.
    const std::uint64_t ts =
        span->startUs > epochUs_ ? span->startUs - epochUs_ : 0;
    options_.trace->complete(span->name, span->category, ts,
                             span->durUs,
                             static_cast<std::uint32_t>(pid),
                             span->tid, "trace", span->traceId);
}

void
Server::writeBatchManifest(const std::shared_ptr<Batch> &batch,
                           double wallSeconds)
{
    runner::RunManifest manifest;
    manifest.schema = runner::kResultSchemaVersion;
    manifest.gitDescribe = runner::gitDescribe();
    manifest.wallSeconds = wallSeconds;
    {
        std::lock_guard<std::mutex> lock(lock_);
        manifest.batch = batch->request.batch + "." + batch->id;
        manifest.traceId = batch->traceId;
        manifest.startedUnix = batch->startedUnix;
        manifest.jobs = batch->records;
    }
    const std::string dir =
        std::filesystem::path(store_.path()).parent_path().string() +
        "/manifests";
    if (manifest.write(dir).empty()) {
        critics_warn("serve: cannot write batch manifest for '",
                     manifest.batch, "'");
    }
}

void
Server::runInProcess(const std::shared_ptr<Batch> &batch)
{
    runner::RunnerOptions options;
    options.cachePath = store_.path();
    options.refresh = batch->request.refresh;
    options.maxAttempts = options_.maxAttempts;
    options.progress = false;
    // The batch's event log is the serve-side record; a per-batch run
    // manifest in the shared cache dir would just accumulate.
    options.writeManifest = false;
    const std::uint64_t sleepMs = batch->request.sleepMs;
    options.executor = [this, batch, sleepMs](
                           const runner::JobSpec &spec,
                           sim::AppExperiment &experiment) {
        const std::uint64_t jobStartUs = nowMicros();
        auto result = experiment.run(spec.variant);
        if (sleepMs > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sleepMs));
        }
        const std::uint64_t jobEndUs = nowMicros();
        JobEvent event;
        event.hash = spec.hashHex();
        event.app = spec.profile.name;
        event.variant = spec.variant.label;
        event.ok = true;
        event.wallSeconds =
            static_cast<double>(jobEndUs - jobStartUs) / 1e6;
        if (options_.trace != nullptr) {
            options_.trace->complete(
                spec.profile.name + "/" + spec.variant.label, "job",
                jobStartUs, jobEndUs - jobStartUs, 0,
                options_.trace->tidForCurrentThread(), "trace",
                batch->traceId);
        }
        recordEvent(batch, event);
        return result;
    };

    runner::Runner runner(options);
    const auto result = runner.run(
        batch->request.batch + "." + batch->id, batch->coldSpecs);

    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const auto &outcome = result.outcomes[i];
        if (outcome.ok && !outcome.fromCache)
            continue; // streamed live by the executor
        JobEvent event;
        event.hash = result.jobs[i].hashHex();
        event.app = result.jobs[i].profile.name;
        event.variant = result.jobs[i].variant.label;
        event.ok = outcome.ok;
        event.fromCache = outcome.fromCache;
        event.error = outcome.error;
        recordEvent(batch, event);
    }
    store_.reload();
}

void
Server::runWithWorkers(const std::shared_ptr<Batch> &batch)
{
    const std::string dir =
        std::filesystem::path(store_.path()).parent_path().string();
    {
        // The store file itself is created lazily on first insert, so
        // the directory may not exist yet on a fresh cache.
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
    const unsigned workers = options_.workers;

    // The same pure hash partition as `run --shard K/N`: every process
    // computes the same split, so a respawned worker owns exactly the
    // jobs its predecessor did.
    std::vector<std::vector<const runner::JobSpec *>> shards(workers);
    for (const auto &spec : batch->coldSpecs) {
        shards[runner::shardOf(spec, workers) - 1].push_back(&spec);
    }

    std::vector<std::vector<std::string>> argvs;
    std::vector<std::string> scratch; // shard stores + hash files
    for (unsigned k = 0; k < workers; ++k) {
        if (shards[k].empty())
            continue; // N > cold jobs: nothing to fork for this slot
        const std::string tag = batch->id + ".shard-" +
                                std::to_string(k + 1) + "-of-" +
                                std::to_string(workers);
        const std::string shardStore =
            dir + "/results." + tag + ".jsonl";
        const std::string hashesFile = dir + "/" + tag + ".hashes";
        std::error_code ec;
        std::filesystem::remove(shardStore, ec);
        {
            std::ofstream out(hashesFile, std::ios::trunc);
            for (const auto *spec : shards[k])
                out << spec->hashHex() << "\n";
        }
        scratch.push_back(shardStore);
        scratch.push_back(hashesFile);

        std::vector<std::string> argv = {
            options_.workerExe,
            "serve-worker",
            "--batch",
            batch->request.batch + "." + tag,
            "--apps",
            batch->request.apps,
            "--variants",
            batch->request.variants,
            "--insts",
            std::to_string(batch->request.insts),
            "--store",
            shardStore,
            "--hashes",
            hashesFile,
            "--attempts",
            std::to_string(options_.maxAttempts),
        };
        if (batch->request.sleepMs > 0) {
            argv.push_back("--sleep-ms");
            argv.push_back(std::to_string(batch->request.sleepMs));
        }
        if (options_.trace != nullptr) {
            argv.push_back("--trace-id");
            argv.push_back(batch->traceId);
        }
        if (!options_.profileDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(options_.profileDir,
                                                ec);
            argv.push_back("--profile");
            argv.push_back(options_.profileDir + "/" + batch->id +
                           ".worker-" + std::to_string(k + 1) +
                           ".json");
        }
        argvs.push_back(std::move(argv));
    }

    {
        std::lock_guard<std::mutex> lock(lock_);
        inFlightShards_ = argvs.size();
        batch->workerPids.assign(argvs.size(), -1);
        batch->crashedAtUs.assign(argvs.size(), 0);
    }

    SupervisorOptions supOptions;
    supOptions.maxRestarts = options_.maxRestarts;
    supOptions.onLine = [this, batch](std::size_t index,
                                      const std::string &line) {
        if (const auto event = parseJobEvent(line)) {
            recordEvent(batch, *event);
            return;
        }
        if (parseShardDone(line)) {
            std::lock_guard<std::mutex> lock(lock_);
            if (inFlightShards_ > 0)
                inFlightShards_--;
            cv_.notify_all();
            return;
        }
        stitchSpan(batch, index, line);
    };
    supOptions.onSpawn = [this, batch](std::size_t index, pid_t pid) {
        {
            std::lock_guard<std::mutex> lock(lock_);
            if (index < batch->workerPids.size())
                batch->workerPids[index] = pid;
            if (index < batch->crashedAtUs.size() &&
                batch->crashedAtUs[index] != 0) {
                restartDelay_.add(static_cast<double>(
                    nowMicros() - batch->crashedAtUs[index]));
                batch->crashedAtUs[index] = 0;
            }
            cv_.notify_all();
        }
        if (options_.trace != nullptr) {
            options_.trace->setProcessName(
                static_cast<std::uint32_t>(pid),
                "serve-worker " + std::to_string(index + 1) + " (" +
                    batch->id + ")");
        }
    };
    supOptions.onCrash = [this, batch](std::size_t index, int,
                                       bool willRestart) {
        std::lock_guard<std::mutex> lock(lock_);
        workerCrashes_++;
        if (willRestart)
            workerRestarts_++;
        if (index < batch->workerPids.size())
            batch->workerPids[index] = -1;
        if (willRestart && index < batch->crashedAtUs.size())
            batch->crashedAtUs[index] = nowMicros();
        cv_.notify_all();
    };

    WorkerSupervisor supervisor(supOptions);
    supervisor.run(argvs);

    // Fold every shard store back into the shared one so the next
    // submission of these specs is warm, then drop the scratch files.
    std::vector<std::string> inputs = {store_.path()};
    for (std::size_t i = 0; i < scratch.size(); i += 2)
        inputs.push_back(scratch[i]);
    if (inputs.size() > 1) {
        if (!runner::mergeStores(store_.path(), inputs)) {
            critics_warn("serve: merging shard stores into ",
                         store_.path(), " failed");
        }
        store_.reload();
    }
    for (const auto &path : scratch) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }

    // Anything not accounted for by an event belongs to a worker that
    // burned through its restart budget: a failed-job record, not a
    // hang.
    {
        std::lock_guard<std::mutex> lock(lock_);
        for (const auto &spec : batch->coldSpecs) {
            JobEvent event;
            event.hash = spec.hashHex();
            event.app = spec.profile.name;
            event.variant = spec.variant.label;
            event.ok = false;
            event.error =
                "worker exhausted restarts before finishing this job";
            recordEventLocked(*batch, event, /*warmOrigin=*/false);
        }
        inFlightShards_ = 0;
    }
}

std::uint64_t
Server::nowMicros() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
}

void
Server::traceSpan(const char *op, std::uint64_t startUs)
{
    if (options_.trace == nullptr)
        return;
    const std::uint64_t now = nowMicros();
    options_.trace->complete(op, "serve", startUs, now - startUs, 0,
                             options_.trace->tidForCurrentThread());
}

void
Server::registerStats(stats::StatRegistry &reg) const
{
    reg.addCounter("serve.submitted", submitted_,
                   "batches accepted over the protocol");
    reg.addCounter("serve.completed", completed_,
                   "batches finished (done or failed)");
    reg.addCounter("serve.warmHits", warmHits_,
                   "jobs answered from the store without simulating");
    reg.addCounter("serve.simulated", simulated_,
                   "jobs executed by workers or in-process");
    reg.addCounter("serve.failedJobs", failedJobs_,
                   "jobs that exhausted their attempt/restart budget");
    reg.addCounter("serve.workerCrashes", workerCrashes_,
                   "worker processes that died abnormally");
    reg.addCounter("serve.workerRestarts", workerRestarts_,
                   "workers respawned after a crash");
    reg.addCounter("serve.requests", requests_,
                   "protocol requests received");
    reg.addCounter("serve.badRequests", badRequests_,
                   "protocol requests rejected");
    reg.addFormula(
        "serve.queueDepth",
        [this] {
            std::lock_guard<std::mutex> lock(lock_);
            return static_cast<double>(queue_.size());
        },
        "batches waiting for the scheduler");
    reg.addFormula(
        "serve.inFlightShards",
        [this] {
            std::lock_guard<std::mutex> lock(lock_);
            return static_cast<double>(inFlightShards_);
        },
        "worker shards currently executing");
    reg.addFormula(
        "serve.warmHitRatio",
        [this] {
            std::lock_guard<std::mutex> lock(lock_);
            const double answered =
                static_cast<double>(warmHits_ + simulated_);
            return answered > 0 ? warmHits_ / answered : 0.0;
        },
        "warm fraction of all answered jobs");
    reg.addLatency("serve.jobLatency", jobLatency_,
                   "wall time of jobs executed for this daemon (us)");
    reg.addLatency("serve.queueWait", queueWait_,
                   "submit-to-dequeue wait per batch (us)");
    reg.addLatency("serve.restartDelay", restartDelay_,
                   "worker crash-to-respawn delay (us)");
}

} // namespace critics::serve
