#include "serve/protocol.hh"

#include "support/json.hh"

namespace critics::serve
{

void
LineReader::feed(const char *data, std::size_t len)
{
    buffer_.append(data, len);
}

std::optional<std::string>
LineReader::nextLine()
{
    const auto pos = buffer_.find('\n', scanned_);
    if (pos == std::string::npos) {
        scanned_ = buffer_.size();
        return std::nullopt;
    }
    std::string line = buffer_.substr(0, pos);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    buffer_.erase(0, pos + 1);
    scanned_ = 0;
    return line;
}

namespace
{

const char *
opName(Request::Op op)
{
    switch (op) {
      case Request::Op::Submit: return "submit";
      case Request::Op::Status: return "status";
      case Request::Op::Wait: return "wait";
      case Request::Op::Ping: return "ping";
      case Request::Op::Stats: return "stats";
      case Request::Op::Shutdown: return "shutdown";
    }
    return "ping";
}

std::optional<Request::Op>
opOf(const std::string &name)
{
    if (name == "submit")
        return Request::Op::Submit;
    if (name == "status")
        return Request::Op::Status;
    if (name == "wait")
        return Request::Op::Wait;
    if (name == "ping")
        return Request::Op::Ping;
    if (name == "stats")
        return Request::Op::Stats;
    if (name == "shutdown")
        return Request::Op::Shutdown;
    return std::nullopt;
}

void
fail(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = what;
}

} // namespace

std::optional<Request>
parseRequest(const std::string &line, std::string *error)
{
    const auto doc = json::parseJson(line);
    if (!doc || !doc->isObject()) {
        fail(error, "request is not a JSON object");
        return std::nullopt;
    }
    const auto *opField = doc->find("op");
    const auto opText = opField ? opField->asString() : std::nullopt;
    if (!opText) {
        fail(error, "request has no \"op\"");
        return std::nullopt;
    }
    const auto op = opOf(*opText);
    if (!op) {
        fail(error, "unknown op '" + *opText + "'");
        return std::nullopt;
    }

    Request request;
    request.op = *op;
    if (*op == Request::Op::Status || *op == Request::Op::Wait) {
        const auto *job = doc->find("job");
        const auto id = job ? job->asString() : std::nullopt;
        if (!id || id->empty()) {
            fail(error, "status/wait needs a \"job\" id");
            return std::nullopt;
        }
        request.job = *id;
    }
    if (*op == Request::Op::Submit) {
        SubmitRequest &s = request.submit;
        if (const auto *f = doc->find("batch")) {
            const auto v = f->asString();
            if (!v || v->empty()) {
                fail(error, "\"batch\" must be a non-empty string");
                return std::nullopt;
            }
            s.batch = *v;
        }
        if (const auto *f = doc->find("apps")) {
            const auto v = f->asString();
            if (!v) {
                fail(error, "\"apps\" must be a string");
                return std::nullopt;
            }
            s.apps = *v;
        }
        if (const auto *f = doc->find("variants")) {
            const auto v = f->asString();
            if (!v) {
                fail(error, "\"variants\" must be a string");
                return std::nullopt;
            }
            s.variants = *v;
        }
        if (const auto *f = doc->find("insts")) {
            const auto v = f->asUint();
            if (!v || *v == 0) {
                fail(error, "\"insts\" must be a positive integer");
                return std::nullopt;
            }
            s.insts = *v;
        }
        if (const auto *f = doc->find("refresh")) {
            const auto v = f->asBool();
            if (!v) {
                fail(error, "\"refresh\" must be a bool");
                return std::nullopt;
            }
            s.refresh = *v;
        }
        if (const auto *f = doc->find("sleep-ms")) {
            const auto v = f->asUint();
            if (!v) {
                fail(error, "\"sleep-ms\" must be an integer");
                return std::nullopt;
            }
            s.sleepMs = *v;
        }
    }
    return request;
}

std::string
renderRequest(const Request &request)
{
    json::JsonWriter w;
    w.beginObject().field("op", opName(request.op));
    if (request.op == Request::Op::Status ||
        request.op == Request::Op::Wait) {
        w.field("job", request.job);
    }
    if (request.op == Request::Op::Submit) {
        const SubmitRequest &s = request.submit;
        w.field("batch", s.batch)
            .field("apps", s.apps)
            .field("variants", s.variants)
            .field("insts", s.insts)
            .field("refresh", s.refresh);
        if (s.sleepMs > 0)
            w.field("sleep-ms", s.sleepMs);
    }
    w.endObject();
    return w.str();
}

std::string
renderJobEvent(const JobEvent &event)
{
    json::JsonWriter w;
    w.beginObject()
        .field("event", "job")
        .field("hash", event.hash)
        .field("app", event.app)
        .field("variant", event.variant)
        .field("ok", event.ok)
        .field("from-cache", event.fromCache);
    if (event.wallSeconds > 0.0)
        w.fieldReadable("wall-s", event.wallSeconds);
    if (!event.error.empty())
        w.field("error", event.error);
    w.endObject();
    return w.str();
}

std::optional<JobEvent>
parseJobEvent(const std::string &line)
{
    const auto doc = json::parseJson(line);
    if (!doc || !doc->isObject())
        return std::nullopt;
    const auto *kind = doc->find("event");
    const auto kindText = kind ? kind->asString() : std::nullopt;
    if (!kindText || *kindText != "job")
        return std::nullopt;

    JobEvent event;
    const auto *hash = doc->find("hash");
    const auto hashText = hash ? hash->asString() : std::nullopt;
    if (!hashText || hashText->empty())
        return std::nullopt;
    event.hash = *hashText;
    if (const auto *f = doc->find("app"))
        event.app = f->asString().value_or("");
    if (const auto *f = doc->find("variant"))
        event.variant = f->asString().value_or("");
    if (const auto *f = doc->find("ok"))
        event.ok = f->asBool().value_or(false);
    if (const auto *f = doc->find("from-cache"))
        event.fromCache = f->asBool().value_or(false);
    if (const auto *f = doc->find("wall-s"))
        event.wallSeconds = f->asDouble().value_or(0.0);
    if (const auto *f = doc->find("error"))
        event.error = f->asString().value_or("");
    return event;
}

std::string
renderShardDone(const ShardDone &done)
{
    json::JsonWriter w;
    w.beginObject()
        .field("event", "shard-done")
        .field("failed", done.failed)
        .field("total", done.total)
        .endObject();
    return w.str();
}

std::optional<ShardDone>
parseShardDone(const std::string &line)
{
    const auto doc = json::parseJson(line);
    if (!doc || !doc->isObject())
        return std::nullopt;
    const auto *kind = doc->find("event");
    const auto kindText = kind ? kind->asString() : std::nullopt;
    if (!kindText || *kindText != "shard-done")
        return std::nullopt;

    ShardDone done;
    const auto *failed = doc->find("failed");
    const auto *total = doc->find("total");
    const auto failedVal = failed ? failed->asUint() : std::nullopt;
    const auto totalVal = total ? total->asUint() : std::nullopt;
    if (!failedVal || !totalVal)
        return std::nullopt;
    done.failed = *failedVal;
    done.total = *totalVal;
    return done;
}

} // namespace critics::serve
