/**
 * @file
 * A built-in SIGPROF sampling profiler (--profile on run/bench/
 * serve-worker), pointed first at the `analyze` stage ROADMAP names as
 * the next optimization target.
 *
 * Design: setitimer(ITIMER_PROF) delivers SIGPROF on a fixed budget of
 * *CPU time*, so the sample count is proportional to work done, not
 * wall-clock waited.  The handler obeys strict async-signal-safety
 * rules (§DESIGN.md "Observability"):
 *
 *   - no allocation: samples land in an array preallocated at start();
 *   - slot claim is a single atomic fetch_add; once the array is full
 *     further samples just bump a drop counter;
 *   - the only data read is the thread-local stage byte StageScope
 *     maintains (obs::detail::tlsStage) — a plain TLS load;
 *   - backtrace(3) is warmed with one call *before* the handler is
 *     installed, because its first call may lazily dlopen libgcc
 *     (malloc — not signal-safe).  After warming it only walks the
 *     stack.
 *
 * Everything unsafe — dladdr symbolization, demangling, aggregation,
 * JSON rendering — happens after stop(), on the normal path.  One
 * profiler may be active per process at a time (the handler needs a
 * process-global target).
 *
 * The report is JSON ("critics-profile-v1"): total/dropped counts,
 * per-pipeline-stage sample attribution, and a flat per-symbol
 * profile.  `critics_cli prof report` pretty-prints it and
 * scripts/check_trace.py schema-checks it in CI.
 */

#ifndef CRITICS_OBS_PROFILER_HH
#define CRITICS_OBS_PROFILER_HH

#include <cstdint>
#include <string>

namespace critics::obs
{

struct ProfilerOptions
{
    /** SIGPROF period in µs of consumed CPU time.  The default is a
     *  deliberately odd ~197 Hz so sampling cannot phase-lock with
     *  any 10ms-granular periodic work. */
    std::uint64_t intervalUsec = 5063;
    /** Preallocated sample capacity; samples past this are counted as
     *  dropped, never silently lost. */
    std::uint32_t maxSamples = 1u << 16;
};

class SamplingProfiler
{
  public:
    explicit SamplingProfiler(ProfilerOptions options = {});
    ~SamplingProfiler();

    SamplingProfiler(const SamplingProfiler &) = delete;
    SamplingProfiler &operator=(const SamplingProfiler &) = delete;

    /** Install the handler and arm the timer.  Returns false (with a
     *  warning) if another profiler is already active in-process. */
    bool start();

    /** Disarm the timer and restore the previous SIGPROF handler.
     *  Idempotent. */
    void stop();

    bool running() const { return running_; }

    /** Samples recorded so far (readable while running). */
    std::uint32_t sampleCount() const;
    /** Samples lost to a full buffer. */
    std::uint64_t droppedCount() const;

    /** Symbolize + aggregate and return the JSON report.  Call after
     *  stop(). */
    std::string reportJson() const;

    /** reportJson() straight to a file; false on I/O failure. */
    bool writeReport(const std::string &path) const;

    /** Sample storage; public so the file-local SIGPROF handler can
     *  name it (its layout stays private to profiler.cc). */
    struct Impl;

  private:
    ProfilerOptions options_;
    bool running_ = false;
    Impl *impl_; ///< sample storage; reachable from the handler
};

/** Pretty-print a "critics-profile-v1" report (as written by
 *  --profile) to stdout.  Returns false on parse/schema errors.
 *  `topN` caps the flat-profile rows. */
bool printProfileReport(const std::string &json, std::size_t topN = 20);

} // namespace critics::obs

#endif // CRITICS_OBS_PROFILER_HH
