#include "obs/obs.hh"

#include <atomic>
#include <ctime>
#include <memory>
#include <mutex>
#include <utility>

namespace critics::obs
{

namespace detail
{
thread_local std::uint8_t tlsStage = 0;
} // namespace detail

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::None: return "none";
      case Stage::Synth: return "synth";
      case Stage::Emit: return "emit";
      case Stage::Analyze: return "analyze";
      case Stage::Transform: return "transform";
      case Stage::Simulate: return "simulate";
    }
    return "none";
}

std::uint64_t
monotonicMicros()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000ull;
}

Stage
currentStage()
{
    return static_cast<Stage>(detail::tlsStage);
}

std::uint32_t
obsThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t id = next.fetch_add(1);
    return id;
}

namespace
{

// The sink proper lives behind a shared_ptr swapped under a mutex;
// emitters take a reference under the same mutex.  `active` is the
// lock-free fast-path gate so dormant instrumentation costs one
// relaxed load and no clock read.
std::mutex sinkMutex;
std::shared_ptr<const SpanSink> sinkPtr;
std::atomic<bool> sinkActive{false};

void
emitSpan(const SpanRecord &span)
{
    std::shared_ptr<const SpanSink> sink;
    {
        std::lock_guard<std::mutex> hold(sinkMutex);
        sink = sinkPtr;
    }
    if (sink && *sink)
        (*sink)(span);
}

} // namespace

void
setSpanSink(SpanSink sink)
{
    std::lock_guard<std::mutex> hold(sinkMutex);
    if (sink) {
        sinkPtr = std::make_shared<const SpanSink>(std::move(sink));
        sinkActive.store(true, std::memory_order_release);
    } else {
        sinkActive.store(false, std::memory_order_release);
        sinkPtr.reset();
    }
}

bool
spanSinkActive()
{
    return sinkActive.load(std::memory_order_acquire);
}

StageScope::StageScope(Stage stage, std::string name, std::string category)
    : previous_(static_cast<Stage>(detail::tlsStage)),
      marked_(stage != Stage::None),
      emit_(spanSinkActive()),
      name_(std::move(name)),
      category_(std::move(category))
{
    if (marked_)
        detail::tlsStage = static_cast<std::uint8_t>(stage);
    if (emit_)
        startUs_ = monotonicMicros();
}

StageScope::~StageScope()
{
    if (marked_)
        detail::tlsStage = static_cast<std::uint8_t>(previous_);
    if (!emit_)
        return;
    SpanRecord span;
    span.name = std::move(name_);
    span.category = std::move(category_);
    span.startUs = startUs_;
    span.durUs = monotonicMicros() - startUs_;
    span.tid = obsThreadId();
    emitSpan(span);
}

} // namespace critics::obs
