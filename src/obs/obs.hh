/**
 * @file
 * Core observability primitives shared by the tracing layer and the
 * sampling profiler: a pipeline-stage taxonomy, a per-thread stage
 * marker, a monotonic cross-process clock and a process-global span
 * sink.
 *
 * The one instrumentation point is StageScope — an RAII guard placed
 * inside AppExperiment (and around the bench stage loops) that does
 * double duty:
 *
 *   - it marks the calling thread's *current pipeline stage* in a
 *     thread-local the SIGPROF profiler handler reads, so every
 *     profile sample is attributed to synth/emit/analyze/transform/
 *     simulate without unwinding a single stack frame; and
 *   - when a span sink is installed, it emits one SpanRecord on
 *     destruction, which the sink turns into a Chrome trace span
 *     (direct runs) or a JSONL span event on stdout (serve workers,
 *     stitched by the server into the daemon's merged trace).
 *
 * Stage marking is always on and costs two thread-local writes; the
 * clock is only read when a sink is installed, so the simulator hot
 * path never pays a syscall for dormant instrumentation.
 *
 * Clock discipline: span timestamps are *absolute* CLOCK_MONOTONIC
 * microseconds.  CLOCK_MONOTONIC is system-wide on one host, so spans
 * recorded in forked workers and spans recorded in the server share a
 * timeline; whoever assembles the merged trace subtracts its own
 * epoch once instead of every process negotiating an offset.
 */

#ifndef CRITICS_OBS_OBS_HH
#define CRITICS_OBS_OBS_HH

#include <cstdint>
#include <functional>
#include <string>

namespace critics::obs
{

/** The pipeline stages profile samples and spans are attributed to.
 *  None means "between stages" (runner bookkeeping, I/O, idle). */
enum class Stage : std::uint8_t
{
    None = 0,
    Synth,     ///< program synthesis from the app profile
    Emit,      ///< control walk + trace emission
    Analyze,   ///< fanout / chains / mining (the offline profiler)
    Transform, ///< compiler passes + transformed-trace re-emission
    Simulate,  ///< cpu::runTrace + energy model
};

inline constexpr std::size_t kStageCount = 6;

const char *stageName(Stage stage);

/** Absolute CLOCK_MONOTONIC now, in microseconds. */
std::uint64_t monotonicMicros();

/** The calling thread's current stage (profiler handler reads the
 *  underlying thread-local directly; see profiler.cc). */
Stage currentStage();

/** Small dense per-process id for the calling thread (1, 2, ... in
 *  first-use order) — the `tid` spans are recorded under. */
std::uint32_t obsThreadId();

/** One finished span, as handed to the span sink. */
struct SpanRecord
{
    std::string name;     ///< e.g. "analyze" or "Acrobat/critic"
    std::string category; ///< "stage" or "job"
    std::uint64_t startUs = 0; ///< absolute CLOCK_MONOTONIC µs
    std::uint64_t durUs = 0;
    std::uint32_t tid = 0; ///< obsThreadId() of the recording thread
};

using SpanSink = std::function<void(const SpanRecord &)>;

/**
 * Install (or, with nullptr, remove) the process-global span sink.
 * Not thread-safe against concurrent emitters: install before the
 * instrumented work starts and remove after it ends — exactly how the
 * CLI and the serve worker use it.
 */
void setSpanSink(SpanSink sink);

/** True when a sink is installed (cheap; guards the clock reads). */
bool spanSinkActive();

/**
 * RAII stage guard.  Marks the thread's current stage for the
 * duration (restoring the previous stage on exit, so nesting works:
 * analyze inside transform attributes to analyze) and emits one span
 * through the sink when one is installed.  Stage::None skips the
 * stage marking and only emits the span — that is the "job" span
 * wrapper around an entire executor invocation.
 */
class StageScope
{
  public:
    explicit StageScope(Stage stage)
        : StageScope(stage, stageName(stage), "stage")
    {
    }
    StageScope(Stage stage, std::string name, std::string category);
    ~StageScope();

    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

  private:
    Stage previous_;
    bool marked_;
    bool emit_;
    std::uint64_t startUs_ = 0;
    std::string name_;
    std::string category_;
};

namespace detail
{
/** The raw thread-local behind currentStage().  The SIGPROF handler
 *  reads this directly — a plain thread-local integer load is
 *  async-signal-safe, a function call through the PLT is not
 *  guaranteed to be on first use. */
extern thread_local std::uint8_t tlsStage;
} // namespace detail

} // namespace critics::obs

#endif // CRITICS_OBS_OBS_HH
