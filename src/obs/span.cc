#include "obs/span.hh"

#include "support/json.hh"

namespace critics::obs
{

std::string
renderSpanEvent(const SpanEvent &event)
{
    json::JsonWriter w;
    w.beginObject()
        .field("event", "span")
        .field("trace", event.traceId)
        .field("name", event.name)
        .field("cat", event.category)
        .field("ts", event.startUs)
        .field("dur", event.durUs)
        .field("tid", static_cast<std::uint64_t>(event.tid))
        .endObject();
    return w.str();
}

std::optional<SpanEvent>
parseSpanEvent(const std::string &line)
{
    const auto doc = json::parseJson(line);
    if (!doc || !doc->isObject())
        return std::nullopt;
    const auto *kind = doc->find("event");
    const auto kindText = kind ? kind->asString() : std::nullopt;
    if (!kindText || *kindText != "span")
        return std::nullopt;

    SpanEvent event;
    const auto *name = doc->find("name");
    const auto nameText = name ? name->asString() : std::nullopt;
    if (!nameText || nameText->empty())
        return std::nullopt;
    event.name = *nameText;
    const auto *ts = doc->find("ts");
    const auto tsVal = ts ? ts->asUint() : std::nullopt;
    if (!tsVal)
        return std::nullopt;
    event.startUs = *tsVal;
    if (const auto *f = doc->find("trace"))
        event.traceId = f->asString().value_or("");
    if (const auto *f = doc->find("cat"))
        event.category = f->asString().value_or("");
    if (const auto *f = doc->find("dur"))
        event.durUs = f->asUint().value_or(0);
    if (const auto *f = doc->find("tid"))
        event.tid = static_cast<std::uint32_t>(f->asUint().value_or(0));
    return event;
}

SpanEvent
toSpanEvent(const SpanRecord &span, const std::string &traceId)
{
    SpanEvent event;
    event.traceId = traceId;
    event.name = span.name;
    event.category = span.category;
    event.startUs = span.startUs;
    event.durUs = span.durUs;
    event.tid = span.tid;
    return event;
}

} // namespace critics::obs
