/**
 * @file
 * Wire format for cross-process span propagation: one JSONL line per
 * finished span, emitted by serve workers on the same stdout channel
 * as their job events and stitched by the server into the daemon's
 * merged Chrome trace.
 *
 *   {"event":"span","trace":T,"name":N,"cat":C,"ts":S,"dur":D,"tid":I}
 *
 * `trace` is the batch's traceId (minted at submit, carried to the
 * worker via --trace-id).  `ts` is *absolute* CLOCK_MONOTONIC µs — the
 * stitching side subtracts its own epoch, so span lines are meaningful
 * only to a reader on the same host within the same boot, which is
 * exactly the supervisor that forked the worker.
 */

#ifndef CRITICS_OBS_SPAN_HH
#define CRITICS_OBS_SPAN_HH

#include <cstdint>
#include <optional>
#include <string>

#include "obs/obs.hh"

namespace critics::obs
{

/** One span line as carried on a worker's stdout channel. */
struct SpanEvent
{
    std::string traceId;
    std::string name;
    std::string category;
    std::uint64_t startUs = 0; ///< absolute CLOCK_MONOTONIC µs
    std::uint64_t durUs = 0;
    std::uint32_t tid = 0;
};

/** One-line rendering (no trailing newline). */
std::string renderSpanEvent(const SpanEvent &event);

/** Parse one line; nullopt if it is not a well-formed span event
 *  (non-span lines simply belong to another protocol). */
std::optional<SpanEvent> parseSpanEvent(const std::string &line);

/** Convenience: wrap a finished SpanRecord with the batch traceId. */
SpanEvent toSpanEvent(const SpanRecord &span, const std::string &traceId);

} // namespace critics::obs

#endif // CRITICS_OBS_SPAN_HH
