#include "obs/profiler.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include "obs/obs.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace critics::obs
{

namespace
{

/** Frames kept per sample.  The first few are the handler + the
 *  kernel's signal trampoline; symbolization skips them. */
constexpr int kMaxFrames = 48;
constexpr int kSkipFrames = 2;

struct Sample
{
    void *frames[kMaxFrames];
    std::int32_t depth;
    std::uint8_t stage;
};

} // namespace

struct SamplingProfiler::Impl
{
    std::vector<Sample> samples;      ///< preallocated at start()
    std::atomic<std::uint32_t> next{0};  ///< first free slot (may run past capacity)
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t capacity = 0;
    struct sigaction previous = {};
    bool handlerInstalled = false;
};

namespace
{

/** The handler's one route to the sample buffer.  Written only while
 *  no timer is armed (start/stop), read inside the handler. */
std::atomic<SamplingProfiler::Impl *> activeImpl{nullptr};

extern "C" void
critics_sigprof_handler(int)
{
    SamplingProfiler::Impl *impl =
        activeImpl.load(std::memory_order_acquire);
    if (impl == nullptr)
        return;
    const std::uint32_t slot =
        impl->next.fetch_add(1, std::memory_order_relaxed);
    if (slot >= impl->capacity) {
        impl->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Sample &sample = impl->samples[slot];
    sample.stage = detail::tlsStage;
    // backtrace() is not on the POSIX async-signal-safe list, but its
    // only unsafe behaviour is the lazy dlopen of libgcc on first use —
    // start() warms it on the normal path before arming the timer, so
    // every in-handler call is a pure stack walk.
    // NOLINTNEXTLINE(bugprone-signal-handler)
    sample.depth = backtrace(sample.frames, kMaxFrames);
}

std::string
demangled(const char *name)
{
    int status = 0;
    char *pretty = abi::__cxa_demangle(name, nullptr, nullptr, &status);
    if (status != 0 || pretty == nullptr) {
        std::free(pretty);
        return name;
    }
    std::string result(pretty);
    std::free(pretty);
    return result;
}

/** Innermost application frame of one sample, or "??" when nothing
 *  past the trampoline resolves (static functions without export). */
std::string
topSymbol(const Sample &sample)
{
    const int begin = std::min<std::int32_t>(kSkipFrames, sample.depth);
    for (int i = begin; i < sample.depth; ++i) {
        Dl_info info{};
        if (dladdr(sample.frames[i], &info) != 0 &&
            info.dli_sname != nullptr) {
            return demangled(info.dli_sname);
        }
    }
    return "??";
}

} // namespace

SamplingProfiler::SamplingProfiler(ProfilerOptions options)
    : options_(options), impl_(new Impl)
{
    if (options_.intervalUsec == 0)
        options_.intervalUsec = 1;
}

SamplingProfiler::~SamplingProfiler()
{
    stop();
    delete impl_;
}

bool
SamplingProfiler::start()
{
    if (running_)
        return true;
    impl_->samples.resize(options_.maxSamples);
    impl_->capacity = options_.maxSamples;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->dropped.store(0, std::memory_order_relaxed);

    // Warm backtrace(): its first call may lazily load libgcc, which
    // allocates — do that now, on the normal path, not in the handler.
    void *warm[4];
    backtrace(warm, 4);

    SamplingProfiler::Impl *expected = nullptr;
    if (!activeImpl.compare_exchange_strong(expected, impl_)) {
        critics_warn("profiler: another profiler is already active; "
                     "--profile ignored");
        return false;
    }

    struct sigaction action = {};
    action.sa_handler = critics_sigprof_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    if (sigaction(SIGPROF, &action, &impl_->previous) != 0) {
        activeImpl.store(nullptr, std::memory_order_release);
        critics_warn("profiler: sigaction(SIGPROF) failed");
        return false;
    }
    impl_->handlerInstalled = true;

    itimerval timer = {};
    timer.it_interval.tv_sec =
        static_cast<time_t>(options_.intervalUsec / 1000000);
    timer.it_interval.tv_usec =
        static_cast<suseconds_t>(options_.intervalUsec % 1000000);
    timer.it_value = timer.it_interval;
    if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
        sigaction(SIGPROF, &impl_->previous, nullptr);
        impl_->handlerInstalled = false;
        activeImpl.store(nullptr, std::memory_order_release);
        critics_warn("profiler: setitimer(ITIMER_PROF) failed");
        return false;
    }
    running_ = true;
    return true;
}

void
SamplingProfiler::stop()
{
    if (!running_)
        return;
    itimerval off = {};
    setitimer(ITIMER_PROF, &off, nullptr);
    if (impl_->handlerInstalled) {
        sigaction(SIGPROF, &impl_->previous, nullptr);
        impl_->handlerInstalled = false;
    }
    activeImpl.store(nullptr, std::memory_order_release);
    running_ = false;
}

std::uint32_t
SamplingProfiler::sampleCount() const
{
    return std::min(impl_->next.load(std::memory_order_relaxed),
                    impl_->capacity);
}

std::uint64_t
SamplingProfiler::droppedCount() const
{
    return impl_->dropped.load(std::memory_order_relaxed);
}

std::string
SamplingProfiler::reportJson() const
{
    const std::uint32_t count = sampleCount();

    std::uint64_t stageCounts[kStageCount] = {};
    std::map<std::string, std::uint64_t> flat;
    for (std::uint32_t i = 0; i < count; ++i) {
        const Sample &sample = impl_->samples[i];
        const std::uint8_t stage =
            sample.stage < kStageCount ? sample.stage : 0;
        ++stageCounts[stage];
        ++flat[topSymbol(sample)];
    }
    const std::uint64_t attributed =
        count - stageCounts[static_cast<std::size_t>(Stage::None)];

    std::vector<std::pair<std::string, std::uint64_t>> rows(flat.begin(),
                                                            flat.end());
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });

    json::JsonWriter w;
    w.beginObject()
        .field("schema", "critics-profile-v1")
        .field("intervalUsec", options_.intervalUsec)
        .field("samples", static_cast<std::uint64_t>(count))
        .field("dropped", droppedCount())
        .fieldReadable("attributedFraction",
                       count > 0 ? static_cast<double>(attributed) /
                                       static_cast<double>(count)
                                 : 0.0);
    w.beginObject("stages");
    for (std::size_t s = 0; s < kStageCount; ++s)
        w.field(stageName(static_cast<Stage>(s)), stageCounts[s]);
    w.endObject();
    w.beginArray("flat");
    for (const auto &[symbol, samples] : rows) {
        w.elementObject()
            .field("symbol", symbol)
            .field("samples", samples)
            .fieldReadable("fraction",
                           count > 0 ? static_cast<double>(samples) /
                                           static_cast<double>(count)
                                     : 0.0)
            .endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
SamplingProfiler::writeReport(const std::string &path) const
{
    FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        critics_warn("profiler: cannot write ", path);
        return false;
    }
    const std::string json = reportJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), out) ==
                        json.size() &&
                    std::fputc('\n', out) != EOF;
    std::fclose(out);
    return ok;
}

bool
printProfileReport(const std::string &json, std::size_t topN)
{
    const auto doc = json::parseJson(json);
    if (!doc || !doc->isObject()) {
        critics_warn("prof: report is not a JSON object");
        return false;
    }
    const auto *schema = doc->find("schema");
    const auto schemaText = schema ? schema->asString() : std::nullopt;
    if (!schemaText || *schemaText != "critics-profile-v1") {
        critics_warn("prof: not a critics-profile-v1 report");
        return false;
    }
    const std::uint64_t samples =
        doc->find("samples") ? doc->find("samples")->asUint().value_or(0)
                             : 0;
    const std::uint64_t dropped =
        doc->find("dropped") ? doc->find("dropped")->asUint().value_or(0)
                             : 0;
    const double attributed =
        doc->find("attributedFraction")
            ? doc->find("attributedFraction")->asDouble().value_or(0.0)
            : 0.0;
    std::printf("profile: %llu samples (%llu dropped), %.1f%% attributed "
                "to pipeline stages\n",
                static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(dropped),
                attributed * 100.0);

    const auto *stages = doc->find("stages");
    if (stages != nullptr && stages->isObject()) {
        std::vector<std::pair<std::string, std::uint64_t>> rows;
        for (const auto &[name, value] : stages->members)
            rows.emplace_back(name, value.asUint().value_or(0));
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        std::printf("\n%-12s %10s %7s\n", "stage", "samples", "share");
        for (const auto &[name, value] : rows) {
            if (value == 0)
                continue;
            std::printf("%-12s %10llu %6.1f%%\n", name.c_str(),
                        static_cast<unsigned long long>(value),
                        samples > 0 ? 100.0 * static_cast<double>(value) /
                                          static_cast<double>(samples)
                                    : 0.0);
        }
    }

    const auto *flat = doc->find("flat");
    if (flat != nullptr && flat->isArray()) {
        std::printf("\n%-56s %10s %7s\n", "symbol", "samples", "share");
        std::size_t shown = 0;
        for (const auto &row : flat->elements) {
            if (shown++ >= topN)
                break;
            const auto *symbol = row.find("symbol");
            const auto *n = row.find("samples");
            std::string name =
                symbol ? symbol->asString().value_or("??") : "??";
            if (name.size() > 56)
                name = name.substr(0, 53) + "...";
            const std::uint64_t value = n ? n->asUint().value_or(0) : 0;
            std::printf("%-56s %10llu %6.1f%%\n", name.c_str(),
                        static_cast<unsigned long long>(value),
                        samples > 0 ? 100.0 * static_cast<double>(value) /
                                          static_cast<double>(samples)
                                    : 0.0);
        }
    }
    return true;
}

} // namespace critics::obs
