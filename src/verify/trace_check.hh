/**
 * @file
 * Dynamic-trace conformance: replay a Trace against the static Program
 * that (supposedly) produced it and prove the two agree — the check the
 * paper's criticality argument rests on, since chains mined from a
 * trace are only meaningful when the trace is faithful to the program.
 *
 * The replay mirrors walkProgram/emitTrace exactly: traces are whole
 * blocks in visit order, every inter-block transition must follow the
 * tail terminator's flow (with a call stack inferred from the observed
 * callee entries, so depth-guard-skipped calls replay too), and each
 * conditional branch's observed taken frequency must sit inside a
 * documented confidence bound of its synthesized takenBias.
 *
 * The bias bound (DESIGN.md §11): flag a site when
 *     |taken − n·p| > sigma·sqrt(n·p·(1−p)) + 1
 * with sigma = 6 and a +1 continuity correction, tested only once the
 * site has minBranchSamples observations.  At sigma = 6 the per-site
 * false-positive rate is ~2e-9, so a full 26-app × 16-variant sweep
 * (~5e4 sites) stays clean with overwhelming probability while a
 * mis-wired bias (0.5 emitted where 0.96 was declared) is caught from
 * a few dozen samples.
 *
 * Diagnostics (all Error severity, stable dotted codes):
 *   - verify.trace.unknown-uid     — a uid executes that the program
 *                                    doesn't contain
 *   - verify.trace.block-diverged  — a block's dynamic instruction
 *                                    sequence diverges from its static
 *                                    body
 *   - verify.trace.bad-target      — a transition lands on a block the
 *                                    terminator cannot reach
 *   - verify.trace.bias-skew       — observed taken frequency outside
 *                                    the confidence bound of takenBias
 *   - verify.trace.bias-unknown    — a branch carries a takenBias not
 *                                    in the synthesizer's vocabulary
 *
 * Limitations: empty basic blocks leave no evidence in a trace, so the
 * replay cannot check them (the synthesizer never emits one, and the
 * structural verifier owns static well-formedness).
 */

#ifndef CRITICS_VERIFY_TRACE_CHECK_HH
#define CRITICS_VERIFY_TRACE_CHECK_HH

#include <cstdint>
#include <vector>

#include "program/program.hh"
#include "program/trace.hh"
#include "verify/diagnostics.hh"

namespace critics::verify
{

struct TraceCheckOptions
{
    /** Bias-test width in standard deviations (see file header). */
    double sigma = 6.0;
    /** Branch sites with fewer observations than this are not
     *  bias-tested (the bound is meaningless at tiny n). */
    std::uint64_t minBranchSamples = 32;
    /** Legal takenBias values (workload::branchBiasVocabulary).
     *  Empty disables the vocabulary check. */
    std::vector<float> biasVocabulary;
};

struct TraceCheckStats
{
    std::uint64_t blocksReplayed = 0;
    std::uint64_t transitionsChecked = 0;
    std::uint64_t branchSitesTested = 0;
    /** True when the replay finished without an error finding; the
     *  bias tests run only on a conformant replay (frequencies mean
     *  nothing once the control flow itself is wrong). */
    bool conformant = false;
};

/**
 * Replay `trace` against `prog`; findings go to `report`.  Replay
 * stops at the first hard error (everything after a divergence is
 * noise).  Pure observation: neither input is mutated.
 */
TraceCheckStats checkTraceConformance(const program::Program &prog,
                                      const program::Trace &trace,
                                      Report &report,
                                      const TraceCheckOptions &options = {});

} // namespace critics::verify

#endif // CRITICS_VERIFY_TRACE_CHECK_HH
