#include "verify/dataflow.hh"

#include <array>
#include <string>

#include "isa/isa.hh"

namespace critics::verify
{

using program::BasicBlock;
using program::InstUid;
using program::Program;
using program::StaticInst;
using isa::Format;

namespace
{

/** Scan one block recording each instruction's source producers. */
template <typename Fn>
void
scanBlock(const BasicBlock &block, Fn &&record)
{
    std::array<InstUid, isa::NumArchRegs> lastWriter;
    lastWriter.fill(program::NoUid);
    for (const StaticInst &si : block.insts) {
        DataflowSnapshot::InstDf df;
        const std::uint8_t srcs[2] = {si.arch.src1, si.arch.src2};
        for (int s = 0; s < 2; ++s) {
            if (srcs[s] == isa::NoReg)
                continue;
            df.hasSrc[s] = true;
            df.src[s].reg = srcs[s];
            const InstUid writer = lastWriter[srcs[s]];
            df.src[s].external = writer == program::NoUid;
            df.src[s].uid = writer;
        }
        record(si, df);
        if (si.arch.dst != isa::NoReg)
            lastWriter[si.arch.dst] = si.uid;
    }
}

std::string
describeRef(const ProducerRef &ref)
{
    if (ref.external) {
        return "live-in r" + std::to_string(
            static_cast<unsigned>(ref.reg));
    }
    return "uid " + std::to_string(ref.uid);
}

} // namespace

void
DataflowSnapshot::capture(const Program &prog)
{
    insts.clear();
    for (std::uint32_t f = 0; f < prog.funcs.size(); ++f) {
        for (std::uint32_t b = 0; b < prog.funcs[f].blocks.size();
             ++b) {
            scanBlock(prog.funcs[f].blocks[b],
                      [&](const StaticInst &si, InstDf df) {
                          df.func = f;
                          df.block = b;
                          insts[si.uid] = df;
                      });
        }
    }
}

void
verifyDataflow(const DataflowSnapshot &pre, const Program &post,
               Report &report)
{
    // Post-pass facts, including inserted instructions (needed to
    // resolve values routed through mov-expansions).
    DataflowSnapshot now;
    now.capture(post);

    // Resolve a post-pass producer through any chain of *inserted*
    // instructions: an inserted mov forwards its src1's value, so the
    // effective producer is the mov's own src1 producer, transitively.
    auto resolve = [&](ProducerRef ref) {
        std::size_t hops = 0;
        while (!ref.external && pre.insts.find(ref.uid) ==
               pre.insts.end()) {
            const auto it = now.insts.find(ref.uid);
            if (it == now.insts.end() || !it->second.hasSrc[0] ||
                ++hops > 64) {
                break; // leave unresolved; the compare below reports it
            }
            ref = it->second.src[0];
        }
        return ref;
    };

    for (const auto &[uid, before] : pre.insts) {
        const auto it = now.insts.find(uid);
        if (it == now.insts.end()) {
            report.report(Severity::Error,
                          "verify.dataflow.uid-vanished",
                          "uid " + std::to_string(uid) +
                              " (f" + std::to_string(before.func) +
                              "/b" + std::to_string(before.block) +
                              ") vanished from the program");
            continue;
        }
        const auto &after = it->second;
        if (after.func != before.func || after.block != before.block) {
            report.report(Severity::Error, "verify.dataflow.uid-moved",
                          "uid " + std::to_string(uid) + " moved f" +
                              std::to_string(before.func) + "/b" +
                              std::to_string(before.block) + " -> f" +
                              std::to_string(after.func) + "/b" +
                              std::to_string(after.block));
            continue;
        }
        for (int s = 0; s < 2; ++s) {
            if (!before.hasSrc[s]) {
                // Passes never grow an instruction's operand list.
                continue;
            }
            if (!after.hasSrc[s]) {
                report.report(Severity::Error,
                              "verify.dataflow.raw-broken",
                              "uid " + std::to_string(uid) + " src" +
                                  std::to_string(s + 1) +
                                  " operand vanished");
                continue;
            }
            const ProducerRef resolved = resolve(after.src[s]);
            if (resolved == before.src[s])
                continue;
            if (!before.src[s].external && resolved.external) {
                report.report(
                    Severity::Error, "verify.dataflow.use-before-def",
                    "uid " + std::to_string(uid) + " src" +
                        std::to_string(s + 1) + " read " +
                        describeRef(before.src[s]) +
                        " before the pass but its def no longer "
                        "dominates (now " + describeRef(resolved) +
                        ")");
            } else {
                report.report(
                    Severity::Error, "verify.dataflow.raw-broken",
                    "uid " + std::to_string(uid) + " src" +
                        std::to_string(s + 1) + " producer changed: " +
                        describeRef(before.src[s]) + " -> " +
                        describeRef(resolved));
            }
        }
    }
}

void
verifyChainsContiguous(
    const Program &prog,
    const std::vector<std::vector<InstUid>> &chains, Report &report)
{
    for (const auto &chain : chains) {
        if (chain.size() < 2)
            continue;
        if (!prog.contains(chain.front())) {
            report.report(Severity::Error,
                          "verify.dataflow.chain-split",
                          "chain head uid " +
                              std::to_string(chain.front()) +
                              " is not in the program");
            continue;
        }
        const program::InstLoc head = prog.locate(chain.front());
        const BasicBlock &block =
            prog.funcs[head.func].blocks[head.block];
        bool broken = false;
        std::size_t member = 0;
        for (std::size_t i = head.index;
             i < block.insts.size() && member < chain.size(); ++i) {
            const StaticInst &si = block.insts[i];
            if (si.uid == chain[member]) {
                ++member;
                continue;
            }
            // Only the format switches themselves may interleave: a
            // CDP chaining two sub-runs of a long chain.
            if (si.isCdp())
                continue;
            broken = true;
            break;
        }
        if (broken || member != chain.size()) {
            report.reportAt(
                Severity::Error, "verify.dataflow.chain-split", prog,
                head.func, head.block,
                static_cast<std::uint32_t>(head.index),
                "transformed chain of " + std::to_string(chain.size()) +
                    " is no longer contiguous (matched " +
                    std::to_string(member) + " member(s) from uid " +
                    std::to_string(chain.front()) + ")");
        }
    }
}

void
lintAdvisories(const Program &prog, Report &report, unsigned minRun)
{
    for (std::uint32_t f = 0; f < prog.funcs.size(); ++f) {
        for (std::uint32_t b = 0; b < prog.funcs[f].blocks.size();
             ++b) {
            const auto &insts = prog.funcs[f].blocks[b].insts;
            std::size_t runStart = 0, runLen = 0;
            auto flushRun = [&](std::size_t end) {
                if (runLen >= minRun) {
                    report.reportAt(
                        Severity::Advice,
                        "verify.lint.unconverted-run", prog, f, b,
                        static_cast<std::uint32_t>(runStart),
                        std::to_string(runLen) +
                            " directly convertible instructions left "
                            "in 32-bit form");
                }
                runStart = end + 1;
                runLen = 0;
            };
            for (std::size_t i = 0; i < insts.size(); ++i) {
                const StaticInst &si = insts[i];
                if (si.isCdp() && si.cdpRun < 2) {
                    report.reportAt(Severity::Advice,
                                    "verify.lint.dead-switch", prog, f,
                                    b, static_cast<std::uint32_t>(i),
                                    "CDP switch covers a run of " +
                                        std::to_string(si.cdpRun) +
                                        ": the 32-bit switch word "
                                        "costs more than it saves");
                }
                const bool convertible =
                    si.format == Format::Arm32 && !si.isCdp() &&
                    !si.isControl() &&
                    isa::thumbDirectlyConvertible(si.arch);
                if (convertible) {
                    if (runLen == 0)
                        runStart = i;
                    ++runLen;
                } else {
                    flushRun(i);
                }
            }
            flushRun(insts.size());
        }
    }
}

} // namespace critics::verify
