#include "verify/diagnostics.hh"

#include <algorithm>
#include <sstream>

#include "program/printer.hh"
#include "support/json.hh"

namespace critics::verify
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      case Severity::Advice:
        return "advice";
    }
    return "?";
}

std::string
Diagnostic::render() const
{
    std::ostringstream os;
    os << severityName(severity) << ' ' << code;
    if (located) {
        os << " at f" << func << "/b" << block << "/i" << index;
        if (uid != program::NoUid)
            os << " uid " << uid;
    }
    os << ": " << message;
    if (!where.empty())
        os << "\n    " << where;
    return os.str();
}

void
Report::add(Diagnostic diag)
{
    switch (diag.severity) {
      case Severity::Error:
        ++errors_;
        break;
      case Severity::Warning:
        ++warnings_;
        break;
      case Severity::Advice:
        ++advice_;
        break;
    }
    const std::size_t seen = ++counts_[diag.code];
    if (seen > MaxStoredPerCode) {
        ++suppressed_;
        return;
    }
    diags_.push_back(std::move(diag));
}

void
Report::report(Severity severity, std::string code, std::string message)
{
    Diagnostic d;
    d.severity = severity;
    d.code = std::move(code);
    d.message = std::move(message);
    add(std::move(d));
}

void
Report::reportAt(Severity severity, std::string code,
                 const program::Program &prog, std::uint32_t fn,
                 std::uint32_t blk, std::uint32_t idx,
                 std::string message)
{
    Diagnostic d;
    d.severity = severity;
    d.code = std::move(code);
    d.message = std::move(message);
    d.located = true;
    d.func = fn;
    d.block = blk;
    d.index = idx;
    const auto &block = prog.funcs[fn].blocks[blk];
    if (idx < block.insts.size()) {
        d.uid = block.insts[idx].uid;
        d.where = prog.funcs[fn].name + ": " +
                  program::formatInst(block.insts[idx]);
    }
    add(std::move(d));
}

std::size_t
Report::countOf(const std::string &code) const
{
    const auto it = counts_.find(code);
    return it == counts_.end() ? 0 : it->second;
}

std::string
Report::render(std::size_t maxLines) const
{
    // Errors first, then warnings, then advice, preserving insertion
    // order inside each severity.
    std::vector<const Diagnostic *> ordered;
    ordered.reserve(diags_.size());
    for (const auto sev :
         {Severity::Error, Severity::Warning, Severity::Advice}) {
        for (const auto &d : diags_)
            if (d.severity == sev)
                ordered.push_back(&d);
    }
    std::ostringstream os;
    os << errors_ << " error(s), " << warnings_ << " warning(s), "
       << advice_ << " advisory(ies)";
    const std::size_t shown = std::min(maxLines, ordered.size());
    for (std::size_t i = 0; i < shown; ++i)
        os << '\n' << ordered[i]->render();
    const std::size_t hidden = ordered.size() - shown + suppressed_;
    if (hidden > 0)
        os << '\n' << "... " << hidden << " more finding(s) not shown";
    return os.str();
}

void
Report::writeJson(json::JsonWriter &w, std::size_t maxFindings) const
{
    w.field("errors", static_cast<std::uint64_t>(errors_));
    w.field("warnings", static_cast<std::uint64_t>(warnings_));
    w.field("advice", static_cast<std::uint64_t>(advice_));
    w.beginObject("codes");
    for (const auto &[code, count] : counts_)
        w.field(code.c_str(), static_cast<std::uint64_t>(count));
    w.endObject();
    w.beginArray("findings");
    std::size_t written = 0;
    for (const auto sev :
         {Severity::Error, Severity::Warning, Severity::Advice}) {
        for (const auto &d : diags_) {
            if (d.severity != sev || written >= maxFindings)
                continue;
            ++written;
            w.elementObject()
                .field("severity", severityName(d.severity))
                .field("code", d.code)
                .field("message", d.message);
            if (d.located) {
                w.field("func", static_cast<std::uint64_t>(d.func))
                    .field("block", static_cast<std::uint64_t>(d.block))
                    .field("index", static_cast<std::uint64_t>(d.index));
                if (d.uid != program::NoUid)
                    w.field("uid", static_cast<std::uint64_t>(d.uid));
                if (!d.where.empty())
                    w.field("where", d.where);
            }
            w.endObject();
        }
    }
    w.endArray();
}

} // namespace critics::verify
