#include "verify/structural.hh"

#include <sstream>
#include <unordered_set>

#include "isa/isa.hh"

namespace critics::verify
{

using program::FlowKind;
using program::MemPattern;
using program::Program;
using program::StaticInst;
using isa::Format;
using isa::OpClass;

namespace
{

/** Expected op class of a terminator flow kind; Nop = no constraint. */
OpClass
expectedFlowOp(FlowKind flow)
{
    switch (flow) {
      case FlowKind::CondBranch:
      case FlowKind::Jump:
        return OpClass::Branch;
      case FlowKind::CallFn:
        return OpClass::Call;
      case FlowKind::Ret:
        return OpClass::Return;
      case FlowKind::FallThrough:
        break;
    }
    return OpClass::Nop;
}

std::string
regName(std::uint8_t reg)
{
    return "r" + std::to_string(static_cast<unsigned>(reg));
}

/** True for the decoder-visible format-switch branches the branch-pair
 *  mode inserts: a Branch op that transfers no control. */
bool
isSwitchBranch(const StaticInst &si)
{
    return si.arch.op == OpClass::Branch &&
           si.flow == FlowKind::FallThrough;
}

class StructuralChecker
{
  public:
    StructuralChecker(const Program &prog, Report &report,
                      const StructuralOptions &options)
        : prog_(prog), report_(report), options_(options)
    {
    }

    void
    run()
    {
        checkIndirectTables();
        for (std::uint32_t f = 0; f < prog_.funcs.size(); ++f)
            for (std::uint32_t b = 0;
                 b < prog_.funcs[f].blocks.size(); ++b)
                checkBlock(f, b);
    }

  private:
    void
    error(std::string code, std::uint32_t f, std::uint32_t b,
          std::uint32_t i, std::string msg)
    {
        report_.reportAt(Severity::Error, std::move(code), prog_, f, b,
                         i, std::move(msg));
    }

    void
    checkIndirectTables()
    {
        for (std::size_t t = 0; t < prog_.indirectTables.size(); ++t) {
            const auto &table = prog_.indirectTables[t];
            if (table.callees.empty()) {
                report_.report(Severity::Error,
                               "verify.struct.indirect-table-range",
                               "indirect table " + std::to_string(t) +
                                   " has no callees");
                continue;
            }
            if (table.weights.size() != table.callees.size()) {
                report_.report(Severity::Error,
                               "verify.struct.indirect-table-range",
                               "indirect table " + std::to_string(t) +
                                   " weight/callee count mismatch");
            }
            for (const std::uint32_t callee : table.callees) {
                if (callee >= prog_.funcs.size()) {
                    report_.report(
                        Severity::Error,
                        "verify.struct.indirect-table-range",
                        "indirect table " + std::to_string(t) +
                            " callee " + std::to_string(callee) +
                            " out of range (" +
                            std::to_string(prog_.funcs.size()) +
                            " functions)");
                }
            }
        }
    }

    void
    checkRegisters(const StaticInst &si, std::uint32_t f,
                   std::uint32_t b, std::uint32_t i)
    {
        const auto &arch = si.arch;
        for (const std::uint8_t reg : {arch.dst, arch.src1, arch.src2}) {
            if (reg != isa::NoReg && reg >= isa::NumArchRegs) {
                error("verify.struct.reg-range", f, b, i,
                      "operand " + regName(reg) +
                          " outside the architected register file");
            }
        }
        if (si.format != Format::Thumb16 || si.isCdp())
            return;

        // Thumb encodability.  CDPs are exempt above: the switch
        // command has its own encoding with no register operands.
        const Severity sev =
            options_.idealThumb ? Severity::Advice : Severity::Error;
        if (arch.predicated) {
            report_.reportAt(sev, "verify.struct.thumb-predicated",
                             prog_, f, b, i,
                             "predicated instruction in 16-bit format");
        }
        if (!isa::hasThumbEncoding(arch.op)) {
            report_.reportAt(sev, "verify.struct.thumb-op", prog_, f, b,
                             i,
                             std::string(isa::opClassName(arch.op)) +
                                 " has no 16-bit encoding");
        }
        if (arch.dst != isa::NoReg && arch.dst > isa::ThumbMaxDstReg) {
            report_.reportAt(sev, "verify.struct.thumb-reg-range",
                             prog_, f, b, i,
                             "16-bit destination " + regName(arch.dst) +
                                 " above r" +
                                 std::to_string(isa::ThumbMaxDstReg));
        }
        for (const std::uint8_t src : {arch.src1, arch.src2}) {
            if (src != isa::NoReg && src > isa::ThumbMaxSrcReg) {
                report_.reportAt(sev, "verify.struct.thumb-reg-range",
                                 prog_, f, b, i,
                                 "16-bit source " + regName(src) +
                                     " above r" +
                                     std::to_string(
                                         isa::ThumbMaxSrcReg));
            }
        }
    }

    void
    checkFlow(const StaticInst &si, std::uint32_t f, std::uint32_t b,
              std::uint32_t i, bool isTail)
    {
        if (si.flow == FlowKind::FallThrough)
            return;
        if (!isTail) {
            error("verify.struct.flow-mid-block", f, b, i,
                  "control transfer before the block tail");
        }
        const OpClass expect = expectedFlowOp(si.flow);
        if (expect != OpClass::Nop && si.arch.op != expect) {
            error("verify.struct.flow-op-mismatch", f, b, i,
                  std::string("terminator op is ") +
                      isa::opClassName(si.arch.op) + ", expected " +
                      isa::opClassName(expect));
        }
        const auto &fn = prog_.funcs[f];
        if ((si.flow == FlowKind::CondBranch ||
             si.flow == FlowKind::Jump) &&
            si.targetBlock >= fn.blocks.size()) {
            error("verify.struct.target-block-range", f, b, i,
                  "branch target block " +
                      std::to_string(si.targetBlock) + " of " +
                      std::to_string(fn.blocks.size()));
        }
        if (si.flow == FlowKind::CallFn) {
            if (si.indirectTable != program::NoTable) {
                if (si.indirectTable >= prog_.indirectTables.size()) {
                    error("verify.struct.indirect-table-range", f, b, i,
                          "indirect table index " +
                              std::to_string(si.indirectTable) +
                              " of " +
                              std::to_string(
                                  prog_.indirectTables.size()));
                }
            } else if (si.targetFunc >= prog_.funcs.size()) {
                error("verify.struct.target-func-range", f, b, i,
                      "call target function " +
                          std::to_string(si.targetFunc) + " of " +
                          std::to_string(prog_.funcs.size()));
            }
        }
    }

    void
    checkMemMeta(const StaticInst &si, std::uint32_t f, std::uint32_t b,
                 std::uint32_t i)
    {
        const bool isMem = si.isLoad() || si.isStore();
        if (!isMem) {
            if (si.memPattern != MemPattern::None) {
                error("verify.struct.mem-meta", f, b, i,
                      "memory pattern on a non-memory instruction");
            }
            return;
        }
        if (si.memPattern == MemPattern::None) {
            report_.reportAt(Severity::Warning,
                             "verify.struct.mem-meta", prog_, f, b, i,
                             "load/store without a memory pattern");
            return;
        }
        if (si.memRegionId >= prog_.memRegions.size()) {
            error("verify.struct.mem-region-range", f, b, i,
                  "memory region " + std::to_string(si.memRegionId) +
                      " of " + std::to_string(prog_.memRegions.size()));
        }
    }

    void
    checkBlock(std::uint32_t f, std::uint32_t b)
    {
        const auto &insts = prog_.funcs[f].blocks[b].insts;
        // CDP coverage: index one past the last instruction the active
        // switch covers; branch-pair state: inside an open 16-bit
        // region.
        std::size_t cdpCoverEnd = 0;
        bool inBranchRegion = false;
        std::uint32_t regionOpen = 0;

        for (std::uint32_t i = 0; i < insts.size(); ++i) {
            const StaticInst &si = insts[i];

            if (si.uid == program::NoUid) {
                error("verify.struct.uid-missing", f, b, i,
                      "instruction without a uid");
            } else if (!seenUids_.insert(si.uid).second) {
                error("verify.struct.uid-dup", f, b, i,
                      "uid " + std::to_string(si.uid) +
                          " appears more than once");
            }

            checkRegisters(si, f, b, i);
            checkFlow(si, f, b, i, i + 1 == insts.size());
            checkMemMeta(si, f, b, i);

            // ---- CDP switch coverage --------------------------------
            if (si.isCdp()) {
                if (i < cdpCoverEnd) {
                    error("verify.struct.cdp-nested", f, b, i,
                          "CDP switch inside another switch's run");
                }
                if (si.cdpRun < 1 || si.cdpRun > isa::MaxCdpRun) {
                    error("verify.struct.cdp-run-range", f, b, i,
                          "CDP run " + std::to_string(si.cdpRun) +
                              " outside [1, " +
                              std::to_string(isa::MaxCdpRun) + "]");
                } else if (i + si.cdpRun >= insts.size()) {
                    error("verify.struct.cdp-overrun", f, b, i,
                          "CDP run of " + std::to_string(si.cdpRun) +
                              " dangles past the block end");
                } else {
                    cdpCoverEnd = i + 1 + si.cdpRun;
                }
            } else {
                if (si.cdpRun != 0) {
                    error("verify.struct.cdp-run-range", f, b, i,
                          "cdpRun set on a non-CDP instruction");
                }
                if (i < cdpCoverEnd && si.format != Format::Thumb16) {
                    error("verify.struct.cdp-covers-arm", f, b, i,
                          "32-bit instruction inside a CDP 16-bit run");
                }
            }

            // ---- Branch-pair switch pairing -------------------------
            if (isSwitchBranch(si)) {
                if (si.format == Format::Arm32) {
                    if (inBranchRegion) {
                        error("verify.struct.switch-unpaired", f, b, i,
                              "32-bit switch branch inside the region "
                              "opened at i" +
                                  std::to_string(regionOpen));
                    }
                    inBranchRegion = true;
                    regionOpen = i;
                } else {
                    if (!inBranchRegion) {
                        error("verify.struct.switch-unpaired", f, b, i,
                              "closing switch branch without an "
                              "opening one");
                    }
                    inBranchRegion = false;
                }
            } else if (inBranchRegion && si.format != Format::Thumb16) {
                error("verify.struct.switch-covers-arm", f, b, i,
                      "32-bit instruction inside a branch-pair 16-bit "
                      "region");
            }
        }
        if (inBranchRegion) {
            error("verify.struct.switch-unpaired", f, b, regionOpen,
                  "switch region still open at the block end");
        }
    }

    const Program &prog_;
    Report &report_;
    StructuralOptions options_;
    std::unordered_set<program::InstUid> seenUids_;
};

} // namespace

void
verifyStructure(const Program &prog, Report &report,
                const StructuralOptions &options)
{
    StructuralChecker(prog, report, options).run();
}

} // namespace critics::verify
