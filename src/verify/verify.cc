#include "verify/verify.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "stats/registry.hh"
#include "support/logging.hh"

namespace critics::verify
{

Level
levelFromEnv()
{
    const char *value = std::getenv("CRITICS_VERIFY");
    if (value == nullptr || *value == '\0')
        return Level::Structural;
    if (std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0)
        return Level::Off;
    if (std::strcmp(value, "struct") == 0 ||
        std::strcmp(value, "structural") == 0 ||
        std::strcmp(value, "1") == 0) {
        return Level::Structural;
    }
    if (std::strcmp(value, "full") == 0 || std::strcmp(value, "2") == 0)
        return Level::Full;
    if (std::strcmp(value, "global") == 0 ||
        std::strcmp(value, "3") == 0) {
        return Level::Global;
    }
    static std::once_flag warned;
    std::call_once(warned, [value] {
        critics_warn("unknown CRITICS_VERIFY value '", value,
                     "' (want off|structural|full|global); "
                     "using structural");
    });
    return Level::Structural;
}

Counters &
counters()
{
    static Counters instance;
    return instance;
}

void
registerStats(stats::StatRegistry &reg)
{
    Counters &c = counters();
    const auto bind = [&reg](const char *name,
                             const std::atomic<std::uint64_t> &v,
                             const char *desc) {
        reg.addFormula(name,
                       [&v] {
                           return static_cast<double>(
                               v.load(std::memory_order_relaxed));
                       },
                       desc);
    };
    bind("verify.structChecks", c.structuralChecks,
         "structural pass post-condition walks");
    bind("verify.fullChecks", c.fullChecks,
         "differential dataflow verifications");
    bind("verify.globalChecks", c.globalChecks,
         "whole-program CFG differential verifications");
    bind("verify.errors", c.errors, "error-severity findings");
    bind("verify.warnings", c.warnings, "warning-severity findings");
    bind("verify.advisories", c.advisories, "advisory lint findings");
}

PassVerifier::PassVerifier(const char *passName,
                           const program::Program &prog,
                           PassAudit *audit)
    : name_(passName),
      audit_(audit),
      level_(audit ? audit->level : levelFromEnv())
{
    if (audit_) {
        // The audit's report may already hold findings from earlier
        // passes (opp16+critic shares one); count only our deltas.
        baseErrors_ = audit_->report.errors();
        baseWarnings_ = audit_->report.warnings();
        baseAdvice_ = audit_->report.advice();
    }
    if (level_ >= Level::Full)
        pre_.capture(prog);
    if (level_ == Level::Global)
        preGlobal_.capture(prog);
}

Report *
PassVerifier::sink()
{
    return audit_ ? &audit_->report : nullptr;
}

void
PassVerifier::noteTransformedChain(
    const std::vector<program::InstUid> &chain)
{
    if (level_ >= Level::Full)
        chains_.push_back(chain);
}

void
PassVerifier::finish(const program::Program &prog)
{
    if (level_ == Level::Off)
        return;

    Report local;
    Report &report = audit_ ? audit_->report : local;

    verifyStructure(prog, report, structural_);
    counters().structuralChecks.fetch_add(1, std::memory_order_relaxed);
    if (level_ >= Level::Full) {
        verifyDataflow(pre_, prog, report);
        verifyChainsContiguous(prog, chains_, report);
        counters().fullChecks.fetch_add(1, std::memory_order_relaxed);
    }
    if (level_ == Level::Global) {
        verifyCfg(prog, report);
        verifyGlobal(preGlobal_, prog, report);
        verifyChainLinks(preGlobal_, prog, chains_, report);
        counters().globalChecks.fetch_add(1, std::memory_order_relaxed);
    }

    // The deltas include the in-pass skip advisories the pass itself
    // reported through sink(); counting them here (once, at finish)
    // keeps the increment out of the per-chain hot path.
    Counters &c = counters();
    c.errors.fetch_add(report.errors() - baseErrors_,
                       std::memory_order_relaxed);
    c.warnings.fetch_add(report.warnings() - baseWarnings_,
                         std::memory_order_relaxed);
    c.advisories.fetch_add(report.advice() - baseAdvice_,
                           std::memory_order_relaxed);

    if (audit_) {
        audit_->transformedChains.insert(
            audit_->transformedChains.end(), chains_.begin(),
            chains_.end());
        return;
    }
    if (!report.clean()) {
        critics_panic("pass '", name_,
                      "' violated its post-conditions:\n",
                      report.render());
    }
}

} // namespace critics::verify
