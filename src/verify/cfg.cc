#include "verify/cfg.hh"

#include <algorithm>
#include <string>

namespace critics::verify
{

using program::BasicBlock;
using program::Function;
using program::InstUid;
using program::Program;
using program::StaticInst;

namespace
{

/** Merge `from` into sorted-unique `into`; true when `into` grew. */
bool
mergeSorted(std::vector<InstUid> &into, const std::vector<InstUid> &from)
{
    if (from.empty())
        return false;
    std::vector<InstUid> merged;
    merged.reserve(into.size() + from.size());
    std::set_union(into.begin(), into.end(), from.begin(), from.end(),
                   std::back_inserter(merged));
    if (merged.size() == into.size())
        return false;
    into = std::move(merged);
    return true;
}

std::string
regName(std::uint8_t reg)
{
    return "r" + std::to_string(static_cast<unsigned>(reg));
}

std::string
maskNames(RegMask mask)
{
    std::string out;
    for (std::uint8_t r = 0; r < isa::NumArchRegs; ++r) {
        if ((mask >> r) & 1u) {
            if (!out.empty())
                out += ",";
            out += regName(r);
        }
    }
    return out.empty() ? "-" : out;
}

std::string
describeDefs(const std::vector<InstUid> &defs)
{
    std::string out = "{";
    for (std::size_t i = 0; i < defs.size(); ++i) {
        if (i > 0)
            out += ",";
        out += defs[i] == program::NoUid ? std::string("entry")
                                         : std::to_string(defs[i]);
    }
    return out + "}";
}

} // namespace

Cfg::Cfg(const Program &prog)
{
    buildEdges(prog);
    markReachable();
    solveLiveness(prog);
    solveReaching(prog);
}

void
Cfg::buildEdges(const Program &prog)
{
    funcs_.resize(prog.funcs.size());
    for (std::uint32_t f = 0; f < prog.funcs.size(); ++f) {
        const Function &fn = prog.funcs[f];
        FunctionCfg &cfg = funcs_[f];
        cfg.blocks.resize(fn.blocks.size());
        for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
            cfg.blocks[b].succs = program::blockSuccessors(fn, b);
            cfg.blocks[b].exits = program::blockExitsFunction(fn, b);
            for (const std::uint32_t s : cfg.blocks[b].succs)
                cfg.blocks[s].preds.push_back(b);
        }
        for (CfgBlock &node : cfg.blocks) {
            std::sort(node.preds.begin(), node.preds.end());
            node.preds.erase(
                std::unique(node.preds.begin(), node.preds.end()),
                node.preds.end());
        }
    }
}

void
Cfg::markReachable()
{
    std::vector<std::uint32_t> work;
    for (FunctionCfg &cfg : funcs_) {
        if (cfg.blocks.empty())
            continue;
        work.clear();
        work.push_back(0);
        cfg.blocks[0].reachable = true;
        while (!work.empty()) {
            const std::uint32_t b = work.back();
            work.pop_back();
            for (const std::uint32_t s : cfg.blocks[b].succs) {
                if (!cfg.blocks[s].reachable) {
                    cfg.blocks[s].reachable = true;
                    work.push_back(s);
                }
            }
        }
    }
}

void
Cfg::solveLiveness(const Program &prog)
{
    for (std::uint32_t f = 0; f < prog.funcs.size(); ++f) {
        const Function &fn = prog.funcs[f];
        FunctionCfg &cfg = funcs_[f];

        // Per-block gen (use before def) and kill (def) masks.
        for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
            CfgBlock &node = cfg.blocks[b];
            for (const StaticInst &si : fn.blocks[b].insts) {
                for (const std::uint8_t src :
                     {si.arch.src1, si.arch.src2}) {
                    if (src < isa::NumArchRegs &&
                        ((node.def >> src) & 1u) == 0) {
                        node.use |= static_cast<RegMask>(1u << src);
                    }
                }
                if (si.arch.dst < isa::NumArchRegs)
                    node.def |= static_cast<RegMask>(1u << si.arch.dst);
            }
        }

        // Backward fixed point; the live-out of a function exit is
        // empty by definition (see the file header).
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::uint32_t b =
                     static_cast<std::uint32_t>(fn.blocks.size());
                 b-- > 0;) {
                CfgBlock &node = cfg.blocks[b];
                RegMask out = 0;
                for (const std::uint32_t s : node.succs)
                    out |= cfg.blocks[s].liveIn;
                const RegMask in = static_cast<RegMask>(
                    node.use | (out & static_cast<RegMask>(~node.def)));
                if (out != node.liveOut || in != node.liveIn) {
                    node.liveOut = out;
                    node.liveIn = in;
                    changed = true;
                }
            }
        }
    }
}

void
Cfg::solveReaching(const Program &prog)
{
    for (std::uint32_t f = 0; f < prog.funcs.size(); ++f) {
        const Function &fn = prog.funcs[f];
        FunctionCfg &cfg = funcs_[f];
        if (fn.blocks.empty())
            continue;

        // gen: the last def of each register inside the block (the only
        // def that can reach the block's exit).
        std::vector<std::array<InstUid, isa::NumArchRegs>> gen(
            fn.blocks.size());
        for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
            gen[b].fill(program::NoUid);
            for (const StaticInst &si : fn.blocks[b].insts) {
                if (si.arch.dst < isa::NumArchRegs)
                    gen[b][si.arch.dst] = si.uid;
            }
        }

        // The function entry sees the caller's values: one pseudo-def
        // (NoUid) per register.
        for (std::uint8_t r = 0; r < isa::NumArchRegs; ++r)
            cfg.blocks[0].reachIn[r].push_back(program::NoUid);

        // Forward fixed point: reachOut(B)[r] = gen(B)[r] when the
        // block defines r, else reachIn(B)[r]; reachIn is the union
        // over predecessors.
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
                CfgBlock &node = cfg.blocks[b];
                for (const std::uint32_t s : node.succs) {
                    CfgBlock &succ = cfg.blocks[s];
                    for (std::uint8_t r = 0; r < isa::NumArchRegs;
                         ++r) {
                        if (gen[b][r] != program::NoUid) {
                            const std::vector<InstUid> out{gen[b][r]};
                            changed |= mergeSorted(succ.reachIn[r], out);
                        } else {
                            changed |= mergeSorted(succ.reachIn[r],
                                                   node.reachIn[r]);
                        }
                    }
                }
            }
        }
    }
}

void
verifyCfg(const Program &prog, Report &report)
{
    const Cfg cfg(prog);
    for (std::uint32_t f = 0; f < prog.funcs.size(); ++f) {
        const FunctionCfg &fc = cfg.fn(f);
        for (std::uint32_t b = 0; b < fc.blocks.size(); ++b) {
            if (fc.blocks[b].reachable)
                continue;
            if (prog.funcs[f].blocks[b].insts.empty()) {
                report.report(Severity::Warning,
                              "verify.cfg.unreachable-block",
                              "f" + std::to_string(f) + "/b" +
                                  std::to_string(b) +
                                  " (empty) is unreachable from the "
                                  "function entry");
                continue;
            }
            report.reportAt(Severity::Warning,
                            "verify.cfg.unreachable-block", prog, f, b,
                            0,
                            "block is unreachable from the function "
                            "entry");
        }
    }
}

void
GlobalSnapshot::capture(const Program &prog)
{
    blocks.clear();
    edges.clear();
    const Cfg cfg(prog);

    blocks.resize(prog.funcs.size());
    for (std::uint32_t f = 0; f < prog.funcs.size(); ++f) {
        const Function &fn = prog.funcs[f];
        const FunctionCfg &fc = cfg.fn(f);
        blocks[f].resize(fn.blocks.size());
        for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
            const CfgBlock &node = fc.blocks[b];
            blocks[f][b].succs = node.succs;
            blocks[f][b].liveIn = node.liveIn;
            blocks[f][b].liveOut = node.liveOut;

            // Cross-block RAW edges: walk the block tracking in-block
            // writers; operands with no in-block writer yet read the
            // reaching defs at block entry.
            std::array<bool, isa::NumArchRegs> writtenHere{};
            for (const StaticInst &si : fn.blocks[b].insts) {
                const std::uint8_t srcs[2] = {si.arch.src1,
                                              si.arch.src2};
                CrossEdges ce;
                bool any = false;
                for (int s = 0; s < 2; ++s) {
                    if (srcs[s] >= isa::NumArchRegs)
                        continue;
                    ce.hasSrc[s] = true;
                    any = true;
                    if (!writtenHere[srcs[s]]) {
                        ce.external[s] = true;
                        ce.reg[s] = srcs[s];
                        ce.defs[s] = node.reachIn[srcs[s]];
                    }
                }
                if (any)
                    edges.emplace(si.uid, std::move(ce));
                if (si.arch.dst < isa::NumArchRegs)
                    writtenHere[si.arch.dst] = true;
            }
        }
    }
}

void
verifyGlobal(const GlobalSnapshot &pre, const Program &post,
             Report &report)
{
    GlobalSnapshot now;
    now.capture(post);

    // Shape first: passes never add or remove functions or blocks.
    if (now.blocks.size() != pre.blocks.size()) {
        report.report(Severity::Error, "verify.cfg.edge-changed",
                      "function count changed: " +
                          std::to_string(pre.blocks.size()) + " -> " +
                          std::to_string(now.blocks.size()));
        return;
    }

    for (std::uint32_t f = 0; f < pre.blocks.size(); ++f) {
        if (now.blocks[f].size() != pre.blocks[f].size()) {
            report.report(Severity::Error, "verify.cfg.edge-changed",
                          "f" + std::to_string(f) +
                              " block count changed: " +
                              std::to_string(pre.blocks[f].size()) +
                              " -> " +
                              std::to_string(now.blocks[f].size()));
            continue;
        }
        for (std::uint32_t b = 0; b < pre.blocks[f].size(); ++b) {
            const auto &was = pre.blocks[f][b];
            const auto &is = now.blocks[f][b];
            const auto tail = [&]() -> std::uint32_t {
                const auto &insts = post.funcs[f].blocks[b].insts;
                return insts.empty()
                    ? 0
                    : static_cast<std::uint32_t>(insts.size() - 1);
            };
            if (was.succs != is.succs) {
                report.reportAt(
                    Severity::Error, "verify.cfg.edge-changed", post, f,
                    b, tail(),
                    "successor set changed (" +
                        std::to_string(was.succs.size()) + " -> " +
                        std::to_string(is.succs.size()) +
                        " edges): a pass edited control flow");
            }
            if (was.liveIn != is.liveIn) {
                report.reportAt(Severity::Error,
                                "verify.cfg.livein-changed", post, f, b,
                                0,
                                "live-in set changed: {" +
                                    maskNames(was.liveIn) + "} -> {" +
                                    maskNames(is.liveIn) + "}");
            }
            if (was.liveOut != is.liveOut) {
                report.reportAt(Severity::Error,
                                "verify.cfg.liveout-changed", post, f,
                                b, tail(),
                                "live-out set changed: {" +
                                    maskNames(was.liveOut) + "} -> {" +
                                    maskNames(is.liveOut) + "}");
            }
        }
    }

    // Cross-block RAW edges, keyed by consumer uid.  Vanished uids are
    // the intra-block differential's finding (uid-vanished); skip them
    // here to avoid double-reporting one root cause.
    for (const auto &[uid, before] : pre.edges) {
        const auto it = now.edges.find(uid);
        if (it == now.edges.end())
            continue;
        const auto &after = it->second;
        for (int s = 0; s < 2; ++s) {
            if (!before.hasSrc[s] || !after.hasSrc[s])
                continue;
            if (!before.external[s] && !after.external[s])
                continue; // both in-block: DataflowSnapshot's job
            const program::InstLoc loc = post.locate(uid);
            if (before.external[s] != after.external[s]) {
                report.reportAt(
                    Severity::Error, "verify.cfg.raw-broken", post,
                    loc.func, loc.block, loc.index,
                    "uid " + std::to_string(uid) + " src" +
                        std::to_string(s + 1) +
                        (before.external[s]
                             ? " read a cross-block value before the "
                               "pass but an in-block def now shadows it"
                             : " read an in-block value before the "
                               "pass but its def no longer precedes "
                               "it"));
                continue;
            }
            if (before.reg[s] != after.reg[s]) {
                report.reportAt(
                    Severity::Error, "verify.cfg.raw-broken", post,
                    loc.func, loc.block, loc.index,
                    "uid " + std::to_string(uid) + " src" +
                        std::to_string(s + 1) +
                        " cross-block operand renamed " +
                        regName(before.reg[s]) + " -> " +
                        regName(after.reg[s]) +
                        " (live-in values may not be renamed)");
                continue;
            }
            if (before.defs[s] != after.defs[s]) {
                report.reportAt(
                    Severity::Error, "verify.cfg.raw-broken", post,
                    loc.func, loc.block, loc.index,
                    "uid " + std::to_string(uid) + " src" +
                        std::to_string(s + 1) + " (" +
                        regName(before.reg[s]) +
                        ") reaching defs changed: " +
                        describeDefs(before.defs[s]) + " -> " +
                        describeDefs(after.defs[s]));
            }
        }
    }
}

void
verifyChainLinks(const GlobalSnapshot &pre, const Program &post,
                 const std::vector<std::vector<InstUid>> &chains,
                 Report &report)
{
    GlobalSnapshot now;
    now.capture(post);

    for (const auto &chain : chains) {
        for (const InstUid uid : chain) {
            const auto wasIt = pre.edges.find(uid);
            if (wasIt == pre.edges.end())
                continue;
            const auto nowIt = now.edges.find(uid);
            bool broken = false;
            std::string why;
            for (int s = 0; s < 2; ++s) {
                if (!wasIt->second.external[s])
                    continue;
                if (nowIt == now.edges.end() ||
                    !nowIt->second.external[s] ||
                    nowIt->second.reg[s] != wasIt->second.reg[s] ||
                    nowIt->second.defs[s] != wasIt->second.defs[s]) {
                    broken = true;
                    why = "member uid " + std::to_string(uid) + " src" +
                          std::to_string(s + 1) + " (" +
                          regName(wasIt->second.reg[s]) +
                          ") no longer reads " +
                          describeDefs(wasIt->second.defs[s]);
                    break;
                }
            }
            if (!broken)
                continue;
            if (post.contains(chain.front())) {
                const program::InstLoc head = post.locate(chain.front());
                report.reportAt(Severity::Error,
                                "verify.cfg.chain-link-broken", post,
                                head.func, head.block, head.index,
                                "transformed chain of " +
                                    std::to_string(chain.size()) +
                                    " lost a cross-block input: " +
                                    why);
            } else {
                report.report(Severity::Error,
                              "verify.cfg.chain-link-broken",
                              "transformed chain lost a cross-block "
                              "input: " + why);
            }
            break; // one finding per chain
        }
    }
}

} // namespace critics::verify
