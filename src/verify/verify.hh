/**
 * @file
 * Pass post-condition harness: every compiler pass proves its output
 * well-formed before returning (the verify-after-every-pass discipline
 * of production compiler stacks).
 *
 * Levels, selected by the CRITICS_VERIFY environment variable:
 *   - off        — no checks (escape hatch; also "0")
 *   - structural — one linear well-formedness walk per pass (default;
 *                  also "struct"/"1")
 *   - full       — structural + differential dataflow against a
 *                  pre-pass snapshot + chain contiguity (also "2")
 *   - global     — full + whole-program CFG analysis (cfg.hh): block
 *                  reachability, differential successor edges,
 *                  live-in/live-out sets, cross-block RAW edges and
 *                  cross-block chain links (also "3"; the default in
 *                  the test suite and CI smoke)
 *
 * A PassVerifier brackets a pass: construct it on entry (captures the
 * dataflow snapshot under `full`), call finish() after the transform.
 * Without an external PassAudit an error-severity finding is a
 * simulator bug and panics with the rendered findings; with one (the
 * `critics_cli lint` path) findings accumulate in the audit's Report
 * and the caller decides.
 *
 * Verification is pure observation: it never mutates the program, and
 * its counters never enter a RunResult — a fully-verified run and an
 * unverified run of the same job must stay bit-identical in the result
 * cache (the same rule that keeps RunHooks out of job specs).  The
 * process-wide counters surface through RunnerCounters in manifests
 * and registerStats() for ad-hoc registries.
 */

#ifndef CRITICS_VERIFY_VERIFY_HH
#define CRITICS_VERIFY_VERIFY_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "verify/cfg.hh"
#include "verify/dataflow.hh"
#include "verify/diagnostics.hh"
#include "verify/structural.hh"

namespace critics::stats
{
class StatRegistry;
}

namespace critics::verify
{

enum class Level : std::uint8_t
{
    Off,
    Structural,
    Full,
    Global,
};

/** Parse CRITICS_VERIFY (default Structural; unknown values warn once
 *  and fall back to Structural). */
Level levelFromEnv();

/** Process-wide verification counters (relaxed atomics: passes verify
 *  concurrently on the runner's thread pool). */
struct Counters
{
    std::atomic<std::uint64_t> structuralChecks{0};
    std::atomic<std::uint64_t> fullChecks{0};
    std::atomic<std::uint64_t> globalChecks{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> warnings{0};
    std::atomic<std::uint64_t> advisories{0};
};

Counters &counters();

/** Register the process counters as `verify.*` formulas.  Never bind
 *  these into a per-run registry that feeds the result cache: counts
 *  depend on the CRITICS_VERIFY level, and results must not. */
void registerStats(stats::StatRegistry &reg);

/**
 * External collection context for one audited pass application (the
 * lint path): diagnostics land here instead of panicking, and the
 * pass records which chains it actually transformed.
 */
struct PassAudit
{
    Level level = Level::Global; ///< audited passes get every tier
    Report report;
    std::vector<std::vector<program::InstUid>> transformedChains;
};

/** Brackets one pass application; see file header. */
class PassVerifier
{
  public:
    /** Snapshot `prog` (under Full and above; a second, cross-block
     *  snapshot under Global) before the pass mutates it. */
    PassVerifier(const char *passName, const program::Program &prog,
                 PassAudit *audit = nullptr);

    /** Diagnostic sink for in-pass skip advisories; nullptr when
     *  nobody is listening (keeps the hot path allocation-free). */
    Report *sink();

    /** Record a chain the pass actually transformed (it will be
     *  checked for contiguity under Full). */
    void noteTransformedChain(const std::vector<program::InstUid> &c);

    /** CritIC.Ideal: relax Thumb encodability to advisories. */
    void setIdealThumb(bool ideal) { structural_.idealThumb = ideal; }

    /** Run the post-conditions on the transformed program.  Panics on
     *  error-severity findings unless an audit collects them. */
    void finish(const program::Program &prog);

  private:
    const char *name_;
    PassAudit *audit_;
    Level level_;
    StructuralOptions structural_;
    DataflowSnapshot pre_;
    GlobalSnapshot preGlobal_;
    std::vector<std::vector<program::InstUid>> chains_;
    std::size_t baseErrors_ = 0;
    std::size_t baseWarnings_ = 0;
    std::size_t baseAdvice_ = 0;
};

} // namespace critics::verify

#endif // CRITICS_VERIFY_VERIFY_HH
