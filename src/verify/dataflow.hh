/**
 * @file
 * Differential dataflow verification: prove a pass output executes the
 * same register dataflow as its input.
 *
 * A DataflowSnapshot captures, per instruction uid, the producing uid
 * (or live-in register) of every source operand — the intra-block RAW
 * def-use edges BlockDfg computes, keyed by uid so they survive code
 * motion.  verifyDataflow() recomputes the edges on the transformed
 * program and checks each pre-pass edge still holds, resolving
 * *inserted* instructions (OPP16's mov-expansions) transitively so a
 * value routed through a new mov still traces to its original
 * producer.  Local renames need no special handling: a legal rename
 * rewrites every consumer, so the uid-keyed edges are unchanged.
 *
 * Also here: the CritIC chain-contiguity check and the advisory lint
 * pass (dead format switches, convertible-but-unconverted runs).
 */

#ifndef CRITICS_VERIFY_DATAFLOW_HH
#define CRITICS_VERIFY_DATAFLOW_HH

#include <unordered_map>
#include <vector>

#include "program/program.hh"
#include "verify/diagnostics.hh"

namespace critics::verify
{

/** Producer of one source operand: an in-block uid, or the live-in
 *  value of `reg` (external = defined outside the block). */
struct ProducerRef
{
    bool external = true;
    std::uint8_t reg = isa::NoReg;      ///< operand register
    program::InstUid uid = program::NoUid; ///< producer when !external

    bool
    operator==(const ProducerRef &o) const
    {
        return external == o.external &&
               (external ? reg == o.reg : uid == o.uid);
    }
};

/** Per-uid dataflow facts of one program, captured before a pass. */
struct DataflowSnapshot
{
    struct InstDf
    {
        std::uint32_t func = 0;
        std::uint32_t block = 0;
        ProducerRef src[2];
        bool hasSrc[2] = {false, false};
    };

    std::unordered_map<program::InstUid, InstDf> insts;

    bool empty() const { return insts.empty(); }
    void capture(const program::Program &prog);
};

/**
 * Check the transformed program against a pre-pass snapshot:
 *   - verify.dataflow.uid-vanished: a pre-pass uid disappeared
 *   - verify.dataflow.uid-moved: a uid changed function or block
 *   - verify.dataflow.use-before-def: an operand that had an in-block
 *     producer now reads a live-in value (its def sank below the use)
 *   - verify.dataflow.raw-broken: an operand resolves to a different
 *     producer than before the pass
 */
void verifyDataflow(const DataflowSnapshot &pre,
                    const program::Program &post, Report &report);

/**
 * Check each transformed CritIC chain is still contiguous inside one
 * block — members in order with nothing interleaved except the format
 * switches themselves (verify.dataflow.chain-split).
 */
void verifyChainsContiguous(
    const program::Program &prog,
    const std::vector<std::vector<program::InstUid>> &chains,
    Report &report);

/**
 * Advisory lints (Severity::Advice):
 *   - verify.lint.dead-switch: a CDP paying its 32-bit switch word for
 *     a run too short to win back the bytes (run < 2)
 *   - verify.lint.unconverted-run: >= minRun consecutive directly
 *     convertible 32-bit instructions left unconverted
 */
void lintAdvisories(const program::Program &prog, Report &report,
                    unsigned minRun = 3);

} // namespace critics::verify

#endif // CRITICS_VERIFY_DATAFLOW_HH
