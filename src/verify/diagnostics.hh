/**
 * @file
 * Diagnostic machinery for the IR verifier and lint framework.
 *
 * Every finding carries a *stable dotted code* (`verify.struct.cdp-overrun`,
 * `verify.dataflow.raw-broken`, ...) so tests, CI gates and the
 * `critics_cli lint` JSON report can match on identity rather than on
 * message text, plus an optional uid/func/block/index location rendered
 * through program/printer at report time (locations go stale the moment
 * a pass mutates the block, so the human-readable line is captured
 * eagerly).  The full invariant catalogue lives in DESIGN.md
 * ("IR invariants").
 */

#ifndef CRITICS_VERIFY_DIAGNOSTICS_HH
#define CRITICS_VERIFY_DIAGNOSTICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "program/program.hh"

namespace critics::json
{
class JsonWriter;
}

namespace critics::verify
{

enum class Severity : std::uint8_t
{
    Error,   ///< the program is illegal / semantics were broken
    Warning, ///< suspicious but not provably wrong
    Advice,  ///< optimization opportunity or explained skip
};

const char *severityName(Severity severity);

struct Diagnostic
{
    Severity severity = Severity::Error;
    std::string code;    ///< stable dotted id, e.g. "verify.struct.uid-dup"
    std::string message;

    bool located = false;
    std::uint32_t func = 0;
    std::uint32_t block = 0;
    std::uint32_t index = 0;
    program::InstUid uid = program::NoUid;
    std::string where; ///< rendered location line (captured eagerly)

    /** "error verify.struct.uid-dup at f1/b2/i3 uid 17: message". */
    std::string render() const;
};

/**
 * Collects diagnostics from one verification run.  Per-code counts are
 * exact; the stored diagnostic list is capped per code (advisory lints
 * like `verify.lint.unconverted-run` fire thousands of times on a
 * baseline program, and the report must stay bounded).
 */
class Report
{
  public:
    /** Stored diagnostics per code; counts keep accumulating past it. */
    static constexpr std::size_t MaxStoredPerCode = 64;

    void add(Diagnostic diag);

    /** Unlocated finding. */
    void report(Severity severity, std::string code, std::string message);

    /** Finding located at prog.funcs[fn].blocks[blk].insts[idx]; the
     *  uid and a printed instruction line are captured now. */
    void reportAt(Severity severity, std::string code,
                  const program::Program &prog, std::uint32_t fn,
                  std::uint32_t blk, std::uint32_t idx,
                  std::string message);

    std::size_t errors() const { return errors_; }
    std::size_t warnings() const { return warnings_; }
    std::size_t advice() const { return advice_; }
    bool clean() const { return errors_ == 0; }

    /** Exact number of findings with this code (uncapped). */
    std::size_t countOf(const std::string &code) const;
    bool has(const std::string &code) const { return countOf(code) > 0; }

    const std::vector<Diagnostic> &diags() const { return diags_; }
    const std::map<std::string, std::size_t> &codeCounts() const
    {
        return counts_;
    }

    /** Multi-line human rendering of up to `maxLines` findings (errors
     *  first), with a suppression trailer when capped. */
    std::string render(std::size_t maxLines = 24) const;

    /** Append `errors`/`warnings`/`advice` counts, a `codes` object and
     *  a capped `findings` array to the writer's open object. */
    void writeJson(json::JsonWriter &w,
                   std::size_t maxFindings = 200) const;

  private:
    std::vector<Diagnostic> diags_;
    std::map<std::string, std::size_t> counts_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t advice_ = 0;
    std::size_t suppressed_ = 0;
};

} // namespace critics::verify

#endif // CRITICS_VERIFY_DIAGNOSTICS_HH
