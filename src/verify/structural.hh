/**
 * @file
 * Structural (machine-verifier-style) well-formedness checks over a
 * program::Program.  These prove the *shape* of the IR legal — uid
 * uniqueness, control transfers only at block tails with in-range
 * targets, operand registers inside their format's encodable range,
 * CDP switch runs covering exactly the following Thumb16 instructions
 * with no nesting/overrun, branch-pair switches properly paired, and
 * consistent memory metadata.  They are cheap (one linear walk) and run
 * unconditionally after every compiler pass; the differential dataflow
 * checks live in verify/dataflow.hh.
 */

#ifndef CRITICS_VERIFY_STRUCTURAL_HH
#define CRITICS_VERIFY_STRUCTURAL_HH

#include "program/program.hh"
#include "verify/diagnostics.hh"

namespace critics::verify
{

struct StructuralOptions
{
    /**
     * CritIC.Ideal (forceConvert) deliberately re-encodes instructions
     * the 16-bit format cannot express — the paper's "no
     * convertibility limits" hypothetical.  Under this flag the Thumb
     * encodability checks (register range, predication, missing 16-bit
     * encoding) downgrade from Error to Advice so the ideal design
     * point lints clean while the violations stay visible.
     */
    bool idealThumb = false;
};

/** Run every structural check; findings accumulate into `report`. */
void verifyStructure(const program::Program &prog, Report &report,
                     const StructuralOptions &options = {});

} // namespace critics::verify

#endif // CRITICS_VERIFY_STRUCTURAL_HH
