#include "verify/trace_check.hh"

#include <cmath>
#include <string>
#include <unordered_map>

namespace critics::verify
{

using program::BasicBlock;
using program::DynInst;
using program::FlowKind;
using program::Function;
using program::InstLoc;
using program::InstUid;
using program::Program;
using program::StaticInst;
using program::Trace;

namespace
{

std::string
blockName(std::uint32_t f, std::uint32_t b)
{
    return "f" + std::to_string(f) + "/b" + std::to_string(b);
}

/** Per conditional-branch site: observations for the bias test. */
struct BranchTally
{
    std::uint64_t samples = 0;
    std::uint64_t taken = 0;
};

/** One replay pass over the trace; returns false on a hard error. */
bool
replay(const Program &prog, const Trace &trace, Report &report,
       TraceCheckStats &stats,
       std::unordered_map<InstUid, BranchTally> &tallies)
{
    struct Frame
    {
        std::uint32_t func;
        std::uint32_t block;
    };
    std::vector<Frame> stack;

    std::size_t pos = 0;
    while (pos < trace.size()) {
        const DynInst &head = trace[pos];
        if (!prog.contains(head.staticUid)) {
            report.report(Severity::Error, "verify.trace.unknown-uid",
                          "trace[" + std::to_string(pos) + "] executes "
                          "uid " + std::to_string(head.staticUid) +
                          " which the program does not contain");
            return false;
        }
        const InstLoc loc = prog.locate(head.staticUid);
        const Function &fn = prog.funcs[loc.func];
        const BasicBlock &bb = fn.blocks[loc.block];
        if (loc.index != 0) {
            report.reportAt(Severity::Error,
                            "verify.trace.block-diverged", prog,
                            loc.func, loc.block, loc.index,
                            "trace[" + std::to_string(pos) + "] enters "
                            "the block mid-body (at static index " +
                            std::to_string(loc.index) + ")");
            return false;
        }

        // The block body: the trace must carry exactly the static
        // instruction sequence.  A trace truncated mid-block (the walk
        // limit never does this, but hand-built traces may) passes as
        // long as the prefix matches.
        std::size_t i = 0;
        for (; i < bb.insts.size() && pos + i < trace.size(); ++i) {
            const InstUid want = bb.insts[i].uid;
            const InstUid got = trace[pos + i].staticUid;
            if (want == got)
                continue;
            if (!prog.contains(got)) {
                report.report(
                    Severity::Error, "verify.trace.unknown-uid",
                    "trace[" + std::to_string(pos + i) + "] executes "
                    "uid " + std::to_string(got) +
                    " which the program does not contain");
                return false;
            }
            report.reportAt(
                Severity::Error, "verify.trace.block-diverged", prog,
                loc.func, loc.block, static_cast<std::uint32_t>(i),
                "trace[" + std::to_string(pos + i) +
                    "] executes uid " + std::to_string(got) +
                    " where the static body has uid " +
                    std::to_string(want));
            return false;
        }
        ++stats.blocksReplayed;
        if (pos + i >= trace.size()) {
            pos += i;
            break; // trace ends inside (or exactly at) this block
        }
        const DynInst &tail = trace[pos + bb.insts.size() - 1];
        pos += bb.insts.size();

        // The transition: the next visited block must be one the tail
        // terminator can reach, mirroring walkProgram (see file
        // header).  prog.contains(next uid) was not yet checked — the
        // next loop iteration reports unknown uids, so only locate
        // known ones here.
        const DynInst &nextHead = trace[pos];
        if (!prog.contains(nextHead.staticUid))
            continue; // next iteration reports it
        const InstLoc next = prog.locate(nextHead.staticUid);
        ++stats.transitionsChecked;

        const StaticInst *term = program::blockTerminator(bb);
        const FlowKind flow = term ? term->flow : FlowKind::FallThrough;
        const std::uint32_t nblocks =
            static_cast<std::uint32_t>(fn.blocks.size());

        // Where a fallthrough (or implicit return) goes from here.
        const auto fallthroughTo = [&]() -> Frame {
            if (loc.block + 1 < nblocks)
                return {loc.func, loc.block + 1};
            if (!stack.empty())
                return stack.back();
            return {0, 0};
        };
        const auto isAt = [&](const Frame &want) {
            return next.func == want.func && next.block == want.block;
        };
        // Take a fallthrough edge, popping the stack when it was an
        // implicit return.
        const auto takeFallthrough = [&] {
            if (loc.block + 1 >= nblocks && !stack.empty())
                stack.pop_back();
        };

        const auto badTarget = [&](const std::string &legal) {
            const std::uint32_t tailIdx = static_cast<std::uint32_t>(
                bb.insts.empty() ? 0 : bb.insts.size() - 1);
            report.reportAt(
                Severity::Error, "verify.trace.bad-target", prog,
                loc.func, loc.block, tailIdx,
                "trace transitions to " +
                    blockName(next.func, next.block) +
                    " but the terminator can only reach " + legal);
        };

        bool ok = true;
        switch (flow) {
          case FlowKind::FallThrough: {
            const Frame want = fallthroughTo();
            if (isAt(want)) {
                takeFallthrough();
            } else {
                badTarget(blockName(want.func, want.block) +
                          " (fallthrough)");
                ok = false;
            }
            break;
          }
          case FlowKind::CondBranch: {
            BranchTally &tally = tallies[term->uid];
            ++tally.samples;
            if (tail.taken()) {
                ++tally.taken;
                if (term->targetBlock < nblocks &&
                    next.func == loc.func &&
                    next.block == term->targetBlock) {
                    break;
                }
                badTarget(blockName(loc.func, term->targetBlock) +
                          " (taken)");
                ok = false;
                break;
            }
            const Frame want = fallthroughTo();
            if (isAt(want)) {
                takeFallthrough();
            } else {
                badTarget(blockName(want.func, want.block) +
                          " (not-taken fallthrough)");
                ok = false;
            }
            break;
          }
          case FlowKind::Jump:
            if (term->targetBlock < nblocks && next.func == loc.func &&
                next.block == term->targetBlock) {
                break;
            }
            badTarget(blockName(loc.func, term->targetBlock) +
                      " (jump)");
            ok = false;
            break;
          case FlowKind::CallFn: {
            // Legal callees: the static target, or any table entry.
            bool callee = false;
            if (next.block == 0) {
                if (term->indirectTable == program::NoTable) {
                    callee = next.func == term->targetFunc;
                } else {
                    for (const std::uint32_t c :
                         prog.indirectTables[term->indirectTable]
                             .callees) {
                        if (next.func == c) {
                            callee = true;
                            break;
                        }
                    }
                }
            }
            if (callee) {
                // Callee entry can never collide with the fallthrough
                // (block 0 vs block >= 1), so this is unambiguous.
                if (loc.block + 1 < nblocks)
                    stack.push_back({loc.func, loc.block + 1});
                break;
            }
            const Frame want = fallthroughTo();
            if (isAt(want)) {
                // Depth-guard skip: the walker elided the call.
                takeFallthrough();
            } else {
                badTarget("a callee entry or " +
                          blockName(want.func, want.block) +
                          " (guarded skip)");
                ok = false;
            }
            break;
          }
          case FlowKind::Ret: {
            const Frame want =
                stack.empty() ? Frame{0, 0} : stack.back();
            if (isAt(want)) {
                if (!stack.empty())
                    stack.pop_back();
            } else {
                badTarget(blockName(want.func, want.block) +
                          " (return site)");
                ok = false;
            }
            break;
          }
        }
        if (!ok)
            return false;
    }
    return true;
}

void
checkBiases(const Program &prog, Report &report, TraceCheckStats &stats,
            const std::unordered_map<InstUid, BranchTally> &tallies,
            const TraceCheckOptions &options)
{
    for (const auto &[uid, tally] : tallies) {
        const InstLoc loc = prog.locate(uid);
        const StaticInst &si = prog.inst(loc);
        const double p = si.takenBias;

        if (!options.biasVocabulary.empty()) {
            bool known = false;
            for (const float v : options.biasVocabulary) {
                if (std::fabs(p - v) <= 1e-6) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                report.reportAt(
                    Severity::Error, "verify.trace.bias-unknown", prog,
                    loc.func, loc.block, loc.index,
                    "takenBias " + std::to_string(p) +
                        " is not in the synthesizer's vocabulary");
            }
        }

        if (tally.samples < options.minBranchSamples)
            continue;
        ++stats.branchSitesTested;
        const double n = static_cast<double>(tally.samples);
        const double k = static_cast<double>(tally.taken);
        const double bound =
            options.sigma * std::sqrt(n * p * (1.0 - p)) + 1.0;
        if (std::fabs(k - n * p) > bound) {
            report.reportAt(
                Severity::Error, "verify.trace.bias-skew", prog,
                loc.func, loc.block, loc.index,
                "observed taken frequency " +
                    std::to_string(k / n) + " over " +
                    std::to_string(tally.samples) +
                    " samples is outside the " +
                    std::to_string(options.sigma) +
                    "-sigma bound of takenBias " + std::to_string(p));
        }
    }
}

} // namespace

TraceCheckStats
checkTraceConformance(const Program &prog, const Trace &trace,
                      Report &report, const TraceCheckOptions &options)
{
    TraceCheckStats stats;
    std::unordered_map<InstUid, BranchTally> tallies;

    stats.conformant = replay(prog, trace, report, stats, tallies);

    // Branch frequencies only mean something once the control flow
    // itself replayed cleanly.
    if (stats.conformant)
        checkBiases(prog, report, stats, tallies, options);
    return stats;
}

} // namespace critics::verify
