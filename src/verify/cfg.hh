/**
 * @file
 * Whole-program static analysis over the tail-only control flow the
 * structural verifier already validates: an explicit per-function CFG
 * (successors/predecessors/reachability via program::blockSuccessors,
 * whose semantics mirror walkProgram exactly), plus iterative liveness
 * and reaching-definitions run to a fixed point over it.
 *
 * On top of the analysis sit the *global* differential checks of the
 * CRITICS_VERIFY=global tier (DESIGN.md §11): a GlobalSnapshot captures
 * the cross-block facts of a program before a pass — successor edges,
 * block live-in/live-out register sets, and every cross-block RAW edge
 * (the reaching-def set feeding each operand that reads a value defined
 * outside its block) — and verifyGlobal() re-proves each fact on the
 * transformed program.  These facts are exactly the ones every legal
 * pass must preserve today: passes move and rename only *inside*
 * blocks, local renames are always killed before the block end, and
 * inserted instructions (CDP switches, branch-pair switches) touch no
 * registers.  The checks are therefore the green light for any future
 * pass that starts doing cross-block motion: the moment one breaks an
 * inter-block invariant, the bracket says so with a located finding.
 *
 * Liveness here is intra-function by definition: the live-out of a
 * function-exit block is empty.  The definition only needs to be
 * *stable* across a pass for the differential check to be sound, and
 * passes never touch terminators, so it is.
 */

#ifndef CRITICS_VERIFY_CFG_HH
#define CRITICS_VERIFY_CFG_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "program/program.hh"
#include "verify/diagnostics.hh"

namespace critics::verify
{

/** Architectural-register bitmask (isa::NumArchRegs == 16 bits). */
using RegMask = std::uint16_t;

/** One CFG node: a basic block plus its analysis facts. */
struct CfgBlock
{
    std::vector<std::uint32_t> succs; ///< sorted in-function successors
    std::vector<std::uint32_t> preds; ///< sorted in-function predecessors
    bool exits = false;     ///< can leave the function (Ret/implicit return)
    bool reachable = false; ///< from the function's entry block 0

    RegMask use = 0;  ///< regs read before any in-block def
    RegMask def = 0;  ///< regs written in the block
    RegMask liveIn = 0;
    RegMask liveOut = 0;

    /** Reaching definitions at block entry: per register, the sorted
     *  uids of defs that may reach here.  program::NoUid stands for
     *  "the function-entry live-in value". */
    std::array<std::vector<program::InstUid>, isa::NumArchRegs> reachIn;
};

struct FunctionCfg
{
    std::vector<CfgBlock> blocks;
};

/**
 * Explicit control-flow graph of a whole program with liveness and
 * reaching definitions solved to a fixed point per function.  Pure
 * observation: building one never mutates the program.
 */
class Cfg
{
  public:
    explicit Cfg(const program::Program &prog);

    const std::vector<FunctionCfg> &funcs() const { return funcs_; }
    const FunctionCfg &fn(std::uint32_t f) const { return funcs_[f]; }

  private:
    void buildEdges(const program::Program &prog);
    void markReachable();
    void solveLiveness(const program::Program &prog);
    void solveReaching(const program::Program &prog);

    std::vector<FunctionCfg> funcs_;
};

/**
 * CFG construction checks on one program (no pre-pass snapshot):
 *   - verify.cfg.unreachable-block (Warning): a block the function's
 *     entry can never reach — synthesized programs have none, and a
 *     pass cannot create one without editing terminators.
 */
void verifyCfg(const program::Program &prog, Report &report);

/**
 * Cross-block facts of one program captured before a pass runs, keyed
 * so they survive legal intra-block motion, renaming and insertion.
 */
struct GlobalSnapshot
{
    struct BlockFacts
    {
        std::vector<std::uint32_t> succs;
        RegMask liveIn = 0;
        RegMask liveOut = 0;
    };

    /**
     * Per consumer uid: for each source operand, whether it reads a
     * value defined *outside* its block (external), and if so which
     * register and which reaching defs feed it.  Internal operands
     * record only externality — their producer identity is the
     * intra-block DataflowSnapshot's job, and a legal local rename may
     * change their register but never their externality.
     */
    struct CrossEdges
    {
        bool hasSrc[2] = {false, false};
        bool external[2] = {false, false};
        std::uint8_t reg[2] = {isa::NoReg, isa::NoReg};
        std::vector<program::InstUid> defs[2]; ///< sorted; NoUid = entry
    };

    std::vector<std::vector<BlockFacts>> blocks; ///< [func][block]
    std::unordered_map<program::InstUid, CrossEdges> edges;

    bool empty() const { return blocks.empty(); }
    void capture(const program::Program &prog);
};

/**
 * Re-prove a pre-pass GlobalSnapshot on the transformed program:
 *   - verify.cfg.edge-changed: a block's successor set changed (a pass
 *     edited control flow)
 *   - verify.cfg.livein-changed / verify.cfg.liveout-changed: a block's
 *     live-in/live-out register set changed
 *   - verify.cfg.raw-broken: a cross-block RAW edge changed — an
 *     operand that read a value defined outside its block now reads a
 *     different register, a different reaching-def set, or flipped
 *     between external and in-block
 */
void verifyGlobal(const GlobalSnapshot &pre, const program::Program &post,
                  Report &report);

/**
 * Re-prove the cross-block links of each transformed CritIC chain: for
 * every member whose operand read a value from outside the chain's
 * block pre-pass, the same reaching defs must feed it post-pass
 * (verify.cfg.chain-link-broken, reported once per broken chain).
 */
void verifyChainLinks(
    const GlobalSnapshot &pre, const program::Program &post,
    const std::vector<std::vector<program::InstUid>> &chains,
    Report &report);

} // namespace critics::verify

#endif // CRITICS_VERIFY_CFG_HH
