#include "runner/orchestrator.hh"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <unordered_map>

#include "runner/thread_pool.hh"
#include "stats/registry.hh"
#include "stats/trace_event.hh"
#include "support/logging.hh"

namespace critics::runner
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// SIGINT: the handler only sets a flag; workers stop picking up new
// jobs, already-completed results are on disk (the store flushes every
// append), and the batch epilogue writes an `interrupted` manifest.

std::atomic<bool> sigintSeen{false};

void
onSigint(int)
{
    sigintSeen.store(true);
}

class SigintGuard
{
  public:
    SigintGuard()
    {
        sigintSeen.store(false);
        struct sigaction action{};
        action.sa_handler = onSigint;
        sigemptyset(&action.sa_mask);
        ::sigaction(SIGINT, &action, &previous_);
    }

    ~SigintGuard() { ::sigaction(SIGINT, &previous_, nullptr); }

    static bool interrupted() { return sigintSeen.load(); }

  private:
    struct sigaction previous_{};
};

// ---------------------------------------------------------------------------
// Progress line (stderr, overwritten in place).

class Progress
{
  public:
    Progress(bool enabled, const std::string &batch, std::size_t total)
        : enabled_(enabled), batch_(batch), total_(total),
          start_(Clock::now())
    {
    }

    void
    update(std::size_t done, std::size_t simulated)
    {
        if (!enabled_ || total_ == 0)
            return;
        std::lock_guard<std::mutex> guard(lock_);
        const double elapsed = secondsSince(start_);
        // ETA from the simulated-job rate; cache hits are ~free.
        double eta = 0.0;
        if (simulated > 0 && done < total_) {
            const double perJob =
                elapsed / static_cast<double>(simulated);
            eta = perJob * static_cast<double>(total_ - done);
        }
        std::fprintf(stderr,
                     "\r[%s] %zu/%zu jobs done, ETA %5.1fs   ",
                     batch_.c_str(), done, total_, eta);
        std::fflush(stderr);
    }

    void
    finish()
    {
        if (!enabled_)
            return;
        std::fprintf(stderr, "\r%*s\r", 60, "");
        std::fflush(stderr);
    }

  private:
    bool enabled_;
    std::string batch_;
    std::size_t total_;
    Clock::time_point start_;
    std::mutex lock_;
};

} // namespace

// ---------------------------------------------------------------------------
// BatchResult

bool
BatchResult::allOk() const
{
    for (const auto &outcome : outcomes) {
        if (!outcome.ok)
            return false;
    }
    return true;
}

const sim::RunResult &
BatchResult::result(std::size_t i) const
{
    critics_assert(i < outcomes.size(), "job index out of range");
    if (!outcomes[i].ok) {
        critics_fatal("job ", i, " (", jobs[i].profile.name, "/",
                      jobs[i].variant.label,
                      ") failed: ", outcomes[i].error);
    }
    return outcomes[i].result;
}

double
BatchResult::speedup(std::size_t baseIdx, std::size_t variantIdx) const
{
    const auto &base = result(baseIdx);
    const auto &variant = result(variantIdx);
    critics_assert(variant.cpu.cycles > 0, "zero-cycle run");
    return static_cast<double>(base.cpu.cycles) /
           static_cast<double>(variant.cpu.cycles);
}

// ---------------------------------------------------------------------------
// Runner

struct Runner::ExpSlot
{
    std::once_flag once;
    std::shared_ptr<sim::AppExperiment> experiment;
};

Runner::Runner(RunnerOptions options)
    : options_(std::move(options)), store_(options_.cachePath)
{
    if (!options_.executor) {
        options_.executor = [](const JobSpec &spec,
                               sim::AppExperiment &experiment) {
            return experiment.run(spec.variant);
        };
    }
}

Runner::~Runner() = default;

void
Runner::registerStats(stats::StatRegistry &reg) const
{
    store_.registerStats(reg, "runner.cache");
    ThreadPool::shared().registerStats(reg, "runner.pool");
}

std::shared_ptr<sim::AppExperiment>
Runner::experiment(const workload::AppProfile &profile,
                   const sim::ExperimentOptions &options)
{
    const std::string key = JobSpec{profile, {}, options}.appKey();
    std::shared_ptr<ExpSlot> slot;
    {
        std::lock_guard<std::mutex> guard(expLock_);
        auto &entry = experiments_[key];
        if (!entry)
            entry = std::make_shared<ExpSlot>();
        slot = entry;
    }
    // Construction (synthesis + trace emission) happens outside the
    // map lock so different apps build concurrently; call_once makes
    // same-app racers share one build.
    std::call_once(slot->once, [&] {
        slot->experiment =
            std::make_shared<sim::AppExperiment>(profile, options);
    });
    return slot->experiment;
}

BatchResult
Runner::run(const std::string &batchName,
            const std::vector<JobSpec> &jobs)
{
    BatchResult batch;
    batch.jobs = jobs;
    batch.outcomes.resize(jobs.size());
    batch.manifest.batch = batchName;
    batch.manifest.schema = kResultSchemaVersion;
    batch.manifest.gitDescribe = runner::gitDescribe();
    batch.manifest.startedUnix = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());

    const auto startWall = Clock::now();
    SigintGuard sigint;

    stats::TraceEventWriter *tsink = options_.trace;
    auto usSince = [&](Clock::time_point t) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                t - startWall)
                .count());
    };
    auto phaseSpan = [&](const char *name, Clock::time_point from) {
        if (tsink) {
            const std::uint64_t ts = usSince(from);
            tsink->complete(name, "phase", ts,
                            usSince(Clock::now()) - ts, 0, 0);
        }
    };
    if (tsink)
        tsink->setProcessName(0, "runner: " + batchName);

    // ---- Phase 1: serve cache hits --------------------------------------
    const auto lookupStart = Clock::now();
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (options_.useCache && !options_.refresh) {
            if (auto cached = store_.lookup(jobs[i])) {
                auto &outcome = batch.outcomes[i];
                outcome.ok = true;
                outcome.fromCache = true;
                outcome.result = *cached;
                continue;
            }
        }
        misses.push_back(i);
    }
    phaseSpan("cache-lookup", lookupStart);

    // ---- Phase 2: dedup identical in-flight jobs -------------------------
    // One representative simulates; duplicates copy its outcome.
    std::vector<std::size_t> unique;
    std::unordered_map<std::string, std::size_t> byHash;
    std::vector<std::vector<std::size_t>> duplicates;
    for (const std::size_t i : misses) {
        const std::string hash = jobs[i].hashHex();
        const auto it = byHash.find(hash);
        if (it == byHash.end()) {
            byHash.emplace(hash, unique.size());
            unique.push_back(i);
            duplicates.emplace_back();
        } else {
            duplicates[it->second].push_back(i);
        }
    }

    const bool progressEnabled = options_.progress.value_or(
        ::isatty(::fileno(stderr)) != 0);
    Progress progress(progressEnabled, batchName, jobs.size());
    std::atomic<std::size_t> doneCount{jobs.size() - misses.size()};
    std::atomic<std::size_t> simulatedCount{0};
    progress.update(doneCount.load(), 0);

    // ---- Phase 3: run the misses on the pool -----------------------------
    const auto simStart = Clock::now();
    ThreadPool::shared().forEach(unique.size(), [&](std::size_t u) {
        const std::size_t i = unique[u];
        const JobSpec &spec = jobs[i];
        JobOutcome outcome;
        const auto jobStart = Clock::now();

        if (SigintGuard::interrupted()) {
            outcome.error = "interrupted before start";
        } else {
            for (outcome.attempts = 1;
                 outcome.attempts <= options_.maxAttempts;
                 ++outcome.attempts) {
                try {
                    auto exp =
                        experiment(spec.profile, spec.options);
                    outcome.result =
                        options_.executor(spec, *exp);
                    outcome.ok = true;
                    break;
                } catch (const std::exception &e) {
                    outcome.error = e.what();
                } catch (...) {
                    outcome.error = "unknown exception";
                }
                if (SigintGuard::interrupted())
                    break;
            }
            if (outcome.attempts > options_.maxAttempts)
                outcome.attempts = options_.maxAttempts;
        }
        outcome.wallSeconds = secondsSince(jobStart);
        if (tsink) {
            tsink->complete(
                spec.profile.name + "/" + spec.variant.label, "job",
                usSince(jobStart),
                static_cast<std::uint64_t>(outcome.wallSeconds * 1e6),
                0, tsink->tidForCurrentThread(), "attempts",
                static_cast<double>(outcome.attempts));
        }

        if (outcome.ok && options_.useCache)
            store_.insert(spec, outcome.result);

        batch.outcomes[i] = outcome; // slot i is ours alone
        for (const std::size_t dup : duplicates[u])
            batch.outcomes[dup] = outcome;

        const std::size_t done =
            doneCount.fetch_add(1 + duplicates[u].size()) + 1 +
            duplicates[u].size();
        progress.update(done, simulatedCount.fetch_add(1) + 1);
    });
    progress.finish();
    if (!unique.empty())
        phaseSpan("simulate", simStart);

    // ---- Phase 4: manifest ----------------------------------------------
    const auto manifestStart = Clock::now();
    batch.manifest.wallSeconds = secondsSince(startWall);
    batch.manifest.interrupted = SigintGuard::interrupted();
    batch.manifest.runnerStats.cacheHits = store_.hits();
    batch.manifest.runnerStats.cacheMisses = store_.misses();
    batch.manifest.runnerStats.cacheInserts = store_.inserts();
    batch.manifest.runnerStats.poolTasks =
        ThreadPool::shared().tasksSubmitted();
    batch.manifest.runnerStats.poolThreads =
        ThreadPool::shared().threadCount();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobOutcome &outcome = batch.outcomes[i];
        JobRecord record;
        record.app = jobs[i].profile.name;
        record.variant = jobs[i].variant.label;
        record.hash = jobs[i].hashHex();
        record.ok = outcome.ok;
        record.fromCache = outcome.fromCache;
        record.attempts = outcome.attempts;
        record.wallSeconds = outcome.wallSeconds;
        record.simInsts = (outcome.ok && !outcome.fromCache)
            ? jobs[i].options.traceInsts : 0;
        record.error = outcome.error;
        batch.manifest.jobs.push_back(std::move(record));
    }
    if (options_.writeManifest)
        batch.manifestPath = batch.manifest.write(options_.manifestDir);
    phaseSpan("manifest", manifestStart);

    critics_debug("runner", batch.manifest.summaryLine());

    for (const auto &record : batch.manifest.jobs) {
        if (!record.ok) {
            critics_warn("job failed: ", record.app, "/",
                         record.variant, " after ", record.attempts,
                         " attempt(s): ", record.error);
        }
    }

    if (batch.manifest.interrupted) {
        // Completed results are already flushed; leave a truthful
        // manifest behind and propagate the conventional exit code.
        std::fprintf(stderr,
                     "[%s] interrupted: %zu/%zu jobs done, results "
                     "flushed to %s\n",
                     batchName.c_str(),
                     jobs.size() - batch.manifest.failedCount(),
                     jobs.size(), store_.path().c_str());
        std::exit(130);
    }
    return batch;
}

Runner &
sharedRunner()
{
    static Runner runner;
    return runner;
}

} // namespace critics::runner
