#include "runner/orchestrator.hh"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <unordered_map>

#include "runner/sigint.hh"
#include "runner/thread_pool.hh"
#include "stats/registry.hh"
#include "stats/trace_event.hh"
#include "support/logging.hh"
#include "verify/verify.hh"

namespace critics::runner
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Progress line (stderr, overwritten in place).

class Progress
{
  public:
    Progress(bool enabled, const std::string &batch, std::size_t total)
        : enabled_(enabled), batch_(batch), total_(total),
          start_(Clock::now())
    {
    }

    void
    update(std::size_t done, std::size_t simulated)
    {
        if (!enabled_ || total_ == 0)
            return;
        std::lock_guard<std::mutex> guard(lock_);
        const double elapsed = secondsSince(start_);
        // ETA from the simulated-job rate; cache hits are ~free.
        double eta = 0.0;
        if (simulated > 0 && done < total_) {
            const double perJob =
                elapsed / static_cast<double>(simulated);
            eta = perJob * static_cast<double>(total_ - done);
        }
        std::fprintf(stderr,
                     "\r[%s] %zu/%zu jobs done, ETA %5.1fs   ",
                     batch_.c_str(), done, total_, eta);
        std::fflush(stderr);
    }

    void
    finish()
    {
        if (!enabled_)
            return;
        std::fprintf(stderr, "\r%*s\r", 60, "");
        std::fflush(stderr);
    }

  private:
    bool enabled_;
    std::string batch_;
    std::size_t total_;
    Clock::time_point start_;
    std::mutex lock_;
};

} // namespace

// ---------------------------------------------------------------------------
// BatchResult

bool
BatchResult::allOk() const
{
    for (const auto &outcome : outcomes) {
        if (!outcome.ok)
            return false;
    }
    return true;
}

const sim::RunResult &
BatchResult::result(std::size_t i) const
{
    critics_assert(i < outcomes.size(), "job index out of range");
    if (!outcomes[i].ok) {
        critics_fatal("job ", i, " (", jobs[i].profile.name, "/",
                      jobs[i].variant.label,
                      ") failed: ", outcomes[i].error);
    }
    return outcomes[i].result;
}

double
BatchResult::speedup(std::size_t baseIdx, std::size_t variantIdx) const
{
    const auto &base = result(baseIdx);
    const auto &variant = result(variantIdx);
    critics_assert(variant.cpu.cycles > 0, "zero-cycle run");
    return static_cast<double>(base.cpu.cycles) /
           static_cast<double>(variant.cpu.cycles);
}

// ---------------------------------------------------------------------------
// Runner

struct Runner::ExpSlot
{
    std::once_flag once;
    std::shared_ptr<sim::AppExperiment> experiment;
};

Runner::Runner(RunnerOptions options)
    : options_(std::move(options)), store_(options_.cachePath)
{
    if (!options_.executor) {
        options_.executor = [](const JobSpec &spec,
                               sim::AppExperiment &experiment) {
            return experiment.run(spec.variant);
        };
    }
}

Runner::~Runner() = default;

void
Runner::registerStats(stats::StatRegistry &reg) const
{
    store_.registerStats(reg, "runner.cache");
    ThreadPool::shared().registerStats(reg, "runner.pool");
    reg.addLatency("runner.jobWall", jobWall_,
                   "wall time of executed jobs (us)");
}

std::shared_ptr<sim::AppExperiment>
Runner::experiment(const workload::AppProfile &profile,
                   const sim::ExperimentOptions &options)
{
    const std::string key = JobSpec{profile, {}, options}.appKey();
    std::shared_ptr<ExpSlot> slot;
    {
        std::lock_guard<std::mutex> guard(expLock_);
        auto &entry = experiments_[key];
        if (!entry)
            entry = std::make_shared<ExpSlot>();
        slot = entry;
    }
    // Construction (synthesis + trace emission) happens outside the
    // map lock so different apps build concurrently; call_once makes
    // same-app racers share one build.
    std::call_once(slot->once, [&] {
        slot->experiment =
            std::make_shared<sim::AppExperiment>(profile, options);
    });
    return slot->experiment;
}

BatchResult
Runner::run(const std::string &batchName,
            const std::vector<JobSpec> &jobs)
{
    BatchResult batch;
    std::string manifestName = batchName;
    if (options_.shard.enabled()) {
        // This slice owns a deterministic, hash-partitioned subset;
        // sibling processes cover the rest with no coordination.
        batch.jobs = filterShard(jobs, options_.shard);
        manifestName += ".shard-" +
                        std::to_string(options_.shard.index) + "-of-" +
                        std::to_string(options_.shard.count);
        batch.manifest.shardIndex = options_.shard.index;
        batch.manifest.shardCount = options_.shard.count;
        batch.manifest.shardTotalJobs = jobs.size();
    } else {
        batch.jobs = jobs;
    }
    const std::vector<JobSpec> &owned = batch.jobs;
    batch.outcomes.resize(owned.size());
    batch.manifest.batch = manifestName;
    batch.manifest.schema = kResultSchemaVersion;
    batch.manifest.gitDescribe = runner::gitDescribe();
    batch.manifest.startedUnix = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());

    const auto startWall = Clock::now();

    // Render and hash every job's ~2 KB canonical spec exactly once:
    // these strings were previously rebuilt per cache lookup, per
    // insert and — worst — per emergency-manifest snapshot, which made
    // snapshot publishing quadratic in the batch size.
    std::vector<std::string> specs(owned.size());
    std::vector<std::string> hashes(owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i) {
        specs[i] = owned[i].specString();
        hashes[i] = hashHexOf(hashSpecString(specs[i]));
    }

    // Emergency-manifest plumbing for a double Ctrl-C: after every
    // job completion a fresh manifest snapshot is published for the
    // signal handler to flush.  Superseded snapshots are retired, not
    // freed — the handler may still be reading one — and the retire
    // list must outlive the guard (declared first = destroyed last).
    std::vector<std::unique_ptr<std::string>> retiredSnapshots;
    std::mutex bookLock; // outcomes[] writes + snapshot builds
    SigintGuard sigint;

    auto buildJobRecords = [&](bool emergency) {
        std::vector<JobRecord> records;
        records.reserve(owned.size());
        for (std::size_t i = 0; i < owned.size(); ++i) {
            const JobOutcome &outcome = batch.outcomes[i];
            JobRecord record;
            record.app = owned[i].profile.name;
            record.variant = owned[i].variant.label;
            record.hash = hashes[i];
            record.ok = outcome.ok;
            record.fromCache = outcome.fromCache;
            record.attempts = outcome.attempts;
            record.wallSeconds = outcome.wallSeconds;
            record.simInsts = (outcome.ok && !outcome.fromCache)
                ? owned[i].options.traceInsts : 0;
            record.error = outcome.error;
            if (emergency && !outcome.ok && outcome.attempts == 0 &&
                outcome.error.empty()) {
                record.error = "interrupted before completion";
            }
            records.push_back(std::move(record));
        }
        return records;
    };

    // Caller holds bookLock.
    auto publishSnapshot = [&] {
        if (!options_.writeManifest)
            return;
        RunManifest snapshot = batch.manifest;
        snapshot.interrupted = true;
        snapshot.wallSeconds = secondsSince(startWall);
        snapshot.jobs = buildJobRecords(/*emergency=*/true);
        auto json = std::make_unique<std::string>(
            snapshot.toJson() + "\n");
        SigintGuard::publishEmergency(json.get());
        retiredSnapshots.push_back(std::move(json));
    };

    std::string manifestDir = options_.manifestDir;
    if (manifestDir.empty())
        manifestDir = cacheDir() + "/manifests";
    if (options_.writeManifest) {
        std::error_code ec;
        std::filesystem::create_directories(manifestDir, ec);
        SigintGuard::setEmergencyPath(
            manifestDir + "/" + manifestName + ".interrupted.json");
        std::lock_guard<std::mutex> guard(bookLock);
        publishSnapshot();
    }

    stats::TraceEventWriter *tsink = options_.trace;
    auto usSince = [&](Clock::time_point t) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                t - startWall)
                .count());
    };
    auto phaseSpan = [&](const char *name, Clock::time_point from) {
        if (tsink) {
            const std::uint64_t ts = usSince(from);
            tsink->complete(name, "phase", ts,
                            usSince(Clock::now()) - ts, 0, 0);
        }
    };
    if (tsink)
        tsink->setProcessName(0, "runner: " + batchName);

    // ---- Phase 1: serve cache hits --------------------------------------
    const auto lookupStart = Clock::now();
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < owned.size(); ++i) {
        if (options_.useCache && !options_.refresh) {
            if (auto cached = store_.lookup(hashes[i], specs[i])) {
                auto &outcome = batch.outcomes[i];
                outcome.ok = true;
                outcome.fromCache = true;
                outcome.result = *cached;
                continue;
            }
        }
        misses.push_back(i);
    }
    phaseSpan("cache-lookup", lookupStart);

    // ---- Phase 2: dedup identical in-flight jobs -------------------------
    // One representative simulates; duplicates copy its outcome.
    std::vector<std::size_t> unique;
    std::unordered_map<std::string, std::size_t> byHash;
    std::vector<std::vector<std::size_t>> duplicates;
    for (const std::size_t i : misses) {
        const std::string &hash = hashes[i];
        const auto it = byHash.find(hash);
        if (it == byHash.end()) {
            byHash.emplace(hash, unique.size());
            unique.push_back(i);
            duplicates.emplace_back();
        } else {
            duplicates[it->second].push_back(i);
        }
    }

    const bool progressEnabled = options_.progress.value_or(
        ::isatty(::fileno(stderr)) != 0);
    Progress progress(progressEnabled, manifestName, owned.size());
    std::atomic<std::size_t> doneCount{owned.size() - misses.size()};
    std::atomic<std::size_t> simulatedCount{0};
    progress.update(doneCount.load(), 0);

    // ---- Phase 3: run the misses on the pool -----------------------------
    const auto simStart = Clock::now();
    ThreadPool::shared().forEach(unique.size(), [&](std::size_t u) {
        const std::size_t i = unique[u];
        const JobSpec &spec = owned[i];
        JobOutcome outcome;
        const auto jobStart = Clock::now();

        if (SigintGuard::interrupted()) {
            outcome.error = "interrupted before start";
        } else {
            for (outcome.attempts = 1;
                 outcome.attempts <= options_.maxAttempts;
                 ++outcome.attempts) {
                try {
                    auto exp =
                        experiment(spec.profile, spec.options);
                    outcome.result =
                        options_.executor(spec, *exp);
                    outcome.ok = true;
                    break;
                } catch (const std::exception &e) {
                    outcome.error = e.what();
                } catch (...) {
                    outcome.error = "unknown exception";
                }
                if (SigintGuard::interrupted())
                    break;
            }
            if (outcome.attempts > options_.maxAttempts)
                outcome.attempts = options_.maxAttempts;
        }
        outcome.wallSeconds = secondsSince(jobStart);
        jobWall_.add(outcome.wallSeconds * 1e6);
        if (tsink) {
            tsink->complete(
                spec.profile.name + "/" + spec.variant.label, "job",
                usSince(jobStart),
                static_cast<std::uint64_t>(outcome.wallSeconds * 1e6),
                0, tsink->tidForCurrentThread(), "attempts",
                static_cast<double>(outcome.attempts));
        }

        if (outcome.ok && options_.useCache) {
            store_.insert(hashes[i], specs[i], spec.profile.name,
                          spec.variant.label, outcome.result);
        }

        {
            // bookLock serializes outcome writes with snapshot
            // builds, so the emergency manifest never reads a
            // half-written JobOutcome.
            std::lock_guard<std::mutex> guard(bookLock);
            batch.outcomes[i] = outcome; // slot i is ours alone
            for (const std::size_t dup : duplicates[u])
                batch.outcomes[dup] = outcome;
            publishSnapshot();
        }

        const std::size_t done =
            doneCount.fetch_add(1 + duplicates[u].size()) + 1 +
            duplicates[u].size();
        progress.update(done, simulatedCount.fetch_add(1) + 1);
    });
    progress.finish();
    if (!unique.empty())
        phaseSpan("simulate", simStart);

    // ---- Phase 4: manifest ----------------------------------------------
    const auto manifestStart = Clock::now();
    batch.manifest.wallSeconds = secondsSince(startWall);
    batch.manifest.interrupted = SigintGuard::interrupted();
    batch.manifest.runnerStats.cacheHits = store_.hits();
    batch.manifest.runnerStats.cacheMisses = store_.misses();
    batch.manifest.runnerStats.cacheInserts = store_.inserts();
    batch.manifest.runnerStats.cacheCollisions = store_.collisions();
    batch.manifest.runnerStats.poolTasks =
        ThreadPool::shared().tasksSubmitted();
    batch.manifest.runnerStats.poolThreads =
        ThreadPool::shared().threadCount();
    {
        const verify::Counters &vc = verify::counters();
        auto relaxed = [](const std::atomic<std::uint64_t> &v) {
            return v.load(std::memory_order_relaxed);
        };
        batch.manifest.runnerStats.verifyChecks =
            relaxed(vc.structuralChecks);
        batch.manifest.runnerStats.verifyFullChecks =
            relaxed(vc.fullChecks);
        batch.manifest.runnerStats.verifyErrors = relaxed(vc.errors);
        batch.manifest.runnerStats.verifyAdvisories =
            relaxed(vc.warnings) + relaxed(vc.advisories);
    }
    batch.manifest.jobs = buildJobRecords(/*emergency=*/false);
    if (options_.writeManifest) {
        batch.manifestPath = batch.manifest.write(manifestDir);
        if (!batch.manifest.interrupted) {
            // A completed batch supersedes any emergency manifest a
            // double Ctrl-C left behind on an earlier attempt.
            std::error_code ec;
            std::filesystem::remove(
                manifestDir + "/" + manifestName +
                    ".interrupted.json", ec);
        }
    }
    phaseSpan("manifest", manifestStart);

    critics_debug("runner", batch.manifest.summaryLine());

    for (const auto &record : batch.manifest.jobs) {
        if (!record.ok) {
            critics_warn("job failed: ", record.app, "/",
                         record.variant, " after ", record.attempts,
                         " attempt(s): ", record.error);
        }
    }

    if (batch.manifest.interrupted) {
        // Completed results are already flushed; leave a truthful
        // manifest behind and propagate the conventional exit code.
        std::fprintf(stderr,
                     "[%s] interrupted: %zu/%zu jobs done, results "
                     "flushed to %s\n",
                     manifestName.c_str(),
                     owned.size() - batch.manifest.failedCount(),
                     owned.size(), store_.path().c_str());
        std::exit(130);
    }
    return batch;
}

Runner &
sharedRunner()
{
    static Runner runner;
    return runner;
}

} // namespace critics::runner
