/**
 * @file
 * A JobSpec names one experiment design point: an app profile, the
 * simulation options and a variant.  Its canonical spec string covers
 * every knob that can change a RunResult, so the FNV-1a content hash
 * is a correct persistent-cache key: any change to the profile, the
 * options or the variant produces a new hash, while presentation-only
 * state (the variant label) does not.
 */

#ifndef CRITICS_RUNNER_JOB_HH
#define CRITICS_RUNNER_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workload/profile.hh"

namespace critics::runner
{

/**
 * Bump when RunResult semantics change (new fields, simulator fixes
 * that alter numbers, spec-string format changes): every cached record
 * from an older schema is ignored.
 */
constexpr int kResultSchemaVersion = 1;

/**
 * 64-bit FNV-1a over "critics-runner-schema-v<schema>|<spec>" — the
 * store's content hash for a raw spec string.  Exposed so the cache
 * admin (compact) can recompute a record's expected hash from its
 * stored spec and drop collision/orphan records whose `hash` field no
 * longer matches.
 */
std::uint64_t hashSpecString(const std::string &spec,
                             int schema = kResultSchemaVersion);

/** A 64-bit hash as a fixed-width lowercase hex string. */
std::string hashHexOf(std::uint64_t hash);

struct JobSpec
{
    workload::AppProfile profile;
    sim::Variant variant;
    sim::ExperimentOptions options;

    /**
     * Canonical `key=value;` rendering of every result-affecting knob.
     * Doubles are rendered as hex-floats so the string (and therefore
     * the hash) is bit-stable.
     */
    std::string specString() const;

    /** 64-bit FNV-1a over schema version + specString(). */
    std::uint64_t hash() const;

    /** hash() as a fixed-width lowercase hex string (the cache key). */
    std::string hashHex() const;

    /**
     * The subset of specString() that identifies the shared
     * AppExperiment (profile + options, no variant): jobs with equal
     * appKey() reuse one program/trace/mined profile.
     */
    std::string appKey() const;
};

/** Cross-product convenience: one job per (app, variant) pair. */
std::vector<JobSpec>
makeGrid(const std::vector<workload::AppProfile> &apps,
         const std::vector<sim::Variant> &variants,
         const sim::ExperimentOptions &options);

} // namespace critics::runner

#endif // CRITICS_RUNNER_JOB_HH
