#include "runner/manifest.hh"

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "runner/json.hh"
#include "runner/result_store.hh"

namespace critics::runner
{

std::size_t
RunManifest::cachedCount() const
{
    std::size_t count = 0;
    for (const auto &job : jobs)
        count += job.fromCache ? 1 : 0;
    return count;
}

std::size_t
RunManifest::simulatedCount() const
{
    std::size_t count = 0;
    for (const auto &job : jobs)
        count += (job.ok && !job.fromCache) ? 1 : 0;
    return count;
}

std::size_t
RunManifest::failedCount() const
{
    std::size_t count = 0;
    for (const auto &job : jobs)
        count += job.ok ? 0 : 1;
    return count;
}

std::uint64_t
RunManifest::totalSimInsts() const
{
    std::uint64_t insts = 0;
    for (const auto &job : jobs)
        insts += job.simInsts;
    return insts;
}

double
RunManifest::throughput() const
{
    return wallSeconds > 0.0
        ? static_cast<double>(totalSimInsts()) / wallSeconds : 0.0;
}

std::string
RunManifest::toJson() const
{
    JsonWriter w;
    w.beginObject()
        .field("schema", schema)
        .field("batch", batch)
        .field("git", gitDescribe)
        .field("startedUnix", startedUnix)
        .fieldReadable("wallSeconds", wallSeconds)
        .field("interrupted", interrupted);
    if (!traceId.empty())
        w.field("traceId", traceId);
    if (shardCount > 0) {
        w.beginObject("shard")
            .field("index", static_cast<std::uint64_t>(shardIndex))
            .field("count", static_cast<std::uint64_t>(shardCount))
            .field("totalJobs", shardTotalJobs)
            .endObject();
    }
    w.beginObject("totals")
        .field("jobs", static_cast<std::uint64_t>(jobs.size()))
        .field("cached", static_cast<std::uint64_t>(cachedCount()))
        .field("simulated",
               static_cast<std::uint64_t>(simulatedCount()))
        .field("failed", static_cast<std::uint64_t>(failedCount()))
        .field("simInsts", totalSimInsts())
        .fieldReadable("instsPerSec", throughput())
        .endObject();
    w.beginObject("runnerStats")
        .field("cacheHits", runnerStats.cacheHits)
        .field("cacheMisses", runnerStats.cacheMisses)
        .field("cacheInserts", runnerStats.cacheInserts)
        .field("cacheCollisions", runnerStats.cacheCollisions)
        .field("poolTasks", runnerStats.poolTasks)
        .field("poolThreads", runnerStats.poolThreads)
        .field("verifyChecks", runnerStats.verifyChecks)
        .field("verifyFullChecks", runnerStats.verifyFullChecks)
        .field("verifyErrors", runnerStats.verifyErrors)
        .field("verifyAdvisories", runnerStats.verifyAdvisories)
        .endObject();
    w.beginArray("jobs");
    for (const auto &job : jobs) {
        w.elementObject()
            .field("app", job.app)
            .field("variant", job.variant)
            .field("hash", job.hash)
            .field("ok", job.ok)
            .field("fromCache", job.fromCache)
            .field("attempts", job.attempts)
            .fieldReadable("wallSeconds", job.wallSeconds)
            .field("simInsts", job.simInsts)
            .fieldReadable("instsPerSec", job.instsPerSec())
            .field("error", job.error)
            .endObject();
    }
    w.endArray().endObject();
    return w.str();
}

std::string
RunManifest::write(const std::string &dir) const
{
    std::string outDir = dir;
    if (outDir.empty())
        outDir = cacheDir() + "/manifests";
    std::error_code ec;
    std::filesystem::create_directories(outDir, ec);
    const std::string path = outDir + "/" + batch + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return "";
    out << toJson() << "\n";
    return out ? path : "";
}

bool
RunManifest::read(const std::string &path, RunManifest &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto doc = parseJson(buffer.str());
    if (!doc || !doc->isObject())
        return false;

    out = RunManifest{};
    if (const JsonValue *v = doc->find("batch"))
        out.batch = v->asString().value_or("");
    if (const JsonValue *v = doc->find("git"))
        out.gitDescribe = v->asString().value_or("");
    if (const JsonValue *v = doc->find("schema"))
        out.schema = static_cast<int>(v->asInt().value_or(0));
    if (const JsonValue *v = doc->find("startedUnix"))
        out.startedUnix = v->asUint().value_or(0);
    if (const JsonValue *v = doc->find("wallSeconds"))
        out.wallSeconds = v->asDouble().value_or(0.0);
    if (const JsonValue *v = doc->find("interrupted"))
        out.interrupted = v->asBool().value_or(false);
    if (const JsonValue *v = doc->find("traceId"))
        out.traceId = v->asString().value_or("");
    // Optional (absent in manifests written before the counters).
    if (const JsonValue *rs = doc->find("runnerStats");
        rs && rs->isObject()) {
        auto uint = [&](const char *key) {
            const JsonValue *v = rs->find(key);
            return v ? v->asUint().value_or(0) : 0;
        };
        out.runnerStats.cacheHits = uint("cacheHits");
        out.runnerStats.cacheMisses = uint("cacheMisses");
        out.runnerStats.cacheInserts = uint("cacheInserts");
        out.runnerStats.cacheCollisions = uint("cacheCollisions");
        out.runnerStats.poolTasks = uint("poolTasks");
        out.runnerStats.poolThreads = uint("poolThreads");
        out.runnerStats.verifyChecks = uint("verifyChecks");
        out.runnerStats.verifyFullChecks = uint("verifyFullChecks");
        out.runnerStats.verifyErrors = uint("verifyErrors");
        out.runnerStats.verifyAdvisories = uint("verifyAdvisories");
    }
    // Optional (absent in unsharded manifests).
    if (const JsonValue *sh = doc->find("shard");
        sh && sh->isObject()) {
        auto uint = [&](const char *key) {
            const JsonValue *v = sh->find(key);
            return v ? v->asUint().value_or(0) : 0;
        };
        out.shardIndex = static_cast<unsigned>(uint("index"));
        out.shardCount = static_cast<unsigned>(uint("count"));
        out.shardTotalJobs = uint("totalJobs");
    }
    const JsonValue *jobs = doc->find("jobs");
    if (jobs && jobs->isArray()) {
        for (const auto &elem : jobs->elements) {
            if (!elem.isObject())
                continue;
            JobRecord job;
            if (const JsonValue *v = elem.find("app"))
                job.app = v->asString().value_or("");
            if (const JsonValue *v = elem.find("variant"))
                job.variant = v->asString().value_or("");
            if (const JsonValue *v = elem.find("hash"))
                job.hash = v->asString().value_or("");
            if (const JsonValue *v = elem.find("ok"))
                job.ok = v->asBool().value_or(false);
            if (const JsonValue *v = elem.find("fromCache"))
                job.fromCache = v->asBool().value_or(false);
            if (const JsonValue *v = elem.find("attempts")) {
                job.attempts =
                    static_cast<unsigned>(v->asUint().value_or(0));
            }
            if (const JsonValue *v = elem.find("wallSeconds"))
                job.wallSeconds = v->asDouble().value_or(0.0);
            if (const JsonValue *v = elem.find("simInsts"))
                job.simInsts = v->asUint().value_or(0);
            if (const JsonValue *v = elem.find("error"))
                job.error = v->asString().value_or("");
            out.jobs.push_back(std::move(job));
        }
    }
    return true;
}

std::string
RunManifest::summaryLine() const
{
    char shard[48] = {0};
    if (shardCount > 0) {
        std::snprintf(shard, sizeof(shard),
                      " | shard %u/%u of %llu jobs", shardIndex,
                      shardCount,
                      static_cast<unsigned long long>(shardTotalJobs));
    }
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "[%s] %zu jobs: %zu simulated, %zu cached, %zu failed | "
        "%.2fs wall | %.2fM sim-insts/s | git %s%s",
        batch.c_str(), jobs.size(), simulatedCount(), cachedCount(),
        failedCount(), wallSeconds, throughput() / 1e6,
        gitDescribe.c_str(), shard);
    return buf;
}

std::string
gitDescribe()
{
    std::FILE *pipe = ::popen(
        "git describe --always --dirty 2>/dev/null", "r");
    if (!pipe)
        return "unknown";
    std::array<char, 128> buf{};
    std::string out;
    while (std::fgets(buf.data(), buf.size(), pipe))
        out += buf.data();
    ::pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

} // namespace critics::runner
