#include "runner/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "stats/registry.hh"

namespace critics::runner
{

namespace
{

thread_local bool tlsInsideWorker = false;

std::size_t
defaultThreads()
{
    if (const char *env = std::getenv("CRITICS_THREADS"); env && *env) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 4;
}

} // namespace

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreads();
    threads_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
    threadCount64_ = threads_.size();
}

std::uint64_t
ThreadPool::tasksSubmitted() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return tasksSubmitted_;
}

void
ThreadPool::registerStats(stats::StatRegistry &reg,
                          const std::string &prefix) const
{
    // Counter views are read without the lock at export time; a 64-bit
    // aligned load can at worst be one task stale, which is fine for
    // observability.
    reg.addCounter(prefix + ".tasks", tasksSubmitted_,
                   "work units enqueued");
    reg.addCounter(prefix + ".threads", threadCount64_,
                   "worker threads");
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> guard(lock_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

bool
ThreadPool::insideWorker()
{
    return tlsInsideWorker;
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> guard(lock_);
        queue_.push_back(std::move(task));
        ++tasksSubmitted_;
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    tlsInsideWorker = true;
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> guard(lock_);
            wake_.wait(guard,
                       [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // task owns its error handling (see forEach)
    }
}

void
ThreadPool::forEach(std::size_t n,
                    const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    // Serial fallbacks: a single iteration, or a nested parallel
    // region on a worker thread (waiting for pool capacity from inside
    // the pool would deadlock once all workers did it).
    if (n == 1 || insideWorker()) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    struct Region
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> active{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex lock;
        std::condition_variable done;
    };
    auto region = std::make_shared<Region>();

    auto drain = [region, &body, n]() {
        while (true) {
            const std::size_t i = region->next.fetch_add(1);
            if (i >= n || region->failed.load())
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> guard(region->lock);
                if (!region->error)
                    region->error = std::current_exception();
                region->failed.store(true);
                return;
            }
        }
    };

    const std::size_t helpers =
        std::min<std::size_t>(n - 1, threadCount());
    region->active.store(helpers);
    for (std::size_t w = 0; w < helpers; ++w) {
        submit([region, drain]() {
            drain();
            std::lock_guard<std::mutex> guard(region->lock);
            if (--region->active == 0)
                region->done.notify_all();
        });
    }

    drain(); // the caller participates

    std::unique_lock<std::mutex> guard(region->lock);
    region->done.wait(guard,
                      [&region] { return region->active.load() == 0; });
    if (region->error)
        std::rethrow_exception(region->error);
}

} // namespace critics::runner
