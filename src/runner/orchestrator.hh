/**
 * @file
 * The experiment orchestrator.  A Runner takes a batch of JobSpecs
 * and returns one RunResult per spec, scheduling the work so the whole
 * batch costs as little as possible:
 *
 *   - cached specs (same content hash + schema) are served from the
 *     persistent JSONL store without touching the simulator;
 *   - identical in-flight jobs are deduplicated (one simulation, many
 *     outcomes);
 *   - jobs for the same app share one AppExperiment — the synthesized
 *     program, trace and mined profile are built once per app, not
 *     once per design point;
 *   - misses run on the shared thread pool with per-job exception
 *     capture and bounded retry, so one bad design point yields a
 *     failed-job record instead of aborting the batch;
 *   - completed results are flushed line-atomically as they finish
 *     (SIGINT loses at most the in-flight jobs), and each batch emits
 *     a manifest with provenance, per-job wall time and throughput.
 */

#ifndef CRITICS_RUNNER_ORCHESTRATOR_HH
#define CRITICS_RUNNER_ORCHESTRATOR_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runner/job.hh"
#include "runner/manifest.hh"
#include "runner/result_store.hh"
#include "runner/shard.hh"
#include "support/histogram.hh"

namespace critics::stats
{
class StatRegistry;
class TraceEventWriter;
}

namespace critics::runner
{

struct RunnerOptions
{
    /** Cache file; "" = cacheDir()/results.jsonl. */
    std::string cachePath;
    /** Read and write the persistent cache. */
    bool useCache = true;
    /** Ignore cached records (still re-writes fresh ones). */
    bool refresh = false;
    /** Total tries per job (1 = no retry). */
    unsigned maxAttempts = 2;
    /** Live done/total+ETA line on stderr; default: only on a TTY. */
    std::optional<bool> progress;
    /** Emit a manifest per batch. */
    bool writeManifest = true;
    /** Manifest directory; "" = cacheDir()/manifests. */
    std::string manifestDir;
    /**
     * Job body, for tests and future job kinds.  Defaults to
     * `experiment.run(spec.variant)`.
     */
    std::function<sim::RunResult(const JobSpec &,
                                 sim::AppExperiment &)>
        executor;
    /** Record batch phases and per-job spans as Chrome trace events
     *  (ts/dur in real microseconds); nullptr = off. */
    stats::TraceEventWriter *trace = nullptr;
    /**
     * When enabled, run() keeps only the jobs this slice owns (a
     * deterministic partition by content hash — see shard.hh), names
     * the manifest `<batch>.shard-K-of-N` and stamps it with the
     * shard and the batch's pre-filter job count.  BatchResult then
     * holds just the owned subset, so cross-variant helpers like
     * speedup() only make sense on unsharded runs.
     */
    ShardSpec shard;
};

/** What happened to one JobSpec of a batch. */
struct JobOutcome
{
    bool ok = false;
    bool fromCache = false;
    unsigned attempts = 0;
    double wallSeconds = 0.0;
    sim::RunResult result; ///< valid only when ok
    std::string error;     ///< last failure message when !ok
};

struct BatchResult
{
    std::vector<JobSpec> jobs;
    std::vector<JobOutcome> outcomes;
    RunManifest manifest;
    std::string manifestPath; ///< "" when not written

    bool allOk() const;

    /** Result for job i; fatal on a failed job (benches treat a
     *  missing design point as unrecoverable for that figure). */
    const sim::RunResult &result(std::size_t i) const;

    /** baselineCycles / variantCycles between two jobs of the batch. */
    double speedup(std::size_t baseIdx, std::size_t variantIdx) const;
};

class Runner
{
  public:
    explicit Runner(RunnerOptions options = {});
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Run a batch; `batchName` names the manifest. */
    BatchResult run(const std::string &batchName,
                    const std::vector<JobSpec> &jobs);

    /**
     * The shared AppExperiment for this profile+options (created on
     * first use).  Benches use this for offline-analysis statistics
     * (chain geometry, fanout fractions) that are not RunResults.
     */
    std::shared_ptr<sim::AppExperiment>
    experiment(const workload::AppProfile &profile,
               const sim::ExperimentOptions &options);

    ResultStore &store() { return store_; }
    const RunnerOptions &options() const { return options_; }

    /** Register the runner's infrastructure counters: the result
     *  cache under "runner.cache", the pool under "runner.pool", and
     *  the per-job wall-time latency histogram as "runner.jobWall".
     *  The Runner must outlive the registry. */
    void registerStats(stats::StatRegistry &reg) const;

  private:
    RunnerOptions options_;
    ResultStore store_;
    /** Wall time of every executed (non-cached) job, in µs. */
    LatencyHistogram jobWall_;

    std::mutex expLock_;
    struct ExpSlot;
    std::map<std::string, std::shared_ptr<ExpSlot>> experiments_;
};

/**
 * The process-wide Runner with default options — what the figure
 * benches and the CLI share so every batch in one invocation hits one
 * cache and one experiment pool.
 */
Runner &sharedRunner();

} // namespace critics::runner

#endif // CRITICS_RUNNER_ORCHESTRATOR_HH
