/**
 * @file
 * Deterministic batch sharding.  A ShardSpec names one slice of an
 * N-way partition; jobs are assigned to shards by their content hash,
 * so the partition is a pure function of the JobSpecs — every process
 * of a sharded run computes the same split with no coordination, any
 * job lands in exactly one shard, and re-running a shard is
 * idempotent.  The per-shard result stores (`results.shard-K.jsonl`)
 * are disjoint by construction, which is what makes `critics_cli
 * cache merge` a trivially-correct concatenation.
 */

#ifndef CRITICS_RUNNER_SHARD_HH
#define CRITICS_RUNNER_SHARD_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "runner/job.hh"

namespace critics::runner
{

/**
 * One slice of an N-way partition: shard `index` of `count`, 1-based
 * so `--shard 2/4` reads as "shard 2 of 4".  A default-constructed
 * ShardSpec (count == 0) means "unsharded".
 */
struct ShardSpec
{
    unsigned index = 0; ///< 1-based when enabled
    unsigned count = 0; ///< 0 = sharding disabled

    bool enabled() const { return count > 0; }

    /** "K/N", or "" when disabled. */
    std::string str() const;

    /**
     * Parse "K/N" with 1 <= K <= N; nullopt on malformed input
     * (non-numeric, K out of range, N == 0).
     */
    static std::optional<ShardSpec> parse(const std::string &text);
};

/**
 * The shard (1-based) that owns `spec` in an N-way partition.  Uses
 * the upper hash bits so shard assignment is independent of the cache
 * key's low-bit distribution.
 */
unsigned shardOf(const JobSpec &spec, unsigned count);

/** Indices of the jobs `shard` owns, in batch order; every index when
 *  the shard is disabled. */
std::vector<std::size_t> shardIndices(const std::vector<JobSpec> &jobs,
                                      const ShardSpec &shard);

/** The subset of `jobs` owned by `shard`, in batch order. */
std::vector<JobSpec> filterShard(const std::vector<JobSpec> &jobs,
                                 const ShardSpec &shard);

/** Conventional per-shard store filename, e.g.
 *  "<dir>/results.shard-2-of-4.jsonl". */
std::string shardStorePath(const std::string &dir,
                           const ShardSpec &shard);

} // namespace critics::runner

#endif // CRITICS_RUNNER_SHARD_HH
