/**
 * @file
 * Persistent experiment-result cache: an append-only JSONL file, one
 * record per completed job, keyed by the JobSpec content hash and the
 * result schema version.  Records round-trip every RunResult field
 * bit-exactly (doubles as hex-floats), so a warm run reproduces a cold
 * run's tables digit for digit.  Appends are flushed line-atomically,
 * which makes the store safe to interrupt: a truncated tail line is
 * skipped on the next load.
 */

#ifndef CRITICS_RUNNER_RESULT_STORE_HH
#define CRITICS_RUNNER_RESULT_STORE_HH

#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "runner/job.hh"

namespace critics::runner
{

class JsonValue;

/** Serialize every RunResult field (bit-exact doubles). */
std::string resultToJson(const sim::RunResult &result);

/** Inverse of resultToJson(); nullopt if any field is missing. */
std::optional<sim::RunResult> resultFromJson(const JsonValue &json);

/**
 * Directory holding the cache and the run manifests.  Resolution:
 * $CRITICS_CACHE_DIR if set, else `.critics-cache` under the current
 * working directory.
 */
std::string cacheDir();

class ResultStore
{
  public:
    /** Opens (and loads) `path`; "" means cacheDir()/results.jsonl. */
    explicit ResultStore(std::string path = "");
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Cached result for this spec, or nullopt.  A hash match with a
     * different stored spec string (a collision, or a hash-function
     * change) is treated as a miss.
     */
    std::optional<sim::RunResult> lookup(const JobSpec &spec) const;

    /** Append one completed job and flush the line to disk. */
    void insert(const JobSpec &spec, const sim::RunResult &result);

    std::size_t size() const;
    const std::string &path() const { return path_; }

    /** Delete the backing file and forget all records. */
    void clear();

  private:
    void load();

    struct Entry
    {
        std::string spec;
        sim::RunResult result;
    };

    mutable std::mutex lock_;
    std::string path_;
    std::unordered_map<std::string, Entry> entries_;
    std::FILE *out_ = nullptr; ///< lazily-opened append handle
};

} // namespace critics::runner

#endif // CRITICS_RUNNER_RESULT_STORE_HH
