/**
 * @file
 * Persistent experiment-result cache: an append-only JSONL file, one
 * record per completed job, keyed by the JobSpec content hash and the
 * result schema version.  Records round-trip every RunResult field
 * bit-exactly (doubles as hex-floats), so a warm run reproduces a cold
 * run's tables digit for digit.
 *
 * Multi-writer guarantee: each record is appended as a single write(2)
 * to an O_APPEND descriptor under an exclusive flock(), so any number
 * of processes (shards of one sweep, concurrent sweeps) may append to
 * the same file without ever interleaving partial lines — the kernel
 * serializes whole records.  The only non-atomic failure mode left is
 * a process dying mid-write, which leaves at most one truncated tail
 * line; loads skip it.  In-process, a mutex serializes appends across
 * the worker threads.
 *
 * Cache rewriters (`cache merge/compact/gc`) hold the same flock
 * across their temp+rename replacement of the file; an appender that
 * wakes up holding a lock on the replaced inode detects the swap
 * (path no longer names its inode) and reopens before writing, so no
 * record is ever appended to an orphaned file.
 */

#ifndef CRITICS_RUNNER_RESULT_STORE_HH
#define CRITICS_RUNNER_RESULT_STORE_HH

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "runner/job.hh"

namespace critics::json
{
class JsonValue;
}

namespace critics::stats
{
class StatRegistry;
}

namespace critics::runner
{

/** Serialize every RunResult field (bit-exact doubles). */
std::string resultToJson(const sim::RunResult &result);

/** Inverse of resultToJson(); nullopt if any field is missing. */
std::optional<sim::RunResult> resultFromJson(const json::JsonValue &json);

/**
 * Directory holding the cache and the run manifests.  Resolution:
 * $CRITICS_CACHE_DIR if set, else `.critics-cache` under the current
 * working directory.
 */
std::string cacheDir();

/** One record of a result-store file, with its provenance fields. */
struct ResultRecord
{
    std::string hash;
    std::string app;
    std::string variant;
    std::string spec;
    std::uint64_t writtenUnix = 0; ///< 0 in pre-timestamp records
    sim::RunResult result;
};

/**
 * Read every well-formed current-schema record of a results.jsonl
 * file, in file order with later duplicates of a hash superseding
 * earlier ones (the store's append semantics).  Unlike ResultStore,
 * this keeps the app/variant provenance — the key `critics_cli diff`
 * matches runs by, since a config change alters every content hash.
 */
std::vector<ResultRecord> readResultRecords(const std::string &path);

class ResultStore
{
  public:
    /** Opens (and loads) `path`; "" means cacheDir()/results.jsonl. */
    explicit ResultStore(std::string path = "");
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Cached result for this spec, or nullopt.  A hash match with a
     * different stored spec string (a collision, or a hash-function
     * change) is treated as a miss.
     */
    std::optional<sim::RunResult> lookup(const JobSpec &spec) const;

    /** Same lookup with the spec string and content hash precomputed
     *  by the caller: spec strings are ~2 KB canonical renders, and
     *  the orchestrator hashes each job exactly once per batch. */
    std::optional<sim::RunResult> lookup(const std::string &hashHex,
                                         const std::string &spec) const;

    /**
     * Append one completed job as one flock-guarded O_APPEND write,
     * so concurrent writer processes never tear each other's lines
     * (see the file comment for the exact guarantee).
     */
    void insert(const JobSpec &spec, const sim::RunResult &result);

    /** Same append with precomputed key strings (see lookup). */
    void insert(const std::string &hashHex, const std::string &spec,
                const std::string &app, const std::string &variant,
                const sim::RunResult &result);

    std::size_t size() const;
    const std::string &path() const { return path_; }

    // Lifetime counters (process-cumulative, not persisted).
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t inserts() const;
    /** Lookups whose hash matched but stored spec differed (a true
     *  collision, or a stale record from a hash-function change);
     *  `cache compact` drops such records from disk. */
    std::uint64_t collisions() const;

    /** Register cache counters under `prefix` (conventionally
     *  "runner.cache"); the store must outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix) const;

    /** Delete the backing file and forget all records. */
    void clear();

    /** Drop the in-memory index and re-read the backing file — how a
     *  long-running daemon picks up records appended by worker
     *  processes or a completed `cache merge`. */
    void reload();

  private:
    void load();
    void openLocked(); ///< open the append fd (caller holds lock_)

    struct Entry
    {
        std::string spec;
        sim::RunResult result;
    };

    mutable std::mutex lock_;
    std::string path_;
    std::unordered_map<std::string, Entry> entries_;
    int fd_ = -1; ///< lazily-opened O_APPEND descriptor
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
    std::uint64_t inserts_ = 0;
    mutable std::uint64_t collisions_ = 0;
};

} // namespace critics::runner

#endif // CRITICS_RUNNER_RESULT_STORE_HH
