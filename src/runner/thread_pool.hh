/**
 * @file
 * The process-wide worker pool behind both the runner's job scheduler
 * and critics::parallelFor.  Threads are created once and reused, so a
 * bench that issues dozens of parallel regions no longer pays a
 * spawn/join per region (the old parallelFor started fresh threads on
 * every call).
 */

#ifndef CRITICS_RUNNER_THREAD_POOL_HH
#define CRITICS_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace critics::stats
{
class StatRegistry;
}

namespace critics::runner
{

class ThreadPool
{
  public:
    /**
     * The shared pool (hardware_concurrency workers, or
     * $CRITICS_THREADS).  Created on first use, joined at exit.
     */
    static ThreadPool &shared();

    /** @param threads 0 means hardware_concurrency. */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t threadCount() const { return threads_.size(); }

    /** Work units enqueued via submit() over the pool's lifetime. */
    std::uint64_t tasksSubmitted() const;

    /** Register pool counters under `prefix` (e.g. "runner.pool");
     *  the pool must outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix) const;

    /** Enqueue one task; runs as soon as a worker frees up. */
    void submit(std::function<void()> task);

    /** True on a thread owned by *any* ThreadPool (nested parallel
     *  regions fall back to serial execution instead of deadlocking). */
    static bool insideWorker();

    /**
     * Run body(0..n-1) across the pool and the calling thread, which
     * participates instead of idling.  Returns when all n indices are
     * done; the first exception is rethrown (remaining indices are
     * abandoned once an error is seen).
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &body);

  private:
    void workerLoop();

    mutable std::mutex lock_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    std::uint64_t tasksSubmitted_ = 0;
    std::uint64_t threadCount64_ = 0; ///< threads_.size(), viewable
    bool stop_ = false;
};

} // namespace critics::runner

#endif // CRITICS_RUNNER_THREAD_POOL_HH
