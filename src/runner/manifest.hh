/**
 * @file
 * Run manifests: one JSON document per orchestrated batch recording
 * provenance (git describe, schema, config), per-job wall time and
 * simulation throughput, cache activity, and every failed-job record.
 * `scripts/reproduce_all.sh` and `critics_cli report` consume these to
 * gate on failures and to report suite timing in one format.
 */

#ifndef CRITICS_RUNNER_MANIFEST_HH
#define CRITICS_RUNNER_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace critics::runner
{

struct JobRecord
{
    std::string app;
    std::string variant;
    std::string hash;
    bool ok = false;
    bool fromCache = false;
    unsigned attempts = 0;
    double wallSeconds = 0.0;
    std::uint64_t simInsts = 0; ///< 0 for cache hits (nothing simulated)
    std::string error;          ///< empty when ok

    double
    instsPerSec() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(simInsts) / wallSeconds : 0.0;
    }
};

/** Runner-infrastructure counters snapshotted at batch end
 *  (process-cumulative: result-cache traffic, pool activity, and pass
 *  verification work — observability only, never part of a result). */
struct RunnerCounters
{
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheInserts = 0;
    std::uint64_t cacheCollisions = 0;
    std::uint64_t poolTasks = 0;
    std::uint64_t poolThreads = 0;
    std::uint64_t verifyChecks = 0;     ///< structural post-condition walks
    std::uint64_t verifyFullChecks = 0; ///< differential dataflow checks
    std::uint64_t verifyErrors = 0;
    std::uint64_t verifyAdvisories = 0; ///< warnings + advisory lints
};

struct RunManifest
{
    std::string batch;
    std::string gitDescribe;
    int schema = 0;
    std::uint64_t startedUnix = 0;
    double wallSeconds = 0.0;
    bool interrupted = false;
    /** 1-based slice of an N-way sharded run; 0/0 = unsharded.  The
     *  batch's full job count (before shard filtering) is
     *  shardTotalJobs, so merge tooling can check coverage. */
    unsigned shardIndex = 0;
    unsigned shardCount = 0;
    std::uint64_t shardTotalJobs = 0;
    /** Distributed-trace id for batches that ran through serve
     *  ("" for direct runs): the key tying this manifest to the spans
     *  in the daemon's merged Chrome trace. */
    std::string traceId;
    RunnerCounters runnerStats;
    std::vector<JobRecord> jobs;

    std::size_t cachedCount() const;
    std::size_t simulatedCount() const;
    std::size_t failedCount() const;
    std::uint64_t totalSimInsts() const;
    /** Aggregate simulated-instructions/sec over the whole batch. */
    double throughput() const;

    std::string toJson() const;

    /** Write to `<dir>/<batch>.json` (dir defaults to
     *  cacheDir()/manifests); returns the path, "" on failure. */
    std::string write(const std::string &dir = "") const;

    /** Parse a manifest file; false on read/parse failure. */
    static bool read(const std::string &path, RunManifest &out);

    /** One-line human summary (per-batch timing in a shared format). */
    std::string summaryLine() const;
};

/** `git describe --always --dirty`, or "unknown". */
std::string gitDescribe();

} // namespace critics::runner

#endif // CRITICS_RUNNER_MANIFEST_HH
