#include "runner/job.hh"

#include <cstdio>
#include <sstream>

#include "runner/json.hh"

namespace critics::runner
{

namespace
{

class SpecBuilder
{
  public:
    void
    add(const char *key, const std::string &value)
    {
        os_ << key << '=' << value << ';';
    }

    void
    add(const char *key, std::uint64_t value)
    {
        os_ << key << '=' << value << ';';
    }

    void
    add(const char *key, unsigned value)
    {
        os_ << key << '=' << value << ';';
    }

    void
    add(const char *key, bool value)
    {
        os_ << key << '=' << (value ? 1 : 0) << ';';
    }

    void
    add(const char *key, double value)
    {
        os_ << key << '=' << hexFloat(value) << ';';
    }

    void
    add(const char *key, const std::vector<double> &values)
    {
        os_ << key << '=';
        for (const double v : values)
            os_ << hexFloat(v) << ',';
        os_ << ';';
    }

    std::string str() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

void
appendProfile(SpecBuilder &b, const workload::AppProfile &p)
{
    b.add("name", p.name);
    b.add("suite", static_cast<unsigned>(p.suite));
    b.add("seed", p.seed);
    b.add("numFunctions", p.numFunctions);
    b.add("dispatchTargets", p.dispatchTargets);
    b.add("minBlocksPerFn", p.minBlocksPerFn);
    b.add("maxBlocksPerFn", p.maxBlocksPerFn);
    b.add("minBlockInsts", p.minBlockInsts);
    b.add("maxBlockInsts", p.maxBlockInsts);
    b.add("funcZipfSkew", p.funcZipfSkew);
    b.add("callDensity", p.callDensity);
    b.add("loopBackProb", p.loopBackProb);
    b.add("loopContinueBias", p.loopContinueBias);
    b.add("unpredictableBranchFrac", p.unpredictableBranchFrac);
    b.add("wCritChain", p.wCritChain);
    b.add("wBroadcast", p.wBroadcast);
    b.add("wSerial", p.wSerial);
    b.add("wIndependent", p.wIndependent);
    b.add("chainCritNodesW", p.chainCritNodesW);
    b.add("chainGapW", p.chainGapW);
    b.add("critFanoutW", p.critFanoutW);
    b.add("critFanoutBase", p.critFanoutBase);
    b.add("critFanoutStep", p.critFanoutStep);
    b.add("serialLenW", p.serialLenW);
    b.add("loopCarriedFrac", p.loopCarriedFrac);
    b.add("critNodeLoadFrac", p.critNodeLoadFrac);
    b.add("fracLoad", p.fracLoad);
    b.add("fracStore", p.fracStore);
    b.add("fracMul", p.fracMul);
    b.add("fracDiv", p.fracDiv);
    b.add("fracFpAdd", p.fracFpAdd);
    b.add("fracFpMul", p.fracFpMul);
    b.add("fracFpDiv", p.fracFpDiv);
    b.add("predicatedFrac", p.predicatedFrac);
    b.add("smallImmFrac", p.smallImmFrac);
    b.add("highRegFrac", p.highRegFrac);
    b.add("hotRegionBytes", p.hotRegionBytes);
    b.add("coldRegionBytes", p.coldRegionBytes);
    b.add("strideRegionBytes", p.strideRegionBytes);
    b.add("strideStep", p.strideStep);
    b.add("memHotFrac", p.memHotFrac);
    b.add("memStrideFrac", p.memStrideFrac);
}

void
appendOptions(SpecBuilder &b, const sim::ExperimentOptions &o)
{
    b.add("traceInsts", o.traceInsts);
    b.add("warmupFraction", o.warmupFraction);
    b.add("profileFraction", o.profileFraction);
    b.add("crit.window", o.crit.window);
    b.add("crit.fanoutThreshold", o.crit.fanoutThreshold);
    b.add("crit.chainCritThreshold", o.crit.chainCritThreshold);
    b.add("crit.maxChainLen", o.crit.maxChainLen);
}

void
appendVariant(SpecBuilder &b, const sim::Variant &v)
{
    // Note: v.label is deliberately excluded — it is presentation-only,
    // so identically-configured jobs dedup regardless of how a bench
    // names them.
    b.add("transform", static_cast<unsigned>(v.transform));
    b.add("switchMode", static_cast<unsigned>(v.switchMode));
    b.add("maxChainLen", v.maxChainLen);
    b.add("exactChainLen", v.exactChainLen);
    b.add("hasProfileFraction", v.profileFraction.has_value());
    b.add("variantProfileFraction", v.profileFraction.value_or(0.0));
    b.add("perfectBranch", v.perfectBranch);
    b.add("efetch", v.efetch);
    b.add("icache4x", v.icache4x);
    b.add("doubleFrontend", v.doubleFrontend);
    b.add("aluPrio", v.aluPrio);
    b.add("backendPrio", v.backendPrio);
    b.add("criticalLoadPrefetch", v.criticalLoadPrefetch);
}

} // namespace

std::string
JobSpec::appKey() const
{
    SpecBuilder b;
    appendProfile(b, profile);
    appendOptions(b, options);
    return b.str();
}

std::string
JobSpec::specString() const
{
    SpecBuilder b;
    appendProfile(b, profile);
    appendOptions(b, options);
    appendVariant(b, variant);
    return b.str();
}

std::uint64_t
hashSpecString(const std::string &spec, int schema)
{
    const std::string keyed = "critics-runner-schema-v" +
                              std::to_string(schema) + "|" + spec;
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV offset basis
    for (const char c : keyed) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL; // FNV prime
    }
    return h;
}

std::string
hashHexOf(std::uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::uint64_t
JobSpec::hash() const
{
    return hashSpecString(specString());
}

std::string
JobSpec::hashHex() const
{
    return hashHexOf(hash());
}

std::vector<JobSpec>
makeGrid(const std::vector<workload::AppProfile> &apps,
         const std::vector<sim::Variant> &variants,
         const sim::ExperimentOptions &options)
{
    std::vector<JobSpec> jobs;
    jobs.reserve(apps.size() * variants.size());
    for (const auto &app : apps) {
        for (const auto &variant : variants)
            jobs.push_back(JobSpec{app, variant, options});
    }
    return jobs;
}

} // namespace critics::runner
