/**
 * @file
 * Compatibility shim: the JSON reader/writer moved to support/json.hh
 * (namespace critics::json) so sim/, stats/ and runner/ share one
 * implementation — in particular a single jsonEscape().  Existing
 * critics::runner call sites keep working through these aliases.
 */

#ifndef CRITICS_RUNNER_JSON_HH
#define CRITICS_RUNNER_JSON_HH

#include "support/json.hh"

namespace critics::runner
{

using json::JsonValue;
using json::JsonWriter;
using json::hexFloat;
using json::jsonEscape;
using json::parseJson;

} // namespace critics::runner

#endif // CRITICS_RUNNER_JSON_HH
