#include "runner/sigint.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

namespace critics::runner
{

namespace
{

std::atomic<int> sigintCount{0};
std::atomic<const std::string *> emergencyJson{nullptr};
char emergencyPath[1024] = {0};

void
onSigint(int)
{
    if (sigintCount.fetch_add(1) + 1 < 2)
        return; // first Ctrl-C: flag only, workers drain

    // Second Ctrl-C: the user wants out *now*.  Flush the latest
    // manifest snapshot with async-signal-safe calls only, then die
    // under the default disposition (SIGINT stays blocked until this
    // handler returns, so the re-raise delivers on return).
    const std::string *json = emergencyJson.load();
    if (json && emergencyPath[0] != '\0') {
        const int fd = ::open(emergencyPath,
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            const char *data = json->data();
            std::size_t left = json->size();
            while (left > 0) {
                const ssize_t wrote = ::write(fd, data, left);
                if (wrote <= 0)
                    break;
                data += wrote;
                left -= static_cast<std::size_t>(wrote);
            }
            ::fsync(fd);
            ::close(fd);
        }
    }
    ::signal(SIGINT, SIG_DFL);
    ::raise(SIGINT);
}

} // namespace

SigintGuard::SigintGuard()
{
    sigintCount.store(0);
    emergencyJson.store(nullptr);
    emergencyPath[0] = '\0';
    struct sigaction action{};
    action.sa_handler = onSigint;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &previous_);
}

SigintGuard::~SigintGuard()
{
    ::sigaction(SIGINT, &previous_, nullptr);
    emergencyJson.store(nullptr);
    emergencyPath[0] = '\0';
}

bool
SigintGuard::interrupted()
{
    return sigintCount.load() > 0;
}

void
SigintGuard::setEmergencyPath(const std::string &path)
{
    std::strncpy(emergencyPath, path.c_str(),
                 sizeof(emergencyPath) - 1);
    emergencyPath[sizeof(emergencyPath) - 1] = '\0';
}

void
SigintGuard::publishEmergency(const std::string *json)
{
    emergencyJson.store(json);
}

} // namespace critics::runner
