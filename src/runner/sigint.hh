/**
 * @file
 * SIGINT handling for the orchestrator.  The first Ctrl-C only sets a
 * flag: workers stop picking up new jobs, completed results are
 * already on disk, and the batch epilogue writes an `interrupted`
 * manifest.  Between that flag-set and the worker drain the old
 * disposition used to be one keypress away — a second Ctrl-C would
 * re-enter the default handler and kill the process mid-epilogue with
 * no manifest at all.  Now the second SIGINT force-flushes the latest
 * published manifest snapshot (open/write/fsync only — every call in
 * the handler is async-signal-safe) and then re-raises under the
 * default disposition, so even an impatient double-interrupt leaves a
 * truthful record of what finished.
 */

#ifndef CRITICS_RUNNER_SIGINT_HH
#define CRITICS_RUNNER_SIGINT_HH

#include <csignal>
#include <string>

namespace critics::runner
{

/**
 * Installs the orchestrator's SIGINT handler for the duration of a
 * batch and restores the previous disposition on destruction.  One
 * live guard per process (batches never nest across threads).
 */
class SigintGuard
{
  public:
    SigintGuard();
    ~SigintGuard();

    SigintGuard(const SigintGuard &) = delete;
    SigintGuard &operator=(const SigintGuard &) = delete;

    /** At least one SIGINT has arrived. */
    static bool interrupted();

    /**
     * Where a second SIGINT force-writes the emergency manifest.
     * Truncated to a fixed internal buffer; "" disables the flush.
     * Call before workers start (it is read from the handler).
     */
    static void setEmergencyPath(const std::string &path);

    /**
     * Publish the manifest snapshot a second SIGINT would flush.  The
     * pointed-to string must stay alive until the next publish has
     * *returned* or the guard is destroyed — the handler may read the
     * previous snapshot concurrently, so callers retain superseded
     * strings (the orchestrator keeps them per batch).
     */
    static void publishEmergency(const std::string *json);

  private:
    struct sigaction previous_{};
};

} // namespace critics::runner

#endif // CRITICS_RUNNER_SIGINT_HH
