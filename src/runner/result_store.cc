#include "runner/result_store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "runner/json.hh"
#include "stats/registry.hh"
#include "support/logging.hh"

namespace critics::runner
{

namespace
{

void
writeStage(JsonWriter &w, const char *key,
           const cpu::StageBreakdown &s)
{
    w.beginObject(key)
        .field("fetch", s.fetch)
        .field("decode", s.decode)
        .field("issueWait", s.issueWait)
        .field("execute", s.execute)
        .field("commitWait", s.commitWait)
        .field("insts", s.insts)
        .endObject();
}

void
writeCache(JsonWriter &w, const char *key, const mem::CacheStats &c)
{
    w.beginObject(key)
        .field("accesses", c.accesses)
        .field("misses", c.misses)
        .field("prefetchFills", c.prefetchFills)
        .field("prefetchHits", c.prefetchHits)
        .endObject();
}

template <typename T>
bool
readUint(const JsonValue &obj, const char *key, T &out)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return false;
    const auto parsed = v->asUint();
    if (!parsed)
        return false;
    out = static_cast<T>(*parsed);
    return true;
}

bool
readDouble(const JsonValue &obj, const char *key, double &out)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return false;
    const auto parsed = v->asDouble();
    if (!parsed)
        return false;
    out = *parsed;
    return true;
}

bool
readStage(const JsonValue &parent, const char *key,
          cpu::StageBreakdown &s)
{
    const JsonValue *obj = parent.find(key);
    if (!obj || !obj->isObject())
        return false;
    return readDouble(*obj, "fetch", s.fetch) &&
           readDouble(*obj, "decode", s.decode) &&
           readDouble(*obj, "issueWait", s.issueWait) &&
           readDouble(*obj, "execute", s.execute) &&
           readDouble(*obj, "commitWait", s.commitWait) &&
           readUint(*obj, "insts", s.insts);
}

bool
readCache(const JsonValue &parent, const char *key, mem::CacheStats &c)
{
    const JsonValue *obj = parent.find(key);
    if (!obj || !obj->isObject())
        return false;
    return readUint(*obj, "accesses", c.accesses) &&
           readUint(*obj, "misses", c.misses) &&
           readUint(*obj, "prefetchFills", c.prefetchFills) &&
           readUint(*obj, "prefetchHits", c.prefetchHits);
}

} // namespace

std::string
resultToJson(const sim::RunResult &result)
{
    const cpu::CpuStats &c = result.cpu;
    JsonWriter w;
    w.beginObject();

    w.beginObject("cpu")
        .field("cycles", c.cycles)
        .field("committed", c.committed)
        .field("stallForIIcache", c.stallForIIcache)
        .field("stallForIRedirect", c.stallForIRedirect)
        .field("stallForRd", c.stallForRd)
        .field("decodeCdpBubbles", c.decodeCdpBubbles)
        .field("fetchedBytes", c.fetchedBytes)
        .field("condBranches", c.condBranches)
        .field("mispredicts", c.mispredicts)
        .field("fetchWindows", c.fetchWindows)
        .field("efetchAccuracy", c.efetchAccuracy);
    writeStage(w, "all", c.all);
    writeStage(w, "crit", c.crit);
    w.beginObject("mem");
    writeCache(w, "icache", c.mem.icache);
    writeCache(w, "dcache", c.mem.dcache);
    writeCache(w, "l2", c.mem.l2);
    w.beginObject("dram")
        .field("reads", c.mem.dram.reads)
        .field("rowHits", c.mem.dram.rowHits)
        .field("rowConflicts", c.mem.dram.rowConflicts)
        .field("activates", c.mem.dram.activates)
        .field("totalLatency", c.mem.dram.totalLatency)
        .endObject();
    w.beginObject("stride")
        .field("trains", c.mem.stride.trains)
        .field("issued", c.mem.stride.issued)
        .endObject();
    w.field("storeAccesses", c.mem.storeAccesses);
    w.endObject(); // mem
    w.endObject(); // cpu

    const energy::EnergyBreakdown &e = result.energy;
    w.beginObject("energy")
        .field("cpuCore", e.cpuCore)
        .field("icache", e.icache)
        .field("dcache", e.dcache)
        .field("l2", e.l2)
        .field("dram", e.dram)
        .field("socRest", e.socRest)
        .endObject();

    const compiler::PassStats &p = result.pass;
    w.beginObject("pass")
        .field("chainsAttempted", p.chainsAttempted)
        .field("chainsTransformed", p.chainsTransformed)
        .field("hoistFailures", p.hoistFailures)
        .field("localRenames", p.localRenames)
        .field("blockedRaw", p.blockedRaw)
        .field("blockedMem", p.blockedMem)
        .field("blockedCtl", p.blockedCtl)
        .field("blockedRename", p.blockedRename)
        .field("instsConverted", p.instsConverted)
        .field("instsExpanded", p.instsExpanded)
        .field("cdpsInserted", p.cdpsInserted)
        .field("switchBranchesInserted", p.switchBranchesInserted)
        .endObject();

    w.field("selectionCoverage", result.selectionCoverage)
        .field("staticThumbFraction", result.staticThumbFraction)
        .field("dynThumbFraction", result.dynThumbFraction)
        .endObject();
    return w.str();
}

std::optional<sim::RunResult>
resultFromJson(const JsonValue &json)
{
    if (!json.isObject())
        return std::nullopt;
    sim::RunResult r;

    const JsonValue *cpu = json.find("cpu");
    if (!cpu || !cpu->isObject())
        return std::nullopt;
    cpu::CpuStats &c = r.cpu;
    if (!(readUint(*cpu, "cycles", c.cycles) &&
          readUint(*cpu, "committed", c.committed) &&
          readUint(*cpu, "stallForIIcache", c.stallForIIcache) &&
          readUint(*cpu, "stallForIRedirect", c.stallForIRedirect) &&
          readUint(*cpu, "stallForRd", c.stallForRd) &&
          readUint(*cpu, "decodeCdpBubbles", c.decodeCdpBubbles) &&
          readUint(*cpu, "fetchedBytes", c.fetchedBytes) &&
          readUint(*cpu, "condBranches", c.condBranches) &&
          readUint(*cpu, "mispredicts", c.mispredicts) &&
          readUint(*cpu, "fetchWindows", c.fetchWindows) &&
          readDouble(*cpu, "efetchAccuracy", c.efetchAccuracy) &&
          readStage(*cpu, "all", c.all) &&
          readStage(*cpu, "crit", c.crit))) {
        return std::nullopt;
    }
    const JsonValue *m = cpu->find("mem");
    if (!m || !m->isObject())
        return std::nullopt;
    if (!(readCache(*m, "icache", c.mem.icache) &&
          readCache(*m, "dcache", c.mem.dcache) &&
          readCache(*m, "l2", c.mem.l2) &&
          readUint(*m, "storeAccesses", c.mem.storeAccesses))) {
        return std::nullopt;
    }
    const JsonValue *dram = m->find("dram");
    const JsonValue *stride = m->find("stride");
    if (!dram || !dram->isObject() || !stride || !stride->isObject())
        return std::nullopt;
    if (!(readUint(*dram, "reads", c.mem.dram.reads) &&
          readUint(*dram, "rowHits", c.mem.dram.rowHits) &&
          readUint(*dram, "rowConflicts", c.mem.dram.rowConflicts) &&
          readUint(*dram, "activates", c.mem.dram.activates) &&
          readUint(*dram, "totalLatency", c.mem.dram.totalLatency) &&
          readUint(*stride, "trains", c.mem.stride.trains) &&
          readUint(*stride, "issued", c.mem.stride.issued))) {
        return std::nullopt;
    }

    const JsonValue *energy = json.find("energy");
    if (!energy || !energy->isObject())
        return std::nullopt;
    energy::EnergyBreakdown &e = r.energy;
    if (!(readDouble(*energy, "cpuCore", e.cpuCore) &&
          readDouble(*energy, "icache", e.icache) &&
          readDouble(*energy, "dcache", e.dcache) &&
          readDouble(*energy, "l2", e.l2) &&
          readDouble(*energy, "dram", e.dram) &&
          readDouble(*energy, "socRest", e.socRest))) {
        return std::nullopt;
    }

    const JsonValue *pass = json.find("pass");
    if (!pass || !pass->isObject())
        return std::nullopt;
    compiler::PassStats &p = r.pass;
    if (!(readUint(*pass, "chainsAttempted", p.chainsAttempted) &&
          readUint(*pass, "chainsTransformed", p.chainsTransformed) &&
          readUint(*pass, "hoistFailures", p.hoistFailures) &&
          readUint(*pass, "localRenames", p.localRenames) &&
          readUint(*pass, "blockedRaw", p.blockedRaw) &&
          readUint(*pass, "blockedMem", p.blockedMem) &&
          readUint(*pass, "blockedCtl", p.blockedCtl) &&
          readUint(*pass, "blockedRename", p.blockedRename) &&
          readUint(*pass, "instsConverted", p.instsConverted) &&
          readUint(*pass, "instsExpanded", p.instsExpanded) &&
          readUint(*pass, "cdpsInserted", p.cdpsInserted) &&
          readUint(*pass, "switchBranchesInserted",
                   p.switchBranchesInserted))) {
        return std::nullopt;
    }

    if (!(readDouble(json, "selectionCoverage", r.selectionCoverage) &&
          readDouble(json, "staticThumbFraction",
                     r.staticThumbFraction) &&
          readDouble(json, "dynThumbFraction", r.dynThumbFraction))) {
        return std::nullopt;
    }
    return r;
}

std::vector<ResultRecord>
readResultRecords(const std::string &path)
{
    std::vector<ResultRecord> records;
    std::unordered_map<std::string, std::size_t> byHash;
    std::ifstream in(path);
    if (!in)
        return records;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto doc = parseJson(line);
        if (!doc || !doc->isObject())
            continue;
        const JsonValue *schema = doc->find("schema");
        if (!schema || schema->asInt() != kResultSchemaVersion)
            continue;
        const JsonValue *result = doc->find("result");
        if (!result)
            continue;
        auto parsed = resultFromJson(*result);
        if (!parsed)
            continue;
        ResultRecord record;
        auto str = [&](const char *key) {
            const JsonValue *v = doc->find(key);
            return v ? v->asString().value_or("") : std::string{};
        };
        record.hash = str("hash");
        record.app = str("app");
        record.variant = str("variant");
        record.spec = str("spec");
        if (const JsonValue *v = doc->find("writtenUnix"))
            record.writtenUnix = v->asUint().value_or(0);
        record.result = *parsed;
        const auto it = byHash.find(record.hash);
        if (it != byHash.end())
            records[it->second] = std::move(record); // last wins
        else {
            byHash.emplace(record.hash, records.size());
            records.push_back(std::move(record));
        }
    }
    return records;
}

std::string
cacheDir()
{
    if (const char *env = std::getenv("CRITICS_CACHE_DIR");
        env && *env) {
        return env;
    }
    return ".critics-cache";
}

ResultStore::ResultStore(std::string path) : path_(std::move(path))
{
    if (path_.empty())
        path_ = cacheDir() + "/results.jsonl";
    load();
}

ResultStore::~ResultStore()
{
    std::lock_guard<std::mutex> guard(lock_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
ResultStore::openLocked()
{
    const auto dir = std::filesystem::path(path_).parent_path();
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        critics_warn("cannot open result cache ", path_,
                     " for append; results will not persist");
    }
}

void
ResultStore::reload()
{
    std::lock_guard<std::mutex> guard(lock_);
    entries_.clear();
    load();
}

void
ResultStore::load()
{
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    std::size_t malformed = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto record = parseJson(line);
        if (!record || !record->isObject()) {
            ++malformed; // e.g. a line truncated by an interrupt
            continue;
        }
        const JsonValue *schema = record->find("schema");
        if (!schema || schema->asInt() != kResultSchemaVersion)
            continue;
        const JsonValue *hash = record->find("hash");
        const JsonValue *spec = record->find("spec");
        const JsonValue *result = record->find("result");
        if (!hash || !spec || !result)
            continue;
        const auto hashText = hash->asString();
        const auto specText = spec->asString();
        if (!hashText || !specText)
            continue;
        auto parsed = resultFromJson(*result);
        if (!parsed) {
            ++malformed;
            continue;
        }
        // Last record wins: later appends supersede earlier ones.
        entries_[*hashText] = Entry{*specText, *parsed};
    }
    if (malformed > 0) {
        critics_warn("result cache ", path_, ": skipped ", malformed,
                     " malformed record(s)");
    }
}

std::optional<sim::RunResult>
ResultStore::lookup(const JobSpec &spec) const
{
    return lookup(spec.hashHex(), spec.specString());
}

std::optional<sim::RunResult>
ResultStore::lookup(const std::string &hashHex,
                    const std::string &spec) const
{
    std::lock_guard<std::mutex> guard(lock_);
    const auto it = entries_.find(hashHex);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    if (it->second.spec != spec) {
        // Hash collision (or a stale record from a hash-function
        // change): a miss, counted separately so `cache compact` and
        // the runner.cache stats can surface the rot.
        ++collisions_;
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second.result;
}

void
ResultStore::insert(const JobSpec &spec, const sim::RunResult &result)
{
    insert(spec.hashHex(), spec.specString(), spec.profile.name,
           spec.variant.label, result);
}

void
ResultStore::insert(const std::string &hashHex, const std::string &spec,
                    const std::string &app, const std::string &variant,
                    const sim::RunResult &result)
{
    std::lock_guard<std::mutex> guard(lock_);
    if (fd_ < 0)
        openLocked();

    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    JsonWriter w;
    w.beginObject()
        .field("schema", kResultSchemaVersion)
        .field("hash", hashHex)
        .field("app", app)
        .field("variant", variant)
        .field("writtenUnix", now)
        .field("spec", spec);
    const std::string record =
        w.str() + ",\"result\":" + resultToJson(result) + "}\n";

    entries_[hashHex] = Entry{spec, result};
    ++inserts_;
    if (fd_ >= 0) {
        // One record = one write(2) to an O_APPEND descriptor under
        // an exclusive flock: concurrent writer processes (shards,
        // parallel sweeps) serialize whole lines and can never
        // interleave partial ones.  A crash mid-write leaves at most
        // one truncated tail line, which loads skip.
        ::flock(fd_, LOCK_EX);
        // A cache rewriter (merge/compact/gc) holds this same lock
        // across its temp+rename; if one ran while we were blocked,
        // this descriptor now points at the orphaned old inode and
        // the append would vanish with it.  Revalidate that the path
        // still names our inode, reopening (and re-locking) if not.
        for (int attempt = 0; attempt < 8 && fd_ >= 0; ++attempt) {
            struct stat viaFd{}, viaPath{};
            if (::fstat(fd_, &viaFd) != 0)
                break;
            if (::stat(path_.c_str(), &viaPath) == 0 &&
                viaFd.st_dev == viaPath.st_dev &&
                viaFd.st_ino == viaPath.st_ino) {
                break; // still the live file
            }
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
            fd_ = -1;
            openLocked();
            if (fd_ >= 0)
                ::flock(fd_, LOCK_EX);
        }
    }
    if (fd_ >= 0) {
        const char *data = record.data();
        std::size_t left = record.size();
        while (left > 0) {
            const ssize_t wrote = ::write(fd_, data, left);
            if (wrote <= 0) {
                if (wrote < 0 && errno == EINTR)
                    continue;
                critics_warn("short write to result cache ", path_,
                             "; record may be truncated");
                break;
            }
            data += wrote;
            left -= static_cast<std::size_t>(wrote);
        }
        ::flock(fd_, LOCK_UN);
    }
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return entries_.size();
}

std::uint64_t
ResultStore::hits() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return hits_;
}

std::uint64_t
ResultStore::misses() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return misses_;
}

std::uint64_t
ResultStore::inserts() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return inserts_;
}

std::uint64_t
ResultStore::collisions() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return collisions_;
}

void
ResultStore::registerStats(stats::StatRegistry &reg,
                           const std::string &prefix) const
{
    // Counter views are read without the lock at export time; a stale
    // 64-bit aligned load is harmless for observability.
    reg.addCounter(prefix + ".hits", hits_, "cache hits served");
    reg.addCounter(prefix + ".misses", misses_, "cache misses");
    reg.addCounter(prefix + ".inserts", inserts_, "records appended");
    reg.addCounter(prefix + ".collisions", collisions_,
                   "hash matches with a different stored spec");
    reg.addFormula(prefix + ".entries",
                   [this] { return static_cast<double>(size()); },
                   "records resident");
}

void
ResultStore::clear()
{
    std::lock_guard<std::mutex> guard(lock_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    entries_.clear();
}

} // namespace critics::runner
