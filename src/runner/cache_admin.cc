#include "runner/cache_admin.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unordered_map>

#include "runner/json.hh"
#include "runner/result_store.hh"
#include "support/logging.hh"

namespace critics::runner
{

namespace
{

/** One store line, classified but with its bytes kept verbatim. */
struct ScannedLine
{
    enum class Kind { Good, OldSchema, Malformed };

    std::string line; ///< exact bytes, newline stripped
    std::string hash;
    std::uint64_t writtenUnix = 0;
    Kind kind = Kind::Malformed;
    bool orphan = false; ///< hash field != hash(spec)
};

ScannedLine
scanLine(std::string line)
{
    ScannedLine scanned;
    scanned.line = std::move(line);
    const auto doc = parseJson(scanned.line);
    if (!doc || !doc->isObject())
        return scanned;
    const JsonValue *schema = doc->find("schema");
    if (!schema || !schema->asInt()) {
        return scanned;
    }
    if (*schema->asInt() != kResultSchemaVersion) {
        scanned.kind = ScannedLine::Kind::OldSchema;
        return scanned;
    }
    const JsonValue *hash = doc->find("hash");
    const JsonValue *spec = doc->find("spec");
    const JsonValue *result = doc->find("result");
    if (!hash || !hash->asString() || !spec || !spec->asString() ||
        !result || !resultFromJson(*result)) {
        return scanned;
    }
    scanned.hash = *hash->asString();
    if (const JsonValue *v = doc->find("writtenUnix"))
        scanned.writtenUnix = v->asUint().value_or(0);
    scanned.kind = ScannedLine::Kind::Good;
    scanned.orphan =
        hashHexOf(hashSpecString(*spec->asString())) != scanned.hash;
    return scanned;
}

std::uintmax_t
fileBytes(const std::string &path)
{
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    return ec ? 0 : bytes;
}

/**
 * RAII exclusive flock on a store file — the same lock ResultStore
 * appenders take around each write(2).  Held across a rewriter's
 * whole fold + temp + rename sequence, it guarantees (a) the fold
 * never reads a half-written line and (b) no appender writes to the
 * about-to-be-orphaned inode while the rename swings the name to the
 * new file: a blocked appender wakes up holding a lock on the old
 * inode, notices the path now names a different file, and reopens
 * (see ResultStore::insert).
 */
class StoreLock
{
  public:
    explicit StoreLock(const std::string &path)
    {
        const auto dir = std::filesystem::path(path).parent_path();
        if (!dir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(dir, ec);
        }
        fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
        if (fd_ >= 0)
            ::flock(fd_, LOCK_EX);
    }

    ~StoreLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    StoreLock(const StoreLock &) = delete;
    StoreLock &operator=(const StoreLock &) = delete;

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/**
 * Read `path` line by line, folding Good lines into `kept` with
 * later-record-wins dedup at the first-seen position (the store's
 * load semantics) and counting everything dropped.  `dropOrphans`
 * distinguishes compact/gc (drop + count) from merge (keep + count).
 */
void
foldStore(const std::string &path, bool dropOrphans,
          std::vector<ScannedLine> &kept,
          std::unordered_map<std::string, std::size_t> &byHash,
          CacheAdminStats &stats)
{
    std::ifstream in(path);
    if (!in)
        return;
    ++stats.filesRead;
    stats.bytesBefore += fileBytes(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ScannedLine scanned = scanLine(std::move(line));
        line.clear();
        switch (scanned.kind) {
          case ScannedLine::Kind::Malformed:
            ++stats.malformed;
            continue;
          case ScannedLine::Kind::OldSchema:
            ++stats.oldSchema;
            continue;
          case ScannedLine::Kind::Good:
            break;
        }
        if (scanned.orphan) {
            ++stats.orphans;
            if (dropOrphans)
                continue;
        }
        const auto it = byHash.find(scanned.hash);
        if (it != byHash.end()) {
            ++stats.superseded;
            kept[it->second] = std::move(scanned); // last wins
        } else {
            byHash.emplace(scanned.hash, kept.size());
            kept.push_back(std::move(scanned));
        }
    }
}

/** Replace `path` with `kept`'s lines via temp-file + rename. */
bool
writeStore(const std::string &path,
           const std::vector<ScannedLine> &kept,
           CacheAdminStats &stats)
{
    const auto dir = std::filesystem::path(path).parent_path();
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
    const std::string temp =
        path + ".tmp-" + std::to_string(::getpid());
    {
        std::ofstream out(temp, std::ios::trunc);
        if (!out)
            return false;
        for (const auto &scanned : kept)
            out << scanned.line << '\n';
        if (!out)
            return false;
    }
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        std::filesystem::remove(temp, ec);
        return false;
    }
    stats.recordsKept = kept.size();
    stats.bytesAfter = fileBytes(path);
    return true;
}

std::string
kib(std::uintmax_t bytes)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
    return buf;
}

} // namespace

std::string
CacheAdminStats::summary() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "kept %zu record(s); dropped %zu superseded, %zu old-schema, "
        "%zu malformed, %zu orphan, %zu expired, %zu evicted",
        recordsKept, superseded, oldSchema, malformed, orphans,
        expired, evicted);
    return std::string(buf) + "; " + kib(bytesReclaimed()) +
           " reclaimed (" + kib(bytesBefore) + " -> " +
           kib(bytesAfter) + ")";
}

std::optional<CacheAdminStats>
mergeStores(const std::string &outPath,
            const std::vector<std::string> &inputs)
{
    CacheAdminStats stats;
    std::vector<ScannedLine> kept;
    std::unordered_map<std::string, std::size_t> byHash;
    // The output store may have live appenders (it is the shared
    // result tier under `serve`), and may itself be one of the
    // inputs: hold its writer lock across the whole fold + rewrite.
    StoreLock lock(outPath);
    for (const auto &input : inputs)
        foldStore(input, /*dropOrphans=*/false, kept, byHash, stats);
    if (stats.filesRead == 0) {
        critics_warn("cache merge: none of the ", inputs.size(),
                     " input store(s) could be read");
        return std::nullopt;
    }
    if (!writeStore(outPath, kept, stats))
        return std::nullopt;
    return stats;
}

std::optional<CacheAdminStats>
compactStore(const std::string &path)
{
    CacheAdminStats stats;
    if (!std::filesystem::exists(path))
        return stats; // nothing on disk: an empty store is compact
    std::vector<ScannedLine> kept;
    std::unordered_map<std::string, std::size_t> byHash;
    // Exclude concurrent appenders for the whole fold + rewrite, so
    // no record lands on the inode the rename is about to orphan.
    StoreLock lock(path);
    foldStore(path, /*dropOrphans=*/true, kept, byHash, stats);
    if (stats.filesRead == 0)
        return stats;
    if (!writeStore(path, kept, stats))
        return std::nullopt;
    return stats;
}

std::optional<CacheAdminStats>
gcStore(const std::string &path, const GcOptions &opt)
{
    CacheAdminStats stats;
    if (!std::filesystem::exists(path))
        return stats;
    std::vector<ScannedLine> kept;
    std::unordered_map<std::string, std::size_t> byHash;
    // Same appender exclusion as compactStore: without it a writer
    // racing the temp+rename appends to the replaced (now orphaned)
    // inode and the record is silently lost.
    StoreLock lock(path);
    foldStore(path, /*dropOrphans=*/true, kept, byHash, stats);
    if (stats.filesRead == 0)
        return stats;

    if (opt.maxAgeSeconds > 0) {
        std::uint64_t now = opt.nowUnix;
        if (now == 0) {
            now = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::system_clock::now()
                        .time_since_epoch())
                    .count());
        }
        const std::uint64_t cutoff =
            now > opt.maxAgeSeconds ? now - opt.maxAgeSeconds : 0;
        std::vector<ScannedLine> young;
        for (auto &scanned : kept) {
            // Unstamped (pre-timestamp) records count as infinitely
            // old: gc is the one place age must be conservative.
            if (scanned.writtenUnix > 0 &&
                scanned.writtenUnix >= cutoff) {
                young.push_back(std::move(scanned));
            } else {
                ++stats.expired;
            }
        }
        kept = std::move(young);
    }

    if (opt.maxBytes > 0) {
        std::uintmax_t total = 0;
        for (const auto &scanned : kept)
            total += scanned.line.size() + 1;
        if (total > opt.maxBytes) {
            // Evict oldest first, ties broken by file order.
            std::vector<std::size_t> order(kept.size());
            for (std::size_t i = 0; i < order.size(); ++i)
                order[i] = i;
            std::stable_sort(order.begin(), order.end(),
                             [&](std::size_t a, std::size_t b) {
                                 return kept[a].writtenUnix <
                                        kept[b].writtenUnix;
                             });
            std::vector<bool> evict(kept.size(), false);
            for (const std::size_t i : order) {
                if (total <= opt.maxBytes)
                    break;
                evict[i] = true;
                total -= kept[i].line.size() + 1;
                ++stats.evicted;
            }
            std::vector<ScannedLine> survivors;
            for (std::size_t i = 0; i < kept.size(); ++i) {
                if (!evict[i])
                    survivors.push_back(std::move(kept[i]));
            }
            kept = std::move(survivors);
        }
    }

    if (!writeStore(path, kept, stats))
        return std::nullopt;
    return stats;
}

} // namespace critics::runner
