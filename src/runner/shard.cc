#include "runner/shard.hh"

#include <cstdio>

namespace critics::runner
{

std::string
ShardSpec::str() const
{
    if (!enabled())
        return "";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%u/%u", index, count);
    return buf;
}

std::optional<ShardSpec>
ShardSpec::parse(const std::string &text)
{
    unsigned index = 0, count = 0;
    char trailing = 0;
    if (std::sscanf(text.c_str(), "%u/%u%c", &index, &count,
                    &trailing) != 2) {
        return std::nullopt;
    }
    if (count == 0 || index == 0 || index > count)
        return std::nullopt;
    return ShardSpec{index, count};
}

unsigned
shardOf(const JobSpec &spec, unsigned count)
{
    if (count == 0)
        return 1;
    // Upper bits: the FNV low bits also key the cache's hash table,
    // and reusing them would correlate shard choice with bucket
    // placement for adversarial spec sets.
    return static_cast<unsigned>((spec.hash() >> 32) % count) + 1;
}

std::vector<std::size_t>
shardIndices(const std::vector<JobSpec> &jobs, const ShardSpec &shard)
{
    std::vector<std::size_t> indices;
    indices.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!shard.enabled() ||
            shardOf(jobs[i], shard.count) == shard.index) {
            indices.push_back(i);
        }
    }
    return indices;
}

std::vector<JobSpec>
filterShard(const std::vector<JobSpec> &jobs, const ShardSpec &shard)
{
    std::vector<JobSpec> subset;
    for (const std::size_t i : shardIndices(jobs, shard))
        subset.push_back(jobs[i]);
    return subset;
}

std::string
shardStorePath(const std::string &dir, const ShardSpec &shard)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "results.shard-%u-of-%u.jsonl",
                  shard.index, shard.count);
    return dir + "/" + buf;
}

} // namespace critics::runner
