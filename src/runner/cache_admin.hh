/**
 * @file
 * Lifecycle management for the persistent result store: merge the
 * per-shard stores of a sharded run back into one file, compact a
 * store that has accumulated superseded / old-schema / collision
 * records, and garbage-collect by age or size so an append-only cache
 * does not grow without bound.
 *
 * All three operations preserve surviving records *byte-for-byte*
 * (lines are copied, never re-serialized), so a merged or compacted
 * store reproduces the original run's report digit for digit — the
 * same hexfloat round-trip guarantee the store itself makes.  Rewrites
 * go through a temp file in the destination directory followed by a
 * rename, so a crash mid-operation never corrupts the original, and
 * hold the destination store's writer flock for the whole fold +
 * rename so a concurrent appender can never write to the inode the
 * rename orphans (ResultStore::insert revalidates and reopens after
 * the lock).
 */

#ifndef CRITICS_RUNNER_CACHE_ADMIN_HH
#define CRITICS_RUNNER_CACHE_ADMIN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace critics::runner
{

/** What one merge/compact/gc pass read, kept and dropped. */
struct CacheAdminStats
{
    std::size_t filesRead = 0;
    std::size_t recordsKept = 0;
    std::size_t superseded = 0; ///< earlier duplicates of a kept hash
    std::size_t oldSchema = 0;  ///< records from another schema version
    std::size_t malformed = 0;  ///< unparsable lines (truncated tails)
    std::size_t orphans = 0;    ///< hash field != hash(spec): collisions
                                ///< or stale hash-function leftovers
    std::size_t expired = 0;    ///< dropped by gc --max-age
    std::size_t evicted = 0;    ///< dropped oldest-first by --max-bytes
    std::uintmax_t bytesBefore = 0;
    std::uintmax_t bytesAfter = 0;

    std::uintmax_t
    bytesReclaimed() const
    {
        return bytesBefore > bytesAfter ? bytesBefore - bytesAfter : 0;
    }

    /** One-line human summary for the CLI. */
    std::string summary() const;
};

/**
 * Concatenate `inputs` (in argument order) into `outPath` with
 * later-record-wins dedup by content hash and current-schema
 * filtering.  Surviving lines are copied verbatim.  `outPath` may be
 * one of the inputs (shard-into-main merge): every input is fully read
 * before the output is replaced.  nullopt if no input could be read or
 * the output could not be written; inputs that do not exist are
 * skipped (a shard that had no jobs writes no store).
 */
std::optional<CacheAdminStats>
mergeStores(const std::string &outPath,
            const std::vector<std::string> &inputs);

/**
 * Rewrite `path` in place dropping superseded, old-schema, malformed
 * and orphaned (stored hash != hash of stored spec — collision or
 * hash-function-change leftovers) records.  Live records keep their
 * bytes and relative order.  nullopt if the file cannot be read or
 * rewritten; a missing file compacts to an empty no-op result.
 */
std::optional<CacheAdminStats> compactStore(const std::string &path);

struct GcOptions
{
    /** Drop records older than this many seconds (0 = no age bound).
     *  Records without a writtenUnix stamp count as infinitely old. */
    std::uint64_t maxAgeSeconds = 0;
    /** After compaction and age filtering, evict oldest records until
     *  the store fits in this many bytes (0 = no size bound). */
    std::uintmax_t maxBytes = 0;
    /** "Now" for age math; 0 = current wall clock (tests pin this). */
    std::uint64_t nowUnix = 0;
};

/**
 * Bound a store's growth: compact (as compactStore), then apply the
 * age and size bounds of `opt`, evicting oldest records first.
 */
std::optional<CacheAdminStats> gcStore(const std::string &path,
                                       const GcOptions &opt);

} // namespace critics::runner

#endif // CRITICS_RUNNER_CACHE_ADMIN_HH
