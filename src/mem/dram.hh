/**
 * @file
 * LPDDR3 timing model matching Table I: 2 GB, 1 channel, 2 ranks,
 * 8 banks per rank, open-page policy, tCL = tRP = tRCD = 13 ns.
 * The model tracks per-bank open rows and busy windows — enough to
 * produce realistic row-hit vs row-conflict latencies and bank-level
 * queueing under streaming vs random access patterns.
 */

#ifndef CRITICS_MEM_DRAM_HH
#define CRITICS_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache.hh" // Cycle/Addr

namespace critics::mem
{

struct DramConfig
{
    unsigned ranks = 2;
    unsigned banksPerRank = 8;
    std::uint32_t rowBytes = 4096;
    /** CPU cycles per DRAM timing parameter (13 ns at ~2 GHz). */
    unsigned tCl = 26;
    unsigned tRcd = 26;
    unsigned tRp = 26;
    /** Data burst on the channel. */
    unsigned tBurst = 8;
    /** Fixed controller/queue traversal overhead. */
    unsigned controllerOverhead = 20;
};

struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t activates = 0;
    std::uint64_t totalLatency = 0;

    double
    avgLatency() const
    {
        return reads ? static_cast<double>(totalLatency) /
                       static_cast<double>(reads) : 0.0;
    }

    /** Register views of these fields under `prefix` (e.g. "mem.dram");
     *  this object must outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix) const;
};

class Dram
{
  public:
    explicit Dram(const DramConfig &config = DramConfig{});

    /** Perform a read for the line holding `addr` starting at `now`;
     *  @return completion latency in cycles (relative to now). */
    unsigned read(Addr addr, Cycle now);

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return config_; }

  private:
    struct Bank
    {
        std::uint64_t openRow = ~0ull;
        Cycle busyUntil = 0;
    };

    DramConfig config_;
    DramStats stats_;
    std::vector<Bank> banks_;
    Cycle channelBusyUntil_ = 0;
};

} // namespace critics::mem

#endif // CRITICS_MEM_DRAM_HH
