#include "mem/hierarchy.hh"

#include "stats/registry.hh"

namespace critics::mem
{

void
MemStats::registerStats(stats::StatRegistry &reg,
                        const std::string &prefix) const
{
    icache.registerStats(reg, prefix + ".l1i");
    dcache.registerStats(reg, prefix + ".l1d");
    l2.registerStats(reg, prefix + ".l2");
    dram.registerStats(reg, prefix + ".dram");
    stride.registerStats(reg, prefix + ".stride");
    reg.addCounter(prefix + ".stores", storeAccesses, "data stores");
}

MemorySystem::MemorySystem(const MemConfig &config)
    : config_(config),
      icache_(config.icache),
      dcache_(config.dcache),
      l2_(config.l2),
      dram_(config.dram),
      stride_(1024, config.l2.lineBytes, 1)
{
}

Cycle
MemorySystem::fillFromBeyondL1(Addr addr, Cycle now, bool isInst,
                               ServedBy &servedBy, bool isPrefetch)
{
    const LookupResult l2Hit = l2_.access(addr, now);
    Cycle l1Ready;
    if (l2Hit.hit) {
        servedBy = ServedBy::L2;
        l1Ready = l2Hit.readyAt;
    } else {
        servedBy = ServedBy::Dram;
        const Cycle l2MissKnown = now + config_.l2.hitLatency;
        const unsigned dramLat = dram_.read(addr, l2MissKnown);
        l1Ready = l2MissKnown + dramLat;
        l2_.fill(addr, l1Ready, isPrefetch);
    }

    // Train the CLPT stride prefetcher on all data-side L2 traffic
    // (criticality prefetches carry the same address stream a demand
    // miss would have).
    if (config_.l2StridePrefetch && !isInst) {
        strideOut_.clear();
        stride_.observe(addr, strideOut_);
        for (const Addr pf : strideOut_) {
            if (l2_.contains(pf))
                continue;
            const Cycle pfReady =
                now + config_.l2.hitLatency + dram_.read(pf, now);
            l2_.fill(pf, pfReady, true);
        }
    }
    return l1Ready;
}

AccessResult
MemorySystem::fetchInst(Addr addr, Cycle now)
{
    AccessResult result;
    const LookupResult l1 = icache_.access(addr, now);
    if (l1.hit) {
        result.servedBy = ServedBy::L1;
        result.latency = static_cast<unsigned>(l1.readyAt - now);
        return result;
    }
    const Cycle beyond =
        fillFromBeyondL1(addr, now + config_.icache.hitLatency,
                         true, result.servedBy, false);
    const Cycle ready = beyond + config_.icache.hitLatency;
    icache_.fill(addr, beyond);
    result.latency = static_cast<unsigned>(ready - now);
    return result;
}

AccessResult
MemorySystem::load(Addr addr, Cycle now)
{
    AccessResult result;
    const LookupResult l1 = dcache_.access(addr, now);
    if (l1.hit) {
        result.servedBy = ServedBy::L1;
        result.latency = static_cast<unsigned>(l1.readyAt - now);
        return result;
    }
    const Cycle beyond =
        fillFromBeyondL1(addr, now + config_.dcache.hitLatency,
                         false, result.servedBy, false);
    const Cycle ready = beyond + config_.dcache.hitLatency;
    dcache_.fill(addr, beyond);
    result.latency = static_cast<unsigned>(ready - now);
    return result;
}

void
MemorySystem::store(Addr addr, Cycle now)
{
    // Write-allocate, write-back; latency is absorbed by the write
    // buffer so only the cache state changes matter.
    ++storeCount_;
    const LookupResult l1 = dcache_.access(addr, now);
    if (!l1.hit) {
        ServedBy served;
        const Cycle beyond = fillFromBeyondL1(
            addr, now + config_.dcache.hitLatency, false, served, false);
        dcache_.fill(addr, beyond);
    }
}

void
MemorySystem::prefetchInst(Addr addr, Cycle now)
{
    if (icache_.contains(addr))
        return;
    ServedBy served;
    const Cycle beyond =
        fillFromBeyondL1(addr, now, true, served, true);
    icache_.fill(addr, beyond, true);
}

void
MemorySystem::prefetchData(Addr addr, Cycle now)
{
    if (dcache_.contains(addr))
        return;
    // A handful of prefetch MSHRs: drop requests when all are busy so
    // fetch-time bursts cannot flood the DRAM banks.
    constexpr std::size_t PrefetchMshrs = 4;
    std::size_t active = 0;
    for (const Cycle ready : pfInFlight_)
        if (ready > now)
            ++active;
    if (active >= PrefetchMshrs)
        return;
    ServedBy served;
    const Cycle beyond =
        fillFromBeyondL1(addr, now, false, served, true);
    dcache_.fill(addr, beyond, true);
    bool stored = false;
    for (Cycle &slot : pfInFlight_) {
        if (slot <= now) {
            slot = beyond;
            stored = true;
            break;
        }
    }
    if (!stored)
        pfInFlight_.push_back(beyond);
}

MemStats
MemorySystem::stats() const
{
    MemStats stats;
    stats.icache = icache_.stats();
    stats.dcache = dcache_.stats();
    stats.l2 = l2_.stats();
    stats.dram = dram_.stats();
    stats.stride = stride_.stats();
    stats.storeAccesses = storeCount_;
    return stats;
}

} // namespace critics::mem
