#include "mem/dram.hh"

#include <algorithm>

#include "stats/registry.hh"
#include "support/logging.hh"

namespace critics::mem
{

void
DramStats::registerStats(stats::StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(prefix + ".reads", reads, "line reads served");
    reg.addCounter(prefix + ".rowHits", rowHits, "open-page row hits");
    reg.addCounter(prefix + ".rowConflicts", rowConflicts,
                   "row conflicts (precharge + activate)");
    reg.addCounter(prefix + ".activates", activates, "row activations");
    reg.addCounter(prefix + ".totalLatency", totalLatency,
                   "summed read latency (cycles)");
    reg.addFormula(prefix + ".avgLatency",
                   [this] { return avgLatency(); },
                   "average read latency (cycles)");
}

Dram::Dram(const DramConfig &config)
    : config_(config),
      banks_(config.ranks * config.banksPerRank)
{
    critics_assert(!banks_.empty(), "dram needs banks");
}

unsigned
Dram::read(Addr addr, Cycle now)
{
    ++stats_.reads;

    // Address mapping: row-interleaved banks so streaming accesses hit
    // open rows within one bank, while different 4 KB rows spread over
    // banks.
    const std::uint64_t rowId = addr / config_.rowBytes;
    const std::size_t bankIdx = rowId % banks_.size();
    Bank &bank = banks_[bankIdx];

    Cycle start = std::max(now + config_.controllerOverhead,
                           bank.busyUntil);

    unsigned arrayLatency;
    if (bank.openRow == rowId) {
        ++stats_.rowHits;
        arrayLatency = config_.tCl;
    } else {
        if (bank.openRow != ~0ull) {
            ++stats_.rowConflicts;
            arrayLatency = config_.tRp + config_.tRcd + config_.tCl;
        } else {
            arrayLatency = config_.tRcd + config_.tCl;
        }
        ++stats_.activates;
        bank.openRow = rowId;
    }

    // Serialize the data burst on the shared channel.
    Cycle dataStart = std::max(start + arrayLatency, channelBusyUntil_);
    Cycle done = dataStart + config_.tBurst;
    channelBusyUntil_ = done;
    bank.busyUntil = start + arrayLatency;

    const unsigned latency = static_cast<unsigned>(done - now);
    stats_.totalLatency += latency;
    return latency;
}

} // namespace critics::mem
