/**
 * @file
 * Prefetch engines:
 *   - StridePrefetcher: the baseline L2 "CLPT" prefetcher of Table I
 *     (1024-entry, 7-bit state per entry: 2-bit confidence + signed
 *     stride), keyed by 4 KB region.
 *   - EFetchPredictor: the call-stack-history instruction prefetcher of
 *     Fig. 11 ([71]); predicts the next callee from recent call history
 *     so the fetch engine can prefetch its first i-cache lines.
 */

#ifndef CRITICS_MEM_PREFETCH_HH
#define CRITICS_MEM_PREFETCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache.hh" // Addr/Cycle

namespace critics::mem
{

struct PrefetchStats
{
    std::uint64_t trains = 0;
    std::uint64_t issued = 0;

    /** Register views of these fields under `prefix`; this object must
     *  outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix) const;
};

/** Region-based stride detector; emits line addresses to prefetch. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(unsigned entries = 1024,
                              unsigned lineBytes = 64,
                              unsigned degree = 2);

    /**
     * Observe a demand access; append predicted prefetch line
     * addresses (possibly none) to `out`.
     */
    void observe(Addr addr, std::vector<Addr> &out);

    const PrefetchStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        std::uint64_t regionTag = ~0ull;
        Addr lastAddr = 0;
        std::int32_t stride = 0;
        std::uint8_t confidence = 0; ///< 2-bit saturating
    };

    std::vector<Entry> entries_;
    unsigned lineBytes_;
    unsigned degree_;
    PrefetchStats stats_;
};

/** Call-target predictor for EFetch-style instruction prefetch. */
class EFetchPredictor
{
  public:
    explicit EFetchPredictor(unsigned entries = 4096);

    /**
     * Observe a call about to execute.  @return the predicted target
     * address (0 if no prediction), then train with the actual target.
     */
    Addr predictAndTrain(Addr callerPc, Addr actualTarget);

    const PrefetchStats &stats() const { return stats_; }
    double accuracy() const;

  private:
    std::vector<Addr> table_;
    std::uint64_t history_ = 0;
    std::uint64_t correct_ = 0;
    PrefetchStats stats_;
};

} // namespace critics::mem

#endif // CRITICS_MEM_PREFETCH_HH
