#include "mem/prefetch.hh"

#include "stats/registry.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace critics::mem
{

void
PrefetchStats::registerStats(stats::StatRegistry &reg,
                             const std::string &prefix) const
{
    reg.addCounter(prefix + ".trains", trains, "observations");
    reg.addCounter(prefix + ".issued", issued, "prefetches issued");
}

StridePrefetcher::StridePrefetcher(unsigned entries, unsigned lineBytes,
                                   unsigned degree)
    : entries_(entries),
      lineBytes_(lineBytes),
      degree_(degree)
{
    critics_assert(entries > 0 && (entries & (entries - 1)) == 0,
                   "stride table size must be a power of two");
}

void
StridePrefetcher::observe(Addr addr, std::vector<Addr> &out)
{
    ++stats_.trains;
    const std::uint64_t region = addr >> 12;
    Entry &entry = entries_[region & (entries_.size() - 1)];

    if (entry.regionTag != region) {
        entry.regionTag = region;
        entry.lastAddr = addr;
        entry.stride = 0;
        entry.confidence = 0;
        return;
    }

    const auto stride =
        static_cast<std::int32_t>(static_cast<std::int64_t>(addr) -
                                  static_cast<std::int64_t>(entry.lastAddr));
    if (stride != 0 && stride == entry.stride) {
        if (entry.confidence < 3)
            ++entry.confidence;
    } else {
        entry.stride = stride;
        entry.confidence = entry.confidence > 0
            ? static_cast<std::uint8_t>(entry.confidence - 1) : 0;
    }
    entry.lastAddr = addr;

    if (entry.confidence >= 2 && entry.stride != 0) {
        Addr next = addr;
        for (unsigned d = 1; d <= degree_; ++d) {
            next = static_cast<Addr>(
                static_cast<std::int64_t>(next) + entry.stride);
            out.push_back(next & ~static_cast<Addr>(lineBytes_ - 1));
            ++stats_.issued;
        }
    }
}

EFetchPredictor::EFetchPredictor(unsigned entries)
    : table_(entries, 0)
{
    critics_assert(entries > 0 && (entries & (entries - 1)) == 0,
                   "EFetch table size must be a power of two");
}

Addr
EFetchPredictor::predictAndTrain(Addr callerPc, Addr actualTarget)
{
    // Index by caller PC hashed with the recent call-target history —
    // the "user-event call stack" signature of EFetch.
    const std::uint64_t key = hashCombine(history_, callerPc);
    const std::size_t index = key & (table_.size() - 1);
    const Addr predicted = table_[index];

    ++stats_.trains;
    if (predicted != 0)
        ++stats_.issued;
    if (predicted == actualTarget && predicted != 0)
        ++correct_;

    table_[index] = actualTarget;
    // Bounded two-target history window (a call-stack signature):
    // periodic call sequences map to stable indices.
    history_ = ((history_ << 16) | (actualTarget & 0xFFFF)) & 0xFFFFFFFF;
    return predicted;
}

double
EFetchPredictor::accuracy() const
{
    return stats_.issued
        ? static_cast<double>(correct_) /
          static_cast<double>(stats_.issued) : 0.0;
}

} // namespace critics::mem
