/**
 * @file
 * Set-associative cache model with LRU replacement and in-flight fill
 * tracking: a line being filled is present but not ready until its
 * fill cycle, so a demand access that "catches up" with a prefetch gets
 * the partial latency — the behaviour the criticality-prefetch baseline
 * depends on.
 */

#ifndef CRITICS_MEM_CACHE_HH
#define CRITICS_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace critics::stats
{
class StatRegistry;
}

namespace critics::mem
{

using Cycle = std::uint64_t;
using Addr = std::uint64_t;

struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 32u << 10;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 64;
    std::uint32_t hitLatency = 2;
};

struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t prefetchFills = 0;
    std::uint64_t prefetchHits = 0; ///< demand hits on prefetched lines

    std::uint64_t hits() const { return accesses - misses; }
    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses) : 0.0;
    }

    /** Register views of these fields under `prefix` (e.g. "mem.l1i");
     *  this object must outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix) const;
};

/** Result of a lookup. */
struct LookupResult
{
    bool hit = false;
    Cycle readyAt = 0; ///< when the line's data is usable (hits only)
};

class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }

    /**
     * Demand lookup at `now`.  Hits (including on in-flight fills)
     * return readyAt; misses return {false, 0} and the caller is
     * expected to fill() once it knows the fill latency.
     */
    LookupResult access(Addr addr, Cycle now);

    /** Probe without stats or LRU update (used by prefetchers). */
    bool contains(Addr addr) const;

    /** Install the line holding `addr`, usable from `readyAt`. */
    void fill(Addr addr, Cycle readyAt, bool isPrefetch = false);

    Addr lineAddr(Addr addr) const { return addr & ~lineMask_; }

  private:
    struct Line
    {
        Addr tag = 0;
        Cycle readyAt = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool prefetched = false;
    };

    std::size_t setIndex(Addr addr) const;

    CacheConfig config_;
    CacheStats stats_;
    std::vector<Line> lines_; ///< sets * assoc, set-major
    Addr lineMask_;
    unsigned lineShift_; ///< log2(lineBytes); indexes without dividing
    std::size_t numSets_;
    std::uint64_t useClock_ = 0;
};

} // namespace critics::mem

#endif // CRITICS_MEM_CACHE_HH
