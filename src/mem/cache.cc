#include "mem/cache.hh"

#include "stats/registry.hh"
#include "support/logging.hh"

namespace critics::mem
{

void
CacheStats::registerStats(stats::StatRegistry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(prefix + ".accesses", accesses, "demand lookups");
    reg.addCounter(prefix + ".misses", misses, "demand misses");
    reg.addCounter(prefix + ".prefetchFills", prefetchFills,
                   "lines installed by prefetch");
    reg.addCounter(prefix + ".prefetchHits", prefetchHits,
                   "demand hits on prefetched lines");
    reg.addFormula(prefix + ".hits",
                   [this] { return static_cast<double>(hits()); },
                   "demand hits");
    reg.addFormula(prefix + ".missRate", [this] { return missRate(); },
                   "misses / accesses");
}

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config),
      lineMask_(config.lineBytes - 1)
{
    critics_assert(isPowerOfTwo(config.lineBytes),
                   config.name, ": line size must be a power of two");
    lineShift_ = 0;
    while ((1u << lineShift_) < config.lineBytes)
        ++lineShift_;
    critics_assert(config.sizeBytes % (config.lineBytes * config.assoc)
                       == 0,
                   config.name, ": size not divisible by way size");
    numSets_ = config.sizeBytes / (config.lineBytes * config.assoc);
    critics_assert(isPowerOfTwo(numSets_),
                   config.name, ": set count must be a power of two");
    lines_.resize(numSets_ * config.assoc);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    // lineBytes is a power of two (asserted in the constructor), so
    // the shift is exactly the division the index formula calls for —
    // minus the per-access div instruction on this very hot path.
    return (addr >> lineShift_) & (numSets_ - 1);
}

LookupResult
Cache::access(Addr addr, Cycle now)
{
    ++stats_.accesses;
    const Addr tag = lineAddr(addr);
    const std::size_t base = setIndex(addr) * config_.assoc;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++useClock_;
            if (line.prefetched) {
                ++stats_.prefetchHits;
                line.prefetched = false;
            }
            const Cycle ready =
                std::max(now, line.readyAt) + config_.hitLatency;
            return {true, ready};
        }
    }
    ++stats_.misses;
    return {false, 0};
}

bool
Cache::contains(Addr addr) const
{
    const Addr tag = lineAddr(addr);
    const std::size_t base = setIndex(addr) * config_.assoc;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::fill(Addr addr, Cycle readyAt, bool isPrefetch)
{
    const Addr tag = lineAddr(addr);
    const std::size_t base = setIndex(addr) * config_.assoc;
    // Refill of a present line (e.g. racing prefetch): keep the earlier
    // ready time.
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            line.readyAt = std::min(line.readyAt, readyAt);
            return;
        }
    }
    // Victim: any invalid way, else LRU.
    Line *victim = &lines_[base];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->readyAt = readyAt;
    victim->lastUse = ++useClock_;
    victim->prefetched = isPrefetch;
    if (isPrefetch)
        ++stats_.prefetchFills;
}

} // namespace critics::mem
