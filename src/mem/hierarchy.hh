/**
 * @file
 * The memory system of Table I: split 32 KB 2-way i-cache / 64 KB d-cache
 * (2-cycle hits), shared 8-way 2 MB L2 (10-cycle hits) with the CLPT
 * stride prefetcher, backed by the LPDDR3 model.
 */

#ifndef CRITICS_MEM_HIERARCHY_HH
#define CRITICS_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/prefetch.hh"

namespace critics::mem
{

struct MemConfig
{
    CacheConfig icache{"icache", 32u << 10, 2, 64, 2};
    CacheConfig dcache{"dcache", 64u << 10, 2, 64, 2};
    CacheConfig l2{"l2", 2u << 20, 8, 64, 10};
    DramConfig dram{};
    bool l2StridePrefetch = true; ///< Table I CLPT prefetcher
};

/** Where a demand access was served from. */
enum class ServedBy : std::uint8_t
{
    L1,
    L2,
    Dram,
};

struct AccessResult
{
    unsigned latency = 0;
    ServedBy servedBy = ServedBy::L1;
};

struct MemStats
{
    CacheStats icache;
    CacheStats dcache;
    CacheStats l2;
    DramStats dram;
    PrefetchStats stride;
    std::uint64_t storeAccesses = 0;

    /** Register the whole hierarchy under `prefix` (default "mem"):
     *  the L1s appear as <prefix>.l1i / <prefix>.l1d, plus .l2, .dram,
     *  .stride and .stores.  This object must outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix = "mem") const;
};

class MemorySystem
{
  public:
    explicit MemorySystem(const MemConfig &config = MemConfig{});

    /** Instruction-line demand fetch. */
    AccessResult fetchInst(Addr addr, Cycle now);

    /** Data load. */
    AccessResult load(Addr addr, Cycle now);

    /** Data store: updates d-cache state/stats; write latency is hidden
     *  behind the write buffer so none is returned. */
    void store(Addr addr, Cycle now);

    /** Prefetch an instruction line into the i-cache. */
    void prefetchInst(Addr addr, Cycle now);

    /** Prefetch a data line into the d-cache (criticality prefetch). */
    void prefetchData(Addr addr, Cycle now);

    /** Snapshot of all component statistics. */
    MemStats stats() const;

    const MemConfig &config() const { return config_; }

  private:
    /** Shared L2 + DRAM path; @return absolute ready cycle of the line
     *  at the L1's boundary (excluding the L1 hit latency). */
    Cycle fillFromBeyondL1(Addr addr, Cycle now, bool isInst,
                           ServedBy &servedBy, bool isPrefetch);

    MemConfig config_;
    Cache icache_;
    Cache dcache_;
    Cache l2_;
    Dram dram_;
    StridePrefetcher stride_;
    std::vector<Addr> strideOut_;
    std::uint64_t storeCount_ = 0;
    /** Completion times of in-flight data prefetches (MSHR bound). */
    std::vector<Cycle> pfInFlight_;
};

} // namespace critics::mem

#endif // CRITICS_MEM_HIERARCHY_HH
