/**
 * @file
 * Cycle-level 4-wide out-of-order superscalar CPU model (Table I):
 * Fetch / Decode / Rename / ROB / Issue / Execute / Commit, 128-entry
 * ROB, trace-driven.  Beyond IPC, the model attributes every front-end
 * stall cycle to the paper's two categories:
 *
 *   F.StallForI   — fetch delivered nothing because the instruction
 *                   supply stalled (i-cache miss or branch redirect);
 *   F.StallForR+D — fetch had instructions but the fetch queue was full
 *                   because the rest of the pipeline exerted
 *                   back-pressure (resource/dependence stalls).
 *
 * It also records per-instruction stage residencies so the Fig. 3
 * breakdowns can be reported for any instruction subset (e.g. the
 * high-fanout "critical" instructions).
 *
 * Hooks for the evaluated mechanisms:
 *   - criticality set (profiled, PC-indexed) marks instructions for the
 *     ALU-prioritization and critical-load-prefetch baselines;
 *   - EFetch call-history instruction prefetching;
 *   - perfect branch prediction, 2x front end, enlarged i-cache are
 *     plain configuration changes.
 */

#ifndef CRITICS_CPU_CPU_HH
#define CRITICS_CPU_CPU_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "bpu/bpu.hh"
#include "mem/hierarchy.hh"
#include "program/trace.hh"

namespace critics::stats
{
class IntervalSeries;
class StatRegistry;
class TraceEventWriter;
}

namespace critics::cpu
{

struct CpuConfig
{
    /** The front end is byte-limited (an 8-byte fetch/decode datapath,
     *  as in mobile cores' fetch units), while issue/commit are 4-wide:
     *  32-bit code streams at 2 instructions/cycle, 16-bit code at 4 —
     *  the paper's "the 16-bit format nearly doubles fetch bandwidth".
     *  fetchWidth only caps slots per window. */
    unsigned fetchWidth = 8;
    unsigned fetchBytes = 8;   ///< aligned fetch window per cycle
    unsigned frontendBytes = 8; ///< decode/rename bytes per cycle
    unsigned decodeWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned robSize = 128;
    unsigned fetchQueueSize = 32;
    unsigned frontendLatency = 2; ///< decode+rename cycles
    unsigned redirectPenalty = 5; ///< mispredict pipe refill
    unsigned cdpExtraDecode = 1;  ///< decoder format-switch latency

    unsigned intAluUnits = 2;
    unsigned mulDivUnits = 1;
    unsigned fpUnits = 1;
    unsigned memPorts = 2;

    // Mechanism toggles (Figs. 1/11).
    bool aluPrioritization = false;   ///< prioritize critical at issue
    bool backendPrio = false;         ///< ...including memory ports
    bool criticalLoadPrefetch = false;///< prefetch critical loads at fetch
    bool efetch = false;              ///< call-history i-prefetch

    /** Commits to run before statistics start (cold-start warmup, like
     *  sampling mid-execution in the paper's methodology). */
    std::uint64_t warmupCommits = 0;

    // Observability hooks.  These never influence simulated behaviour
    // and are never serialized into experiment cache keys.
    /** Sample every registered stat into `intervals` each time this
     *  many further instructions commit (0 = off).  The warmup
     *  boundary and the end of run are always sampled too. */
    std::uint64_t statsInterval = 0;
    stats::IntervalSeries *intervals = nullptr;
    /** Per-instruction stage-residency spans (Chrome trace events);
     *  spans are emitted for post-warmup committed instructions up to
     *  traceMaxInsts. */
    stats::TraceEventWriter *traceSink = nullptr;
    std::uint64_t traceMaxInsts = 4096;

    /** Apply the hypothetical 2xFD front end of Fig. 11. */
    void
    doubleFrontend()
    {
        fetchWidth *= 2;
        fetchBytes *= 2;
        frontendBytes *= 2;
        decodeWidth *= 2;
        fetchQueueSize *= 2;
    }
};

/** Accumulated per-stage residency (cycles summed over instructions). */
struct StageBreakdown
{
    double fetch = 0;      ///< fetch + fetch-queue residency
    double decode = 0;     ///< decode/rename pipe
    double issueWait = 0;  ///< ROB residency before issue
    double execute = 0;    ///< issue to completion
    double commitWait = 0; ///< completion to commit
    std::uint64_t insts = 0;

    double
    total() const
    {
        return fetch + decode + issueWait + execute + commitWait;
    }

    /** Register as one Vector stat named `name` (elements fetch /
     *  decode / issueWait / execute / commitWait / insts); this object
     *  must outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &name) const;
};

struct CpuStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;

    // Front-end stall attribution (whole-machine cycles).
    std::uint64_t stallForIIcache = 0;
    std::uint64_t stallForIRedirect = 0;
    std::uint64_t stallForRd = 0;
    std::uint64_t decodeCdpBubbles = 0;

    std::uint64_t fetchedBytes = 0; ///< code bytes brought in by fetch
    std::uint64_t condBranches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t fetchWindows = 0; ///< i-cache fetch accesses

    StageBreakdown all;  ///< every committed instruction
    StageBreakdown crit; ///< instructions flagged in the crit mask

    mem::MemStats mem;
    double efetchAccuracy = 0.0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed) /
                        static_cast<double>(cycles) : 0.0;
    }

    /** F.StallForI as a fraction of execution cycles. */
    double
    fracStallForI() const
    {
        return cycles ? static_cast<double>(stallForIIcache +
                                            stallForIRedirect) /
                        static_cast<double>(cycles) : 0.0;
    }

    /** F.StallForR+D as a fraction of execution cycles. */
    double
    fracStallForRd() const
    {
        return cycles ? static_cast<double>(stallForRd) /
                        static_cast<double>(cycles) : 0.0;
    }

    /** Register views of the CPU-side stats under `prefix` (default
     *  "cpu").  The nested memory hierarchy is NOT registered — call
     *  mem.registerStats() separately (conventionally under "mem") so
     *  its dotted names stay stable whether they come from a CpuStats
     *  or a bare MemorySystem.  This object must outlive the registry.
     */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix = "cpu") const;
};

/**
 * Run a trace to completion.
 *
 * @param trace     dynamic instruction stream
 * @param config    pipeline configuration
 * @param memConfig memory-system configuration
 * @param bpu       branch predictor (state is consumed/trained)
 * @param critMask  optional per-dyn-instruction criticality flags;
 *                  drives the `crit` breakdown and, via `criticalSet`,
 *                  is distinct from the mechanism inputs below
 * @param criticalSet optional static-uid set marking instructions the
 *                  criticality mechanisms treat as critical
 */
CpuStats runTrace(const program::Trace &trace, const CpuConfig &config,
                  const mem::MemConfig &memConfig,
                  bpu::BranchPredictor &bpu,
                  const std::vector<std::uint8_t> *critMask = nullptr,
                  const std::unordered_set<program::InstUid>
                      *criticalSet = nullptr);

} // namespace critics::cpu

#endif // CRITICS_CPU_CPU_HH
