#include "cpu/cpu.hh"

#include <algorithm>
#include <deque>

#include "isa/isa.hh"
#include "stats/interval.hh"
#include "stats/registry.hh"
#include "stats/trace_event.hh"
#include "support/logging.hh"

namespace critics::cpu
{

void
StageBreakdown::registerStats(stats::StatRegistry &reg,
                              const std::string &name) const
{
    reg.addVector(name,
                  {{"fetch", nullptr, &fetch},
                   {"decode", nullptr, &decode},
                   {"issueWait", nullptr, &issueWait},
                   {"execute", nullptr, &execute},
                   {"commitWait", nullptr, &commitWait},
                   {"insts", &insts, nullptr}},
                  "per-stage residency (cycles over instructions)");
}

void
CpuStats::registerStats(stats::StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addCounter(prefix + ".cycles", cycles, "execution cycles");
    reg.addCounter(prefix + ".committed", committed,
                   "committed instructions");
    reg.addFormula(prefix + ".ipc", [this] { return ipc(); },
                   "committed / cycles");
    reg.addCounter(prefix + ".fetch.stallForI.icache", stallForIIcache,
                   "F.StallForI cycles: i-cache miss");
    reg.addCounter(prefix + ".fetch.stallForI.redirect",
                   stallForIRedirect,
                   "F.StallForI cycles: branch redirect");
    reg.addCounter(prefix + ".fetch.stallForRd", stallForRd,
                   "F.StallForR+D cycles: back-pressure");
    reg.addFormula(prefix + ".fetch.fracStallForI",
                   [this] { return fracStallForI(); },
                   "F.StallForI / cycles");
    reg.addFormula(prefix + ".fetch.fracStallForRd",
                   [this] { return fracStallForRd(); },
                   "F.StallForR+D / cycles");
    reg.addCounter(prefix + ".fetch.windows", fetchWindows,
                   "i-cache fetch accesses");
    reg.addCounter(prefix + ".fetch.bytes", fetchedBytes,
                   "code bytes brought in by fetch");
    reg.addCounter(prefix + ".decode.cdpBubbles", decodeCdpBubbles,
                   "decode cycles lost to CDP format switches");
    reg.addCounter(prefix + ".branch.cond", condBranches,
                   "conditional branches fetched");
    reg.addCounter(prefix + ".branch.mispredicts", mispredicts,
                   "direction mispredictions");
    reg.addFormula(prefix + ".branch.mpki",
                   [this] {
                       return committed
                           ? 1000.0 * static_cast<double>(mispredicts) /
                                 static_cast<double>(committed)
                           : 0.0;
                   },
                   "mispredicts per kilo-instruction");
    all.registerStats(reg, prefix + ".stage.all");
    crit.registerStats(reg, prefix + ".stage.crit");
    reg.addValue(prefix + ".efetchAccuracy", efetchAccuracy,
                 "EFetch call-target prediction accuracy");
}

using program::DynIdx;
using program::DynInst;
using program::Trace;
using isa::OpClass;

namespace
{

constexpr std::uint32_t Unknown = 0xFFFFFFFFu;

/** Functional-unit pools. */
enum class FuPool : std::uint8_t { Alu, MulDiv, Fp, Mem };

FuPool
poolOf(OpClass op)
{
    switch (op) {
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FuPool::MulDiv;
      case OpClass::FloatAdd:
      case OpClass::FloatMul:
      case OpClass::FloatDiv:
        return FuPool::Fp;
      case OpClass::Load:
      case OpClass::Store:
        return FuPool::Mem;
      default:
        return FuPool::Alu;
    }
}

bool
unpipelined(OpClass op)
{
    return op == OpClass::IntDiv || op == OpClass::FloatDiv;
}

/** A pool of identical units, each able to start one op per cycle;
 *  unpipelined ops hold their unit until completion. */
class FuSet
{
  public:
    explicit FuSet(unsigned units) : busyUntil_(units, 0) {}

    bool
    tryIssue(std::uint64_t cycle, std::uint64_t holdUntil)
    {
        for (auto &busy : busyUntil_) {
            if (busy <= cycle) {
                busy = holdUntil;
                return true;
            }
        }
        return false;
    }

  private:
    std::vector<std::uint64_t> busyUntil_;
};

struct RobEntry
{
    DynIdx dyn = 0;
    float fetchLead = 0.0f; ///< share of upstream supply-stall cycles
    std::uint32_t fetchC = 0;
    std::uint32_t popC = 0;      ///< left the fetch queue
    std::uint32_t dispatchC = 0; ///< entered the ROB
    std::uint32_t issueC = 0;
    std::uint32_t completeC = 0;
    std::uint32_t readyC = Unknown; ///< known once producers issued
    /** Producer this entry last blocked on: readiness cannot change
     *  until that dep's resultCycle is set, so the issue scan skips
     *  the full dependency walk until then. */
    DynIdx waitDep = program::NoDep;
    bool issued = false;
};

struct FqEntry
{
    DynIdx dyn;
    std::uint32_t fetchC;
    float fetchLead;
};

struct PipeEntry
{
    DynIdx dyn;
    std::uint32_t fetchC;
    float fetchLead;
    std::uint32_t popC;
    std::uint32_t readyC;
};

} // namespace

CpuStats
runTrace(const Trace &trace, const CpuConfig &config,
         const mem::MemConfig &memConfig, bpu::BranchPredictor &bpu,
         const std::vector<std::uint8_t> *critMask,
         const std::unordered_set<program::InstUid> *criticalSet)
{
    critics_assert(!trace.insts.empty(), "empty trace");
    critics_assert(critMask == nullptr ||
                       critMask->size() == trace.size(),
                   "crit mask size mismatch");

    const auto n = static_cast<DynIdx>(trace.size());
    CpuStats stats;
    mem::MemorySystem memory(memConfig);
    mem::EFetchPredictor efetch;

    // Completion cycle of every dynamic instruction (Unknown until the
    // instruction issues).  Producers referenced by a consumer are
    // always either in the window or already complete, but keeping the
    // whole array also supports far-away (loop-carried) dependences.
    std::vector<std::uint32_t> resultCycle(trace.size(), Unknown);

    const bool usePriority =
        (config.aluPrioritization || config.backendPrio) &&
        criticalSet != nullptr;

    // Flatten the per-uid criticality set into a per-dynamic-index byte
    // mask once per run, so the issue partition and the prefetch hook
    // index an array instead of probing a hash set per instruction.
    // Uids are dense (Program::allocUid is sequential), so the
    // intermediate per-uid table is small.
    std::vector<std::uint8_t> critDyn;
    if (criticalSet != nullptr) {
        program::InstUid maxUid = 0;
        for (const DynInst &d : trace.insts)
            maxUid = std::max(maxUid, d.staticUid);
        std::vector<std::uint8_t> critUid(
            static_cast<std::size_t>(maxUid) + 1, 0);
        for (const program::InstUid uid : *criticalSet) {
            if (uid <= maxUid)
                critUid[uid] = 1;
        }
        critDyn.resize(trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i)
            critDyn[i] = critUid[trace.insts[i].staticUid];
    }

    auto isCritStatic = [&](DynIdx idx) {
        if (criticalSet == nullptr)
            return false;
        return critDyn[static_cast<std::size_t>(idx)] != 0;
    };

    // ---- Pipeline state --------------------------------------------------
    std::uint64_t cycle = 0;
    DynIdx fetchIdx = 0;
    std::uint64_t fetchBlockedUntil = 0;
    bool blockedOnIcache = false;
    DynIdx haltBranch = -1; ///< mispredicted branch gating fetch
    std::uint64_t decodeStallUntil = 0;
    std::uint64_t cdpLatencyUntil = 0;
    double pendingSupplyStall = 0.0; ///< I-side stall cycles to attribute

    std::deque<FqEntry> fetchQ;
    std::deque<PipeEntry> decodePipe;
    const std::size_t decodePipeCap =
        static_cast<std::size_t>(config.decodeWidth) * 2 *
        (config.frontendLatency + 1);

    std::vector<RobEntry> rob(config.robSize);
    std::size_t robHead = 0, robCount = 0;

    FuSet alus(config.intAluUnits);
    FuSet muldivs(config.mulDivUnits);
    FuSet fpus(config.fpUnits);
    FuSet memPorts(config.memPorts);

    std::uint64_t committed = 0;
    bool warmupDone = (config.warmupCommits == 0);
    CpuStats warmupSnapshot;
    std::vector<std::size_t> eligible;
    eligible.reserve(config.robSize);

    // ROB slots still waiting to issue, in program order: the issue
    // scan walks only these, instead of re-walking every in-flight
    // instruction (most of which have long since issued) with a
    // modulo per step.  Dispatch appends; a stable compaction after
    // issue preserves program order, so the eligible vector comes out
    // element-for-element identical to a full ROB rescan.
    std::vector<std::size_t> unissued;
    unissued.reserve(config.robSize);

    // ---- Observability hooks ---------------------------------------------
    // Interval rows hold *cumulative raw* values: the registry views the
    // live `stats` object, whose derived fields (cycles, mem) are
    // refreshed right before each sample.  Warmup subtraction happens
    // only on the returned totals, so (lastRow - warmupRow) reproduces
    // the reported post-warmup numbers.
    const bool sampling =
        config.intervals != nullptr && config.statsInterval > 0;
    stats::StatRegistry reg;
    if (sampling) {
        stats.registerStats(reg, "cpu");
        stats.mem.registerStats(reg, "mem");
    }
    std::uint64_t nextSample = config.statsInterval;
    auto sampleNow = [&](std::uint64_t cyclesSoFar) {
        stats.cycles = cyclesSoFar;
        stats.committed = committed;
        stats.mem = memory.stats();
        stats.efetchAccuracy = efetch.accuracy();
        config.intervals->sample(reg, committed);
    };

    stats::TraceEventWriter *tsink = config.traceSink;
    std::uint64_t tracedInsts = 0;
    if (tsink) {
        tsink->setProcessName(0, "cpu pipeline");
        tsink->setThreadName(0, 1, "fetch");
        tsink->setThreadName(0, 2, "decode");
        tsink->setThreadName(0, 3, "issueWait");
        tsink->setThreadName(0, 4, "execute");
        tsink->setThreadName(0, 5, "commitWait");
    }

    const std::uint64_t cycleLimit =
        200ull * trace.size() + 1000000ull;

    while (committed < static_cast<std::uint64_t>(n)) {
        critics_assert(cycle < cycleLimit,
                       "pipeline deadlock at cycle ", cycle,
                       " committed ", committed, "/", n);

        // ---- Commit -----------------------------------------------------
        unsigned comm = 0;
        while (comm < config.commitWidth && robCount > 0) {
            RobEntry &head = rob[robHead];
            if (!head.issued || head.completeC > cycle)
                break;
            const auto commitC = static_cast<std::uint32_t>(cycle);
            auto account = [&](StageBreakdown &b) {
                b.fetch += (head.popC - head.fetchC) + head.fetchLead;
                b.decode += head.dispatchC - head.popC;
                b.issueWait += head.issueC - head.dispatchC;
                b.execute += head.completeC - head.issueC;
                b.commitWait += commitC - head.completeC;
                ++b.insts;
            };
            account(stats.all);
            if (critMask && (*critMask)[head.dyn])
                account(stats.crit);
            if (tsink && warmupDone &&
                tracedInsts < config.traceMaxInsts) {
                // One span per stage, on the stage's own track, so the
                // viewer shows the classic pipeline diagram.  ts is in
                // simulated cycles (rendered as microseconds).
                const char *op =
                    isa::opClassName(trace.insts[head.dyn].op);
                const auto dyn = static_cast<double>(head.dyn);
                auto span = [&](std::uint32_t from, std::uint32_t to,
                                std::uint32_t tid) {
                    if (to > from) {
                        tsink->complete(op, "pipeline", from, to - from,
                                        0, tid, "dyn", dyn);
                    }
                };
                span(head.fetchC, head.popC, 1);
                span(head.popC, head.dispatchC, 2);
                span(head.dispatchC, head.issueC, 3);
                span(head.issueC, head.completeC, 4);
                span(head.completeC, commitC, 5);
                ++tracedInsts;
            }
            robHead = (robHead + 1) % config.robSize;
            --robCount;
            ++committed;
            ++comm;
        }

        // ---- Issue ------------------------------------------------------
        eligible.clear();
        // Program-order enumeration over the not-yet-issued set.  Two
        // shortcuts keep the per-cycle cost to a couple of loads per
        // waiting entry: a known readyC is compared directly, and an
        // entry blocked on a producer is skipped until that producer's
        // resultCycle appears — readiness cannot change before then,
        // and resultCycle is only written after this scan, so the
        // entry unblocks in exactly the cycle a full rescan would.
        for (const std::size_t slot : unissued) {
            RobEntry &entry = rob[slot];
            std::uint32_t ready = entry.readyC;
            if (ready == Unknown) {
                if (entry.waitDep != program::NoDep &&
                    resultCycle[entry.waitDep] == Unknown) {
                    continue;
                }
                const DynInst &d = trace.insts[entry.dyn];
                ready = entry.dispatchC + 1;
                bool known = true;
                for (const DynIdx dep : {d.dep0, d.dep1}) {
                    if (dep == program::NoDep)
                        continue;
                    const std::uint32_t rc = resultCycle[dep];
                    if (rc == Unknown) {
                        entry.waitDep = dep;
                        known = false;
                        break;
                    }
                    ready = std::max(ready, rc);
                }
                if (!known)
                    continue;
                entry.readyC = ready;
            }
            if (cycle >= ready)
                eligible.push_back(slot);
        }

        if (usePriority && !eligible.empty()) {
            std::stable_partition(eligible.begin(), eligible.end(),
                [&](std::size_t slot) {
                    return isCritStatic(rob[slot].dyn);
                });
        }

        unsigned issuedCount = 0;
        for (const std::size_t slot : eligible) {
            if (issuedCount >= config.issueWidth)
                break;
            RobEntry &entry = rob[slot];
            const DynInst &d = trace.insts[entry.dyn];
            const FuPool pool = poolOf(d.op);
            FuSet &fus = pool == FuPool::Alu ? alus
                       : pool == FuPool::MulDiv ? muldivs
                       : pool == FuPool::Fp ? fpus : memPorts;

            std::uint32_t completeC;
            if (pool == FuPool::Mem) {
                // Acquire the port before touching the cache model.
                if (!fus.tryIssue(cycle, cycle + 1))
                    continue;
                if (d.isLoad()) {
                    const auto res = memory.load(d.memAddr, cycle);
                    completeC = static_cast<std::uint32_t>(
                        cycle + res.latency);
                } else {
                    memory.store(d.memAddr, cycle);
                    completeC = static_cast<std::uint32_t>(cycle + 1);
                }
            } else {
                completeC = static_cast<std::uint32_t>(
                    cycle + isa::execLatency(d.op));
                const std::uint64_t hold =
                    unpipelined(d.op) ? completeC : cycle + 1;
                if (!fus.tryIssue(cycle, hold))
                    continue;
            }

            entry.issued = true;
            entry.issueC = static_cast<std::uint32_t>(cycle);
            entry.completeC = completeC;
            resultCycle[entry.dyn] = completeC;
            ++issuedCount;
        }

        if (issuedCount > 0) {
            unissued.erase(
                std::remove_if(unissued.begin(), unissued.end(),
                               [&](std::size_t slot) {
                                   return rob[slot].issued;
                               }),
                unissued.end());
        }

        // ---- Dispatch (decode/rename pipe -> ROB) -------------------------
        unsigned dispatchBytes = 0;
        const unsigned frontBytes = config.frontendBytes;
        while (dispatchBytes < frontBytes && !decodePipe.empty() &&
               robCount < config.robSize) {
            const PipeEntry &pe = decodePipe.front();
            if (pe.readyC > cycle)
                break;
            dispatchBytes += trace.insts[pe.dyn].sizeBytes;
            const std::size_t slot =
                (robHead + robCount) % config.robSize;
            RobEntry &entry = rob[slot];
            entry = RobEntry{};
            entry.dyn = pe.dyn;
            entry.fetchC = pe.fetchC;
            entry.fetchLead = pe.fetchLead;
            entry.popC = pe.popC;
            entry.dispatchC = static_cast<std::uint32_t>(cycle);
            ++robCount;
            unissued.push_back(slot);
            decodePipe.pop_front();
        }

        // ---- Decode (fetch queue -> decode/rename pipe) --------------------
        // The decoder consumes word slots: one 32-bit instruction or a
        // pair of 16-bit ones per slot, so 16-bit code doubles the
        // front-end instruction rate (the paper's fetch-bandwidth
        // argument for the Thumb format).
        unsigned decodeBytes = 0;
        while (decodeBytes < frontBytes && !fetchQ.empty() &&
               decodePipe.size() < decodePipeCap &&
               cycle >= decodeStallUntil) {
            const FqEntry fe = fetchQ.front();
            fetchQ.pop_front();
            decodeBytes += trace.insts[fe.dyn].sizeBytes;
            if (trace.insts[fe.dyn].op == OpClass::Cdp) {
                // The CDP is a decoder directive: it consumes its fetch
                // and decode bytes and adds one cycle of decode *latency*
                // while the format switch takes effect (the paper's
                // conservative +1 decode-stage delay), but never enters
                // the ROB and does not stall decode throughput.
                cdpLatencyUntil = cycle + 1;
                stats.decodeCdpBubbles += config.cdpExtraDecode;
                ++committed; // retires here for bookkeeping
                continue;
            }
            const unsigned cdpPenalty =
                cycle <= cdpLatencyUntil ? config.cdpExtraDecode : 0;
            decodePipe.push_back(
                {fe.dyn, fe.fetchC, fe.fetchLead,
                 static_cast<std::uint32_t>(cycle),
                 static_cast<std::uint32_t>(
                     cycle + config.frontendLatency + cdpPenalty)});
        }

        // ---- Fetch --------------------------------------------------------
        unsigned fetched = 0;
        bool deliveredAny = false;
        bool sawIcacheMissNow = false;
        const bool blocked = cycle < fetchBlockedUntil;

        if (haltBranch >= 0 && resultCycle[haltBranch] != Unknown) {
            // The mispredicted branch has resolved; charge the redirect.
            fetchBlockedUntil = std::max<std::uint64_t>(
                fetchBlockedUntil,
                static_cast<std::uint64_t>(resultCycle[haltBranch]) +
                    config.redirectPenalty);
            blockedOnIcache = false;
            haltBranch = -1;
        }

        if (!blocked && haltBranch < 0 && fetchIdx < n) {
            std::uint64_t windowBase = 0;
            bool haveWindow = false;
            while (fetched < config.fetchWidth &&
                   fetchQ.size() < config.fetchQueueSize &&
                   fetchIdx < n) {
                const DynInst &d = trace.insts[fetchIdx];
                if (!haveWindow) {
                    windowBase = d.address &
                        ~static_cast<std::uint64_t>(
                            config.fetchBytes - 1);
                    const auto res =
                        memory.fetchInst(d.address, cycle);
                    ++stats.fetchWindows;
                    if (res.latency > memConfig.icache.hitLatency) {
                        // Miss (or in-flight fill): stall fetch until
                        // the line arrives; hits are pipelined.
                        fetchBlockedUntil =
                            cycle + res.latency -
                            memConfig.icache.hitLatency;
                        blockedOnIcache = true;
                        sawIcacheMissNow = true;
                        break;
                    }
                    haveWindow = true;
                }
                if (d.address < windowBase ||
                    d.address + d.sizeBytes >
                        windowBase + config.fetchBytes) {
                    break; // next fetch window, next cycle
                }

                fetchQ.push_back(
                    {fetchIdx, static_cast<std::uint32_t>(cycle), 0.0f});
                // A CDP shares its 32-bit word with the first 16-bit
                // instruction (Fig. 9), so it does not consume a fetch
                // slot of its own — only its bytes.
                if (d.op != OpClass::Cdp)
                    ++fetched;
                deliveredAny = true;
                stats.fetchedBytes += d.sizeBytes;

                // Mechanism hooks at fetch.
                if (config.criticalLoadPrefetch && d.isLoad() &&
                    isCritStatic(fetchIdx)) {
                    memory.prefetchData(d.memAddr, cycle);
                }
                if (config.efetch && d.op == OpClass::Call) {
                    const mem::Addr predicted = efetch.predictAndTrain(
                        d.address, d.branchTarget);
                    if (predicted != 0) {
                        for (unsigned k = 0; k < 4; ++k) {
                            memory.prefetchInst(predicted + 64ull * k,
                                                cycle);
                        }
                    }
                }

                const DynIdx thisIdx = fetchIdx;
                ++fetchIdx;

                if (d.isControl()) {
                    if (d.isCond()) {
                        ++stats.condBranches;
                        const bool correct =
                            bpu.predictAndTrain(d.address, d.taken());
                        if (!correct) {
                            ++stats.mispredicts;
                            haltBranch = thisIdx;
                            break;
                        }
                    }
                    if (d.taken())
                        break; // taken transfer ends the fetch group
                }
            }
        }

        // ---- Front-end stall attribution ----------------------------------
        if (!deliveredAny && fetchIdx < n) {
            if (blocked || sawIcacheMissNow) {
                if (blockedOnIcache)
                    ++stats.stallForIIcache;
                else
                    ++stats.stallForIRedirect;
                pendingSupplyStall += 1.0;
            } else if (haltBranch >= 0) {
                ++stats.stallForIRedirect;
                pendingSupplyStall += 1.0;
            } else if (fetchQ.size() >= config.fetchQueueSize) {
                ++stats.stallForRd;
            }
        } else if (deliveredAny && pendingSupplyStall > 0.0) {
            // Attribute accumulated supply-stall cycles to the freshly
            // fetched group: this is the inherited "fetch stage" time
            // of these instructions in the Fig. 3 sense.
            const unsigned delivered = std::max(fetched, 1u);
            const float lead = static_cast<float>(
                pendingSupplyStall / static_cast<double>(delivered));
            for (std::size_t k = fetchQ.size() - delivered;
                 k < fetchQ.size(); ++k) {
                fetchQ[k].fetchLead = lead;
            }
            pendingSupplyStall = 0.0;
        }
        if (!blocked && cycle >= fetchBlockedUntil && haltBranch < 0)
            blockedOnIcache = false;

        if (!warmupDone && committed >= config.warmupCommits) {
            warmupDone = true;
            warmupSnapshot = stats;
            warmupSnapshot.cycles = cycle + 1;
            warmupSnapshot.committed = committed;
            warmupSnapshot.mem = memory.stats();
            // Force a row at the warmup boundary so the post-warmup
            // window can be recovered from the series alone.
            if (sampling)
                sampleNow(cycle + 1);
        }
        if (sampling && committed >= nextSample) {
            sampleNow(cycle + 1);
            while (nextSample <= committed)
                nextSample += config.statsInterval;
        }

        ++cycle;
    }

    stats.cycles = cycle;
    stats.committed = committed;
    stats.mem = memory.stats();
    stats.efetchAccuracy = efetch.accuracy();
    // Final forced row: cumulative end-of-run values, before any warmup
    // subtraction (a repeated index overwrites the periodic row).
    if (sampling)
        config.intervals->sample(reg, committed);
    critics_debug("cpu", committed, " insts in ", cycle,
                  " cycles (warmup ", config.warmupCommits, ")");

    if (config.warmupCommits > 0) {
        // Report the post-warmup window only.
        auto sub = [](std::uint64_t &a, std::uint64_t b) {
            a = a >= b ? a - b : 0;
        };
        sub(stats.cycles, warmupSnapshot.cycles);
        sub(stats.committed, warmupSnapshot.committed);
        sub(stats.stallForIIcache, warmupSnapshot.stallForIIcache);
        sub(stats.stallForIRedirect, warmupSnapshot.stallForIRedirect);
        sub(stats.stallForRd, warmupSnapshot.stallForRd);
        sub(stats.decodeCdpBubbles, warmupSnapshot.decodeCdpBubbles);
        sub(stats.fetchedBytes, warmupSnapshot.fetchedBytes);
        sub(stats.condBranches, warmupSnapshot.condBranches);
        sub(stats.mispredicts, warmupSnapshot.mispredicts);
        sub(stats.fetchWindows, warmupSnapshot.fetchWindows);
        auto subBreak = [](StageBreakdown &a, const StageBreakdown &b) {
            a.fetch -= b.fetch;
            a.decode -= b.decode;
            a.issueWait -= b.issueWait;
            a.execute -= b.execute;
            a.commitWait -= b.commitWait;
            a.insts -= b.insts;
        };
        subBreak(stats.all, warmupSnapshot.all);
        subBreak(stats.crit, warmupSnapshot.crit);
        auto subCache = [&](mem::CacheStats &a,
                            const mem::CacheStats &b) {
            sub(a.accesses, b.accesses);
            sub(a.misses, b.misses);
            sub(a.prefetchFills, b.prefetchFills);
            sub(a.prefetchHits, b.prefetchHits);
        };
        subCache(stats.mem.icache, warmupSnapshot.mem.icache);
        subCache(stats.mem.dcache, warmupSnapshot.mem.dcache);
        subCache(stats.mem.l2, warmupSnapshot.mem.l2);
        sub(stats.mem.dram.reads, warmupSnapshot.mem.dram.reads);
        sub(stats.mem.dram.rowHits, warmupSnapshot.mem.dram.rowHits);
        sub(stats.mem.dram.rowConflicts,
            warmupSnapshot.mem.dram.rowConflicts);
        sub(stats.mem.dram.activates, warmupSnapshot.mem.dram.activates);
        sub(stats.mem.dram.totalLatency,
            warmupSnapshot.mem.dram.totalLatency);
        sub(stats.mem.storeAccesses, warmupSnapshot.mem.storeAccesses);
    }
    return stats;
}

} // namespace critics::cpu
