#include "program/program.hh"

#include <algorithm>

#include "support/logging.hh"

namespace critics::program
{

void
Program::layout()
{
    uidIndex_.clear();
    std::uint32_t addr = TextBase;
    for (std::uint32_t f = 0; f < funcs.size(); ++f) {
        // Functions start 4-byte aligned.
        addr = (addr + 3u) & ~3u;
        for (std::uint32_t b = 0; b < funcs[f].blocks.size(); ++b) {
            auto &block = funcs[f].blocks[b];
            for (std::uint32_t i = 0; i < block.insts.size(); ++i) {
                auto &si = block.insts[i];
                // 32-bit instructions must sit on 4-byte boundaries;
                // account the implied 2-byte pad.  A CDP switch must
                // start a 32-bit word (Fig. 9: CDP in the first half,
                // the first 16-bit instruction in the second half).
                if ((si.format == isa::Format::Arm32 || si.isCdp()) &&
                    (addr & 3u)) {
                    addr += 2;
                }
                si.address = addr;
                addr += si.bytes();
                critics_assert(si.uid != NoUid, "instruction without uid");
                const bool inserted = uidIndex_.emplace(
                    si.uid, InstLoc{f, b, i}).second;
                critics_assert(inserted, "duplicate uid ", si.uid);
                noteUid(si.uid);
            }
        }
    }
    textBytes_ = addr - TextBase;
}

std::size_t
Program::instCount() const
{
    std::size_t n = 0;
    for (const auto &fn : funcs)
        for (const auto &blk : fn.blocks)
            n += blk.insts.size();
    return n;
}

const InstLoc &
Program::locate(InstUid uid) const
{
    const auto it = uidIndex_.find(uid);
    critics_assert(it != uidIndex_.end(), "unknown uid ", uid,
                   " (layout() stale?)");
    return it->second;
}

bool
Program::contains(InstUid uid) const
{
    return uidIndex_.find(uid) != uidIndex_.end();
}

const StaticInst &
Program::inst(const InstLoc &loc) const
{
    return funcs[loc.func].blocks[loc.block].insts[loc.index];
}

StaticInst &
Program::inst(const InstLoc &loc)
{
    return funcs[loc.func].blocks[loc.block].insts[loc.index];
}

const StaticInst &
Program::instByUid(InstUid uid) const
{
    return inst(locate(uid));
}

StaticInst &
Program::instByUid(InstUid uid)
{
    return inst(locate(uid));
}

void
Program::noteUid(InstUid uid)
{
    if (uid != NoUid && uid >= nextUid_)
        nextUid_ = uid + 1;
}

const StaticInst *
blockTerminator(const BasicBlock &block)
{
    if (block.insts.empty() || !block.insts.back().isControl())
        return nullptr;
    return &block.insts.back();
}

std::vector<std::uint32_t>
blockSuccessors(const Function &fn, std::uint32_t b)
{
    const std::uint32_t n = static_cast<std::uint32_t>(fn.blocks.size());
    std::vector<std::uint32_t> succs;
    const StaticInst *term = blockTerminator(fn.blocks[b]);
    const FlowKind flow = term ? term->flow : FlowKind::FallThrough;

    const auto addFallthrough = [&] {
        if (b + 1 < n)
            succs.push_back(b + 1);
    };
    switch (flow) {
      case FlowKind::FallThrough:
      case FlowKind::CallFn:
        addFallthrough();
        break;
      case FlowKind::CondBranch:
        if (term->targetBlock < n)
            succs.push_back(term->targetBlock);
        addFallthrough();
        break;
      case FlowKind::Jump:
        if (term->targetBlock < n)
            succs.push_back(term->targetBlock);
        break;
      case FlowKind::Ret:
        break;
    }
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    return succs;
}

bool
blockExitsFunction(const Function &fn, std::uint32_t b)
{
    const StaticInst *term = blockTerminator(fn.blocks[b]);
    const FlowKind flow = term ? term->flow : FlowKind::FallThrough;
    if (flow == FlowKind::Ret)
        return true;
    const bool fallsOffEnd = b + 1 >= fn.blocks.size();
    switch (flow) {
      case FlowKind::FallThrough:
      case FlowKind::CallFn:
      case FlowKind::CondBranch: // the not-taken side falls through
        return fallsOffEnd;
      case FlowKind::Jump:
      case FlowKind::Ret:
        return false;
    }
    return false;
}

double
Program::thumbFraction() const
{
    std::size_t thumb = 0, total = 0;
    for (const auto &fn : funcs) {
        for (const auto &blk : fn.blocks) {
            for (const auto &si : blk.insts) {
                ++total;
                if (si.format == isa::Format::Thumb16)
                    ++thumb;
            }
        }
    }
    return total ? static_cast<double>(thumb) /
                   static_cast<double>(total) : 0.0;
}

} // namespace critics::program
