/**
 * @file
 * Dynamic execution traces.
 *
 * The key reproducibility trick of this codebase: a ControlPath (which
 * blocks executed, each conditional branch's outcome, each indirect call's
 * target) is generated *once* from the baseline program and depends only on
 * control-flow structure — never on block contents.  The same path can then
 * be re-emitted against a compiler-transformed program, so the baseline and
 * optimized simulations execute the *same work* and differ only in code
 * layout, formats and intra-block ordering, exactly like re-running the
 * same app input on a rewritten binary.
 */

#ifndef CRITICS_PROGRAM_TRACE_HH
#define CRITICS_PROGRAM_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"
#include "program/program.hh"

namespace critics::program
{

/** Index into Trace::insts; signed so -1 can mean "no producer". */
using DynIdx = std::int32_t;
constexpr DynIdx NoDep = -1;

/** One executed instruction. */
struct DynInst
{
    InstUid staticUid = NoUid;
    std::uint32_t address = 0;      ///< PC
    std::uint32_t memAddr = 0;      ///< loads/stores
    std::uint32_t branchTarget = 0; ///< control: target PC
    DynIdx dep0 = NoDep;            ///< producer of src1
    DynIdx dep1 = NoDep;            ///< producer of src2
    isa::OpClass op = isa::OpClass::IntAlu;
    std::uint8_t sizeBytes = 4;
    std::uint8_t cdpRun = 0;        ///< CDP: following 16-bit run length
    bool taken = false;             ///< control: was the transfer taken
    bool isCond = false;            ///< conditional branch

    bool isLoad() const { return op == isa::OpClass::Load; }
    bool isStore() const { return op == isa::OpClass::Store; }
    bool isControl() const { return isa::isControl(op); }
};

/** A dynamic instruction stream. */
struct Trace
{
    std::vector<DynInst> insts;

    std::size_t size() const { return insts.size(); }
    const DynInst &operator[](std::size_t i) const { return insts[i]; }
};

/** Packed (function, block) visit. */
struct BlockVisit
{
    std::uint32_t func;
    std::uint32_t block;
};

/**
 * The content-independent record of one execution: block visit sequence,
 * conditional-branch outcomes (in visit order) and indirect-call targets
 * (in visit order).
 */
struct ControlPath
{
    std::vector<BlockVisit> visits;
    std::vector<std::uint8_t> branchOutcomes;
    std::vector<std::uint32_t> indirectTargets;
};

} // namespace critics::program

#endif // CRITICS_PROGRAM_TRACE_HH
