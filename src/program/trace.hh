/**
 * @file
 * Dynamic execution traces.
 *
 * The key reproducibility trick of this codebase: a ControlPath (which
 * blocks executed, each conditional branch's outcome, each indirect call's
 * target) is generated *once* from the baseline program and depends only on
 * control-flow structure — never on block contents.  The same path can then
 * be re-emitted against a compiler-transformed program, so the baseline and
 * optimized simulations execute the *same work* and differ only in code
 * layout, formats and intra-block ordering, exactly like re-running the
 * same app input on a rewritten binary.
 */

#ifndef CRITICS_PROGRAM_TRACE_HH
#define CRITICS_PROGRAM_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"
#include "program/program.hh"

namespace critics::program
{

/** Index into Trace::insts; signed so -1 can mean "no producer". */
using DynIdx = std::int32_t;
constexpr DynIdx NoDep = -1;

/**
 * One executed instruction, packed to 28 bytes so the simulator's
 * sequential sweep touches at most two cache lines per record.  The
 * two booleans of the old layout live in a single flags byte; the
 * flag bits are precomputed at emit time (DESIGN.md §7).
 */
struct DynInst
{
    static constexpr std::uint8_t kTaken = 1u << 0; ///< transfer taken
    static constexpr std::uint8_t kCond = 1u << 1;  ///< conditional br

    InstUid staticUid = NoUid;
    std::uint32_t address = 0;      ///< PC
    std::uint32_t memAddr = 0;      ///< loads/stores
    std::uint32_t branchTarget = 0; ///< control: target PC
    DynIdx dep0 = NoDep;            ///< producer of src1
    DynIdx dep1 = NoDep;            ///< producer of src2
    isa::OpClass op = isa::OpClass::IntAlu;
    std::uint8_t sizeBytes = 4;
    std::uint8_t cdpRun = 0;        ///< CDP: following 16-bit run length
    std::uint8_t flags = 0;         ///< kTaken | kCond

    bool taken() const { return (flags & kTaken) != 0; }
    bool isCond() const { return (flags & kCond) != 0; }
    void
    setTaken(bool v)
    {
        flags = v ? (flags | kTaken)
                  : static_cast<std::uint8_t>(flags & ~kTaken);
    }
    void
    setCond(bool v)
    {
        flags = v ? (flags | kCond)
                  : static_cast<std::uint8_t>(flags & ~kCond);
    }

    bool isLoad() const { return op == isa::OpClass::Load; }
    bool isStore() const { return op == isa::OpClass::Store; }
    bool isControl() const { return isa::isControl(op); }
};

static_assert(sizeof(DynInst) == 28,
              "DynInst must stay a packed 28-byte record; widening it "
              "slows the simulator's sequential trace sweep");

/**
 * A dynamic instruction stream.  `dynCount`/`thumbDynCount` are filled
 * by emitTrace so consumers (the dynamic-thumb-fraction statistic)
 * never rescan the stream; hand-built traces that skip emitTrace and
 * never read dynThumbFraction() may leave them zero.
 */
struct Trace
{
    std::vector<DynInst> insts;
    std::uint64_t dynCount = 0;      ///< executed insts excluding CDPs
    std::uint64_t thumbDynCount = 0; ///< 16-bit ones among dynCount

    std::size_t size() const { return insts.size(); }
    const DynInst &operator[](std::size_t i) const { return insts[i]; }

    /** Fraction of executed (non-CDP) instructions in the 16-bit
     *  format — Fig. 13b, excluding switch overhead. */
    double
    dynThumbFraction() const
    {
        return dynCount ? static_cast<double>(thumbDynCount) /
                          static_cast<double>(dynCount)
                        : 0.0;
    }
};

/** Packed (function, block) visit. */
struct BlockVisit
{
    std::uint32_t func;
    std::uint32_t block;
};

/**
 * The content-independent record of one execution: block visit sequence,
 * conditional-branch outcomes (in visit order) and indirect-call targets
 * (in visit order).
 */
struct ControlPath
{
    std::vector<BlockVisit> visits;
    std::vector<std::uint8_t> branchOutcomes;
    std::vector<std::uint32_t> indirectTargets;
};

} // namespace critics::program

#endif // CRITICS_PROGRAM_TRACE_HH
