#include "program/dfg.hh"

#include <algorithm>

#include "support/logging.hh"

namespace critics::program
{

BlockDfg::BlockDfg(const BasicBlock &block)
{
    const std::size_t n = block.insts.size();
    producers_.assign(n, {-1, -1});
    consumers_.assign(n, {});

    std::array<int, isa::NumArchRegs> lastWriter;
    lastWriter.fill(-1);

    for (std::size_t i = 0; i < n; ++i) {
        const auto &arch = block.insts[i].arch;
        if (arch.src1 != isa::NoReg) {
            producers_[i][0] = lastWriter[arch.src1];
            if (producers_[i][0] >= 0)
                consumers_[producers_[i][0]].push_back(
                    static_cast<int>(i));
        }
        if (arch.src2 != isa::NoReg) {
            producers_[i][1] = lastWriter[arch.src2];
            if (producers_[i][1] >= 0 &&
                producers_[i][1] != producers_[i][0]) {
                consumers_[producers_[i][1]].push_back(
                    static_cast<int>(i));
            }
        }
        if (arch.dst != isa::NoReg)
            lastWriter[arch.dst] = static_cast<int>(i);
    }
}

bool
BlockDfg::dependsOn(std::size_t later, std::size_t earlier) const
{
    critics_assert(later < size() && earlier < size(), "dfg index range");
    if (later <= earlier)
        return false;
    // DFS backward over producer edges.
    std::vector<int> work{static_cast<int>(later)};
    std::vector<bool> seen(size(), false);
    while (!work.empty()) {
        const int cur = work.back();
        work.pop_back();
        for (const int p : producers_[cur]) {
            if (p < 0 || seen[p])
                continue;
            if (p == static_cast<int>(earlier))
                return true;
            if (p > static_cast<int>(earlier)) {
                seen[p] = true;
                work.push_back(p);
            }
        }
    }
    return false;
}

bool
canSwap(const StaticInst &a, const StaticInst &b)
{
    // Never move control transfers or format-switch markers.
    if (a.isControl() || b.isControl() || a.isCdp() || b.isCdp())
        return false;

    const auto &ia = a.arch;
    const auto &ib = b.arch;

    // RAW: b reads a's destination.
    if (ia.dst != isa::NoReg &&
        (ib.src1 == ia.dst || ib.src2 == ia.dst))
        return false;
    // WAR: a reads b's destination.
    if (ib.dst != isa::NoReg &&
        (ia.src1 == ib.dst || ia.src2 == ib.dst))
        return false;
    // WAW: both write the same register.
    if (ia.dst != isa::NoReg && ia.dst == ib.dst)
        return false;

    // Memory ordering: conservative unless provably disjoint regions.
    const bool a_mem = a.isLoad() || a.isStore();
    const bool b_mem = b.isLoad() || b.isStore();
    if (a_mem && b_mem) {
        if (a.isStore() || b.isStore()) {
            if (a.memRegionId == b.memRegionId &&
                (a.aliasClass == 0xFF || b.aliasClass == 0xFF ||
                 a.aliasClass == b.aliasClass)) {
                return false;
            }
        }
    }
    return true;
}

std::size_t
hoistUpTo(BasicBlock &block, std::size_t from, std::size_t anchor)
{
    critics_assert(from < block.insts.size(), "hoist index range");
    critics_assert(anchor < from, "hoist anchor must precede source");
    std::size_t pos = from;
    while (pos > anchor + 1) {
        if (!canSwap(block.insts[pos - 1], block.insts[pos]))
            break;
        std::swap(block.insts[pos - 1], block.insts[pos]);
        --pos;
    }
    return pos;
}

} // namespace critics::program
