#include "program/emit.hh"

#include <array>

#include "support/logging.hh"
#include "support/rng.hh"

namespace critics::program
{

namespace
{

/** Deterministic per-(uid, occurrence) data address. */
std::uint32_t
dataAddress(const Program &prog, const StaticInst &si, std::uint32_t occ)
{
    critics_assert(si.memRegionId < prog.memRegions.size(),
                   "bad mem region ", si.memRegionId);
    const MemRegionDesc &region = prog.memRegions[si.memRegionId];
    critics_assert(region.size > 0, "empty mem region");
    // Alias classes partition the region into disjoint banks so the
    // compiler's disjointness knowledge is architecturally true.
    const unsigned banks = si.aliasClass == 0xFF ? 1 : 16;
    const std::uint32_t bankSize =
        std::max<std::uint32_t>(region.size / banks, 64);
    const std::uint32_t bankBase =
        si.aliasClass == 0xFF ? 0
            : (si.aliasClass % banks) * bankSize;

    std::uint32_t offset = 0;
    switch (si.memPattern) {
      case MemPattern::Stride:
        offset = (occ * std::max<std::uint32_t>(region.stride, 4))
                 % bankSize;
        break;
      case MemPattern::HotRegion:
      case MemPattern::ColdRegion: {
        const std::uint64_t h = hashCombine(
            static_cast<std::uint64_t>(si.uid) * 0x9E3779B1ULL, occ);
        offset = static_cast<std::uint32_t>(h % bankSize) & ~3u;
        break;
      }
      case MemPattern::None:
        critics_panic("memory instruction without a pattern, uid ",
                      si.uid);
    }
    return region.base + bankBase + offset;
}

} // namespace

Trace
emitTrace(const Program &prog, const ControlPath &path)
{
    Trace trace;

    // Pre-size: count instructions along the path.
    std::size_t total = 0;
    for (const BlockVisit &v : path.visits)
        total += prog.funcs[v.func].blocks[v.block].insts.size();
    trace.insts.reserve(total);

    // Block start addresses for control-transfer targets.
    std::vector<std::vector<std::uint32_t>> blockStart(prog.funcs.size());
    for (std::size_t f = 0; f < prog.funcs.size(); ++f) {
        const Function &fn = prog.funcs[f];
        blockStart[f].resize(fn.blocks.size(), 0);
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            blockStart[f][b] = fn.blocks[b].insts.empty()
                ? 0 : fn.blocks[b].insts.front().address;
        }
    }

    // Last dynamic writer of each architectural register.
    std::array<DynIdx, isa::NumArchRegs> lastWriter;
    lastWriter.fill(NoDep);

    // Per-uid occurrence counters (uids are dense).
    std::vector<std::uint32_t> occurrences;

    std::size_t outcomeIdx = 0;

    for (std::size_t v = 0; v < path.visits.size(); ++v) {
        const BlockVisit &visit = path.visits[v];
        const BasicBlock &bb =
            prog.funcs[visit.func].blocks[visit.block];

        const std::uint32_t nextVisitAddr =
            (v + 1 < path.visits.size())
                ? blockStart[path.visits[v + 1].func]
                            [path.visits[v + 1].block]
                : 0;

        for (std::size_t i = 0; i < bb.insts.size(); ++i) {
            const StaticInst &si = bb.insts[i];
            DynInst d;
            d.staticUid = si.uid;
            d.address = si.address;
            d.sizeBytes = static_cast<std::uint8_t>(si.bytes());
            d.op = si.arch.op;
            d.cdpRun = si.cdpRun;

            if (si.arch.src1 != isa::NoReg)
                d.dep0 = lastWriter[si.arch.src1];
            if (si.arch.src2 != isa::NoReg)
                d.dep1 = lastWriter[si.arch.src2];

            if (si.isLoad() || si.isStore()) {
                if (si.uid >= occurrences.size())
                    occurrences.resize(si.uid + 1, 0);
                d.memAddr = dataAddress(prog, si, occurrences[si.uid]++);
            }

            const bool is_term = (i + 1 == bb.insts.size());
            if (si.isControl() && is_term) {
                switch (si.flow) {
                  case FlowKind::CondBranch: {
                    critics_assert(outcomeIdx < path.branchOutcomes.size(),
                                   "path branch outcomes exhausted");
                    d.setCond(true);
                    d.setTaken(path.branchOutcomes[outcomeIdx++] != 0);
                    d.branchTarget = d.taken() ? nextVisitAddr
                                               : d.address + d.sizeBytes;
                    break;
                  }
                  case FlowKind::Jump:
                  case FlowKind::CallFn:
                  case FlowKind::Ret:
                    d.setTaken(true);
                    d.branchTarget = nextVisitAddr;
                    break;
                  case FlowKind::FallThrough:
                    break;
                }
            } else if (si.isControl()) {
                // Control instruction inserted mid-block by a compiler
                // pass (approach-1 switch branches): always taken to the
                // next sequential instruction.
                d.setTaken(true);
                d.branchTarget = (i + 1 < bb.insts.size())
                    ? bb.insts[i + 1].address : d.address + d.sizeBytes;
            }

            if (si.arch.dst != isa::NoReg) {
                lastWriter[si.arch.dst] =
                    static_cast<DynIdx>(trace.insts.size());
            }
            if (d.op != isa::OpClass::Cdp) {
                ++trace.dynCount;
                if (d.sizeBytes == 2)
                    ++trace.thumbDynCount;
            }
            trace.insts.push_back(d);
        }
    }
    return trace;
}

} // namespace critics::program
