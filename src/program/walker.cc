#include "program/walker.hh"

#include "support/logging.hh"

namespace critics::program
{

ControlPath
walkProgram(const Program &prog, Rng &rng, const WalkLimits &limits)
{
    critics_assert(!prog.funcs.empty(), "walk of empty program");
    ControlPath path;

    struct Frame
    {
        std::uint32_t func;
        std::uint32_t block;
    };
    std::vector<Frame> stack;
    std::uint32_t func = 0;
    std::uint32_t block = 0;
    std::uint64_t insts = 0;
    std::uint64_t visits = 0;

    while (insts < limits.targetInsts && visits < limits.maxVisits) {
        critics_assert(func < prog.funcs.size(), "walk: bad func ", func);
        const Function &fn = prog.funcs[func];
        critics_assert(block < fn.blocks.size(), "walk: bad block ", block,
                       " in ", fn.name);
        const BasicBlock &bb = fn.blocks[block];
        path.visits.push_back({func, block});
        insts += bb.insts.size();
        ++visits;

        // Follow the terminator (last instruction) if it transfers
        // control; otherwise fall through.
        FlowKind flow = FlowKind::FallThrough;
        const StaticInst *term = nullptr;
        if (!bb.insts.empty() && bb.insts.back().isControl()) {
            term = &bb.insts.back();
            flow = term->flow;
        }

        auto fallthrough = [&]() {
            if (block + 1 < fn.blocks.size()) {
                ++block;
                return;
            }
            // Implicit return at function end.
            if (!stack.empty()) {
                func = stack.back().func;
                block = stack.back().block;
                stack.pop_back();
            } else {
                func = 0;
                block = 0;
            }
        };

        switch (flow) {
          case FlowKind::FallThrough:
            fallthrough();
            break;
          case FlowKind::CondBranch: {
            const bool taken = rng.chance(term->takenBias);
            path.branchOutcomes.push_back(taken ? 1 : 0);
            if (taken) {
                critics_assert(term->targetBlock < fn.blocks.size(),
                               "walk: bad branch target");
                block = term->targetBlock;
            } else {
                fallthrough();
            }
            break;
          }
          case FlowKind::Jump:
            critics_assert(term->targetBlock < fn.blocks.size(),
                           "walk: bad jump target");
            block = term->targetBlock;
            break;
          case FlowKind::CallFn: {
            std::uint32_t callee = term->targetFunc;
            if (term->indirectTable != NoTable) {
                const auto &table =
                    prog.indirectTables[term->indirectTable];
                critics_assert(!table.callees.empty(),
                               "walk: empty indirect table");
                // Sample the dynamic target; record it so emission can
                // replay the exact same path.
                Rng *r = &rng;
                std::size_t pick = 0;
                if (table.callees.size() > 1) {
                    std::vector<double> w = table.weights;
                    if (w.size() != table.callees.size())
                        w.assign(table.callees.size(), 1.0);
                    pick = r->weighted(w);
                }
                callee = table.callees[pick];
                path.indirectTargets.push_back(callee);
            }
            if (stack.size() >= limits.maxCallDepth) {
                // Depth guard: skip the call.  Emission replays this
                // decision because it uses the same guard on the same
                // recorded path (the skipped call is simply followed by
                // the fallthrough visit).
                fallthrough();
                break;
            }
            critics_assert(callee < prog.funcs.size(),
                           "walk: bad callee ", callee);
            // Return continues after the call block.
            Frame ret{func, block + 1 < fn.blocks.size()
                                ? block + 1 : block};
            if (block + 1 < fn.blocks.size()) {
                stack.push_back(ret);
            } // else: tail call, nothing to return to in this function
            func = callee;
            block = 0;
            break;
          }
          case FlowKind::Ret:
            if (!stack.empty()) {
                func = stack.back().func;
                block = stack.back().block;
                stack.pop_back();
            } else {
                func = 0;
                block = 0;
            }
            break;
        }
    }
    return path;
}

} // namespace critics::program
