/**
 * @file
 * Control-flow walker: produces a ControlPath from a program's control
 * structure only.  The walk models an event-driven execution — when the
 * call stack empties, control returns to function 0 ("the event loop").
 */

#ifndef CRITICS_PROGRAM_WALKER_HH
#define CRITICS_PROGRAM_WALKER_HH

#include <cstdint>

#include "program/program.hh"
#include "program/trace.hh"
#include "support/rng.hh"

namespace critics::program
{

struct WalkLimits
{
    /** Stop once the path covers at least this many instructions. */
    std::uint64_t targetInsts = 200000;
    /** Hard cap on call depth; deeper calls are skipped. */
    unsigned maxCallDepth = 24;
    /** Hard cap on block visits (runaway guard). */
    std::uint64_t maxVisits = 1u << 26;
};

/**
 * Walk the program's control flow and record a ControlPath.
 *
 * @param prog   the (baseline) program whose flow metadata is followed
 * @param rng    drives branch outcomes and indirect-target sampling
 * @param limits stop conditions
 */
ControlPath walkProgram(const Program &prog, Rng &rng,
                        const WalkLimits &limits);

} // namespace critics::program

#endif // CRITICS_PROGRAM_WALKER_HH
