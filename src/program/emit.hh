/**
 * @file
 * Trace emission: replay a ControlPath against a (possibly transformed)
 * program, producing the dynamic instruction stream the CPU model
 * executes.  Emission is fully deterministic: data addresses are hashed
 * from (instruction uid, occurrence index), so a transformed program
 * touches the same data in the same order as the baseline.
 */

#ifndef CRITICS_PROGRAM_EMIT_HH
#define CRITICS_PROGRAM_EMIT_HH

#include "program/program.hh"
#include "program/trace.hh"

namespace critics::program
{

/**
 * Emit the dynamic trace for one path.
 *
 * @param prog program whose current layout/contents are executed; its
 *             (func, block) structure must match the one the path was
 *             walked on
 * @param path the recorded control path
 */
Trace emitTrace(const Program &prog, const ControlPath &path);

} // namespace critics::program

#endif // CRITICS_PROGRAM_EMIT_HH
