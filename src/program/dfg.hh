/**
 * @file
 * Intra-block data-flow analysis: producer/consumer edges by register,
 * and the code-motion legality checks the hoist pass relies on.
 */

#ifndef CRITICS_PROGRAM_DFG_HH
#define CRITICS_PROGRAM_DFG_HH

#include <array>
#include <vector>

#include "program/program.hh"

namespace critics::program
{

/**
 * Data-flow graph of one basic block.  Edges are register true
 * dependences (RAW) between instruction indices within the block.
 */
class BlockDfg
{
  public:
    explicit BlockDfg(const BasicBlock &block);

    /** Producer index of each source operand (-1 = defined outside the
     *  block). [i][0] is src1's producer, [i][1] src2's. */
    const std::array<int, 2> &producers(std::size_t i) const
    {
        return producers_[i];
    }

    /** Direct consumer indices of instruction i's destination. */
    const std::vector<int> &consumers(std::size_t i) const
    {
        return consumers_[i];
    }

    std::size_t size() const { return producers_.size(); }

    /** @return true if `later` transitively depends on `earlier`. */
    bool dependsOn(std::size_t later, std::size_t earlier) const;

  private:
    std::vector<std::array<int, 2>> producers_;
    std::vector<std::vector<int>> consumers_;
};

/**
 * @return true if instructions `a` (earlier) and `b` (later) can be
 * reordered to b-before-a without changing register dataflow or memory
 * semantics.  Conservative on memory: loads may bypass loads; anything
 * involving a store only reorders when the two references are to
 * different regions; control transfers never move.
 */
bool canSwap(const StaticInst &a, const StaticInst &b);

/**
 * Hoist the instruction at `from` upward so it lands immediately after
 * position `anchor` (anchor < from), bubbling it past intervening
 * instructions as long as each swap is legal.  Stops early at the first
 * illegal swap.
 *
 * @return the final index of the moved instruction.
 */
std::size_t hoistUpTo(BasicBlock &block, std::size_t from,
                      std::size_t anchor);

} // namespace critics::program

#endif // CRITICS_PROGRAM_DFG_HH
