/**
 * @file
 * Static program representation: the unit the workload synthesizer emits,
 * the compiler passes rewrite, and the trace generator walks.
 *
 * A Program is a list of Functions; a Function is a list of BasicBlocks;
 * a BasicBlock is a straight-line list of StaticInsts whose last
 * instruction may be a control transfer.  Every StaticInst carries a
 * persistent `uid` assigned at synthesis time that survives all compiler
 * transformations — profiles (CritIC chains, criticality tables, address
 * streams) are keyed by uid so they stay valid across rewrites.
 */

#ifndef CRITICS_PROGRAM_PROGRAM_HH
#define CRITICS_PROGRAM_PROGRAM_HH

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"

namespace critics::program
{

using InstUid = std::uint32_t;
constexpr InstUid NoUid = std::numeric_limits<InstUid>::max();
constexpr std::uint32_t NoTable = std::numeric_limits<std::uint32_t>::max();

/** Candidate callee set of an indirect call site (vtable stand-in). */
struct IndirectTable
{
    std::vector<std::uint32_t> callees; ///< function indices
    std::vector<double> weights;        ///< sampling weights
};

/** One synthetic data region referenced by loads/stores. */
struct MemRegionDesc
{
    std::uint32_t base = 0;
    std::uint32_t size = 0;   ///< bytes; addresses wrap inside
    std::uint32_t stride = 0; ///< Stride pattern: bytes per occurrence
};

/** Memory reference behaviour of a static load/store (the synthetic
 *  stand-in for its address expression). */
enum class MemPattern : std::uint8_t
{
    None,       ///< not a memory instruction
    Stride,     ///< sequential/strided stream (arrays)
    HotRegion,  ///< random within a small hot region (stack, hot heap)
    ColdRegion, ///< random within a large region (pointer chasing)
};

/** Control-flow role of a block terminator. */
enum class FlowKind : std::uint8_t
{
    FallThrough, ///< no control transfer; next block in layout order
    CondBranch,  ///< conditional branch: taken -> targetBlock, else next
    Jump,        ///< unconditional branch to targetBlock
    CallFn,      ///< call targetFunc, then continue at next block
    Ret,         ///< return to caller
};

/**
 * One static instruction.  Architectural fields live in
 * isa::OperandInfo; the rest is workload/compiler metadata.
 */
struct StaticInst
{
    InstUid uid = NoUid;
    isa::OperandInfo arch;
    isa::Format format = isa::Format::Arm32;

    /** Memory metadata (loads/stores). */
    MemPattern memPattern = MemPattern::None;
    std::uint32_t memRegionId = 0;
    /** Disjointness class within the region: accesses with different
     *  classes provably never alias (what a compiler's points-to
     *  analysis would know); 0xFF = may alias anything in region. */
    std::uint8_t aliasClass = 0xFF;

    /** Terminator metadata (set only on a block's last instruction when
     *  it is a control transfer). */
    FlowKind flow = FlowKind::FallThrough;
    std::uint32_t targetBlock = 0; ///< CondBranch/Jump: block idx in fn
    std::uint32_t targetFunc = 0;  ///< CallFn: function idx
    std::uint32_t indirectTable = NoTable; ///< CallFn: candidate set
    float takenBias = 0.0f;        ///< CondBranch: probability taken
    float predictability = 1.0f;   ///< CondBranch: BPU-reachable accuracy

    /** CDP switch: number of following Thumb instructions covered. */
    std::uint8_t cdpRun = 0;

    /** Assigned by Program::layout(). */
    std::uint32_t address = 0;

    unsigned bytes() const { return isa::formatBytes(format); }
    bool isLoad() const { return arch.op == isa::OpClass::Load; }
    bool isStore() const { return arch.op == isa::OpClass::Store; }
    bool isControl() const { return isa::isControl(arch.op); }
    bool isCdp() const { return arch.op == isa::OpClass::Cdp; }
};

/** Straight-line sequence of instructions ending in at most one
 *  control transfer. */
struct BasicBlock
{
    std::vector<StaticInst> insts;
};

struct Function
{
    std::string name;
    std::vector<BasicBlock> blocks;
};

/** Location of a uid inside a program. */
struct InstLoc
{
    std::uint32_t func = 0;
    std::uint32_t block = 0;
    std::uint32_t index = 0;
};

/**
 * The terminator of a block: its last instruction when that is a
 * control transfer, nullptr otherwise.  A branch-pair format switch at
 * the block tail (Branch op with FallThrough flow) is returned too —
 * callers deciding successors must honour its FallThrough flow, which
 * is exactly what walkProgram does.
 */
const StaticInst *blockTerminator(const BasicBlock &block);

/**
 * Intra-function successor block indices of fn.blocks[b], mirroring
 * walkProgram's semantics exactly:
 *   - FallThrough (or no terminator): b+1 when it exists, else none
 *     (the implicit return leaves the function);
 *   - CondBranch: targetBlock plus the fallthrough successor;
 *   - Jump: targetBlock;
 *   - CallFn: b+1 when it exists (both the call's return and the
 *     depth-guard skip continue there), else none (tail call);
 *   - Ret: none.
 * Out-of-range targets are dropped (the structural verifier reports
 * them).  The result is sorted and deduplicated.
 */
std::vector<std::uint32_t> blockSuccessors(const Function &fn,
                                           std::uint32_t b);

/** True when fn.blocks[b] can leave the function: it ends in Ret, or
 *  any of its exits needs a fallthrough that runs off the function
 *  end (the implicit return walkProgram performs). */
bool blockExitsFunction(const Function &fn, std::uint32_t b);

/**
 * A whole program plus its address layout and uid index.
 */
class Program
{
  public:
    std::vector<Function> funcs;
    std::vector<IndirectTable> indirectTables;
    std::vector<MemRegionDesc> memRegions;

    /** Base address of the text section. */
    static constexpr std::uint32_t TextBase = 0x10000;

    /**
     * Assign byte addresses to every instruction.  Functions are laid
     * out sequentially, 4-byte aligned; blocks follow each other inside
     * a function; a 2-byte Nop pad is *implied* (accounted in addresses)
     * whenever a 32-bit instruction would otherwise start on a 2-byte
     * boundary.  Also rebuilds the uid index.  Must be called after any
     * structural change.
     */
    void layout();

    /** Total text bytes after the last layout(). */
    std::uint32_t textBytes() const { return textBytes_; }

    /** Total static instruction count. */
    std::size_t instCount() const;

    /** Locate an instruction by uid; panics if absent. */
    const InstLoc &locate(InstUid uid) const;
    bool contains(InstUid uid) const;

    const StaticInst &inst(const InstLoc &loc) const;
    StaticInst &inst(const InstLoc &loc);
    const StaticInst &instByUid(InstUid uid) const;
    StaticInst &instByUid(InstUid uid);

    /** Next unused uid (for passes that insert instructions). */
    InstUid allocUid() { return nextUid_++; }
    void noteUid(InstUid uid);

    /** Fraction of static instructions currently in 16-bit format. */
    double thumbFraction() const;

  private:
    std::unordered_map<InstUid, InstLoc> uidIndex_;
    std::uint32_t textBytes_ = 0;
    InstUid nextUid_ = 0;
};

} // namespace critics::program

#endif // CRITICS_PROGRAM_PROGRAM_HH
