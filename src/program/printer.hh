/**
 * @file
 * Human-readable printing of programs, blocks and instructions, with
 * the real bit-level encodings — the library's "disassembler".  Used
 * by the examples and invaluable when debugging compiler passes.
 */

#ifndef CRITICS_PROGRAM_PRINTER_HH
#define CRITICS_PROGRAM_PRINTER_HH

#include <string>

#include "program/program.hh"

namespace critics::program
{

/** One-line rendering: "0x00010004  uid 12  Thumb16  IntAlu r1 <- r2". */
std::string formatInst(const StaticInst &si);

/** Assembly-style operand text without address/uid decoration. */
std::string formatOperands(const StaticInst &si);

/** Hex encoding of the instruction in its current format. */
std::string formatEncoding(const StaticInst &si);

/** Multi-line rendering of a block (one formatInst line per inst plus
 *  a byte-count trailer). */
std::string formatBlock(const BasicBlock &block);

/** Program-level summary: functions, blocks, instructions, text bytes,
 *  format mix. */
std::string summarizeProgram(const Program &prog);

} // namespace critics::program

#endif // CRITICS_PROGRAM_PRINTER_HH
