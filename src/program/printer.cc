#include "program/printer.hh"

#include <iomanip>
#include <sstream>

namespace critics::program
{

namespace
{

std::string
reg(std::uint8_t r)
{
    if (r == isa::NoReg)
        return "--";
    return "r" + std::to_string(r);
}

} // namespace

std::string
formatOperands(const StaticInst &si)
{
    std::ostringstream os;
    if (si.isCdp()) {
        os << "CDP #" << unsigned(si.cdpRun);
        return os.str();
    }
    os << isa::opClassName(si.arch.op);
    if (si.arch.predicated)
        os << ".pred";
    bool first = true;
    auto emit = [&](const std::string &text) {
        os << (first ? " " : ", ") << text;
        first = false;
    };
    if (si.arch.dst != isa::NoReg)
        emit(reg(si.arch.dst));
    if (si.arch.src1 != isa::NoReg)
        emit(reg(si.arch.src1));
    if (si.arch.src2 != isa::NoReg)
        emit(reg(si.arch.src2));
    if (si.arch.imm != 0)
        emit("#" + std::to_string(si.arch.imm));
    switch (si.flow) {
      case FlowKind::CondBranch:
        emit("->b" + std::to_string(si.targetBlock));
        break;
      case FlowKind::Jump:
        emit("->b" + std::to_string(si.targetBlock));
        break;
      case FlowKind::CallFn:
        emit(si.indirectTable == NoTable
                 ? "fn" + std::to_string(si.targetFunc)
                 : std::string("[indirect]"));
        break;
      default:
        break;
    }
    return os.str();
}

std::string
formatEncoding(const StaticInst &si)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::uppercase << std::setfill('0');
    if (si.isCdp()) {
        // The verifier prints instructions it has just flagged; a CDP
        // with a corrupt run length must render, not assert.
        if (si.cdpRun >= 1 && si.cdpRun <= isa::MaxCdpRun)
            os << std::setw(4) << isa::encodeCdp(si.cdpRun);
        else
            os << "????";
    } else if (si.format == isa::Format::Thumb16) {
        // CritIC.Ideal force-converts instructions with no real 16-bit
        // encoding; render those as a placeholder instead of asserting.
        if (isa::thumbConvertible(si.arch))
            os << std::setw(4) << isa::encodeThumb16(si.arch);
        else
            os << "????";
    } else {
        os << std::setw(8) << isa::encodeArm32(si.arch);
    }
    return os.str();
}

std::string
formatInst(const StaticInst &si)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::setfill('0') << std::setw(8)
       << si.address << std::dec << std::setfill(' ') << "  uid "
       << std::left << std::setw(6) << si.uid
       << (si.format == isa::Format::Thumb16 ? "Thumb16 " : "Arm32   ")
       << std::setw(28) << formatOperands(si) << " " << formatEncoding(si);
    return os.str();
}

std::string
formatBlock(const BasicBlock &block)
{
    std::ostringstream os;
    unsigned bytes = 0;
    for (const auto &si : block.insts) {
        os << "  " << formatInst(si) << "\n";
        bytes += si.bytes();
    }
    os << "  ; " << block.insts.size() << " instructions, " << bytes
       << " bytes\n";
    return os.str();
}

std::string
summarizeProgram(const Program &prog)
{
    std::size_t blocks = 0, thumb = 0, cdps = 0, controls = 0, mems = 0;
    const std::size_t insts = prog.instCount();
    for (const auto &fn : prog.funcs) {
        blocks += fn.blocks.size();
        for (const auto &block : fn.blocks) {
            for (const auto &si : block.insts) {
                if (si.format == isa::Format::Thumb16)
                    ++thumb;
                if (si.isCdp())
                    ++cdps;
                if (si.isControl())
                    ++controls;
                if (si.isLoad() || si.isStore())
                    ++mems;
            }
        }
    }
    std::ostringstream os;
    os << prog.funcs.size() << " functions, " << blocks << " blocks, "
       << insts << " instructions (" << (prog.textBytes() >> 10)
       << " KB text); " << thumb << " in 16-bit format, " << cdps
       << " CDP switches, " << controls << " control transfers, "
       << mems << " memory ops";
    return os.str();
}

} // namespace critics::program
