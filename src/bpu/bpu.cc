#include "bpu/bpu.hh"

#include "stats/registry.hh"
#include "support/logging.hh"

namespace critics::bpu
{

void
BpuStats::registerStats(stats::StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addCounter(prefix + ".lookups", lookups,
                   "conditional-branch predictions");
    reg.addCounter(prefix + ".mispredicts", mispredicts,
                   "direction mispredictions");
    reg.addFormula(prefix + ".mispredictRate",
                   [this] { return mispredictRate(); },
                   "mispredicts / lookups");
}

namespace
{

bool
isPowerOfTwo(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

TwoLevelPredictor::TwoLevelPredictor(unsigned tableEntries,
                                     unsigned historyBits)
    : gshare_(tableEntries, 2), // weakly taken
      bimodal_(tableEntries / 4, 2),
      chooser_(tableEntries / 4, 2),
      indexMask_(tableEntries - 1),
      pcMask_(tableEntries / 4 - 1),
      historyMask_((1u << historyBits) - 1)
{
    critics_assert(isPowerOfTwo(tableEntries) && tableEntries >= 16,
                   "BPU table size must be a power of two >= 16");
    critics_assert(historyBits <= 31, "history too long");
}

bool
TwoLevelPredictor::predictAndTrain(std::uint32_t pc, bool taken)
{
    ++stats_.lookups;
    const std::uint32_t gIndex =
        ((pc >> 2) ^ (history_ & historyMask_)) & indexMask_;
    const std::uint32_t pIndex = (pc >> 2) & pcMask_;

    std::uint8_t &g = gshare_[gIndex];
    std::uint8_t &b = bimodal_[pIndex];
    std::uint8_t &c = chooser_[pIndex];
    const bool gPred = g >= 2;
    const bool bPred = b >= 2;
    const bool predicted = (c >= 2) ? gPred : bPred;

    auto train = [&](std::uint8_t &counter) {
        if (taken) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
    };
    // Chooser moves toward whichever component was right.
    if (gPred != bPred) {
        if (gPred == taken && c < 3)
            ++c;
        else if (bPred == taken && c > 0)
            --c;
    }
    train(g);
    train(b);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & historyMask_;

    const bool correct = (predicted == taken);
    if (!correct)
        ++stats_.mispredicts;
    return correct;
}

bool
PerfectPredictor::predictAndTrain(std::uint32_t, bool)
{
    ++stats_.lookups;
    return true;
}

} // namespace critics::bpu
