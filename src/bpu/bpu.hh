/**
 * @file
 * Branch direction predictors.  Only conditional branches can
 * mispredict in the model: direct jumps/calls have known targets and
 * returns are covered by a return-address stack, matching the paper's
 * focus on direction-misprediction stalls in F.StallForI.
 */

#ifndef CRITICS_BPU_BPU_HH
#define CRITICS_BPU_BPU_HH

#include <cstdint>
#include <string>
#include <vector>

namespace critics::stats
{
class StatRegistry;
}

namespace critics::bpu
{

/** Predictor statistics. */
struct BpuStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    double
    mispredictRate() const
    {
        return lookups ? static_cast<double>(mispredicts) /
                         static_cast<double>(lookups) : 0.0;
    }

    /** Register views of these fields under `prefix` (e.g. "bpu");
     *  this object must outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix) const;
};

/** Abstract direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the conditional branch at `pc`,
     *  then train on the actual outcome.
     *  @return true if the prediction was correct. */
    virtual bool predictAndTrain(std::uint32_t pc, bool taken) = 0;

    const BpuStats &stats() const { return stats_; }
    void resetStats() { stats_ = BpuStats{}; }

  protected:
    BpuStats stats_;
};

/**
 * Two-level predictor (Table I: 4k-entry 2-level BPU): a gshare
 * history-indexed table combined with a per-PC bimodal table through a
 * chooser, so strongly biased branches are covered by the bimodal side
 * while pattern-sensitive branches use the history side.
 */
class TwoLevelPredictor : public BranchPredictor
{
  public:
    explicit TwoLevelPredictor(unsigned tableEntries = 4096,
                               unsigned historyBits = 12);

    bool predictAndTrain(std::uint32_t pc, bool taken) override;

  private:
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> chooser_; ///< >=2 selects gshare
    std::uint32_t history_ = 0;
    std::uint32_t indexMask_;
    std::uint32_t pcMask_;
    std::uint32_t historyMask_;
};

/** Oracle predictor (the PerfectBr configuration of Fig. 11). */
class PerfectPredictor : public BranchPredictor
{
  public:
    bool predictAndTrain(std::uint32_t pc, bool taken) override;
};

} // namespace critics::bpu

#endif // CRITICS_BPU_BPU_HH
