#include "compiler/passes.hh"

#include <algorithm>
#include <unordered_set>

#include "program/dfg.hh"
#include "stats/registry.hh"
#include "support/logging.hh"
#include "verify/verify.hh"

namespace critics::compiler
{

void
PassStats::registerStats(stats::StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(prefix + ".chainsAttempted", chainsAttempted);
    reg.addCounter(prefix + ".chainsTransformed", chainsTransformed);
    reg.addCounter(prefix + ".hoistFailures", hoistFailures);
    reg.addCounter(prefix + ".localRenames", localRenames);
    reg.addCounter(prefix + ".blockedRaw", blockedRaw);
    reg.addCounter(prefix + ".blockedMem", blockedMem);
    reg.addCounter(prefix + ".blockedCtl", blockedCtl);
    reg.addCounter(prefix + ".blockedRename", blockedRename);
    reg.addCounter(prefix + ".instsConverted", instsConverted);
    reg.addCounter(prefix + ".instsExpanded", instsExpanded);
    reg.addCounter(prefix + ".cdpsInserted", cdpsInserted);
    reg.addCounter(prefix + ".switchBranchesInserted",
                   switchBranchesInserted);
}

using program::BasicBlock;
using program::InstUid;
using program::Program;
using program::StaticInst;
using isa::Format;
using isa::OpClass;

namespace
{

/** Find the current index of `uid` inside a block; -1 if absent. */
int
indexInBlock(const BasicBlock &block, InstUid uid)
{
    for (std::size_t i = 0; i < block.insts.size(); ++i)
        if (block.insts[i].uid == uid)
            return static_cast<int>(i);
    return -1;
}

/** True when the instruction converts to 16-bit without expansion. */
bool
directConvertible(const StaticInst &si)
{
    return isa::thumbDirectlyConvertible(si.arch);
}

StaticInst
makeCdp(Program &prog, unsigned run)
{
    StaticInst cdp;
    cdp.uid = prog.allocUid();
    cdp.arch.op = OpClass::Cdp;
    cdp.format = Format::Thumb16;
    cdp.cdpRun = static_cast<std::uint8_t>(run);
    return cdp;
}

/**
 * Locally rename the destination of block.insts[defIdx] (and every read
 * of it up to the next redefinition) to a register with no reference in
 * [rangeLo, lastUse].  Enables code motion past WAW/WAR conflicts while
 * keeping the value Thumb-encodable.  @return true on success.
 */
bool
renameDefLocally(BasicBlock &block, std::size_t defIdx,
                 std::size_t rangeLo)
{
    const std::uint8_t oldReg = block.insts[defIdx].arch.dst;
    if (oldReg == isa::NoReg)
        return false;
    // r7 is the workloads' recurrence accumulator and always live-out.
    constexpr std::uint8_t LiveOutReg = 7;
    if (oldReg == LiveOutReg)
        return false;

    // A later redefinition bounds the live range.  Without one the
    // value could be live-out; the workload ABI guarantees dataflow
    // temporaries r0..r6 die within their block, so those may still be
    // renamed up to their last in-block use.
    std::size_t nextRedef = block.insts.size();
    for (std::size_t i = defIdx + 1; i < block.insts.size(); ++i) {
        if (block.insts[i].arch.dst == oldReg) {
            nextRedef = i;
            break;
        }
    }
    if (nextRedef == block.insts.size() && oldReg > 6)
        return false;

    // The redefining instruction may itself read the old value (e.g.
    // r3 = r3 + r1): those source reads happen before its write and
    // must be renamed along with the earlier consumers.
    const std::size_t lastRead =
        std::min(nextRedef, block.insts.size() - 1);

    auto referenced = [&](std::uint8_t reg, std::size_t lo,
                          std::size_t hi) {
        for (std::size_t i = lo; i <= hi && i < block.insts.size(); ++i) {
            const auto &arch = block.insts[i].arch;
            if (arch.dst == reg || arch.src1 == reg || arch.src2 == reg)
                return true;
        }
        return false;
    };

    // Candidates are restricted to the dataflow temporaries r0..r6
    // (never live across blocks by the workload ABI) and must be
    // completely unreferenced from the hoist range to the end of the
    // block so no later reader is captured.
    for (std::uint8_t cand = 0; cand <= 6; ++cand) {
        if (cand == oldReg || cand == LiveOutReg)
            continue;
        if (referenced(cand, rangeLo, block.insts.size() - 1))
            continue;
        block.insts[defIdx].arch.dst = cand;
        for (std::size_t i = defIdx + 1; i <= lastRead; ++i) {
            auto &arch = block.insts[i].arch;
            if (arch.src1 == oldReg)
                arch.src1 = cand;
            if (arch.src2 == oldReg)
                arch.src2 = cand;
        }
        return true;
    }
    return false;
}

/** Uids of instructions already placed by a transformed chain; no
 *  later motion may cross or displace them. */
using FrozenSet = std::unordered_set<InstUid>;

/** True when motion must not cross `si`: a format switch, an already
 *  16-bit instruction (its covering switch's run would go stale), or a
 *  member of a previously transformed chain. */
bool
frozenForMotion(const StaticInst &si, const FrozenSet &frozen)
{
    return si.isCdp() || si.format == Format::Thumb16 ||
           frozen.count(si.uid) != 0;
}

/** Context for the in-pass skip advisories (satellite of the verifier:
 *  every blocked/failed counter increment also explains itself when a
 *  lint audit is listening).  `diag` is null on the hot path. */
struct PassDiagCtx
{
    verify::Report *diag = nullptr;
    const Program *prog = nullptr;
    std::uint32_t func = 0;
    std::uint32_t block = 0;

    void
    advise(const char *code, std::uint32_t index, std::string msg) const
    {
        if (diag != nullptr) {
            diag->reportAt(verify::Severity::Advice, code, *prog, func,
                           block, index, std::move(msg));
        }
    }
};

/**
 * Bubble block.insts[from] up to land right after `anchor`, renaming
 * the moving instruction's destination when a WAW/WAR conflict (and
 * only such a conflict) blocks a swap.
 */
std::size_t
hoistWithRename(BasicBlock &block, std::size_t from, std::size_t anchor,
                PassStats &stats, const FrozenSet &frozen,
                const PassDiagCtx &ctx)
{
    std::size_t pos = from;
    if (frozenForMotion(block.insts[pos], frozen)) {
        ++stats.blockedCtl;
        ctx.advise("verify.pass.blocked-ctl",
                   static_cast<std::uint32_t>(pos),
                   "chain member is inside a transformed 16-bit "
                   "region and may not move");
        return pos;
    }
    while (pos > anchor + 1) {
        if (frozenForMotion(block.insts[pos - 1], frozen)) {
            ++stats.blockedCtl;
            ctx.advise("verify.pass.blocked-ctl",
                       static_cast<std::uint32_t>(pos),
                       "hoist may not cross a transformed 16-bit "
                       "region");
            break;
        }
        if (program::canSwap(block.insts[pos - 1], block.insts[pos])) {
            std::swap(block.insts[pos - 1], block.insts[pos]);
            --pos;
            continue;
        }
        // Only register-name conflicts on the moving instruction's
        // destination are repairable.
        const auto &belowInst = block.insts[pos - 1];
        const auto &movingInst = block.insts[pos];
        const auto &below = belowInst.arch;
        const auto &moving = movingInst.arch;
        const bool raw = below.dst != isa::NoReg &&
            (moving.src1 == below.dst || moving.src2 == below.dst);
        const bool nameOnly = !raw && moving.dst != isa::NoReg &&
            (below.src1 == moving.dst || below.src2 == moving.dst ||
             below.dst == moving.dst);
        if (nameOnly && renameDefLocally(block, pos, anchor + 1)) {
            ++stats.localRenames;
            continue;
        }
        const std::string blocker =
            " (blocked by uid " + std::to_string(belowInst.uid) + ")";
        if (belowInst.isControl() || movingInst.isControl() ||
            belowInst.isCdp() || movingInst.isCdp()) {
            ++stats.blockedCtl;
            ctx.advise("verify.pass.blocked-ctl",
                       static_cast<std::uint32_t>(pos),
                       "hoist stopped at a control boundary" + blocker);
        } else if (raw) {
            ++stats.blockedRaw;
            ctx.advise("verify.pass.blocked-raw",
                       static_cast<std::uint32_t>(pos),
                       "hoist stopped by a true dependence" + blocker);
        } else if (nameOnly) {
            ++stats.blockedRename;
            ctx.advise("verify.pass.blocked-rename",
                       static_cast<std::uint32_t>(pos),
                       "WAW/WAR clash and no free rename register" +
                           blocker);
        } else if ((belowInst.isLoad() || belowInst.isStore()) &&
                   (movingInst.isLoad() || movingInst.isStore())) {
            ++stats.blockedMem;
            ctx.advise("verify.pass.blocked-mem",
                       static_cast<std::uint32_t>(pos),
                       "hoist stopped by a may-alias memory pair" +
                           blocker);
        }
        break;
    }
    return pos;
}

StaticInst
makeSwitchBranch(Program &prog, Format format)
{
    StaticInst br;
    br.uid = prog.allocUid();
    br.arch.op = OpClass::Branch;
    br.format = format;
    // flow stays FallThrough: emitted as an always-taken transfer to the
    // next sequential instruction (the decoder-visible switch).
    return br;
}

} // namespace

PassStats
applyCritIcPass(Program &prog,
                const std::vector<std::vector<InstUid>> &chains,
                const CritIcPassOptions &options,
                verify::PassAudit *audit)
{
    PassStats stats;
    verify::PassVerifier v(options.convertToThumb ? "critic" : "hoist",
                           prog, audit);
    v.setIdealThumb(options.forceConvert);
    FrozenSet frozen;

    for (const auto &chain : chains) {
        if (chain.size() < 2)
            continue;
        ++stats.chainsAttempted;

        if (!prog.contains(chain.front())) {
            if (auto *r = v.sink()) {
                r->report(verify::Severity::Advice,
                          "verify.pass.chain-stale",
                          "chain head uid " +
                              std::to_string(chain.front()) +
                              " is no longer in the program");
            }
            continue;
        }
        const program::InstLoc loc = prog.locate(chain.front());
        BasicBlock &block =
            prog.funcs[loc.func].blocks[loc.block];
        PassDiagCtx ctx{v.sink(), &prog, loc.func, loc.block};

        // Sanity: every member must still be in this block.
        bool intact = true;
        for (const InstUid uid : chain) {
            const int idx = indexInBlock(block, uid);
            if (idx < 0) {
                intact = false;
                if (auto *r = v.sink()) {
                    r->report(verify::Severity::Advice,
                              "verify.pass.chain-stale",
                              "chain member uid " + std::to_string(uid) +
                                  " left the head's block (f" +
                                  std::to_string(loc.func) + "/b" +
                                  std::to_string(loc.block) + ")");
                }
                break;
            }
        }
        if (!intact)
            continue;

        // Pack the chain contiguous at its site first (short,
        // same-motif motion), then move the packed group as early in
        // the block as legal ("schedule the sequence as early as
        // possible", Sec. II-C).
        int anchor = indexInBlock(block, chain.front());
        bool contiguous = true;
        for (std::size_t k = 1; k < chain.size(); ++k) {
            const int from = indexInBlock(block, chain[k]);
            critics_assert(from >= 0, "chain member vanished");
            if (from == anchor + 1) {
                anchor = from;
                continue;
            }
            if (from < anchor + 1) {
                // A previous hoist moved it out of order; give up.
                contiguous = false;
                break;
            }
            const std::size_t landed = hoistWithRename(
                block, static_cast<std::size_t>(from),
                static_cast<std::size_t>(anchor), stats, frozen, ctx);
            if (landed != static_cast<std::size_t>(anchor) + 1) {
                contiguous = false;
                break;
            }
            anchor = static_cast<int>(landed);
        }
        if (!contiguous) {
            ++stats.hoistFailures;
            ctx.advise("verify.pass.hoist-failed",
                       static_cast<std::uint32_t>(
                           indexInBlock(block, chain.front())),
                       "chain of " + std::to_string(chain.size()) +
                           " could not be packed contiguous");
            continue; // partial hoists are harmless; skip conversion
        }

        // Group-hoist the packed chain upward while every member can
        // legally cross the instruction above it.
        {
            std::size_t groupLo = static_cast<std::size_t>(
                indexInBlock(block, chain.front()));
            const std::size_t groupLen = chain.size();
            while (groupLo > 0) {
                if (frozenForMotion(block.insts[groupLo - 1], frozen))
                    break; // never displace a transformed region
                bool legal = true;
                for (std::size_t k = 0; k < groupLen; ++k) {
                    if (program::canSwap(block.insts[groupLo - 1],
                                         block.insts[groupLo + k])) {
                        continue;
                    }
                    // A WAW/WAR name clash between the crossed
                    // instruction and a member is repairable by
                    // renaming the member's destination.
                    const auto &x = block.insts[groupLo - 1].arch;
                    const auto &m = block.insts[groupLo + k].arch;
                    const bool raw = x.dst != isa::NoReg &&
                        (m.src1 == x.dst || m.src2 == x.dst);
                    const bool nameOnly = !raw && m.dst != isa::NoReg &&
                        (x.src1 == m.dst || x.src2 == m.dst ||
                         x.dst == m.dst);
                    if (nameOnly &&
                        renameDefLocally(block, groupLo + k, groupLo)) {
                        ++stats.localRenames;
                        if (program::canSwap(block.insts[groupLo - 1],
                                             block.insts[groupLo + k]))
                            continue;
                    }
                    legal = false;
                    break;
                }
                if (!legal)
                    break;
                // Rotate the instruction above to just after the group.
                std::rotate(block.insts.begin() +
                                static_cast<std::ptrdiff_t>(groupLo - 1),
                            block.insts.begin() +
                                static_cast<std::ptrdiff_t>(groupLo),
                            block.insts.begin() +
                                static_cast<std::ptrdiff_t>(
                                    groupLo + groupLen));
                --groupLo;
            }
        }

        if (!options.convertToThumb) {
            ++stats.chainsTransformed;
            v.noteTransformedChain(chain);
            for (const InstUid uid : chain)
                frozen.insert(uid);
            continue; // Hoist-only design point
        }

        // All-or-nothing convertibility check (footnote 1).
        const int first = indexInBlock(block, chain.front());
        bool convertible = true;
        if (!options.forceConvert) {
            for (std::size_t k = 0; k < chain.size(); ++k) {
                const StaticInst &member =
                    block.insts[first + static_cast<int>(k)];
                if (!directConvertible(member)) {
                    convertible = false;
                    ctx.advise(
                        "verify.pass.unconvertible",
                        static_cast<std::uint32_t>(
                            first + static_cast<int>(k)),
                        "member uid " + std::to_string(member.uid) +
                            " has no direct 16-bit encoding; chain "
                            "conversion is all-or-nothing");
                    break;
                }
            }
        }
        if (!convertible)
            continue;

        for (std::size_t k = 0; k < chain.size(); ++k) {
            block.insts[first + static_cast<int>(k)].format =
                Format::Thumb16;
            ++stats.instsConverted;
        }

        // Emit the format switch.
        switch (options.switchMode) {
          case SwitchMode::None:
            break;
          case SwitchMode::Cdp: {
            // One CDP covers up to 9 instructions; longer (ideal)
            // chains chain multiple CDPs.
            std::size_t remaining = chain.size();
            std::size_t insertAt = static_cast<std::size_t>(first);
            while (remaining > 0) {
                const unsigned run = static_cast<unsigned>(
                    std::min<std::size_t>(remaining, isa::MaxCdpRun));
                block.insts.insert(
                    block.insts.begin() +
                        static_cast<std::ptrdiff_t>(insertAt),
                    makeCdp(prog, run));
                ++stats.cdpsInserted;
                insertAt += run + 1;
                remaining -= run;
            }
            break;
          }
          case SwitchMode::BranchPair: {
            block.insts.insert(
                block.insts.begin() + first,
                makeSwitchBranch(prog, Format::Arm32));
            const std::size_t after =
                static_cast<std::size_t>(first) + 1 + chain.size();
            block.insts.insert(
                block.insts.begin() +
                    static_cast<std::ptrdiff_t>(after),
                makeSwitchBranch(prog, Format::Thumb16));
            stats.switchBranchesInserted += 2;
            break;
          }
        }
        ++stats.chainsTransformed;
        v.noteTransformedChain(chain);
        for (const InstUid uid : chain)
            frozen.insert(uid);
    }

    prog.layout();
    v.finish(prog);
    return stats;
}

namespace
{

/** Convert one run of block instructions [start, start+len) in place,
 *  expanding 2-address violations and inserting CDP switches.  Appends
 *  the rewritten run to `out`. */
void
emitConvertedRun(Program &prog, std::vector<StaticInst> &out,
                 const std::vector<StaticInst> &insts, std::size_t start,
                 std::size_t len, PassStats &stats,
                 const PassDiagCtx &ctx)
{
    // First expand, then chunk under CDPs.
    std::vector<StaticInst> expanded;
    expanded.reserve(len + 4);
    for (std::size_t i = start; i < start + len; ++i) {
        StaticInst si = insts[i];
        if (!directConvertible(si)) {
            ctx.advise("verify.lint.mov-expansion",
                       static_cast<std::uint32_t>(i),
                       "2-address expansion lengthens the run by a "
                       "mov");
            // mov dst, src1 ; op dst, dst, src2 — the 1.6x-style
            // instruction-count cost of the 16-bit format.
            StaticInst mov;
            mov.uid = prog.allocUid();
            mov.arch.op = OpClass::IntAlu;
            mov.arch.dst = si.arch.dst;
            mov.arch.src1 = si.arch.src1;
            mov.format = Format::Thumb16;
            expanded.push_back(mov);
            si.arch.src1 = si.arch.dst;
            ++stats.instsExpanded;
        }
        si.format = Format::Thumb16;
        ++stats.instsConverted;
        expanded.push_back(si);
    }
    std::size_t pos = 0;
    while (pos < expanded.size()) {
        const unsigned run = static_cast<unsigned>(
            std::min<std::size_t>(expanded.size() - pos,
                                  isa::MaxCdpRun));
        out.push_back(makeCdp(prog, run));
        ++stats.cdpsInserted;
        for (unsigned k = 0; k < run; ++k)
            out.push_back(expanded[pos + k]);
        pos += run;
    }
}

/**
 * Shared run-scanner for OPP16/Compress.
 *
 * @param minRun        minimum convertible-run length worth switching
 * @param allowExpansion convert 2-address violations via mov-expansion
 *                       (OPP16) or keep them in 32-bit form (Compress)
 */
PassStats
convertRuns(Program &prog, unsigned minRun, bool allowExpansion,
            const char *passName, verify::PassAudit *audit)
{
    PassStats stats;
    verify::PassVerifier v(passName, prog, audit);
    for (std::uint32_t f = 0; f < prog.funcs.size(); ++f) {
        for (std::uint32_t b = 0; b < prog.funcs[f].blocks.size();
             ++b) {
            BasicBlock &block = prog.funcs[f].blocks[b];
            PassDiagCtx ctx{v.sink(), &prog, f, b};
            std::vector<StaticInst> out;
            out.reserve(block.insts.size() + 8);
            const auto &insts = block.insts;
            std::size_t i = 0;
            while (i < insts.size()) {
                const StaticInst &si = insts[i];
                const bool convertible =
                    si.format == Format::Arm32 && !si.isCdp() &&
                    isa::thumbConvertible(si.arch) &&
                    (allowExpansion || directConvertible(si));
                if (!convertible) {
                    out.push_back(si);
                    ++i;
                    continue;
                }
                std::size_t j = i;
                while (j < insts.size()) {
                    const StaticInst &sj = insts[j];
                    const bool ok =
                        sj.format == Format::Arm32 && !sj.isCdp() &&
                        isa::thumbConvertible(sj.arch) &&
                        (allowExpansion || directConvertible(sj));
                    if (!ok)
                        break;
                    ++j;
                }
                const std::size_t len = j - i;
                if (len >= minRun) {
                    emitConvertedRun(prog, out, insts, i, len, stats,
                                     ctx);
                } else {
                    if (len >= 2) {
                        ctx.advise(
                            "verify.pass.short-run",
                            static_cast<std::uint32_t>(i),
                            "convertible run of " + std::to_string(len) +
                                " below the minimum of " +
                                std::to_string(minRun) +
                                "; switch overhead would not pay off");
                    }
                    for (std::size_t k = i; k < j; ++k)
                        out.push_back(insts[k]);
                }
                i = j;
            }
            block.insts = std::move(out);
        }
    }
    prog.layout();
    v.finish(prog);
    return stats;
}

} // namespace

PassStats
applyOpp16Pass(Program &prog, unsigned minRun, verify::PassAudit *audit)
{
    return convertRuns(prog, minRun, false, "opp16", audit);
}

PassStats
applyCompressPass(Program &prog, verify::PassAudit *audit)
{
    return convertRuns(prog, 2, false, "compress", audit);
}

} // namespace critics::compiler
