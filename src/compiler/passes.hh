/**
 * @file
 * Binary-rewriting passes (the ART-compiler stage of Sec. III):
 *
 *   - CritIC pass: hoist each selected chain contiguous inside its
 *     basic block (legal code motion only), re-encode its instructions
 *     in the 16-bit format (all-or-nothing) and emit the format switch
 *     (CDP command, branch pair, or nothing for the zero-overhead
 *     hypothetical);
 *   - Hoist-only pass (the Fig. 10 "Hoist" design point): same motion,
 *     no re-encoding;
 *   - OPP16 (Sec. V): opportunistically convert any run of >= minRun
 *     consecutive convertible instructions, paying the 2-address
 *     mov-expansion where the 16-bit format requires it;
 *   - Compress (Fine-Grained Thumb Conversion [78]): function-wide
 *     conversion that keeps the "slower thumb" (expansion-requiring)
 *     instructions in 32-bit form.
 */

#ifndef CRITICS_COMPILER_PASSES_HH
#define CRITICS_COMPILER_PASSES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "program/program.hh"

namespace critics::stats
{
class StatRegistry;
}

namespace critics::verify
{
struct PassAudit;
}

namespace critics::compiler
{

/** How the decoder learns about a 16-bit run. */
enum class SwitchMode : std::uint8_t
{
    None,       ///< hypothetical zero-overhead switch (Fig. 8 "ideal")
    Cdp,        ///< repurposed CDP command (Sec. IV-B)
    BranchPair, ///< stock-hardware branch switch (Sec. IV-A)
};

struct PassStats
{
    std::uint64_t chainsAttempted = 0;
    std::uint64_t chainsTransformed = 0;
    std::uint64_t hoistFailures = 0;
    std::uint64_t localRenames = 0;   ///< WAW/WAR resolved by renaming
    std::uint64_t blockedRaw = 0;     ///< hoist blocked: true dependence
    std::uint64_t blockedMem = 0;     ///< hoist blocked: may-alias memory
    std::uint64_t blockedCtl = 0;     ///< hoist blocked: control boundary
    std::uint64_t blockedRename = 0;  ///< hoist blocked: rename failed
    std::uint64_t instsConverted = 0;   ///< now in 16-bit format
    std::uint64_t instsExpanded = 0;    ///< mov-expansion splits
    std::uint64_t cdpsInserted = 0;
    std::uint64_t switchBranchesInserted = 0;

    /** Register views of these fields under `prefix` (e.g. "pass");
     *  this object must outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix) const;
};

struct CritIcPassOptions
{
    SwitchMode switchMode = SwitchMode::Cdp;
    /** false = the Hoist-only design point. */
    bool convertToThumb = true;
    /** CritIC.Ideal: assume every instruction re-encodes. */
    bool forceConvert = false;
};

/**
 * Apply the CritIC transformation for the selected chains.  Each chain
 * is a list of instruction uids inside one basic block, in block order.
 * Re-lays out the program before returning.
 *
 * Every pass checks its own post-conditions through verify::PassVerifier
 * (structural always, differential dataflow under CRITICS_VERIFY=full)
 * and panics on an error-severity finding.  When `audit` is given (the
 * `critics_cli lint` path) findings — including a located advisory for
 * every skipped/blocked chain, explaining *why* it was not transformed —
 * accumulate in the audit instead of panicking.
 */
PassStats applyCritIcPass(
    program::Program &prog,
    const std::vector<std::vector<program::InstUid>> &chains,
    const CritIcPassOptions &options,
    verify::PassAudit *audit = nullptr);

/** OPP16: convert convertible runs of >= minRun instructions. */
PassStats applyOpp16Pass(program::Program &prog, unsigned minRun = 3,
                         verify::PassAudit *audit = nullptr);

/** Compress [78]: function-wide conversion avoiding expansion cases. */
PassStats applyCompressPass(program::Program &prog,
                            verify::PassAudit *audit = nullptr);

} // namespace critics::compiler

#endif // CRITICS_COMPILER_PASSES_HH
