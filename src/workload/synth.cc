#include "workload/synth.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"

namespace critics::workload
{

using namespace critics::program;
using critics::isa::NoReg;
using critics::isa::OpClass;

namespace
{

constexpr std::uint8_t AccReg = 7;       ///< loop-carried accumulator
constexpr std::uint8_t FirstLeafReg = 8; ///< leaf consumer destinations
constexpr std::uint8_t NumLeafRegs = 3;
constexpr std::uint8_t FirstHighReg = 11;

/** Mutable state while filling one basic block. */
class BlockGen
{
  public:
    BlockGen(Program &prog, const AppProfile &profile, Rng &rng)
        : prog_(prog), profile_(profile), rng_(rng)
    {
        pending_.fill(0);
    }

    BasicBlock take() { return std::move(block_); }
    std::size_t size() const { return block_.insts.size(); }

    /** Append one instruction, assigning a fresh uid. */
    StaticInst &
    emit(OpClass op, std::uint8_t dst, std::uint8_t src1,
         std::uint8_t src2)
    {
        StaticInst si;
        si.uid = prog_.allocUid();
        si.arch.op = op;
        si.arch.dst = dst;
        si.arch.src1 = src1;
        si.arch.src2 = src2;
        si.arch.imm = static_cast<std::uint8_t>(rng_.next() & 0xFF);
        block_.insts.push_back(si);
        return block_.insts.back();
    }

    /** Allocate a dataflow temporary (r0..r6), preferring registers with
     *  no planned-but-unemitted consumers.  Falls back to forced reuse. */
    std::uint8_t
    allocTemp(unsigned planned_readers, unsigned avoid_mask = 0)
    {
        for (unsigned tries = 0; tries < 7; ++tries) {
            cursor_ = static_cast<std::uint8_t>((cursor_ + 1) % 7);
            if (pending_[cursor_] == 0 &&
                ((avoid_mask >> cursor_) & 1u) == 0) {
                pending_[cursor_] = planned_readers;
                return cursor_;
            }
        }
        // All temporaries still have planned readers; reuse the next one
        // anyway (the clobbered fanout is acceptable noise).
        cursor_ = static_cast<std::uint8_t>((cursor_ + 1) % 7);
        pending_[cursor_] = planned_readers;
        return cursor_;
    }

    /** Note one planned reader of `reg` was emitted. */
    void
    consumed(std::uint8_t reg)
    {
        if (reg < 7 && pending_[reg] > 0)
            --pending_[reg];
    }

    std::uint8_t
    allocLeaf()
    {
        leafCursor_ = static_cast<std::uint8_t>(
            (leafCursor_ + 1) % NumLeafRegs);
        return static_cast<std::uint8_t>(FirstLeafReg + leafCursor_);
    }

    /** Random non-control op class from the profile's filler mix. */
    OpClass
    fillerOp()
    {
        const AppProfile &p = profile_;
        const double u = rng_.uniform();
        double acc = p.fracLoad;
        if (u < acc) return OpClass::Load;
        if (u < (acc += p.fracStore)) return OpClass::Store;
        if (u < (acc += p.fracMul)) return OpClass::IntMult;
        if (u < (acc += p.fracDiv)) return OpClass::IntDiv;
        if (u < (acc += p.fracFpAdd)) return OpClass::FloatAdd;
        if (u < (acc += p.fracFpMul)) return OpClass::FloatMul;
        if (u < (acc += p.fracFpDiv)) return OpClass::FloatDiv;
        return OpClass::IntAlu;
    }

    /** Attach memory metadata to a load/store. */
    void
    memify(StaticInst &si)
    {
        const double u = rng_.uniform();
        if (u < profile_.memHotFrac) {
            si.memPattern = MemPattern::HotRegion;
            si.memRegionId = RegionHot;
            si.aliasClass = static_cast<std::uint8_t>(si.uid % 16);
        } else if (u < profile_.memHotFrac + profile_.memStrideFrac) {
            si.memPattern = MemPattern::Stride;
            si.memRegionId = RegionStride;
            si.aliasClass = static_cast<std::uint8_t>(si.uid % 16);
        } else {
            // Cold pointer chases stay may-alias (0xFF), like real
            // heap traffic a compiler cannot disambiguate.
            si.memPattern = MemPattern::ColdRegion;
            si.memRegionId = RegionCold;
        }
    }

    /**
     * Apply the profile's non-convertible pressure to a filler.
     *
     * @param allow_dst_rewrite only instructions whose destination no
     *        later instruction reads (leaf consumers, independent
     *        fillers) may have it moved to a high register; rewriting
     *        a value another motif member will read would leave a
     *        dangling register read.
     */
    void
    pressure(StaticInst &si, bool allow_dst_rewrite = true)
    {
        if (rng_.chance(profile_.smallImmFrac))
            si.arch.imm = 0;
        if (rng_.chance(profile_.predicatedFrac))
            si.arch.predicated = true;
        if (allow_dst_rewrite && rng_.chance(profile_.highRegFrac) &&
            si.arch.dst != NoReg) {
            si.arch.dst = static_cast<std::uint8_t>(
                FirstHighReg + rng_.below(4));
        }
    }

    /** Rare convertibility blocker on chain members: per the paper only
     *  ~4.5% of unique CritIC sequences end up non-representable. */
    void
    chainPressure(StaticInst &si)
    {
        // Chain members are simple single-source ops; per the paper
        // only ~4.5% of unique CritIC sequences are non-representable.
        if (rng_.chance(0.01))
            si.arch.predicated = true;
    }

    // ---- Motifs ---------------------------------------------------------

    /** Chained high-fanout producers with low-fanout links between them
     *  (the structure of Figs. 1b/2/4). */
    void
    emitCritChain()
    {
        const AppProfile &p = profile_;
        const unsigned n_crit = 1 + static_cast<unsigned>(
            rng_.weighted(p.chainCritNodesW));
        const unsigned fanout = p.critFanoutBase +
            p.critFanoutStep * static_cast<unsigned>(
                rng_.weighted(p.critFanoutW));

        // The chain is *spread* through the block, interleaved with its
        // fanout consumers, exactly the shape Fig. 2 motivates: the
        // compiler's hoist pass later has real motion to perform.
        std::vector<std::uint8_t> critRegs;
        std::vector<unsigned> remaining; // fanout left to satisfy
        std::uint8_t prev = NoReg;
        unsigned chainRegMask = 0; // keep chain-element dsts distinct

        auto emitConsumers = [&](unsigned count) {
            for (unsigned c = 0; c < count; ++c) {
                // Read the one or two emitted critical registers with
                // the most unsatisfied fanout.
                std::size_t first = 0;
                for (std::size_t k = 1; k < critRegs.size(); ++k)
                    if (remaining[k] > remaining[first])
                        first = k;
                if (remaining[first] == 0)
                    return;
                std::size_t second = critRegs.size();
                for (std::size_t k = 0; k < critRegs.size(); ++k) {
                    if (k == first || remaining[k] == 0)
                        continue;
                    if (second == critRegs.size() ||
                        remaining[k] > remaining[second]) {
                        second = k;
                    }
                }
                const std::uint8_t a = critRegs[first];
                const std::uint8_t b = second < critRegs.size()
                    ? critRegs[second] : NoReg;
                StaticInst &leaf =
                    emit(OpClass::IntAlu, allocLeaf(), a, b);
                pressure(leaf);
                consumed(a);
                --remaining[first];
                if (b != NoReg) {
                    consumed(b);
                    --remaining[second];
                }
            }
        };

        for (unsigned k = 0; k < n_crit; ++k) {
            const bool is_load = rng_.chance(p.critNodeLoadFrac);
            const std::uint8_t dst = allocTemp(fanout, chainRegMask);
            chainRegMask |= 1u << dst;
            StaticInst &node = emit(
                is_load ? OpClass::Load : OpClass::IntAlu,
                dst, prev, NoReg);
            node.arch.imm = 0; // simple dataflow op, 16-bit encodable
            if (is_load)
                memify(node);
            chainPressure(node);
            if (prev != NoReg)
                consumed(prev);
            critRegs.push_back(dst);
            remaining.push_back(fanout);
            prev = dst;

            if (k + 1 == n_crit)
                break;
            const unsigned gap =
                static_cast<unsigned>(rng_.weighted(p.chainGapW));
            for (unsigned g = 0; g < gap; ++g) {
                // Consumers of already-emitted critical nodes sit
                // between the chain links.
                emitConsumers(2 + static_cast<unsigned>(rng_.below(3)));
                const std::uint8_t link_dst =
                    allocTemp(1, chainRegMask);
                chainRegMask |= 1u << link_dst;
                StaticInst &link =
                    emit(OpClass::IntAlu, link_dst, prev, NoReg);
                link.arch.imm = 0;
                chainPressure(link);
                consumed(prev);
                prev = link_dst;
            }
        }
        // Drain the rest of the fanout demand (each consumer reads two
        // critical registers, so this halves the apparent count).
        emitConsumers(fanout * n_crit);
    }

    /** Isolated high-fanout producer (the common SPEC shape). */
    void
    emitBroadcast()
    {
        const AppProfile &p = profile_;
        const unsigned fanout = p.critFanoutBase +
            p.critFanoutStep * static_cast<unsigned>(
                rng_.weighted(p.critFanoutW));
        const bool is_load = rng_.chance(p.critNodeLoadFrac);
        const std::uint8_t dst = allocTemp(fanout);
        StaticInst &node = emit(
            is_load ? OpClass::Load : OpClass::IntAlu, dst, NoReg, NoReg);
        if (is_load)
            memify(node);
        for (unsigned c = 0; c < fanout; ++c) {
            StaticInst &leaf =
                emit(fillerNonMem(), allocLeaf(), dst, NoReg);
            pressure(leaf);
            consumed(dst);
        }
    }

    /** Plain dependent chain; optionally a loop-carried recurrence
     *  through the accumulator register (SPEC's very long ICs). */
    void
    emitSerial()
    {
        const AppProfile &p = profile_;
        const unsigned len = 2 + 2 * static_cast<unsigned>(
            rng_.weighted(p.serialLenW));
        const bool carried = rng_.chance(p.loopCarriedFrac);
        std::uint8_t prev = carried ? AccReg : NoReg;
        for (unsigned i = 0; i < len; ++i) {
            const bool last = (i + 1 == len);
            std::uint8_t dst =
                (carried && last) ? AccReg : allocTemp(1);
            StaticInst &si = emit(fillerNonMem(), dst, prev, NoReg);
            pressure(si, false); // the next member reads this dst
            if (prev != NoReg)
                consumed(prev);
            prev = dst;
        }
    }

    /** Independent fillers: plain ILP. */
    void
    emitIndependent()
    {
        const unsigned len = 2 + static_cast<unsigned>(rng_.below(5));
        for (unsigned i = 0; i < len; ++i) {
            const OpClass op = fillerOp();
            const std::uint8_t dst =
                op == OpClass::Store ? NoReg : allocTemp(0);
            // Stores read a leaf register so dataflow temporaries are
            // never live across blocks (enables local renaming).
            const std::uint8_t src = op == OpClass::Store
                ? static_cast<std::uint8_t>(
                      FirstLeafReg + rng_.below(NumLeafRegs))
                : NoReg;
            StaticInst &si = emit(op, dst, src, NoReg);
            if (si.isLoad() || si.isStore())
                memify(si);
            pressure(si);
        }
    }

    /** Fill to the instruction budget with motifs sampled from the
     *  profile weights. */
    void
    fill(std::size_t budget)
    {
        const AppProfile &p = profile_;
        const std::vector<double> weights{
            p.wCritChain, p.wBroadcast, p.wSerial, p.wIndependent};
        while (size() < budget) {
            switch (rng_.weighted(weights)) {
              case 0: emitCritChain(); break;
              case 1: emitBroadcast(); break;
              case 2: emitSerial(); break;
              default: emitIndependent(); break;
            }
        }
    }

  private:
    OpClass
    fillerNonMem()
    {
        OpClass op = fillerOp();
        while (isa::isMemory(op))
            op = fillerOp();
        return op;
    }

    Program &prog_;
    const AppProfile &profile_;
    Rng &rng_;
    BasicBlock block_;
    std::array<unsigned, 7> pending_;
    std::uint8_t cursor_ = 0;
    std::uint8_t leafCursor_ = 0;
};

/** Call-graph layer of a function (0 = dispatcher). */
unsigned
layerOf(unsigned func, const AppProfile &p)
{
    if (func == 0)
        return 0;
    if (func <= p.dispatchTargets)
        return 1;
    // Remaining library functions split 60/30/10 into layers 2..4.
    const unsigned libIdx = func - p.dispatchTargets - 1;
    const unsigned libCount =
        p.numFunctions > p.dispatchTargets + 1
            ? p.numFunctions - p.dispatchTargets - 1 : 1;
    const double frac =
        static_cast<double>(libIdx) / static_cast<double>(libCount);
    if (frac < 0.60)
        return 2;
    if (frac < 0.90)
        return 3;
    return 4;
}

} // namespace

Program
synthesize(const AppProfile &profile)
{
    critics_assert(profile.numFunctions > profile.dispatchTargets + 8,
                   "profile needs more functions than dispatch targets");
    Rng rng(streamSeed(profile.seed, RngStream::Synth));
    Program prog;

    prog.memRegions = {
        {0x40000000u, profile.hotRegionBytes, 0},
        {0x50000000u, profile.coldRegionBytes, 0},
        {0x60000000u, profile.strideRegionBytes, profile.strideStep},
    };

    // Pre-compute layer membership so call sites can target layer+1.
    std::array<std::vector<std::uint32_t>, 5> layers;
    for (unsigned f = 0; f < profile.numFunctions; ++f)
        layers[layerOf(f, profile)].push_back(f);
    for (unsigned l = 1; l <= 4; ++l)
        critics_assert(!layers[l].empty(), "empty call-graph layer ", l);

    // Indirect dispatch table: all handlers, zipf-weighted popularity.
    IndirectTable dispatch;
    for (std::uint32_t f : layers[1]) {
        dispatch.callees.push_back(f);
        dispatch.weights.push_back(
            1.0 / std::pow(static_cast<double>(dispatch.callees.size()),
                           profile.funcZipfSkew));
    }
    prog.indirectTables.push_back(std::move(dispatch));

    prog.funcs.resize(profile.numFunctions);

    // Function 0: the event loop.  Two blocks: indirect call to a
    // handler, then jump back.
    {
        Function &fn = prog.funcs[0];
        fn.name = "event_loop";
        BlockGen gen(prog, profile, rng);
        gen.fill(4);
        BasicBlock b0 = gen.take();
        StaticInst call;
        call.uid = prog.allocUid();
        call.arch.op = OpClass::Call;
        call.flow = FlowKind::CallFn;
        call.indirectTable = 0;
        b0.insts.push_back(call);
        fn.blocks.push_back(std::move(b0));

        BlockGen gen2(prog, profile, rng);
        gen2.fill(3);
        BasicBlock b1 = gen2.take();
        StaticInst jump;
        jump.uid = prog.allocUid();
        jump.arch.op = OpClass::Branch;
        jump.flow = FlowKind::Jump;
        jump.targetBlock = 0;
        b1.insts.push_back(jump);
        fn.blocks.push_back(std::move(b1));
    }

    for (unsigned f = 1; f < profile.numFunctions; ++f) {
        Function &fn = prog.funcs[f];
        fn.name = (layerOf(f, profile) == 1 ? "handler_" : "lib_") +
                  std::to_string(f);
        const unsigned layer = layerOf(f, profile);
        const unsigned n_blocks = static_cast<unsigned>(rng.range(
            profile.minBlocksPerFn, profile.maxBlocksPerFn));

        for (unsigned b = 0; b < n_blocks; ++b) {
            BlockGen gen(prog, profile, rng);
            const auto budget = static_cast<std::size_t>(rng.range(
                profile.minBlockInsts, profile.maxBlockInsts));
            gen.fill(budget);
            BasicBlock block = gen.take();

            if (b == 0) {
                // Initialize the per-function recurrence accumulator so
                // loop-carried chains do not leak across functions.
                StaticInst init;
                init.uid = prog.allocUid();
                init.arch.op = OpClass::IntAlu;
                init.arch.dst = AccReg;
                init.arch.imm =
                    static_cast<std::uint8_t>(rng.next() & 0xFF);
                block.insts.insert(block.insts.begin(), init);
            }

            const bool last = (b + 1 == n_blocks);
            StaticInst term;
            term.uid = prog.allocUid();
            if (last) {
                term.arch.op = OpClass::Return;
                term.flow = FlowKind::Ret;
            } else if (b > 0 && rng.chance(profile.loopBackProb)) {
                // Loop back-edge.
                term.arch.op = OpClass::Branch;
                term.flow = FlowKind::CondBranch;
                term.targetBlock = static_cast<std::uint32_t>(
                    rng.range(b >= 2 ? b - 2 : 0, b));
                term.takenBias =
                    static_cast<float>(profile.loopContinueBias);
                term.arch.src1 = static_cast<std::uint8_t>(
                    8 + rng.below(3));
            } else if (layer < 4 && rng.chance(profile.callDensity)) {
                // Static call one layer deeper.
                const auto &pool = layers[layer + 1];
                term.arch.op = OpClass::Call;
                term.flow = FlowKind::CallFn;
                term.targetFunc =
                    pool[rng.below(pool.size())];
            } else if (rng.chance(0.45)) {
                // Forward conditional skip.
                term.arch.op = OpClass::Branch;
                term.flow = FlowKind::CondBranch;
                term.targetBlock = static_cast<std::uint32_t>(
                    std::min<unsigned>(n_blocks - 1, b + 2));
                const bool wild =
                    rng.chance(profile.unpredictableBranchFrac);
                term.takenBias = wild ? 0.5f
                    : (rng.chance(0.5) ? 0.04f : 0.96f);
                term.arch.src1 = static_cast<std::uint8_t>(
                    8 + rng.below(3));
            } else {
                // Plain fall-through; no terminator instruction.
                term.uid = NoUid;
            }
            if (term.uid != NoUid)
                block.insts.push_back(term);
            fn.blocks.push_back(std::move(block));
        }
    }

    prog.layout();
    return prog;
}

std::vector<float>
branchBiasVocabulary(const AppProfile &profile)
{
    // Must mirror the takenBias assignments in synthesize() above.
    return {0.04f, 0.5f, 0.96f,
            static_cast<float>(profile.loopContinueBias)};
}

} // namespace critics::workload
