#include "workload/profile.hh"

#include "support/logging.hh"

namespace critics::workload
{

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Mobile:    return "Mobile";
      case Suite::SpecInt:   return "SPEC.int";
      case Suite::SpecFloat: return "SPEC.float";
      default: return "?";
    }
}

namespace
{

/** Common starting point for mobile apps (Sec. II: large code bases,
 *  frequent calls, short clustered critical chains, few long-latency
 *  instructions). */
AppProfile
mobileBase()
{
    return AppProfile{};
}

/** Common starting point for SPEC.int: loopy, moderate code base, critical
 *  instructions mostly isolated, loads with mixed locality. */
AppProfile
specIntBase()
{
    AppProfile p;
    p.suite = Suite::SpecInt;
    p.numFunctions = 160;
    p.dispatchTargets = 12;
    p.minBlocksPerFn = 3;
    p.maxBlocksPerFn = 8;
    p.minBlockInsts = 12;
    p.maxBlockInsts = 40;
    p.funcZipfSkew = 1.6;
    p.callDensity = 0.08;
    p.loopBackProb = 0.42;
    p.loopContinueBias = 0.955;
    p.unpredictableBranchFrac = 0.05;

    p.wCritChain = 0.10;
    p.wBroadcast = 0.26;
    p.wSerial = 0.30;
    p.wIndependent = 0.34;
    // Fig. 1b: ~35% of SPEC.int high-fanout instructions have no
    // dependent high-fanout successor; chains that do exist are mostly
    // direct (gap 0).
    p.chainCritNodesW = {0.40, 0.42, 0.18};
    p.chainGapW = {0.55, 0.22, 0.12, 0.06, 0.03, 0.02};
    p.critNodeLoadFrac = 0.60;
    p.loopCarriedFrac = 0.30;
    p.serialLenW = {0.25, 0.30, 0.25, 0.20};

    p.fracLoad = 0.24;
    p.fracStore = 0.10;
    p.fracMul = 0.05;
    p.fracDiv = 0.008;
    p.fracFpAdd = 0.01;
    p.fracFpMul = 0.005;
    p.fracFpDiv = 0.001;

    p.predicatedFrac = 0.24;
    p.highRegFrac = 0.12;

    p.hotRegionBytes = 40u << 10;
    p.coldRegionBytes = 64u << 20;
    p.strideRegionBytes = 16u << 20;
    p.memHotFrac = 0.55;
    p.memStrideFrac = 0.18;
    return p;
}

/** Common starting point for SPEC.float: long loop-carried chains, lots
 *  of FP and streaming memory. */
AppProfile
specFloatBase()
{
    AppProfile p = specIntBase();
    p.suite = Suite::SpecFloat;
    p.numFunctions = 120;
    p.funcZipfSkew = 1.8;
    p.loopBackProb = 0.50;
    p.loopContinueBias = 0.985;
    p.unpredictableBranchFrac = 0.015;

    p.wCritChain = 0.06;
    p.wBroadcast = 0.30;
    p.wSerial = 0.34;
    p.wIndependent = 0.30;
    // Fig. 1b: ~60% isolated for SPEC.float.
    p.chainCritNodesW = {0.78, 0.16, 0.06};
    p.chainGapW = {0.60, 0.20, 0.10, 0.05, 0.03, 0.02};
    p.critNodeLoadFrac = 0.62;
    p.loopCarriedFrac = 0.45;

    p.fracLoad = 0.26;
    p.fracStore = 0.08;
    p.fracMul = 0.02;
    p.fracDiv = 0.002;
    p.fracFpAdd = 0.14;
    p.fracFpMul = 0.11;
    p.fracFpDiv = 0.012;

    p.memHotFrac = 0.30;
    p.memStrideFrac = 0.25;
    p.strideRegionBytes = 48u << 20;
    p.coldRegionBytes = 96u << 20;
    return p;
}

AppProfile
makeMobile(const std::string &name, const std::string &activity,
           const std::string &domain, std::uint64_t seed)
{
    AppProfile p = mobileBase();
    p.name = name;
    p.activity = activity;
    p.domain = domain;
    p.seed = seed;
    return p;
}

} // namespace

std::vector<AppProfile>
mobileApps()
{
    std::vector<AppProfile> apps;

    // Per-app deltas encode the qualitative spread the paper reports:
    // Acrobat gets the largest CritIC speedup (15%), Music the smallest
    // (9%); Maps/Youtube are the most F.StallForR+D-bound; Browser and
    // PhotoGallery benefit least from hoisting alone.

    AppProfile acrobat = makeMobile("Acrobat", "View, add comment",
                                    "Document readers", 101);
    acrobat.wCritChain = 0.62;
    acrobat.numFunctions = 340;
    apps.push_back(acrobat);

    AppProfile angry = makeMobile("Angrybirds", "1 Level of game",
                                  "Physics games", 102);
    angry.fracFpAdd = 0.05;
    angry.fracFpMul = 0.03;
    angry.wCritChain = 0.55;
    angry.loopBackProb = 0.24;
    apps.push_back(angry);

    AppProfile browser = makeMobile("Browser", "Search and load pages",
                                    "Web interfaces", 103);
    browser.numFunctions = 380;
    browser.dispatchTargets = 128;
    browser.funcZipfSkew = 0.65;
    browser.wCritChain = 0.50;
    browser.wIndependent = 0.36;
    apps.push_back(browser);

    AppProfile facebook = makeMobile("Facebook", "RT-texting",
                                     "Instant messengers", 104);
    facebook.numFunctions = 330;
    facebook.callDensity = 0.34;
    apps.push_back(facebook);

    AppProfile email = makeMobile("Email", "Send,receive mail",
                                  "Email clients", 105);
    email.numFunctions = 270;
    email.callDensity = 0.32;
    apps.push_back(email);

    AppProfile maps = makeMobile("Maps", "Search directions",
                                 "Navigation", 106);
    maps.wSerial = 0.32;
    maps.serialLenW = {0.2, 0.3, 0.3, 0.2};
    maps.loopCarriedFrac = 0.06;
    maps.fracMul = 0.05;
    apps.push_back(maps);

    AppProfile music = makeMobile("Music", "2 minutes song",
                                  "Music/audio players", 107);
    music.wCritChain = 0.36;
    music.wIndependent = 0.42;
    music.numFunctions = 210;
    music.loopBackProb = 0.26;
    apps.push_back(music);

    AppProfile office = makeMobile("Office", "Slide edit, present",
                                   "Interactive displays", 108);
    office.wCritChain = 0.58;
    office.numFunctions = 320;
    apps.push_back(office);

    AppProfile gallery = makeMobile("PhotoGallery", "Browse Images",
                                    "Image browsing", 109);
    gallery.wIndependent = 0.40;
    gallery.memStrideFrac = 0.14;
    gallery.numFunctions = 300;
    apps.push_back(gallery);

    AppProfile youtube = makeMobile("Youtube", "HQ video stream",
                                    "Video streaming", 110);
    youtube.wSerial = 0.34;
    youtube.serialLenW = {0.15, 0.30, 0.30, 0.25};
    youtube.loopCarriedFrac = 0.08;
    youtube.memStrideFrac = 0.16;
    apps.push_back(youtube);

    return apps;
}

std::vector<AppProfile>
specIntApps()
{
    struct Row { const char *name; double loopBias; double hot; };
    const Row rows[] = {
        {"bzip2",      0.960, 0.55},
        {"hmmer",      0.975, 0.62},
        {"libquantum", 0.985, 0.30},
        {"mcf",        0.940, 0.25},
        {"gcc",        0.930, 0.50},
        {"gobmk",      0.915, 0.58},
        {"sjeng",      0.930, 0.60},
        {"h264ref",    0.965, 0.55},
    };
    std::vector<AppProfile> apps;
    std::uint64_t seed = 201;
    for (const Row &row : rows) {
        AppProfile p = specIntBase();
        p.name = row.name;
        p.activity = "SPEC CPU2006 ref-like input";
        p.domain = "SPEC.int";
        p.seed = seed++;
        p.loopContinueBias = row.loopBias;
        p.memHotFrac = row.hot;
        apps.push_back(p);
    }
    return apps;
}

std::vector<AppProfile>
specFloatApps()
{
    struct Row { const char *name; double stride; double fp; };
    const Row rows[] = {
        {"sperand",  0.40, 0.22},
        {"namd",     0.42, 0.28},
        {"gromacs",  0.44, 0.26},
        {"calculix", 0.40, 0.24},
        {"lbm",      0.58, 0.26},
        {"milc",     0.52, 0.24},
        {"dealII",   0.38, 0.22},
        {"leslie3d", 0.50, 0.28},
    };
    std::vector<AppProfile> apps;
    std::uint64_t seed = 301;
    for (const Row &row : rows) {
        AppProfile p = specFloatBase();
        p.name = row.name;
        p.activity = "SPEC CPU2006 ref-like input";
        p.domain = "SPEC.float";
        p.seed = seed++;
        p.memStrideFrac = row.stride;
        const double fp = row.fp;
        p.fracFpAdd = fp * 0.55;
        p.fracFpMul = fp * 0.40;
        p.fracFpDiv = fp * 0.05;
        apps.push_back(p);
    }
    return apps;
}

std::vector<AppProfile>
allApps()
{
    std::vector<AppProfile> apps = mobileApps();
    for (auto &&p : specIntApps())
        apps.push_back(std::move(p));
    for (auto &&p : specFloatApps())
        apps.push_back(std::move(p));
    return apps;
}

AppProfile
findApp(const std::string &name)
{
    for (const AppProfile &p : allApps())
        if (p.name == name)
            return p;
    critics_fatal("unknown app profile: ", name);
}

} // namespace critics::workload
