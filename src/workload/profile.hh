/**
 * @file
 * Statistical workload profiles.
 *
 * Each profile describes one app/benchmark as the distributions the paper's
 * evaluation actually depends on: code-structure parameters (drive i-cache
 * and branch behaviour), dataflow-motif weights (drive the fanout and
 * chain-gap statistics of Figs. 1b/5a), instruction mix (drives Fig. 3c)
 * and memory locality (drives load latencies).  The registry contains the
 * ten Play-Store apps of Table II plus the SPEC.int/SPEC.float proxies.
 */

#ifndef CRITICS_WORKLOAD_PROFILE_HH
#define CRITICS_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace critics::workload
{

/** Which suite a profile belongs to (Table II groups). */
enum class Suite : std::uint8_t
{
    Mobile,
    SpecInt,
    SpecFloat,
};

const char *suiteName(Suite suite);

/**
 * All synthesis knobs for one workload.  Defaults describe a generic
 * mobile app; the registry overrides per app/suite.
 */
struct AppProfile
{
    std::string name;
    std::string activity; ///< Table II "Activities Performed"
    std::string domain;   ///< Table II "Domain"
    Suite suite = Suite::Mobile;
    std::uint64_t seed = 1;

    // -- Code structure ---------------------------------------------------
    unsigned numFunctions = 300;   ///< code-base size (drives i-cache)
    unsigned dispatchTargets = 96; ///< event-handler entry points
    unsigned minBlocksPerFn = 2;
    unsigned maxBlocksPerFn = 5;
    unsigned minBlockInsts = 12;
    unsigned maxBlockInsts = 30;
    double funcZipfSkew = 0.80;     ///< popularity skew of handlers
    double callDensity = 0.32;      ///< P(block ends in a call)
    double loopBackProb = 0.26;     ///< P(block ends in a loop branch)
    double loopContinueBias = 0.93; ///< taken bias of loop back-edges
    double unpredictableBranchFrac = 0.02; ///< ~50/50 branches

    // -- Dataflow motifs (relative weights) -------------------------------
    double wCritChain = 0.55;   ///< chained high-fanout producers
    double wBroadcast = 0.06;   ///< isolated high-fanout producer
    double wSerial = 0.22;      ///< plain dependent chain
    double wIndependent = 0.17; ///< ILP filler

    /** # high-fanout nodes per critical chain: weights for 1,2,3,... */
    std::vector<double> chainCritNodesW = {0.15, 0.60, 0.25};
    /** # low-fanout links between successive high-fanout nodes:
     *  weights for gap = 0,1,2,3,4,5. */
    std::vector<double> chainGapW = {0.03, 0.64, 0.26, 0.04, 0.02, 0.01};
    /** Fan-out target of a high-fanout node: weights for
     *  critFanoutBase + k*critFanoutStep, k = 0..4. */
    std::vector<double> critFanoutW = {0.35, 0.30, 0.20, 0.10, 0.05};
    unsigned critFanoutBase = 16;
    unsigned critFanoutStep = 2;
    /** Plain serial-chain length: weights for 2,4,6,8. */
    std::vector<double> serialLenW = {0.4, 0.3, 0.2, 0.1};
    /** Fraction of serial chains that are loop-carried recurrences. */
    double loopCarriedFrac = 0.02;
    /** Fraction of high-fanout nodes that are loads. */
    double critNodeLoadFrac = 0.30;

    // -- Instruction mix of fillers/consumers (non-control) ---------------
    double fracLoad = 0.19;
    double fracStore = 0.09;
    double fracMul = 0.02;
    double fracDiv = 0.001;
    double fracFpAdd = 0.015;
    double fracFpMul = 0.010;
    double fracFpDiv = 0.001;

    // -- 16-bit convertibility pressure ------------------------------------
    double predicatedFrac = 0.18;  ///< fraction of predicated ALU ops
    double smallImmFrac = 0.45;    ///< fillers without immediate payload
    double highRegFrac = 0.10;     ///< fraction forced above Thumb limits

    // -- Memory locality ---------------------------------------------------
    std::uint32_t hotRegionBytes = 32u << 10;
    std::uint32_t coldRegionBytes = 6u << 20;
    std::uint32_t strideRegionBytes = 4u << 20;
    std::uint32_t strideStep = 64;
    double memHotFrac = 0.88;    ///< loads/stores hitting the hot region
    double memStrideFrac = 0.03; ///< streaming accesses
    // remainder: cold region
};

/** The ten Play-Store apps of Table II. */
std::vector<AppProfile> mobileApps();

/** SPEC.int proxies (bzip2, hmmer, libquantum, mcf, gcc, gobmk, sjeng,
 *  h264ref). */
std::vector<AppProfile> specIntApps();

/** SPEC.float proxies (sperand, namd, gromacs, calculix, lbm, milc,
 *  dealII, leslie3d). */
std::vector<AppProfile> specFloatApps();

/** All suites concatenated. */
std::vector<AppProfile> allApps();

/** Look up a profile by name across all suites; fatal if unknown. */
AppProfile findApp(const std::string &name);

} // namespace critics::workload

#endif // CRITICS_WORKLOAD_PROFILE_HH
