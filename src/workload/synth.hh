/**
 * @file
 * Program synthesis: expand an AppProfile into a static Program whose
 * control structure, dataflow motifs, instruction mix and memory
 * behaviour follow the profile's distributions.
 *
 * Register discipline (keeps the generated dataflow analyzable and the
 * Thumb-convertibility statistics controllable):
 *   r0..r6  — rotating dataflow temporaries (chain members, producers)
 *   r7      — per-function recurrence accumulator (loop-carried chains)
 *   r8..r10 — leaf destinations (fanout consumers)
 *   r11+    — used only by the deliberately non-convertible fraction
 */

#ifndef CRITICS_WORKLOAD_SYNTH_HH
#define CRITICS_WORKLOAD_SYNTH_HH

#include "program/program.hh"
#include "workload/profile.hh"

namespace critics::workload
{

/** Memory region ids assigned by the synthesizer. */
enum : std::uint32_t
{
    RegionHot = 0,
    RegionCold = 1,
    RegionStride = 2,
};

/**
 * Build the program for a profile.  Deterministic in profile.seed.
 * The returned program is laid out (addresses assigned).
 */
program::Program synthesize(const AppProfile &profile);

/**
 * Every takenBias value synthesize() can assign to a conditional
 * branch under this profile: the loop back-edge continue bias plus the
 * forward-skip trio (wild 0.5, skewed 0.04/0.96).  Ground truth for
 * the trace-conformance checker's per-branch bias test
 * (verify.trace.bias-unknown fires on a bias outside this set).
 */
std::vector<float> branchBiasVocabulary(const AppProfile &profile);

} // namespace critics::workload

#endif // CRITICS_WORKLOAD_SYNTH_HH
