/**
 * @file
 * Runtime feature toggles read from the environment.
 *
 * CRITICS_PACKED_TRACE=off selects the pre-overhaul simulator paths
 * (per-instruction criticality hash probes, the full ROB issue scan,
 * per-run trace re-emission without memoization).  It exists solely so
 * the bit-exactness regression tests and a worried user can prove the
 * packed fast paths change no emitted statistic; it is kept for one
 * release and then removed (DESIGN.md §7).
 */

#ifndef CRITICS_SUPPORT_ENV_HH
#define CRITICS_SUPPORT_ENV_HH

#include <cstdlib>
#include <cstring>

namespace critics
{

/** @return false iff CRITICS_PACKED_TRACE=off (or =0) is set.  Read on
 *  every call — once per simulated job, never in an inner loop — so
 *  tests can toggle the escape hatch between runs with setenv(). */
inline bool
packedTraceEnabled()
{
    const char *env = std::getenv("CRITICS_PACKED_TRACE");
    if (env == nullptr)
        return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
}

} // namespace critics

#endif // CRITICS_SUPPORT_ENV_HH
