/**
 * @file
 * ASCII table printer used by the benchmark harness to render the paper's
 * tables and figure series in a uniform way.
 */

#ifndef CRITICS_SUPPORT_TABLE_HH
#define CRITICS_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace critics
{

/**
 * Column-aligned text table.  Cells are strings; helpers format numbers
 * and percentages consistently across all benches.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);
    std::string render() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format with fixed decimals, e.g. fmt(12.3456, 2) == "12.35". */
std::string fmt(double value, int decimals = 2);

/** Format a ratio as a percentage, e.g. pct(0.1265) == "12.65%". */
std::string pct(double ratio, int decimals = 2);

/** Format a speedup ratio (new/old time based) as a percent gain. */
std::string gainPct(double speedupRatio, int decimals = 2);

} // namespace critics

#endif // CRITICS_SUPPORT_TABLE_HH
