#include "support/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace critics
{

namespace
{
bool quietFlag = false;
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
quiet()
{
    return quietFlag;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    // Throw instead of abort() so tests can assert on panics.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace critics
