#include "support/logging.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <stdexcept>

namespace critics
{

namespace
{

std::atomic<bool> quietFlag{false};

/** CRITICS_DEBUG components, parsed once on first use. */
const std::set<std::string> &
debugComponents()
{
    static const std::set<std::string> components = [] {
        std::set<std::string> out;
        const char *env = std::getenv("CRITICS_DEBUG");
        if (env == nullptr)
            return out;
        std::string current;
        for (const char *p = env;; ++p) {
            if (*p == ',' || *p == '\0') {
                if (!current.empty())
                    out.insert(current);
                current.clear();
                if (*p == '\0')
                    break;
            } else {
                current.push_back(*p);
            }
        }
        return out;
    }();
    return components;
}

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

bool
debugEnabled(const char *component)
{
    const auto &enabled = debugComponents();
    if (enabled.empty())
        return false;
    return enabled.count("all") > 0 || enabled.count(component) > 0;
}

void
debugImpl(const char *component, const std::string &msg)
{
    std::cerr << "debug[" << component << "]: " << msg << std::endl;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    // Throw instead of abort() so tests can assert on panics.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet())
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quiet())
        std::cerr << "info: " << msg << std::endl;
}

} // namespace critics
