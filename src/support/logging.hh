/**
 * @file
 * gem5-style status/error reporting: panic() for internal invariant
 * violations, fatal() for user/configuration errors, warn()/inform()
 * for status messages.
 */

#ifndef CRITICS_SUPPORT_LOGGING_HH
#define CRITICS_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace critics
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Globally silence warn()/inform() (used by tests and benches).
 *  Thread-safe: jobs on the pool may race a bench main() toggling it. */
void setQuiet(bool quiet);
bool quiet();

/**
 * True when the CRITICS_DEBUG environment variable names `component`
 * (comma list, e.g. `CRITICS_DEBUG=cpu,mem`) or is `all`.  Parsed
 * once per process; debug output is opt-in and therefore *not*
 * silenced by setQuiet().
 */
bool debugEnabled(const char *component);
void debugImpl(const char *component, const std::string &msg);

namespace detail
{

inline void
streamAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    streamAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamAll(os, args...);
    return os.str();
}

} // namespace detail

} // namespace critics

/** Internal invariant violated: a bug in the simulator itself. */
#define critics_panic(...) \
    ::critics::panicImpl(__FILE__, __LINE__, \
                         ::critics::detail::concat(__VA_ARGS__))

/** The simulation cannot continue due to a user/configuration error. */
#define critics_fatal(...) \
    ::critics::fatalImpl(__FILE__, __LINE__, \
                         ::critics::detail::concat(__VA_ARGS__))

#define critics_warn(...) \
    ::critics::warnImpl(::critics::detail::concat(__VA_ARGS__))

#define critics_inform(...) \
    ::critics::informImpl(::critics::detail::concat(__VA_ARGS__))

/** Per-component debug line, gated on CRITICS_DEBUG=<component,...>.
 *  The message is only formatted when the component is enabled. */
#define critics_debug(component, ...) \
    do { \
        if (::critics::debugEnabled(component)) { \
            ::critics::debugImpl(component, \
                ::critics::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Cheap always-on invariant check (simulation correctness beats speed). */
#define critics_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::critics::panicImpl(__FILE__, __LINE__, \
                ::critics::detail::concat("assertion failed: " #cond " ", \
                                          ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // CRITICS_SUPPORT_LOGGING_HH
