#include "support/parallel.hh"

#include "runner/thread_pool.hh"

namespace critics
{

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    // Delegates to the runner's shared pool: threads are created once
    // per process instead of once per call, and nested regions run
    // serially instead of deadlocking.
    runner::ThreadPool::shared().forEach(n, body);
}

} // namespace critics
