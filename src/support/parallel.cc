#include "support/parallel.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace critics
{

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    const std::size_t workers = std::min<std::size_t>(
        n, std::max(1u, std::thread::hardware_concurrency()));
    if (workers == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex errorLock;

    auto work = [&]() {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> guard(errorLock);
                if (!error)
                    error = std::current_exception();
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back(work);
    for (auto &thread : threads)
        thread.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace critics
