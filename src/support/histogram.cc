#include "support/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace critics
{

void
Summary::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
Summary::merge(const Summary &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double nab = na + nb;
    mean_ += delta * nb / nab;
    m2_ += other.m2_ + delta * delta * na * nb / nab;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
}

double
Summary::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::add(std::int64_t bucket, double weight)
{
    buckets_[bucket] += weight;
    total_ += weight;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[bucket, weight] : other.buckets_)
        buckets_[bucket] += weight;
    total_ += other.total_;
}

double
Histogram::at(std::int64_t bucket) const
{
    const auto it = buckets_.find(bucket);
    return it == buckets_.end() ? 0.0 : it->second;
}

double
Histogram::fraction(std::int64_t bucket) const
{
    return total_ > 0.0 ? at(bucket) / total_ : 0.0;
}

double
Histogram::cumulativeFraction(std::int64_t bucket) const
{
    if (total_ <= 0.0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[b, w] : buckets_) {
        if (b > bucket)
            break;
        acc += w;
    }
    return acc / total_;
}

double
Histogram::mean() const
{
    if (total_ <= 0.0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[b, w] : buckets_)
        acc += static_cast<double>(b) * w;
    return acc / total_;
}

std::int64_t
Histogram::minBucket() const
{
    return buckets_.empty() ? 0 : buckets_.begin()->first;
}

std::int64_t
Histogram::maxBucket() const
{
    return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

std::int64_t
Histogram::percentile(double q) const
{
    if (total_ <= 0.0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    double acc = 0.0;
    for (const auto &[b, w] : buckets_) {
        acc += w;
        if (acc / total_ >= q)
            return b;
    }
    return maxBucket();
}

std::string
Histogram::format(std::int64_t clampAt) const
{
    std::ostringstream os;
    double overflow = 0.0;
    for (const auto &[b, w] : buckets_) {
        if (b >= clampAt) {
            overflow += w;
            continue;
        }
        os << "  " << b << ": "
           << (total_ > 0.0 ? w / total_ : 0.0) << "\n";
    }
    if (overflow > 0.0) {
        os << "  " << clampAt << "+: "
           << (total_ > 0.0 ? overflow / total_ : 0.0) << "\n";
    }
    return os.str();
}

std::vector<CdfPoint>
buildCdf(std::vector<std::pair<double, double>> values,
         std::size_t maxPoints)
{
    std::vector<CdfPoint> cdf;
    if (values.empty())
        return cdf;
    std::sort(values.begin(), values.end());
    double total = 0.0;
    for (const auto &[x, w] : values)
        total += w;
    if (total <= 0.0)
        return cdf;

    // Collapse duplicate x, accumulate, then decimate evenly.
    std::vector<CdfPoint> full;
    double acc = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        acc += values[i].second;
        if (i + 1 < values.size() && values[i + 1].first == values[i].first)
            continue;
        full.push_back({values[i].first, acc / total});
    }
    if (full.size() <= maxPoints)
        return full;
    const double stride =
        static_cast<double>(full.size() - 1) /
        static_cast<double>(maxPoints - 1);
    for (std::size_t i = 0; i < maxPoints; ++i) {
        const auto idx = static_cast<std::size_t>(
            std::llround(static_cast<double>(i) * stride));
        cdf.push_back(full[std::min(idx, full.size() - 1)]);
    }
    return cdf;
}

} // namespace critics
