#include "support/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace critics
{

void
Summary::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
Summary::merge(const Summary &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double nab = na + nb;
    mean_ += delta * nb / nab;
    m2_ += other.m2_ + delta * delta * na * nb / nab;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
}

double
Summary::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::add(std::int64_t bucket, double weight)
{
    buckets_[bucket] += weight;
    total_ += weight;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[bucket, weight] : other.buckets_)
        buckets_[bucket] += weight;
    total_ += other.total_;
}

double
Histogram::at(std::int64_t bucket) const
{
    const auto it = buckets_.find(bucket);
    return it == buckets_.end() ? 0.0 : it->second;
}

double
Histogram::fraction(std::int64_t bucket) const
{
    return total_ > 0.0 ? at(bucket) / total_ : 0.0;
}

double
Histogram::cumulativeFraction(std::int64_t bucket) const
{
    if (total_ <= 0.0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[b, w] : buckets_) {
        if (b > bucket)
            break;
        acc += w;
    }
    return acc / total_;
}

double
Histogram::mean() const
{
    if (total_ <= 0.0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[b, w] : buckets_)
        acc += static_cast<double>(b) * w;
    return acc / total_;
}

std::int64_t
Histogram::minBucket() const
{
    return buckets_.empty() ? 0 : buckets_.begin()->first;
}

std::int64_t
Histogram::maxBucket() const
{
    return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

std::int64_t
Histogram::percentile(double q) const
{
    if (total_ <= 0.0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    double acc = 0.0;
    for (const auto &[b, w] : buckets_) {
        acc += w;
        if (acc / total_ >= q)
            return b;
    }
    return maxBucket();
}

std::string
Histogram::format(std::int64_t clampAt) const
{
    std::ostringstream os;
    double overflow = 0.0;
    for (const auto &[b, w] : buckets_) {
        if (b >= clampAt) {
            overflow += w;
            continue;
        }
        os << "  " << b << ": "
           << (total_ > 0.0 ? w / total_ : 0.0) << "\n";
    }
    if (overflow > 0.0) {
        os << "  " << clampAt << "+: "
           << (total_ > 0.0 ? overflow / total_ : 0.0) << "\n";
    }
    return os.str();
}

std::size_t
LatencyHistogram::bucketOf(double micros)
{
    if (!(micros >= 1.0)) // < 1µs, 0, negative, NaN
        return 0;
    int exp = 0;
    const double frac = std::frexp(micros, &exp); // micros = frac·2^exp
    const std::size_t octave = static_cast<std::size_t>(exp - 1);
    if (octave >= kOctaves)
        return kBuckets - 1;
    // frac in [0.5, 1): frac·2 - 1 in [0, 1) scales to the sub-bucket.
    auto sub = static_cast<std::size_t>(
        (frac * 2.0 - 1.0) * static_cast<double>(kSubBuckets));
    sub = std::min(sub, kSubBuckets - 1);
    return 1 + octave * kSubBuckets + sub;
}

double
LatencyHistogram::bucketLowerBound(std::size_t bucket)
{
    if (bucket == 0)
        return 0.0;
    const std::size_t octave = (bucket - 1) / kSubBuckets;
    const std::size_t sub = (bucket - 1) % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub) /
                                static_cast<double>(kSubBuckets),
                      static_cast<int>(octave));
}

double
LatencyHistogram::bucketUpperBound(std::size_t bucket)
{
    if (bucket + 1 >= kBuckets)
        return std::ldexp(1.0, static_cast<int>(kOctaves));
    return bucketLowerBound(bucket + 1);
}

void
LatencyHistogram::add(double micros)
{
    if (!(micros >= 0.0))
        micros = 0.0;
    std::lock_guard<std::mutex> hold(mutex_);
    ++counts_[bucketOf(micros)];
    if (count_ == 0) {
        min_ = max_ = micros;
    } else {
        min_ = std::min(min_, micros);
        max_ = std::max(max_, micros);
    }
    ++count_;
    sum_ += micros;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    // Copy under the source lock, fold in under ours (never both).
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t count = 0;
    double sum = 0.0, lo = 0.0, hi = 0.0;
    {
        std::lock_guard<std::mutex> hold(other.mutex_);
        counts = other.counts_;
        count = other.count_;
        sum = other.sum_;
        lo = other.min_;
        hi = other.max_;
    }
    if (count == 0)
        return;
    std::lock_guard<std::mutex> hold(mutex_);
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += counts[i];
    if (count_ == 0) {
        min_ = lo;
        max_ = hi;
    } else {
        min_ = std::min(min_, lo);
        max_ = std::max(max_, hi);
    }
    count_ += count;
    sum_ += sum;
}

std::uint64_t
LatencyHistogram::count() const
{
    std::lock_guard<std::mutex> hold(mutex_);
    return count_;
}

double
LatencyHistogram::mean() const
{
    std::lock_guard<std::mutex> hold(mutex_);
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
LatencyHistogram::min() const
{
    std::lock_guard<std::mutex> hold(mutex_);
    return min_;
}

double
LatencyHistogram::max() const
{
    std::lock_guard<std::mutex> hold(mutex_);
    return max_;
}

double
LatencyHistogram::percentile(double q) const
{
    std::lock_guard<std::mutex> hold(mutex_);
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        acc += counts_[i];
        if (counts_[i] > 0 && static_cast<double>(acc) >= target)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1);
}

std::vector<CdfPoint>
buildCdf(std::vector<std::pair<double, double>> values,
         std::size_t maxPoints)
{
    std::vector<CdfPoint> cdf;
    if (values.empty())
        return cdf;
    std::sort(values.begin(), values.end());
    double total = 0.0;
    for (const auto &[x, w] : values)
        total += w;
    if (total <= 0.0)
        return cdf;

    // Collapse duplicate x, accumulate, then decimate evenly.
    std::vector<CdfPoint> full;
    double acc = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        acc += values[i].second;
        if (i + 1 < values.size() && values[i + 1].first == values[i].first)
            continue;
        full.push_back({values[i].first, acc / total});
    }
    if (full.size() <= maxPoints)
        return full;
    const double stride =
        static_cast<double>(full.size() - 1) /
        static_cast<double>(maxPoints - 1);
    for (std::size_t i = 0; i < maxPoints; ++i) {
        const auto idx = static_cast<std::size_t>(
            std::llround(static_cast<double>(i) * stride));
        cdf.push_back(full[std::min(idx, full.size() - 1)]);
    }
    return cdf;
}

} // namespace critics
