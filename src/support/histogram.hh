/**
 * @file
 * Small statistics containers used throughout the profiler, the pipeline
 * model and the benchmark harness: streaming summary stats, integer
 * histograms and empirical CDFs.
 */

#ifndef CRITICS_SUPPORT_HISTOGRAM_HH
#define CRITICS_SUPPORT_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace critics
{

/** Streaming mean/min/max/variance accumulator (Welford). */
class Summary
{
  public:
    void add(double x);
    void merge(const Summary &other);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;
    double total() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Sparse integer histogram with weighted samples.  Used for fanout
 * distributions, chain-gap counts (Fig. 1b), IC length/spread (Fig. 5a).
 */
class Histogram
{
  public:
    void add(std::int64_t bucket, double weight = 1.0);
    void merge(const Histogram &other);

    double total() const { return total_; }
    double at(std::int64_t bucket) const;
    /** Fraction of total weight in this exact bucket (0 if empty). */
    double fraction(std::int64_t bucket) const;
    /** Fraction of total weight at buckets <= the given one. */
    double cumulativeFraction(std::int64_t bucket) const;
    /** Weighted mean bucket value. */
    double mean() const;
    std::int64_t minBucket() const;
    std::int64_t maxBucket() const;
    /** Smallest bucket b such that cumulativeFraction(b) >= q. */
    std::int64_t percentile(double q) const;
    bool empty() const { return buckets_.empty(); }

    const std::map<std::int64_t, double> &buckets() const
    {
        return buckets_;
    }

    /** Render "bucket: fraction" lines, collapsing everything above
     *  `clampAt` into a single "+"-suffixed bucket. */
    std::string format(std::int64_t clampAt = 64) const;

  private:
    std::map<std::int64_t, double> buckets_;
    double total_ = 0.0;
};

/**
 * Log-bucketed latency distribution with percentile views (an
 * HdrHistogram-lite).  Buckets cover microsecond latencies with 8
 * linear sub-buckets per power-of-two octave, so relative bucket
 * error is bounded at 12.5% across the whole range — wide enough for
 * a 40µs cache hit and a 40s cold job in the same histogram.
 *
 * Bucket scheme (values in µs):
 *   - bucket 0 holds everything below 1µs;
 *   - bucket 1 + 8·octave + sub holds [2^octave·(1 + sub/8),
 *     2^octave·(1 + (sub+1)/8)) for sub in 0..7, octave in 0..47.
 * Boundaries are computed with frexp/ldexp, never log(), so a value
 * exactly on a power of two lands in its own bucket deterministically
 * (tests assert exact boundary behaviour).
 *
 * percentile(q) returns the *upper bound* of the smallest bucket
 * whose cumulative count reaches q — a conservative (never
 * under-reporting) estimate.  add() is mutex-synchronized: pool
 * threads record job wall times concurrently.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kSubBuckets = 8;
    static constexpr std::size_t kOctaves = 48;
    static constexpr std::size_t kBuckets = 1 + kOctaves * kSubBuckets;

    /** Record one latency (microseconds; negatives clamp to 0). */
    void add(double micros);
    void merge(const LatencyHistogram &other);

    std::uint64_t count() const;
    double mean() const;
    double min() const; ///< exact smallest recorded value (0 if empty)
    double max() const; ///< exact largest recorded value (0 if empty)
    /** Upper bound of the bucket where cumulative count reaches q
     *  (q clamped to [0,1]); 0 when empty. */
    double percentile(double q) const;

    /** Bucket index a value lands in (pure; exposed for tests). */
    static std::size_t bucketOf(double micros);
    /** Inclusive lower / exclusive upper bound of a bucket in µs. */
    static double bucketLowerBound(std::size_t bucket);
    static double bucketUpperBound(std::size_t bucket);

  private:
    mutable std::mutex mutex_;
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** One (x, cumulative fraction) step of an empirical CDF. */
struct CdfPoint
{
    double x;
    double fraction;
};

/** Build an empirical CDF from weighted values, decimated to at most
 *  `maxPoints` steps. */
std::vector<CdfPoint> buildCdf(std::vector<std::pair<double, double>> values,
                               std::size_t maxPoints = 64);

} // namespace critics

#endif // CRITICS_SUPPORT_HISTOGRAM_HH
