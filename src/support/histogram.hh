/**
 * @file
 * Small statistics containers used throughout the profiler, the pipeline
 * model and the benchmark harness: streaming summary stats, integer
 * histograms and empirical CDFs.
 */

#ifndef CRITICS_SUPPORT_HISTOGRAM_HH
#define CRITICS_SUPPORT_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace critics
{

/** Streaming mean/min/max/variance accumulator (Welford). */
class Summary
{
  public:
    void add(double x);
    void merge(const Summary &other);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;
    double total() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Sparse integer histogram with weighted samples.  Used for fanout
 * distributions, chain-gap counts (Fig. 1b), IC length/spread (Fig. 5a).
 */
class Histogram
{
  public:
    void add(std::int64_t bucket, double weight = 1.0);
    void merge(const Histogram &other);

    double total() const { return total_; }
    double at(std::int64_t bucket) const;
    /** Fraction of total weight in this exact bucket (0 if empty). */
    double fraction(std::int64_t bucket) const;
    /** Fraction of total weight at buckets <= the given one. */
    double cumulativeFraction(std::int64_t bucket) const;
    /** Weighted mean bucket value. */
    double mean() const;
    std::int64_t minBucket() const;
    std::int64_t maxBucket() const;
    /** Smallest bucket b such that cumulativeFraction(b) >= q. */
    std::int64_t percentile(double q) const;
    bool empty() const { return buckets_.empty(); }

    const std::map<std::int64_t, double> &buckets() const
    {
        return buckets_;
    }

    /** Render "bucket: fraction" lines, collapsing everything above
     *  `clampAt` into a single "+"-suffixed bucket. */
    std::string format(std::int64_t clampAt = 64) const;

  private:
    std::map<std::int64_t, double> buckets_;
    double total_ = 0.0;
};

/** One (x, cumulative fraction) step of an empirical CDF. */
struct CdfPoint
{
    double x;
    double fraction;
};

/** Build an empirical CDF from weighted values, decimated to at most
 *  `maxPoints` steps. */
std::vector<CdfPoint> buildCdf(std::vector<std::pair<double, double>> values,
                               std::size_t maxPoints = 64);

} // namespace critics

#endif // CRITICS_SUPPORT_HISTOGRAM_HH
