/**
 * @file
 * Minimal thread-pool-free parallel loop for the benchmark harness
 * (each iteration is one independent app simulation).
 */

#ifndef CRITICS_SUPPORT_PARALLEL_HH
#define CRITICS_SUPPORT_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace critics
{

/**
 * Run body(0..n-1) on up to std::thread::hardware_concurrency()
 * threads.  Exceptions propagate (the first one wins).
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body);

} // namespace critics

#endif // CRITICS_SUPPORT_PARALLEL_HH
