/**
 * @file
 * Parallel loop for the benchmark harness (each iteration is one
 * independent app simulation).  Runs on the runner's shared thread
 * pool; the signature is unchanged from the old thread-per-call
 * implementation so callers are untouched.
 */

#ifndef CRITICS_SUPPORT_PARALLEL_HH
#define CRITICS_SUPPORT_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace critics
{

/**
 * Run body(0..n-1) on the shared worker pool (the calling thread
 * participates).  Exceptions propagate (the first one wins).  Nested
 * calls from inside a parallel region execute serially.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body);

} // namespace critics

#endif // CRITICS_SUPPORT_PARALLEL_HH
