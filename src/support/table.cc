#include "support/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace critics
{

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    critics_assert(cells.size() == header_.size(),
                   "table row width ", cells.size(), " != header width ",
                   header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ")
               << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << " |\n";
    };
    auto emitRule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|" : "+") << std::string(widths[c] + 2, '-');
        }
        os << "|\n";
    };

    emitRule();
    emitRow(header_);
    emitRule();
    for (const auto &row : rows_)
        emitRow(row);
    emitRule();
    return os.str();
}

std::string
fmt(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
pct(double ratio, int decimals)
{
    return fmt(ratio * 100.0, decimals) + "%";
}

std::string
gainPct(double speedupRatio, int decimals)
{
    return fmt((speedupRatio - 1.0) * 100.0, decimals) + "%";
}

} // namespace critics
