#include "support/rng.hh"

#include <algorithm>
#include <cmath>

namespace critics
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t state = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6));
    return splitMix64(state);
}

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed through SplitMix64 as recommended by the xoshiro
    // authors; guarantees a non-zero state.
    for (auto &word : s_)
        word = splitMix64(seed);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    p = std::clamp(p, 1e-9, 1.0);
    if (p >= 1.0)
        return 0;
    const double u = std::max(uniform(), 1e-300);
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += std::max(w, 0.0);
    if (total <= 0.0)
        return 0;
    double pick = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        pick -= std::max(weights[i], 0.0);
        if (pick < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::size_t
Rng::zipf(std::size_t n, double s)
{
    if (n <= 1)
        return 0;
    std::vector<double> weights(n);
    for (std::size_t r = 0; r < n; ++r)
        weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
    return weighted(weights);
}

DiscreteDist::DiscreteDist(std::vector<double> weights)
{
    cumulative_.reserve(weights.size());
    double total = 0.0;
    for (double w : weights) {
        total += std::max(w, 0.0);
        cumulative_.push_back(total);
    }
}

std::size_t
DiscreteDist::sample(Rng &rng) const
{
    if (cumulative_.empty() || cumulative_.back() <= 0.0)
        return 0;
    const double pick = rng.uniform() * cumulative_.back();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), pick);
    return static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                 cumulative_.size() - 1));
}

} // namespace critics
