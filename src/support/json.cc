#include "support/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace critics::json
{

// ---------------------------------------------------------------------------
// JsonValue

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::optional<std::uint64_t>
JsonValue::asUint() const
{
    if (kind != Kind::Number || text.empty() || text[0] == '-')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return std::nullopt;
    return value;
}

std::optional<std::int64_t>
JsonValue::asInt() const
{
    if (kind != Kind::Number || text.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const std::int64_t value = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return std::nullopt;
    return value;
}

std::optional<double>
JsonValue::asDouble() const
{
    if (kind != Kind::Number && kind != Kind::String)
        return std::nullopt;
    if (text.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return std::nullopt;
    return value;
}

std::optional<std::string>
JsonValue::asString() const
{
    if (kind != Kind::String)
        return std::nullopt;
    return text;
}

std::optional<bool>
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        return std::nullopt;
    return boolean;
}

// ---------------------------------------------------------------------------
// Parser

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!value(out))
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    bool
    value(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return number(out);
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!string(key))
                return false;
            skipSpace();
            if (peek() != ':')
                return false;
            ++pos_;
            skipSpace();
            JsonValue member;
            if (!value(member))
                return false;
            out.members.emplace_back(std::move(key), std::move(member));
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            JsonValue element;
            if (!value(element))
                return false;
            out.elements.push_back(std::move(element));
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string &out)
    {
        if (peek() != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    // The writer never emits \u; decode BMP scalars
                    // to keep the parser honest on foreign input.
                    if (pos_ + 4 > text_.size())
                        return false;
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(
                            static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(
                            static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                  }
                  default:
                    return false;
                }
                continue;
            }
            out.push_back(c);
        }
        return false; // unterminated
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return false;
        out.kind = JsonValue::Kind::Number;
        out.text = text_.substr(start, pos_ - start);
        return true;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text)
{
    JsonValue value;
    if (!Parser(text).parse(value))
        return std::nullopt;
    return value;
}

// ---------------------------------------------------------------------------
// Writer

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
hexFloat(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", value);
    return buf;
}

void
JsonWriter::comma()
{
    if (firstStack_.back())
        firstStack_.back() = false;
    else
        out_ += ',';
}

void
JsonWriter::key(const char *name)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
}

void
JsonWriter::quoted(const std::string &value)
{
    out_ += '"';
    out_ += jsonEscape(value);
    out_ += '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    firstStack_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::beginObject(const char *name)
{
    key(name);
    out_ += '{';
    firstStack_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    firstStack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const char *name)
{
    if (name)
        key(name);
    else
        comma();
    out_ += '[';
    firstStack_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    firstStack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::field(const char *name, const std::string &value)
{
    key(name);
    quoted(value);
    return *this;
}

JsonWriter &
JsonWriter::field(const char *name, const char *value)
{
    return field(name, std::string(value));
}

JsonWriter &
JsonWriter::field(const char *name, std::uint64_t value)
{
    key(name);
    out_ += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::field(const char *name, std::int64_t value)
{
    key(name);
    out_ += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::field(const char *name, unsigned value)
{
    return field(name, static_cast<std::uint64_t>(value));
}

JsonWriter &
JsonWriter::field(const char *name, int value)
{
    return field(name, static_cast<std::int64_t>(value));
}

JsonWriter &
JsonWriter::field(const char *name, bool value)
{
    key(name);
    out_ += value ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::field(const char *name, double value)
{
    key(name);
    quoted(hexFloat(value));
    return *this;
}

JsonWriter &
JsonWriter::fieldReadable(const char *name, double value)
{
    key(name);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::element(const std::string &value)
{
    comma();
    quoted(value);
    return *this;
}

JsonWriter &
JsonWriter::element(double value)
{
    comma();
    quoted(hexFloat(value));
    return *this;
}

JsonWriter &
JsonWriter::elementObject()
{
    comma();
    out_ += '{';
    firstStack_.push_back(true);
    return *this;
}

} // namespace critics::json
