/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * Everything in the reproduction must be reproducible from a seed, so we
 * avoid std::mt19937 (whose distributions are implementation-defined) and
 * implement SplitMix64 seeding + xoshiro256** generation with our own
 * distribution helpers.
 */

#ifndef CRITICS_SUPPORT_RNG_HH
#define CRITICS_SUPPORT_RNG_HH

#include <cstdint>
#include <vector>

namespace critics
{

/** SplitMix64 step; used to expand seeds and for stateless hashing. */
std::uint64_t splitMix64(std::uint64_t &state);

/** Stateless 64-bit mix of two values; used for per-key deterministic
 *  streams (e.g., per-static-instruction address sequences). */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

/**
 * Named per-purpose RNG streams.  Every consumer of a profile seed
 * derives its generator as streamSeed(seed, stream), so streams are
 * independent by construction and adding a new consumer can never
 * perturb an existing one (the historical reseeding-collision risk).
 * The enumerator values are the exact stream constants the historical
 * call sites already used, so existing seeds keep producing the same
 * programs and walks.
 */
enum class RngStream : std::uint64_t
{
    Synth = 0xC417C5ULL,  ///< program synthesis (workload::synthesize)
    Walk = 0xA117ULL,     ///< control-path walk (program::walkProgram)
    Sample = 0x5A3417EULL ///< reserved: per-sample split for future
                          ///< sample-parallel jobs (ROADMAP)
};

/** Seed for one named stream of a base seed. */
inline std::uint64_t
streamSeed(std::uint64_t seed, RngStream stream)
{
    return hashCombine(seed, static_cast<std::uint64_t>(stream));
}

/**
 * xoshiro256** PRNG with explicit, portable distribution helpers.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound) using Lemire reduction; bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p (clamped to [0,1]). */
    bool chance(double p);

    /** Geometric draw: number of failures before first success,
     *  success probability p in (0, 1]. */
    std::uint64_t geometric(double p);

    /** Sample an index from a discrete, not-necessarily-normalized
     *  weight vector. Empty or all-zero weights return 0. */
    std::size_t weighted(const std::vector<double> &weights);

    /** Zipf-like draw over [0, n): rank r with weight 1/(r+1)^s. */
    std::size_t zipf(std::size_t n, double s);

  private:
    std::uint64_t s_[4];
};

/**
 * Pre-normalized discrete distribution with cached cumulative weights;
 * much faster than Rng::weighted for repeated sampling.
 */
class DiscreteDist
{
  public:
    DiscreteDist() = default;
    explicit DiscreteDist(std::vector<double> weights);

    /** Sample an index; empty distribution returns 0. */
    std::size_t sample(Rng &rng) const;

    bool empty() const { return cumulative_.empty(); }
    std::size_t size() const { return cumulative_.size(); }

  private:
    std::vector<double> cumulative_;
};

} // namespace critics

#endif // CRITICS_SUPPORT_RNG_HH
