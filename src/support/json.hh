/**
 * @file
 * Minimal JSON reader/writer shared by every serialization layer (the
 * runner's JSONL result cache and manifests, the sim report export,
 * the stats registry and the trace-event pipeline).  No external
 * dependencies; numbers are kept as raw text so 64-bit integers and
 * hex-float doubles round-trip without precision loss.
 */

#ifndef CRITICS_SUPPORT_JSON_HH
#define CRITICS_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace critics::json
{

/**
 * Parsed JSON value.  Objects keep insertion order (the writer emits
 * deterministic output, and tests compare serialized records).
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number, ///< raw text, lazily converted
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; ///< number spelling or string payload
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> elements;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Typed accessors: nullopt on kind mismatch or parse failure. */
    std::optional<std::uint64_t> asUint() const;
    std::optional<std::int64_t> asInt() const;
    /** Accepts JSON numbers and hex-float strings ("0x1.8p+1"). */
    std::optional<double> asDouble() const;
    std::optional<std::string> asString() const;
    std::optional<bool> asBool() const;
};

/** Parse one JSON document; nullopt on any syntax error. */
std::optional<JsonValue> parseJson(const std::string &text);

/**
 * Deterministic JSON writer.  Doubles are serialized as hex-float
 * *strings* (valid JSON, bit-exact round-trip); integers as plain
 * number tokens.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray(const char *key = nullptr);
    JsonWriter &endArray();
    /** Open a nested object as the value of `key`. */
    JsonWriter &beginObject(const char *key);

    JsonWriter &field(const char *key, const std::string &value);
    JsonWriter &field(const char *key, const char *value);
    JsonWriter &field(const char *key, std::uint64_t value);
    JsonWriter &field(const char *key, std::int64_t value);
    JsonWriter &field(const char *key, unsigned value);
    JsonWriter &field(const char *key, int value);
    JsonWriter &field(const char *key, bool value);
    /** Bit-exact double (hex-float string). */
    JsonWriter &field(const char *key, double value);
    /** Human-readable double (plain JSON number, %.17g). */
    JsonWriter &fieldReadable(const char *key, double value);

    /** Array element variants. */
    JsonWriter &element(const std::string &value);
    JsonWriter &element(double value);
    JsonWriter &elementObject(); ///< beginObject as an array element

    std::string str() const { return out_; }

  private:
    void comma();
    void key(const char *name);
    void quoted(const std::string &value);

    std::string out_;
    std::vector<bool> firstStack_{true};
};

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &text);

/** Format a double as a bit-exact hex-float token ("0x1.8p+1"). */
std::string hexFloat(double value);

} // namespace critics::json

#endif // CRITICS_SUPPORT_JSON_HH
