/**
 * @file
 * CritIC mining: the offline aggregation stage of the paper's profiler
 * (implemented there with Spark PairRDD; here with an in-process hash
 * aggregation).  Dynamic ICs are cut into same-basic-block segments
 * (the scope the ART pass can hoist within), keyed by their static
 * instruction-uid signature, and aggregated into unique chains with
 * dynamic counts, average fanout and 16-bit representability.  A
 * selection step picks the top chains by coverage under the realistic
 * constraints (length <= 5, directly Thumb-convertible, non-overlapping)
 * or the CritIC.Ideal relaxation.
 */

#ifndef CRITICS_ANALYSIS_MINER_HH
#define CRITICS_ANALYSIS_MINER_HH

#include <vector>

#include "analysis/criticality.hh"
#include "program/program.hh"
#include "support/histogram.hh"

namespace critics::analysis
{

/** One unique mined chain (aggregated over its dynamic executions). */
struct MinedChain
{
    std::vector<program::InstUid> uids; ///< in block order
    std::uint64_t dynCount = 0;         ///< executions observed
    double avgFanout = 0.0;             ///< per instruction, dynamic avg
    /** Dynamic-average fanout of each member (for sub-path selection). */
    std::vector<double> memberFanout;
    /** Per-member 16-bit representability (for sub-path selection: a
     *  maxLen window is convertible iff its own members are, even when
     *  the full chain is not). */
    std::vector<std::uint8_t> memberConvertible;
    bool directlyConvertible = false;   ///< all members 16-bit as-is

    std::uint64_t
    coverage() const
    {
        return dynCount * uids.size();
    }
};

struct MineResult
{
    /** Unique CritICs sorted by descending coverage. */
    std::vector<MinedChain> chains;
    std::uint64_t dynInsts = 0;    ///< profiled stream length
    std::uint64_t segmentsSeen = 0;
};

/**
 * Dense uid-indexed cache of Program::locate() plus per-uid Thumb
 * convertibility, built in one program walk.  The mining loop queries
 * a location per dynamic instruction; resolving that through the
 * program's uid hash map costs more than the rest of the segment cut
 * combined, and the answers are identical for every profile fraction
 * mined from the same program — so AppExperiment builds one of these
 * and shares it across minedAt() calls.
 */
class LocTable
{
  public:
    /** Packed location: func(24) | block(20) | index(20).  The segment
     *  cutter's same-block test (`same func+block, strictly increasing
     *  index`) becomes one 8-byte load: equal high 44 bits plus an
     *  index comparison on the low 20. */
    static constexpr unsigned kIndexBits = 20;
    static constexpr unsigned kBlockBits = 20;
    static constexpr std::uint64_t kIndexMask =
        (1ull << kIndexBits) - 1;

    explicit LocTable(const program::Program &prog);

    const program::InstLoc &
    loc(program::InstUid uid) const
    {
        return locs_[uid];
    }

    std::uint64_t
    packed(program::InstUid uid) const
    {
        return packed_[uid];
    }

    bool
    convertible(program::InstUid uid) const
    {
        return convertible_[uid] != 0;
    }

  private:
    std::vector<program::InstLoc> locs_;
    std::vector<std::uint64_t> packed_;
    std::vector<std::uint8_t> convertible_;
};

/**
 * Mine unique CritICs from the extracted dynamic chains.
 *
 * @param profileFraction profile only the first fraction of the trace
 *        (Fig. 12b sensitivity); chains whose head lies beyond the
 *        cutoff are ignored.
 * @param locs optional shared location cache for `prog` (the flat
 *        path builds a private one when absent; the legacy path
 *        resolves through Program::locate as before).
 */
MineResult mineCritIcs(const program::Trace &trace,
                       const program::Program &prog,
                       const DynChains &chains, const FanoutInfo &fanout,
                       const CriticalityConfig &config,
                       double profileFraction = 1.0,
                       const LocTable *locs = nullptr);

/** Selection constraints. */
struct SelectOptions
{
    unsigned maxLen = 5;      ///< keep chains up to this length...
    unsigned exactLen = 0;    ///< ...or exactly this length (if != 0)
    bool requireConvertible = true;
    /** CritIC.Ideal: no length cap, conversion assumed always possible. */
    bool ideal = false;
    /** Keep at most this many unique chains (profile size bound). */
    std::size_t maxChains = 1u << 20;
};

struct Selection
{
    std::vector<std::vector<program::InstUid>> chains;
    /** Expected dynamic coverage of the selection (instructions in
     *  selected chains / profiled instructions). */
    double expectedCoverage = 0.0;
};

Selection selectCritIcs(const MineResult &mined,
                        const SelectOptions &options);

/** Fig. 5b: CDF of dynamic coverage vs unique-chain count, for all
 *  mined CritICs and for the directly-convertible subset. */
struct CoverageCdf
{
    std::vector<CdfPoint> all;
    std::vector<CdfPoint> convertible;
    double convertibleChainFraction = 0.0; ///< ~95.5% in the paper
};

CoverageCdf coverageCdf(const MineResult &mined);

} // namespace critics::analysis

#endif // CRITICS_ANALYSIS_MINER_HH
