/**
 * @file
 * CritIC mining: the offline aggregation stage of the paper's profiler
 * (implemented there with Spark PairRDD; here with an in-process hash
 * aggregation).  Dynamic ICs are cut into same-basic-block segments
 * (the scope the ART pass can hoist within), keyed by their static
 * instruction-uid signature, and aggregated into unique chains with
 * dynamic counts, average fanout and 16-bit representability.  A
 * selection step picks the top chains by coverage under the realistic
 * constraints (length <= 5, directly Thumb-convertible, non-overlapping)
 * or the CritIC.Ideal relaxation.
 */

#ifndef CRITICS_ANALYSIS_MINER_HH
#define CRITICS_ANALYSIS_MINER_HH

#include <vector>

#include "analysis/criticality.hh"
#include "program/program.hh"
#include "support/histogram.hh"

namespace critics::analysis
{

/** One unique mined chain (aggregated over its dynamic executions). */
struct MinedChain
{
    std::vector<program::InstUid> uids; ///< in block order
    std::uint64_t dynCount = 0;         ///< executions observed
    double avgFanout = 0.0;             ///< per instruction, dynamic avg
    /** Dynamic-average fanout of each member (for sub-path selection). */
    std::vector<double> memberFanout;
    bool directlyConvertible = false;   ///< all members 16-bit as-is

    std::uint64_t
    coverage() const
    {
        return dynCount * uids.size();
    }
};

struct MineResult
{
    /** Unique CritICs sorted by descending coverage. */
    std::vector<MinedChain> chains;
    std::uint64_t dynInsts = 0;    ///< profiled stream length
    std::uint64_t segmentsSeen = 0;
};

/**
 * Mine unique CritICs from the extracted dynamic chains.
 *
 * @param profileFraction profile only the first fraction of the trace
 *        (Fig. 12b sensitivity); chains whose head lies beyond the
 *        cutoff are ignored.
 */
MineResult mineCritIcs(const program::Trace &trace,
                       const program::Program &prog,
                       const DynChains &chains, const FanoutInfo &fanout,
                       const CriticalityConfig &config,
                       double profileFraction = 1.0);

/** Selection constraints. */
struct SelectOptions
{
    unsigned maxLen = 5;      ///< keep chains up to this length...
    unsigned exactLen = 0;    ///< ...or exactly this length (if != 0)
    bool requireConvertible = true;
    /** CritIC.Ideal: no length cap, conversion assumed always possible. */
    bool ideal = false;
    /** Keep at most this many unique chains (profile size bound). */
    std::size_t maxChains = 1u << 20;
};

struct Selection
{
    std::vector<std::vector<program::InstUid>> chains;
    /** Expected dynamic coverage of the selection (instructions in
     *  selected chains / profiled instructions). */
    double expectedCoverage = 0.0;
};

Selection selectCritIcs(const MineResult &mined,
                        const SelectOptions &options);

/** Fig. 5b: CDF of dynamic coverage vs unique-chain count, for all
 *  mined CritICs and for the directly-convertible subset. */
struct CoverageCdf
{
    std::vector<CdfPoint> all;
    std::vector<CdfPoint> convertible;
    double convertibleChainFraction = 0.0; ///< ~95.5% in the paper
};

CoverageCdf coverageCdf(const MineResult &mined);

} // namespace critics::analysis

#endif // CRITICS_ANALYSIS_MINER_HH
