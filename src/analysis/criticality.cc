#include "analysis/criticality.hh"

#include <algorithm>
#include <unordered_map>

#include "analysis/mode.hh"
#include "support/logging.hh"

namespace critics::analysis
{

using program::DynIdx;
using program::NoDep;
using program::Trace;

FanoutInfo
computeFanout(const Trace &trace, const CriticalityConfig &config)
{
    FanoutInfo info;
    const std::size_t n = trace.size();
    info.fanout.assign(n, 0);
    info.critMask.assign(n, 0);

    const auto window = static_cast<DynIdx>(config.window);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &d = trace.insts[i];
        const auto idx = static_cast<DynIdx>(i);
        // dep0 == dep1 counts once (emit never duplicates, but guard);
        // counting the duplicate directly keeps the 0xFFFF saturation
        // exact — the old increment-both-then-decrement scheme left
        // 0xFFFE behind once the counter hit the cap.
        if (d.dep0 != NoDep && idx - d.dep0 <= window &&
            info.fanout[d.dep0] < 0xFFFF) {
            ++info.fanout[d.dep0];
        }
        if (d.dep1 != NoDep && d.dep1 != d.dep0 &&
            idx - d.dep1 <= window && info.fanout[d.dep1] < 0xFFFF) {
            ++info.fanout[d.dep1];
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (info.fanout[i] >= config.fanoutThreshold) {
            info.critMask[i] = 1;
            ++info.critCount;
        }
    }
    return info;
}

namespace
{

/** Adjacency of direct in-window consumers, flattened (legacy path). */
struct Consumers
{
    std::vector<std::uint32_t> offsets; ///< n+1
    std::vector<DynIdx> edges;
};

/** The flat path's consumer index: only extraction-eligible consumers
 *  (exactly one in-window producer) are stored, and since each has one
 *  producer the edges form a forest — a head/next intrusive list per
 *  producer instead of a counted CSR.  One trace sweep builds it: no
 *  counting pass, no prefix sum, and no saturation special case
 *  (fanout's 0xFFFF cap never matters because nothing is counted).
 *  The sweep runs backwards with prepend insertion, so each list comes
 *  out in ascending consumer-index order — the legacy bucket order,
 *  keeping tie-breaks unchanged — without needing a tail array. */
struct EligibleForest
{
    std::vector<DynIdx> head; ///< first eligible consumer, or NoDep
    std::vector<DynIdx> next; ///< per consumer: next sibling, or NoDep
};

/**
 * Build the consumer CSR and (optionally, flat path) the per-inst
 * in-window producer count (0, 1 or 2) in the same sweep, so the
 * self-containment test in chain extraction is one byte load instead
 * of re-deriving both deps' window checks per query.
 */
Consumers
buildConsumers(const Trace &trace, unsigned window,
               std::vector<std::uint8_t> *producerCounts)
{
    const std::size_t n = trace.size();
    Consumers c;
    std::vector<std::uint32_t> counts(n + 1, 0);
    const auto win = static_cast<DynIdx>(window);

    auto inWindow = [&](DynIdx consumer, DynIdx producer) {
        return producer != NoDep && consumer - producer <= win;
    };

    if (producerCounts != nullptr)
        producerCounts->assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &d = trace.insts[i];
        const auto idx = static_cast<DynIdx>(i);
        std::uint8_t producers = 0;
        if (inWindow(idx, d.dep0)) {
            ++counts[d.dep0];
            ++producers;
        }
        if (inWindow(idx, d.dep1) && d.dep1 != d.dep0) {
            ++counts[d.dep1];
            ++producers;
        }
        if (producerCounts != nullptr)
            (*producerCounts)[i] = producers;
    }
    c.offsets.resize(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i)
        c.offsets[i + 1] = c.offsets[i] + counts[i];
    c.edges.resize(c.offsets[n]);
    std::vector<std::uint32_t> cursor(c.offsets.begin(),
                                      c.offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &d = trace.insts[i];
        const auto idx = static_cast<DynIdx>(i);
        if (inWindow(idx, d.dep0))
            c.edges[cursor[d.dep0]++] = idx;
        if (inWindow(idx, d.dep1) && d.dep1 != d.dep0)
            c.edges[cursor[d.dep1]++] = idx;
    }
    return c;
}

EligibleForest
buildEligibleForest(const Trace &trace, unsigned window)
{
    const std::size_t n = trace.size();
    const auto win = static_cast<DynIdx>(window);
    EligibleForest f;
    f.head.assign(n, NoDep);
    f.next.resize(n);
    for (std::size_t i = n; i-- > 0;) {
        const auto &d = trace.insts[i];
        const auto idx = static_cast<DynIdx>(i);
        const bool has0 = d.dep0 != NoDep && idx - d.dep0 <= win;
        const bool has1 = d.dep1 != NoDep && d.dep1 != d.dep0 &&
            idx - d.dep1 <= win;
        if (has0 != has1) { // exactly one in-window producer: eligible
            const DynIdx p = has0 ? d.dep0 : d.dep1;
            f.next[idx] = f.head[p];
            f.head[p] = idx;
        }
    }
    return f;
}

/** Number of in-window producers of instruction i (0, 1 or 2). */
unsigned
producerCount(const Trace &trace, DynIdx i, unsigned window)
{
    const auto &d = trace.insts[i];
    const auto win = static_cast<DynIdx>(window);
    unsigned count = 0;
    if (d.dep0 != NoDep && i - d.dep0 <= win)
        ++count;
    if (d.dep1 != NoDep && d.dep1 != d.dep0 && i - d.dep1 <= win)
        ++count;
    return count;
}

/** The pre-overhaul extraction: re-walks every candidate's consumer
 *  list per greedy step (the lookahead makes that quadratic in the
 *  fanout of hot producers).  Kept one release behind
 *  CRITICS_FLAT_ANALYZE=off. */
DynChains
extractChainsLegacy(const Trace &trace, const FanoutInfo &fanout,
                    const CriticalityConfig &config)
{
    const std::size_t n = trace.size();
    const Consumers consumers =
        buildConsumers(trace, config.window, nullptr);
    std::vector<std::uint8_t> taken(n, 0);

    DynChains result;
    result.members.reserve(n);
    result.offsets.reserve(n + 1);
    result.offsets.push_back(0);
    for (std::size_t start = 0; start < n; ++start) {
        if (taken[start])
            continue;
        DynIdx cur = static_cast<DynIdx>(start);
        result.members.push_back(cur);
        taken[start] = 1;

        while (true) {
            // Greedy extension with one step of lookahead: among
            // untaken consumers whose *only* in-window producer is
            // `cur` (self-containment), pick the one with the best
            // own-fanout plus downstream-fanout potential — the "look
            // into the future" of Sec. III-A, which prefers a
            // low-fanout link leading to a high-fanout instruction
            // over a dead-end leaf.
            auto lookahead = [&](DynIdx cand) {
                std::uint32_t best = 0;
                for (std::uint32_t e = consumers.offsets[cand];
                     e < consumers.offsets[cand + 1]; ++e) {
                    const DynIdx nxt = consumers.edges[e];
                    if (taken[nxt])
                        continue;
                    if (producerCount(trace, nxt, config.window) != 1)
                        continue;
                    best = std::max(best, 1u + fanout.fanout[nxt]);
                }
                return best;
            };
            DynIdx best = NoDep;
            double bestScore = 0.0;
            for (std::uint32_t e = consumers.offsets[cur];
                 e < consumers.offsets[cur + 1]; ++e) {
                const DynIdx cand = consumers.edges[e];
                if (taken[cand])
                    continue;
                if (producerCount(trace, cand, config.window) != 1)
                    continue;
                const double score = 1.0 + fanout.fanout[cand] +
                    0.5 * lookahead(cand);
                if (best == NoDep || score > bestScore) {
                    best = cand;
                    bestScore = score;
                }
            }
            if (best == NoDep)
                break;
            result.members.push_back(best);
            taken[best] = 1;
            cur = best;
        }
        result.offsets.push_back(
            static_cast<std::uint32_t>(result.members.size()));
    }
    return result;
}

/**
 * The flat extraction (DESIGN.md §10): identical greedy decisions, but
 * the self-containment test is baked into the eligible-only forest
 * storage and the lookahead is memoized per candidate with a witness.
 * The cached value is the max over a shrinking set (taking instructions
 * only removes lookahead contributors), so as long as the witness —
 * the consumer that achieved the cached max — is still untaken, the
 * cached value is exact; only a taken witness forces a re-walk.
 */
DynChains
extractChainsFlat(const Trace &trace, const FanoutInfo &fanout,
                  const CriticalityConfig &config)
{
    const std::size_t n = trace.size();
    const EligibleForest forest =
        buildEligibleForest(trace, config.window);
    std::vector<std::uint8_t> taken(n, 0);

    /** Memoized lookahead: value + the witness that achieved it.
     *  wit == kNoMemo marks a never-computed entry; wit == NoDep a
     *  computed entry whose candidate set was empty.  The cached value
     *  is a max over a shrinking set (instructions only get taken), so
     *  it stays exact while the witness is untaken. */
    struct Look
    {
        std::uint32_t val;
        DynIdx wit;
    };
    constexpr DynIdx kNoMemo = -2;
    std::vector<Look> look(n, Look{0, kNoMemo});

    auto lookahead = [&](DynIdx cand) {
        Look &memo = look[cand];
        if (memo.wit != kNoMemo &&
            (memo.wit == NoDep || !taken[memo.wit])) {
            return memo.val;
        }
        std::uint32_t best = 0;
        DynIdx witness = NoDep;
        for (DynIdx nxt = forest.head[cand]; nxt != NoDep;
             nxt = forest.next[nxt]) {
            if (taken[nxt])
                continue;
            const std::uint32_t value = 1u + fanout.fanout[nxt];
            if (value > best) {
                best = value;
                witness = nxt;
            }
        }
        memo = {best, witness};
        return best;
    };

    DynChains result;
    result.members.reserve(n);
    result.offsets.reserve(n + 1);
    result.offsets.push_back(0);
    for (std::size_t start = 0; start < n; ++start) {
        if (taken[start])
            continue;
        DynIdx cur = static_cast<DynIdx>(start);
        result.members.push_back(cur);
        taken[start] = 1;

        while (true) {
            // With exactly one eligible consumer the greedy choice is
            // score-independent (the first eligible candidate always
            // seeds `best`), so the lookahead only runs on contested
            // steps.  Scores are 2x the legacy double score — every
            // term is an exactly-representable integer, so the
            // comparisons order identically.
            DynIdx only = NoDep;
            bool contested = false;
            for (DynIdx cand = forest.head[cur]; cand != NoDep;
                 cand = forest.next[cand]) {
                if (taken[cand])
                    continue;
                if (only == NoDep) {
                    only = cand;
                } else {
                    contested = true;
                    break;
                }
            }
            if (only == NoDep)
                break;
            DynIdx best = only;
            if (contested) {
                best = NoDep;
                std::uint32_t bestScore = 0;
                for (DynIdx cand = forest.head[cur]; cand != NoDep;
                     cand = forest.next[cand]) {
                    if (taken[cand])
                        continue;
                    const std::uint32_t score =
                        2u * (1u + fanout.fanout[cand]) +
                        lookahead(cand);
                    if (best == NoDep || score > bestScore) {
                        best = cand;
                        bestScore = score;
                    }
                }
            }
            result.members.push_back(best);
            taken[best] = 1;
            cur = best;
        }
        result.offsets.push_back(
            static_cast<std::uint32_t>(result.members.size()));
    }
    return result;
}

} // namespace

DynChains
extractChains(const Trace &trace, const FanoutInfo &fanout,
              const CriticalityConfig &config)
{
    return flatAnalyzeEnabled()
        ? extractChainsFlat(trace, fanout, config)
        : extractChainsLegacy(trace, fanout, config);
}

ChainStats
chainStatistics(const Trace &trace, const DynChains &chains,
                const FanoutInfo &fanout, const CriticalityConfig &config)
{
    (void)trace;
    ChainStats stats;
    std::uint64_t critTotal = 0;
    std::uint64_t critWithoutSuccessor = 0;

    for (const DynChains::ChainRef chain : chains) {
        if (chain.size() >= 2) {
            ++stats.multiMemberChains;
            stats.icLength.add(static_cast<std::int64_t>(chain.size()));
            stats.icSpread.add(chain.back() - chain.front());
        }
        // Fig. 1b: gaps between successive critical members.
        std::int64_t lastCritPos = -1;
        for (std::size_t k = 0; k < chain.size(); ++k) {
            if (!fanout.critMask[chain[k]])
                continue;
            ++critTotal;
            if (lastCritPos >= 0) {
                const std::int64_t gap =
                    static_cast<std::int64_t>(k) - lastCritPos - 1;
                stats.critGap.add(std::min<std::int64_t>(gap, 6));
            }
            lastCritPos = static_cast<std::int64_t>(k);
        }
        if (lastCritPos >= 0)
            ++critWithoutSuccessor; // the last critical member has none
    }
    (void)config;
    stats.noDependentCritFrac = critTotal
        ? static_cast<double>(critWithoutSuccessor) /
          static_cast<double>(critTotal) : 0.0;
    return stats;
}

std::unordered_set<program::InstUid>
buildCriticalSet(const Trace &trace, const FanoutInfo &fanout, double bias)
{
    std::unordered_map<program::InstUid, std::pair<std::uint32_t,
                                                   std::uint32_t>> counts;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        auto &entry = counts[trace.insts[i].staticUid];
        ++entry.second;
        if (fanout.critMask[i])
            ++entry.first;
    }
    std::unordered_set<program::InstUid> set;
    for (const auto &[uid, cnt] : counts) {
        if (cnt.second > 0 &&
            static_cast<double>(cnt.first) /
                static_cast<double>(cnt.second) >= bias) {
            set.insert(uid);
        }
    }
    return set;
}

} // namespace critics::analysis
