#include "analysis/criticality.hh"

#include <algorithm>
#include <unordered_map>

#include "support/logging.hh"

namespace critics::analysis
{

using program::DynIdx;
using program::NoDep;
using program::Trace;

FanoutInfo
computeFanout(const Trace &trace, const CriticalityConfig &config)
{
    FanoutInfo info;
    const std::size_t n = trace.size();
    info.fanout.assign(n, 0);
    info.critMask.assign(n, 0);

    const auto window = static_cast<DynIdx>(config.window);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &d = trace.insts[i];
        for (const DynIdx dep : {d.dep0, d.dep1}) {
            if (dep == NoDep)
                continue;
            if (static_cast<DynIdx>(i) - dep <= window &&
                info.fanout[dep] < 0xFFFF) {
                ++info.fanout[dep];
            }
        }
        // dep0 == dep1 counts once: emit never duplicates, but guard.
        if (d.dep0 != NoDep && d.dep0 == d.dep1 &&
            static_cast<DynIdx>(i) - d.dep0 <= window &&
            info.fanout[d.dep0] > 0) {
            --info.fanout[d.dep0];
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (info.fanout[i] >= config.fanoutThreshold) {
            info.critMask[i] = 1;
            ++info.critCount;
        }
    }
    return info;
}

namespace
{

/** Adjacency of direct in-window consumers, flattened. */
struct Consumers
{
    std::vector<std::uint32_t> offsets; ///< n+1
    std::vector<DynIdx> edges;
};

Consumers
buildConsumers(const Trace &trace, unsigned window)
{
    const std::size_t n = trace.size();
    Consumers c;
    std::vector<std::uint32_t> counts(n + 1, 0);
    const auto win = static_cast<DynIdx>(window);

    auto inWindow = [&](DynIdx consumer, DynIdx producer) {
        return producer != NoDep && consumer - producer <= win;
    };

    for (std::size_t i = 0; i < n; ++i) {
        const auto &d = trace.insts[i];
        const auto idx = static_cast<DynIdx>(i);
        if (inWindow(idx, d.dep0))
            ++counts[d.dep0];
        if (inWindow(idx, d.dep1) && d.dep1 != d.dep0)
            ++counts[d.dep1];
    }
    c.offsets.resize(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i)
        c.offsets[i + 1] = c.offsets[i] + counts[i];
    c.edges.resize(c.offsets[n]);
    std::vector<std::uint32_t> cursor(c.offsets.begin(),
                                      c.offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &d = trace.insts[i];
        const auto idx = static_cast<DynIdx>(i);
        if (inWindow(idx, d.dep0))
            c.edges[cursor[d.dep0]++] = idx;
        if (inWindow(idx, d.dep1) && d.dep1 != d.dep0)
            c.edges[cursor[d.dep1]++] = idx;
    }
    return c;
}

/** Number of in-window producers of instruction i (0, 1 or 2). */
unsigned
producerCount(const Trace &trace, DynIdx i, unsigned window)
{
    const auto &d = trace.insts[i];
    const auto win = static_cast<DynIdx>(window);
    unsigned count = 0;
    if (d.dep0 != NoDep && i - d.dep0 <= win)
        ++count;
    if (d.dep1 != NoDep && d.dep1 != d.dep0 && i - d.dep1 <= win)
        ++count;
    return count;
}

} // namespace

DynChains
extractChains(const Trace &trace, const FanoutInfo &fanout,
              const CriticalityConfig &config)
{
    const std::size_t n = trace.size();
    const Consumers consumers = buildConsumers(trace, config.window);
    std::vector<std::uint8_t> taken(n, 0);

    DynChains result;
    for (std::size_t start = 0; start < n; ++start) {
        if (taken[start])
            continue;
        std::vector<DynIdx> chain;
        DynIdx cur = static_cast<DynIdx>(start);
        chain.push_back(cur);
        taken[start] = 1;

        while (true) {
            // Greedy extension with one step of lookahead: among
            // untaken consumers whose *only* in-window producer is
            // `cur` (self-containment), pick the one with the best
            // own-fanout plus downstream-fanout potential — the "look
            // into the future" of Sec. III-A, which prefers a
            // low-fanout link leading to a high-fanout instruction
            // over a dead-end leaf.
            auto lookahead = [&](DynIdx cand) {
                std::uint32_t best = 0;
                for (std::uint32_t e = consumers.offsets[cand];
                     e < consumers.offsets[cand + 1]; ++e) {
                    const DynIdx nxt = consumers.edges[e];
                    if (taken[nxt])
                        continue;
                    if (producerCount(trace, nxt, config.window) != 1)
                        continue;
                    best = std::max(best, 1u + fanout.fanout[nxt]);
                }
                return best;
            };
            DynIdx best = NoDep;
            double bestScore = 0.0;
            for (std::uint32_t e = consumers.offsets[cur];
                 e < consumers.offsets[cur + 1]; ++e) {
                const DynIdx cand = consumers.edges[e];
                if (taken[cand])
                    continue;
                if (producerCount(trace, cand, config.window) != 1)
                    continue;
                const double score = 1.0 + fanout.fanout[cand] +
                    0.5 * lookahead(cand);
                if (best == NoDep || score > bestScore) {
                    best = cand;
                    bestScore = score;
                }
            }
            if (best == NoDep)
                break;
            chain.push_back(best);
            taken[best] = 1;
            cur = best;
        }
        result.chains.push_back(std::move(chain));
    }
    return result;
}

ChainStats
chainStatistics(const Trace &trace, const DynChains &chains,
                const FanoutInfo &fanout, const CriticalityConfig &config)
{
    (void)trace;
    ChainStats stats;
    std::uint64_t critTotal = 0;
    std::uint64_t critWithoutSuccessor = 0;

    for (const auto &chain : chains.chains) {
        if (chain.size() >= 2) {
            ++stats.multiMemberChains;
            stats.icLength.add(static_cast<std::int64_t>(chain.size()));
            stats.icSpread.add(chain.back() - chain.front());
        }
        // Fig. 1b: gaps between successive critical members.
        std::int64_t lastCritPos = -1;
        for (std::size_t k = 0; k < chain.size(); ++k) {
            if (!fanout.critMask[chain[k]])
                continue;
            ++critTotal;
            if (lastCritPos >= 0) {
                const std::int64_t gap =
                    static_cast<std::int64_t>(k) - lastCritPos - 1;
                stats.critGap.add(std::min<std::int64_t>(gap, 6));
            }
            lastCritPos = static_cast<std::int64_t>(k);
        }
        if (lastCritPos >= 0)
            ++critWithoutSuccessor; // the last critical member has none
    }
    (void)config;
    stats.noDependentCritFrac = critTotal
        ? static_cast<double>(critWithoutSuccessor) /
          static_cast<double>(critTotal) : 0.0;
    return stats;
}

std::unordered_set<program::InstUid>
buildCriticalSet(const Trace &trace, const FanoutInfo &fanout, double bias)
{
    std::unordered_map<program::InstUid, std::pair<std::uint32_t,
                                                   std::uint32_t>> counts;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        auto &entry = counts[trace.insts[i].staticUid];
        ++entry.second;
        if (fanout.critMask[i])
            ++entry.first;
    }
    std::unordered_set<program::InstUid> set;
    for (const auto &[uid, cnt] : counts) {
        if (cnt.second > 0 &&
            static_cast<double>(cnt.first) /
                static_cast<double>(cnt.second) >= bias) {
            set.insert(uid);
        }
    }
    return set;
}

} // namespace critics::analysis
