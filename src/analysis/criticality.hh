/**
 * @file
 * Criticality analysis (the offline profiler of Sec. III-A):
 *
 *  - fanout computation per dynamic instruction (direct register
 *    consumers entering a ROB-sized window), and the classic
 *    "critical iff fanout >= threshold" marking;
 *  - IC extraction: partition of the dynamic DFG into self-contained
 *    chains (every non-head member's only in-window producer is its
 *    predecessor), extended greedily toward the highest-fanout
 *    successor — the "look into the future" of Sec. III-A;
 *  - chain statistics for Figs. 1b and 5a;
 *  - per-static-uid criticality aggregation (the PC-indexed predictor
 *    table the single-instruction baselines use).
 */

#ifndef CRITICS_ANALYSIS_CRITICALITY_HH
#define CRITICS_ANALYSIS_CRITICALITY_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "program/trace.hh"
#include "support/histogram.hh"

namespace critics::analysis
{

struct CriticalityConfig
{
    unsigned window = 128;        ///< ROB-sized dependence window
    unsigned fanoutThreshold = 8; ///< critical iff fanout >= this
    double chainCritThreshold = 8.0; ///< avg fanout/instr for a CritIC
    unsigned maxChainLen = 5;     ///< realistic CritIC length cap
};

/** Per-dynamic-instruction fanout and criticality flags. */
struct FanoutInfo
{
    std::vector<std::uint16_t> fanout;
    std::vector<std::uint8_t> critMask;
    std::uint64_t critCount = 0;

    double
    critFraction() const
    {
        return critMask.empty() ? 0.0
            : static_cast<double>(critCount) /
              static_cast<double>(critMask.size());
    }
};

FanoutInfo computeFanout(const program::Trace &trace,
                         const CriticalityConfig &config);

/**
 * Dynamic instruction chains (ICs), stored flat: all member indices
 * concatenated in `members` with `offsets` fenceposts (size()+1), so a
 * 400k-instruction trace costs two allocations instead of one heap
 * vector per chain (most chains are singletons).  Each chain is a
 * strictly increasing dyn-index list.
 */
struct DynChains
{
    std::vector<program::DynIdx> members;
    std::vector<std::uint32_t> offsets; ///< size()+1 fenceposts

    /** Non-owning view of one chain. */
    struct ChainRef
    {
        const program::DynIdx *data = nullptr;
        std::uint32_t len = 0;

        const program::DynIdx *begin() const { return data; }
        const program::DynIdx *end() const { return data + len; }
        std::size_t size() const { return len; }
        bool empty() const { return len == 0; }
        program::DynIdx operator[](std::size_t k) const { return data[k]; }
        program::DynIdx front() const { return data[0]; }
        program::DynIdx back() const { return data[len - 1]; }
    };

    std::size_t
    size() const
    {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }

    ChainRef
    operator[](std::size_t i) const
    {
        return {members.data() + offsets[i], offsets[i + 1] - offsets[i]};
    }

    /** Iterate chains by value (ChainRef is two words). */
    struct Iterator
    {
        const DynChains *owner;
        std::size_t i;

        ChainRef operator*() const { return (*owner)[i]; }
        Iterator &operator++() { ++i; return *this; }
        bool operator!=(const Iterator &o) const { return i != o.i; }
    };

    Iterator begin() const { return {this, 0}; }
    Iterator end() const { return {this, size()}; }
};

/**
 * Partition the stream into ICs.  Every instruction belongs to exactly
 * one chain; isolated instructions form singleton chains.
 */
DynChains extractChains(const program::Trace &trace,
                        const FanoutInfo &fanout,
                        const CriticalityConfig &config);

/** Aggregate chain geometry & criticality-structure statistics. */
struct ChainStats
{
    Histogram icLength; ///< Fig. 5a: members per multi-member IC
    Histogram icSpread; ///< Fig. 5a: dyn-stream span of multi-member ICs
    /** Fig. 1b: low-fanout instructions between successive high-fanout
     *  members of a chain (buckets 0..5; 6 = ">5"). */
    Histogram critGap;
    /** Fig. 1b: fraction of critical instructions with no dependent
     *  critical instruction in their chain. */
    double noDependentCritFrac = 0.0;
    std::uint64_t multiMemberChains = 0;
};

ChainStats chainStatistics(const program::Trace &trace,
                           const DynChains &chains,
                           const FanoutInfo &fanout,
                           const CriticalityConfig &config);

/**
 * The PC-indexed criticality table used by the single-instruction
 * baselines: static uids whose dynamic instances are critical at least
 * `bias` of the time.
 */
std::unordered_set<program::InstUid>
buildCriticalSet(const program::Trace &trace, const FanoutInfo &fanout,
                 double bias = 0.5);

} // namespace critics::analysis

#endif // CRITICS_ANALYSIS_CRITICALITY_HH
