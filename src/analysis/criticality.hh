/**
 * @file
 * Criticality analysis (the offline profiler of Sec. III-A):
 *
 *  - fanout computation per dynamic instruction (direct register
 *    consumers entering a ROB-sized window), and the classic
 *    "critical iff fanout >= threshold" marking;
 *  - IC extraction: partition of the dynamic DFG into self-contained
 *    chains (every non-head member's only in-window producer is its
 *    predecessor), extended greedily toward the highest-fanout
 *    successor — the "look into the future" of Sec. III-A;
 *  - chain statistics for Figs. 1b and 5a;
 *  - per-static-uid criticality aggregation (the PC-indexed predictor
 *    table the single-instruction baselines use).
 */

#ifndef CRITICS_ANALYSIS_CRITICALITY_HH
#define CRITICS_ANALYSIS_CRITICALITY_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "program/trace.hh"
#include "support/histogram.hh"

namespace critics::analysis
{

struct CriticalityConfig
{
    unsigned window = 128;        ///< ROB-sized dependence window
    unsigned fanoutThreshold = 8; ///< critical iff fanout >= this
    double chainCritThreshold = 8.0; ///< avg fanout/instr for a CritIC
    unsigned maxChainLen = 5;     ///< realistic CritIC length cap
};

/** Per-dynamic-instruction fanout and criticality flags. */
struct FanoutInfo
{
    std::vector<std::uint16_t> fanout;
    std::vector<std::uint8_t> critMask;
    std::uint64_t critCount = 0;

    double
    critFraction() const
    {
        return critMask.empty() ? 0.0
            : static_cast<double>(critCount) /
              static_cast<double>(critMask.size());
    }
};

FanoutInfo computeFanout(const program::Trace &trace,
                         const CriticalityConfig &config);

/** Dynamic instruction chains (ICs). */
struct DynChains
{
    /** Chain membership, each a strictly increasing dyn-index list. */
    std::vector<std::vector<program::DynIdx>> chains;
};

/**
 * Partition the stream into ICs.  Every instruction belongs to exactly
 * one chain; isolated instructions form singleton chains.
 */
DynChains extractChains(const program::Trace &trace,
                        const FanoutInfo &fanout,
                        const CriticalityConfig &config);

/** Aggregate chain geometry & criticality-structure statistics. */
struct ChainStats
{
    Histogram icLength; ///< Fig. 5a: members per multi-member IC
    Histogram icSpread; ///< Fig. 5a: dyn-stream span of multi-member ICs
    /** Fig. 1b: low-fanout instructions between successive high-fanout
     *  members of a chain (buckets 0..5; 6 = ">5"). */
    Histogram critGap;
    /** Fig. 1b: fraction of critical instructions with no dependent
     *  critical instruction in their chain. */
    double noDependentCritFrac = 0.0;
    std::uint64_t multiMemberChains = 0;
};

ChainStats chainStatistics(const program::Trace &trace,
                           const DynChains &chains,
                           const FanoutInfo &fanout,
                           const CriticalityConfig &config);

/**
 * The PC-indexed criticality table used by the single-instruction
 * baselines: static uids whose dynamic instances are critical at least
 * `bias` of the time.
 */
std::unordered_set<program::InstUid>
buildCriticalSet(const program::Trace &trace, const FanoutInfo &fanout,
                 double bias = 0.5);

} // namespace critics::analysis

#endif // CRITICS_ANALYSIS_CRITICALITY_HH
