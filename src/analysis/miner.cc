#include "analysis/miner.hh"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/mode.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace critics::analysis
{

using program::DynIdx;
using program::InstUid;
using program::Trace;

namespace
{

constexpr std::uint64_t kUidSeqSeed = 0x9E3779B97F4A7C15ULL;

struct UidSeqHash
{
    std::size_t
    operator()(const std::vector<InstUid> &seq) const
    {
        std::uint64_t h = kUidSeqSeed;
        for (const InstUid uid : seq)
            h = hashCombine(h, uid);
        return static_cast<std::size_t>(h);
    }
};

struct Agg
{
    std::uint64_t dynCount = 0;
    std::uint64_t fanoutSum = 0;
    std::vector<std::uint64_t> memberFanout;
};

bool
directlyConvertible(const isa::OperandInfo &info)
{
    return isa::thumbDirectlyConvertible(info);
}

/**
 * The interned uid-sequence table of the flat miner (DESIGN.md §10).
 * Every unique segment lives once in a shared arena; the open-addressed
 * slot array maps a precomputed hash to an entry holding the arena
 * span and its aggregates, and `memberFanoutSums` parallels the arena
 * so per-member sums need no per-entry vector.  Aggregating a segment
 * allocates nothing once the table is warm — the legacy path built a
 * `std::vector<InstUid>` key per qualifying segment just to probe an
 * unordered_map.
 */
class SegmentTable
{
  public:
    struct Entry
    {
        std::uint64_t hash = 0;
        std::uint32_t off = 0; ///< arena offset of the uid sequence
        std::uint32_t len = 0;
        std::uint64_t dynCount = 0;
        std::uint64_t fanoutSum = 0;
    };

    SegmentTable() { slots_.assign(kInitialSlots, -1); }

    /** Find-or-insert the uid sequence; returns the entry index. */
    std::size_t
    intern(const InstUid *uids, std::uint32_t len, std::uint64_t hash)
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t j = static_cast<std::size_t>(hash) & mask;
        while (slots_[j] >= 0) {
            const Entry &e = entries_[static_cast<std::size_t>(slots_[j])];
            if (e.hash == hash && e.len == len &&
                std::equal(uids, uids + len, arena_.begin() + e.off)) {
                return static_cast<std::size_t>(slots_[j]);
            }
            j = (j + 1) & mask;
        }
        Entry e;
        e.hash = hash;
        e.off = static_cast<std::uint32_t>(arena_.size());
        e.len = len;
        arena_.insert(arena_.end(), uids, uids + len);
        memberFanoutSums_.resize(arena_.size(), 0);
        entries_.push_back(e);
        slots_[j] = static_cast<std::int32_t>(entries_.size() - 1);
        if (entries_.size() * 10 >= slots_.size() * 7)
            grow();
        return entries_.size() - 1;
    }

    Entry &entry(std::size_t i) { return entries_[i]; }
    const std::vector<Entry> &entries() const { return entries_; }
    const InstUid *uids(const Entry &e) const { return arena_.data() + e.off; }

    void
    addMemberFanout(const Entry &e, std::uint32_t member,
                    std::uint64_t fanout)
    {
        memberFanoutSums_[e.off + member] += fanout;
    }

    std::uint64_t
    memberFanoutSum(const Entry &e, std::uint32_t member) const
    {
        return memberFanoutSums_[e.off + member];
    }

  private:
    static constexpr std::size_t kInitialSlots = 1024; ///< power of two

    void
    grow()
    {
        std::vector<std::int32_t> next(slots_.size() * 2, -1);
        const std::size_t mask = next.size() - 1;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            std::size_t j =
                static_cast<std::size_t>(entries_[i].hash) & mask;
            while (next[j] >= 0)
                j = (j + 1) & mask;
            next[j] = static_cast<std::int32_t>(i);
        }
        slots_ = std::move(next);
    }

    std::vector<InstUid> arena_;
    std::vector<std::uint64_t> memberFanoutSums_; ///< parallels arena_
    std::vector<Entry> entries_;
    std::vector<std::int32_t> slots_; ///< -1 = empty
};

/** Descending coverage, uid-lexicographic tie-break: a total order on
 *  unique chains, so both analyze paths emit the same sequence no
 *  matter what their aggregation table iterated like. */
void
sortChains(std::vector<MinedChain> &chains)
{
    std::sort(chains.begin(), chains.end(),
              [](const MinedChain &a, const MinedChain &b) {
                  if (a.coverage() != b.coverage())
                      return a.coverage() > b.coverage();
                  return a.uids < b.uids;
              });
}

/** The pre-overhaul miner, kept one release behind
 *  CRITICS_FLAT_ANALYZE=off: per-segment key vectors into an
 *  unordered_map, per-step avg() recomputation in the trim loop, and a
 *  Program::locate hash probe per dynamic instruction. */
MineResult
mineCritIcsLegacy(const Trace &trace, const program::Program &prog,
                  const DynChains &chains, const FanoutInfo &fanout,
                  const CriticalityConfig &config, double profileFraction)
{
    MineResult result;
    result.dynInsts = trace.size();
    const auto cutoff = static_cast<DynIdx>(
        static_cast<double>(trace.size()) *
        std::clamp(profileFraction, 0.0, 1.0));

    std::unordered_map<std::vector<InstUid>, Agg, UidSeqHash> table;

    std::vector<InstUid> segment;
    std::vector<DynIdx> segmentDyn;
    for (const DynChains::ChainRef chain : chains) {
        if (chain.empty() || chain.front() >= cutoff)
            continue;

        // Cut the dynamic chain into same-block segments with strictly
        // increasing intra-block position and no repeated uids (a
        // loop-carried chain revisits the same statics every iteration;
        // each visit is its own segment).
        segment.clear();
        segmentDyn.clear();
        std::uint32_t curFunc = ~0u, curBlock = ~0u;
        std::uint32_t lastIndex = 0;

        auto flush = [&]() {
            // Any sub-path of an IC is an IC: trim low-fanout ends so
            // the qualifying critical core is what gets aggregated
            // (greedy chain extension appends low-fanout tails).
            std::size_t lo = 0, hi = segment.size();
            auto avg = [&]() {
                std::uint64_t sum = 0;
                for (std::size_t k = lo; k < hi; ++k)
                    sum += fanout.fanout[segmentDyn[k]];
                return static_cast<double>(sum) /
                       static_cast<double>(hi - lo);
            };
            while (hi - lo > 2 && avg() < config.chainCritThreshold) {
                if (fanout.fanout[segmentDyn[lo]] <=
                    fanout.fanout[segmentDyn[hi - 1]]) {
                    ++lo;
                } else {
                    --hi;
                }
            }
            if (hi - lo >= 2) {
                ++result.segmentsSeen;
                const std::vector<InstUid> key(
                    segment.begin() + static_cast<std::ptrdiff_t>(lo),
                    segment.begin() + static_cast<std::ptrdiff_t>(hi));
                Agg &agg = table[key];
                ++agg.dynCount;
                agg.memberFanout.resize(key.size(), 0);
                for (std::size_t k = lo; k < hi; ++k) {
                    agg.fanoutSum += fanout.fanout[segmentDyn[k]];
                    agg.memberFanout[k - lo] +=
                        fanout.fanout[segmentDyn[k]];
                }
            }
            segment.clear();
            segmentDyn.clear();
        };

        for (const DynIdx dyn : chain) {
            const InstUid uid = trace.insts[dyn].staticUid;
            const program::InstLoc &loc = prog.locate(uid);
            const bool sameBlock =
                loc.func == curFunc && loc.block == curBlock &&
                loc.index > lastIndex;
            if (!sameBlock)
                flush();
            segment.push_back(uid);
            segmentDyn.push_back(dyn);
            curFunc = loc.func;
            curBlock = loc.block;
            lastIndex = loc.index;
        }
        flush();
    }

    for (auto &[uids, agg] : table) {
        const double avgFanout =
            static_cast<double>(agg.fanoutSum) /
            static_cast<double>(agg.dynCount * uids.size());
        if (avgFanout < config.chainCritThreshold)
            continue;
        MinedChain chain;
        chain.uids = uids;
        chain.dynCount = agg.dynCount;
        chain.avgFanout = avgFanout;
        chain.memberFanout.reserve(uids.size());
        for (const std::uint64_t sum : agg.memberFanout) {
            chain.memberFanout.push_back(
                static_cast<double>(sum) /
                static_cast<double>(agg.dynCount));
        }
        chain.memberConvertible.reserve(uids.size());
        bool allConvertible = true;
        for (const InstUid uid : uids) {
            const bool conv =
                directlyConvertible(prog.instByUid(uid).arch);
            chain.memberConvertible.push_back(conv ? 1 : 0);
            allConvertible = allConvertible && conv;
        }
        chain.directlyConvertible = allConvertible;
        result.chains.push_back(std::move(chain));
    }
    sortChains(result.chains);
    return result;
}

/**
 * The flat miner (DESIGN.md §10): identical statistics via
 *
 *  - a dense LocTable lookup per dynamic instruction instead of a
 *    Program::locate hash probe,
 *  - prefix sums over the segment's fanout so the trim loop costs
 *    O(len) total instead of recomputing avg() per step, and
 *  - the interned SegmentTable instead of vector-keyed hashing.
 */
MineResult
mineCritIcsFlat(const Trace &trace, const program::Program &prog,
                const DynChains &chains, const FanoutInfo &fanout,
                const CriticalityConfig &config, double profileFraction,
                const LocTable *locs)
{
    std::optional<LocTable> ownLocs;
    if (locs == nullptr) {
        ownLocs.emplace(prog);
        locs = &*ownLocs;
    }

    MineResult result;
    result.dynInsts = trace.size();
    const auto cutoff = static_cast<DynIdx>(
        static_cast<double>(trace.size()) *
        std::clamp(profileFraction, 0.0, 1.0));

    SegmentTable table;
    std::vector<InstUid> segment;
    std::vector<DynIdx> segmentDyn;
    std::vector<std::uint64_t> prefix; ///< fanout prefix sums, len+1

    for (const DynChains::ChainRef chain : chains) {
        // A single member can never form a >= 2-length segment, and
        // most chains are singletons: skip them before any location
        // lookups.  (The legacy path walks them into an empty flush.)
        if (chain.size() < 2 || chain.front() >= cutoff)
            continue;

        segment.clear();
        segmentDyn.clear();
        std::uint64_t curKey = ~0ull; // matches no packed location
        std::uint64_t lastIndex = 0;

        auto flush = [&]() {
            std::size_t lo = 0, hi = segment.size();
            if (hi > 2) {
                prefix.resize(hi + 1);
                prefix[0] = 0;
                for (std::size_t k = 0; k < hi; ++k)
                    prefix[k + 1] =
                        prefix[k] + fanout.fanout[segmentDyn[k]];
                // Same decisions as the legacy avg() loop: the prefix
                // difference is the identical uint64 sum, so the double
                // division compares bit-identically.
                while (hi - lo > 2) {
                    const double avg =
                        static_cast<double>(prefix[hi] - prefix[lo]) /
                        static_cast<double>(hi - lo);
                    if (!(avg < config.chainCritThreshold))
                        break;
                    if (fanout.fanout[segmentDyn[lo]] <=
                        fanout.fanout[segmentDyn[hi - 1]]) {
                        ++lo;
                    } else {
                        --hi;
                    }
                }
            }
            if (hi - lo >= 2) {
                ++result.segmentsSeen;
                const auto len = static_cast<std::uint32_t>(hi - lo);
                std::uint64_t hash = kUidSeqSeed;
                for (std::size_t k = lo; k < hi; ++k)
                    hash = hashCombine(hash, segment[k]);
                const std::size_t idx =
                    table.intern(segment.data() + lo, len, hash);
                SegmentTable::Entry &e = table.entry(idx);
                ++e.dynCount;
                for (std::size_t k = lo; k < hi; ++k) {
                    const std::uint64_t f = fanout.fanout[segmentDyn[k]];
                    e.fanoutSum += f;
                    table.addMemberFanout(
                        e, static_cast<std::uint32_t>(k - lo), f);
                }
            }
            segment.clear();
            segmentDyn.clear();
        };

        for (const DynIdx dyn : chain) {
            const InstUid uid = trace.insts[dyn].staticUid;
            const std::uint64_t packed = locs->packed(uid);
            const bool sameBlock =
                (packed >> LocTable::kIndexBits) ==
                    (curKey >> LocTable::kIndexBits) &&
                (packed & LocTable::kIndexMask) > lastIndex;
            if (!sameBlock)
                flush();
            segment.push_back(uid);
            segmentDyn.push_back(dyn);
            curKey = packed;
            lastIndex = packed & LocTable::kIndexMask;
        }
        flush();
    }

    for (const SegmentTable::Entry &e : table.entries()) {
        const double avgFanout =
            static_cast<double>(e.fanoutSum) /
            static_cast<double>(e.dynCount * e.len);
        if (avgFanout < config.chainCritThreshold)
            continue;
        const InstUid *uids = table.uids(e);
        MinedChain chain;
        chain.uids.assign(uids, uids + e.len);
        chain.dynCount = e.dynCount;
        chain.avgFanout = avgFanout;
        chain.memberFanout.reserve(e.len);
        for (std::uint32_t k = 0; k < e.len; ++k) {
            chain.memberFanout.push_back(
                static_cast<double>(table.memberFanoutSum(e, k)) /
                static_cast<double>(e.dynCount));
        }
        chain.memberConvertible.reserve(e.len);
        bool allConvertible = true;
        for (std::uint32_t k = 0; k < e.len; ++k) {
            const bool conv = locs->convertible(uids[k]);
            chain.memberConvertible.push_back(conv ? 1 : 0);
            allConvertible = allConvertible && conv;
        }
        chain.directlyConvertible = allConvertible;
        result.chains.push_back(std::move(chain));
    }
    sortChains(result.chains);
    return result;
}

} // namespace

LocTable::LocTable(const program::Program &prog)
{
    InstUid maxUid = 0;
    bool any = false;
    for (const auto &fn : prog.funcs) {
        for (const auto &bb : fn.blocks) {
            for (const auto &si : bb.insts) {
                maxUid = std::max(maxUid, si.uid);
                any = true;
            }
        }
    }
    locs_.assign(any ? maxUid + 1 : 0, program::InstLoc{});
    packed_.assign(locs_.size(), 0);
    convertible_.assign(locs_.size(), 0);
    critics_assert(prog.funcs.size() < (1u << 24),
                   "LocTable: function count overflows packed location");
    for (std::uint32_t fi = 0; fi < prog.funcs.size(); ++fi) {
        const auto &fn = prog.funcs[fi];
        critics_assert(fn.blocks.size() < (1u << kBlockBits),
                       "LocTable: block count overflows packed location");
        for (std::uint32_t bi = 0; bi < fn.blocks.size(); ++bi) {
            const auto &bb = fn.blocks[bi];
            critics_assert(bb.insts.size() < (1u << kIndexBits),
                           "LocTable: block length overflows packed "
                           "location");
            for (std::uint32_t ii = 0; ii < bb.insts.size(); ++ii) {
                const auto &si = bb.insts[ii];
                locs_[si.uid] = {fi, bi, ii};
                packed_[si.uid] =
                    (static_cast<std::uint64_t>(fi)
                     << (kBlockBits + kIndexBits)) |
                    (static_cast<std::uint64_t>(bi) << kIndexBits) | ii;
                convertible_[si.uid] =
                    directlyConvertible(si.arch) ? 1 : 0;
            }
        }
    }
}

MineResult
mineCritIcs(const Trace &trace, const program::Program &prog,
            const DynChains &chains, const FanoutInfo &fanout,
            const CriticalityConfig &config, double profileFraction,
            const LocTable *locs)
{
    return flatAnalyzeEnabled()
        ? mineCritIcsFlat(trace, prog, chains, fanout, config,
                          profileFraction, locs)
        : mineCritIcsLegacy(trace, prog, chains, fanout, config,
                            profileFraction);
}

Selection
selectCritIcs(const MineResult &mined, const SelectOptions &options)
{
    Selection selection;
    std::unordered_set<InstUid> used;
    std::uint64_t covered = 0;

    // The convertibility constraint applies to what gets selected: when
    // a maxLen window is cut out of a longer chain, test the window's
    // members, not the whole chain (whose ends the window excludes).
    // Hand-built MineResults without per-member bits keep the
    // whole-chain answer.
    auto windowConvertible = [](const MinedChain &chain, std::size_t lo,
                                std::size_t len) {
        if (chain.memberConvertible.size() != chain.uids.size())
            return chain.directlyConvertible;
        for (std::size_t k = 0; k < len; ++k) {
            if (!chain.memberConvertible[lo + k])
                return false;
        }
        return true;
    };

    for (const MinedChain &chain : mined.chains) {
        if (selection.chains.size() >= options.maxChains)
            break;
        std::size_t lo = 0;
        std::size_t len = chain.uids.size();
        if (!options.ideal) {
            if (options.exactLen != 0) {
                if (len != options.exactLen)
                    continue;
            } else if (len > options.maxLen) {
                // Any sub-path of an IC is an IC: keep the
                // highest-average-fanout window of the allowed length.
                double best = -1.0;
                for (std::size_t s = 0;
                     s + options.maxLen <= len; ++s) {
                    double sum = 0.0;
                    for (std::size_t k = 0; k < options.maxLen; ++k)
                        sum += chain.memberFanout[s + k];
                    if (sum > best) {
                        best = sum;
                        lo = s;
                    }
                }
                len = options.maxLen;
            }
            if (options.requireConvertible &&
                !windowConvertible(chain, lo, len)) {
                continue;
            }
        }
        const auto first = chain.uids.begin() +
            static_cast<std::ptrdiff_t>(lo);
        const std::vector<InstUid> uids(
            first, first + static_cast<std::ptrdiff_t>(len));
        bool overlaps = false;
        for (const InstUid uid : uids) {
            if (used.count(uid)) {
                overlaps = true;
                break;
            }
        }
        if (overlaps)
            continue;
        for (const InstUid uid : uids)
            used.insert(uid);
        covered += chain.dynCount * uids.size();
        selection.chains.push_back(uids);
    }
    selection.expectedCoverage = mined.dynInsts
        ? static_cast<double>(covered) /
          static_cast<double>(mined.dynInsts) : 0.0;
    return selection;
}

CoverageCdf
coverageCdf(const MineResult &mined)
{
    CoverageCdf cdf;
    if (mined.chains.empty() || mined.dynInsts == 0)
        return cdf;

    const double total = static_cast<double>(mined.dynInsts);
    double accAll = 0.0, accConv = 0.0;
    std::size_t rankAll = 0, rankConv = 0, convChains = 0;
    for (const MinedChain &chain : mined.chains) {
        accAll += static_cast<double>(chain.coverage());
        cdf.all.push_back({static_cast<double>(++rankAll),
                           accAll / total});
        if (chain.directlyConvertible) {
            ++convChains;
            accConv += static_cast<double>(chain.coverage());
            cdf.convertible.push_back(
                {static_cast<double>(++rankConv), accConv / total});
        }
    }
    cdf.convertibleChainFraction =
        static_cast<double>(convChains) /
        static_cast<double>(mined.chains.size());

    // Decimate to keep the series printable.  The first and last
    // points are pinned exactly: 63.0 * stride can truncate to
    // size - 2 under floating-point rounding, which used to end the
    // reported Fig. 5b curve below its true terminal coverage.
    auto decimate = [](std::vector<CdfPoint> &points) {
        if (points.size() <= 64)
            return;
        std::vector<CdfPoint> keep;
        const double stride =
            static_cast<double>(points.size() - 1) / 63.0;
        for (unsigned i = 0; i < 64; ++i) {
            std::size_t idx = static_cast<std::size_t>(
                static_cast<double>(i) * stride);
            if (i == 63 || idx >= points.size())
                idx = points.size() - 1;
            keep.push_back(points[idx]);
        }
        points = std::move(keep);
    };
    decimate(cdf.all);
    decimate(cdf.convertible);
    return cdf;
}

} // namespace critics::analysis
