#include "analysis/miner.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/logging.hh"
#include "support/rng.hh"

namespace critics::analysis
{

using program::DynIdx;
using program::InstUid;
using program::Trace;

namespace
{

struct UidSeqHash
{
    std::size_t
    operator()(const std::vector<InstUid> &seq) const
    {
        std::uint64_t h = 0x9E3779B97F4A7C15ULL;
        for (const InstUid uid : seq)
            h = hashCombine(h, uid);
        return static_cast<std::size_t>(h);
    }
};

struct Agg
{
    std::uint64_t dynCount = 0;
    std::uint64_t fanoutSum = 0;
    std::vector<std::uint64_t> memberFanout;
};

bool
directlyConvertible(const isa::OperandInfo &info)
{
    return isa::thumbDirectlyConvertible(info);
}

} // namespace

MineResult
mineCritIcs(const Trace &trace, const program::Program &prog,
            const DynChains &chains, const FanoutInfo &fanout,
            const CriticalityConfig &config, double profileFraction)
{
    MineResult result;
    result.dynInsts = trace.size();
    const auto cutoff = static_cast<DynIdx>(
        static_cast<double>(trace.size()) *
        std::clamp(profileFraction, 0.0, 1.0));

    std::unordered_map<std::vector<InstUid>, Agg, UidSeqHash> table;

    std::vector<InstUid> segment;
    std::vector<DynIdx> segmentDyn;
    for (const auto &chain : chains.chains) {
        if (chain.empty() || chain.front() >= cutoff)
            continue;

        // Cut the dynamic chain into same-block segments with strictly
        // increasing intra-block position and no repeated uids (a
        // loop-carried chain revisits the same statics every iteration;
        // each visit is its own segment).
        segment.clear();
        segmentDyn.clear();
        std::uint32_t curFunc = ~0u, curBlock = ~0u;
        std::uint32_t lastIndex = 0;

        auto flush = [&]() {
            // Any sub-path of an IC is an IC: trim low-fanout ends so
            // the qualifying critical core is what gets aggregated
            // (greedy chain extension appends low-fanout tails).
            std::size_t lo = 0, hi = segment.size();
            auto avg = [&]() {
                std::uint64_t sum = 0;
                for (std::size_t k = lo; k < hi; ++k)
                    sum += fanout.fanout[segmentDyn[k]];
                return static_cast<double>(sum) /
                       static_cast<double>(hi - lo);
            };
            while (hi - lo > 2 && avg() < config.chainCritThreshold) {
                if (fanout.fanout[segmentDyn[lo]] <=
                    fanout.fanout[segmentDyn[hi - 1]]) {
                    ++lo;
                } else {
                    --hi;
                }
            }
            if (hi - lo >= 2) {
                ++result.segmentsSeen;
                const std::vector<InstUid> key(
                    segment.begin() + static_cast<std::ptrdiff_t>(lo),
                    segment.begin() + static_cast<std::ptrdiff_t>(hi));
                Agg &agg = table[key];
                ++agg.dynCount;
                agg.memberFanout.resize(key.size(), 0);
                for (std::size_t k = lo; k < hi; ++k) {
                    agg.fanoutSum += fanout.fanout[segmentDyn[k]];
                    agg.memberFanout[k - lo] +=
                        fanout.fanout[segmentDyn[k]];
                }
            }
            segment.clear();
            segmentDyn.clear();
        };

        for (const DynIdx dyn : chain) {
            const InstUid uid = trace.insts[dyn].staticUid;
            const program::InstLoc &loc = prog.locate(uid);
            const bool sameBlock =
                loc.func == curFunc && loc.block == curBlock &&
                loc.index > lastIndex;
            if (!sameBlock)
                flush();
            segment.push_back(uid);
            segmentDyn.push_back(dyn);
            curFunc = loc.func;
            curBlock = loc.block;
            lastIndex = loc.index;
        }
        flush();
    }

    for (auto &[uids, agg] : table) {
        const double avgFanout =
            static_cast<double>(agg.fanoutSum) /
            static_cast<double>(agg.dynCount * uids.size());
        if (avgFanout < config.chainCritThreshold)
            continue;
        MinedChain chain;
        chain.uids = uids;
        chain.dynCount = agg.dynCount;
        chain.avgFanout = avgFanout;
        chain.memberFanout.reserve(uids.size());
        for (const std::uint64_t sum : agg.memberFanout) {
            chain.memberFanout.push_back(
                static_cast<double>(sum) /
                static_cast<double>(agg.dynCount));
        }
        chain.directlyConvertible = std::all_of(
            uids.begin(), uids.end(), [&](InstUid uid) {
                return directlyConvertible(prog.instByUid(uid).arch);
            });
        result.chains.push_back(std::move(chain));
    }
    std::sort(result.chains.begin(), result.chains.end(),
              [](const MinedChain &a, const MinedChain &b) {
                  if (a.coverage() != b.coverage())
                      return a.coverage() > b.coverage();
                  return a.uids < b.uids; // deterministic tie-break
              });
    return result;
}

Selection
selectCritIcs(const MineResult &mined, const SelectOptions &options)
{
    Selection selection;
    std::unordered_set<InstUid> used;
    std::uint64_t covered = 0;

    for (const MinedChain &chain : mined.chains) {
        if (selection.chains.size() >= options.maxChains)
            break;
        std::size_t lo = 0;
        std::size_t len = chain.uids.size();
        if (!options.ideal) {
            if (options.exactLen != 0) {
                if (len != options.exactLen)
                    continue;
            } else if (len > options.maxLen) {
                // Any sub-path of an IC is an IC: keep the
                // highest-average-fanout window of the allowed length.
                double best = -1.0;
                for (std::size_t s = 0;
                     s + options.maxLen <= len; ++s) {
                    double sum = 0.0;
                    for (std::size_t k = 0; k < options.maxLen; ++k)
                        sum += chain.memberFanout[s + k];
                    if (sum > best) {
                        best = sum;
                        lo = s;
                    }
                }
                len = options.maxLen;
            }
            if (options.requireConvertible &&
                !chain.directlyConvertible) {
                continue;
            }
        }
        const auto first = chain.uids.begin() +
            static_cast<std::ptrdiff_t>(lo);
        const std::vector<InstUid> uids(
            first, first + static_cast<std::ptrdiff_t>(len));
        bool overlaps = false;
        for (const InstUid uid : uids) {
            if (used.count(uid)) {
                overlaps = true;
                break;
            }
        }
        if (overlaps)
            continue;
        for (const InstUid uid : uids)
            used.insert(uid);
        covered += chain.dynCount * uids.size();
        selection.chains.push_back(uids);
    }
    selection.expectedCoverage = mined.dynInsts
        ? static_cast<double>(covered) /
          static_cast<double>(mined.dynInsts) : 0.0;
    return selection;
}

CoverageCdf
coverageCdf(const MineResult &mined)
{
    CoverageCdf cdf;
    if (mined.chains.empty() || mined.dynInsts == 0)
        return cdf;

    const double total = static_cast<double>(mined.dynInsts);
    double accAll = 0.0, accConv = 0.0;
    std::size_t rankAll = 0, rankConv = 0, convChains = 0;
    for (const MinedChain &chain : mined.chains) {
        accAll += static_cast<double>(chain.coverage());
        cdf.all.push_back({static_cast<double>(++rankAll),
                           accAll / total});
        if (chain.directlyConvertible) {
            ++convChains;
            accConv += static_cast<double>(chain.coverage());
            cdf.convertible.push_back(
                {static_cast<double>(++rankConv), accConv / total});
        }
    }
    cdf.convertibleChainFraction =
        static_cast<double>(convChains) /
        static_cast<double>(mined.chains.size());

    // Decimate to keep the series printable.
    auto decimate = [](std::vector<CdfPoint> &points) {
        if (points.size() <= 64)
            return;
        std::vector<CdfPoint> keep;
        const double stride =
            static_cast<double>(points.size() - 1) / 63.0;
        for (unsigned i = 0; i < 64; ++i) {
            keep.push_back(points[static_cast<std::size_t>(
                static_cast<double>(i) * stride)]);
        }
        points = std::move(keep);
    };
    decimate(cdf.all);
    decimate(cdf.convertible);
    return cdf;
}

} // namespace critics::analysis
